// CSV trace importer: parsing, DAG synthesis fidelity, error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "dag/generators.h"
#include "workload/trace_import.h"

namespace dagsched {
namespace {

JobSet parse(const std::string& text, double granularity = 1.0) {
  std::istringstream in(text);
  TraceImportOptions options;
  options.granularity = granularity;
  return import_trace_csv(in, options);
}

TEST(TraceImport, ParsesRowsAndSortsByRelease) {
  const JobSet jobs = parse(
      "release,work,span,deadline,profit\n"
      "5.0, 20, 4, 10, 2.5\n"
      "# a comment row\n"
      "1.0, 6, 6, 8, 1\n"
      "\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].release(), 1.0);
  EXPECT_DOUBLE_EQ(jobs[1].release(), 5.0);
  EXPECT_DOUBLE_EQ(jobs[1].relative_deadline(), 10.0);
  EXPECT_DOUBLE_EQ(jobs[1].peak_profit(), 2.5);
}

TEST(TraceImport, SynthesizedDagMatchesTotals) {
  const JobSet jobs = parse(
      "release,work,span,deadline,profit\n"
      "0, 20, 4, 10, 1\n"
      "0, 7.5, 7.5, 10, 1\n"   // pure chain (W == L)
      "0, 5.3, 1.7, 10, 1\n");  // fractional sizes
  ASSERT_EQ(jobs.size(), 3u);
  const double works[] = {20.0, 7.5, 5.3};
  const double spans[] = {4.0, 7.5, 1.7};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_NEAR(jobs[i].work(), works[i], 1e-9);
    EXPECT_NEAR(jobs[i].span(), spans[i], 1e-9);
  }
}

TEST(TraceImport, GranularityControlsNodeCount) {
  const JobSet coarse = parse(
      "release,work,span,deadline,profit\n0, 20, 4, 10, 1\n", 4.0);
  const JobSet fine = parse(
      "release,work,span,deadline,profit\n0, 20, 4, 10, 1\n", 0.5);
  EXPECT_LT(coarse[0].dag().num_nodes(), fine[0].dag().num_nodes());
  EXPECT_NEAR(coarse[0].work(), fine[0].work(), 1e-9);
  EXPECT_NEAR(coarse[0].span(), fine[0].span(), 1e-9);
}

TEST(TraceImport, ErrorsCarryLineNumbers) {
  const char* bad[] = {
      "",                                            // empty
      "wrong,header\n",                              // header
      "release,work,span,deadline,profit\n1,2\n",    // arity
      "release,work,span,deadline,profit\nx,2,1,3,1\n",  // non-numeric
      "release,work,span,deadline,profit\n0,2,3,3,1\n",  // span > work
      "release,work,span,deadline,profit\n0,2,1,0,1\n",  // deadline <= 0
      "release,work,span,deadline,profit\n-1,2,1,3,1\n", // release < 0
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW(import_trace_csv(in), std::runtime_error) << text;
  }
}

TEST(TraceImport, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/no/such/trace.csv"), std::runtime_error);
}

TEST(TraceExport, RoundTripPreservesParameters) {
  const JobSet original = parse(
      "release,work,span,deadline,profit\n"
      "0, 20, 4, 10, 2.5\n"
      "1.5, 8, 8, 12, 1\n");
  std::stringstream buffer;
  export_trace_csv(buffer, original);
  const JobSet again = import_trace_csv(buffer);
  ASSERT_EQ(again.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(again[i].release(), original[i].release(), 1e-12) << i;
    EXPECT_NEAR(again[i].work(), original[i].work(), 1e-9) << i;
    EXPECT_NEAR(again[i].span(), original[i].span(), 1e-9) << i;
    EXPECT_NEAR(again[i].relative_deadline(),
                original[i].relative_deadline(), 1e-12)
        << i;
    EXPECT_NEAR(again[i].peak_profit(), original[i].peak_profit(), 1e-12)
        << i;
  }
}

TEST(TraceExport, NonStepProfitsExportPlateauAndPeak) {
  JobSet jobs;
  jobs.add(Job(std::make_shared<const Dag>(make_parallel_block(4, 1.0)), 2.0,
               ProfitFn::plateau_linear(5.0, 7.0, 20.0)));
  jobs.finalize();
  std::stringstream buffer;
  export_trace_csv(buffer, jobs);
  const JobSet again = import_trace_csv(buffer);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_DOUBLE_EQ(again[0].relative_deadline(), 7.0);  // plateau end
  EXPECT_DOUBLE_EQ(again[0].peak_profit(), 5.0);
  EXPECT_TRUE(again[0].has_deadline());  // decay collapsed to a step
}

}  // namespace
}  // namespace dagsched
