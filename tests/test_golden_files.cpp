// Format-stability goldens: the checked-in sample files under data/ must
// keep parsing to exactly these values.  A format change that breaks
// existing user files fails here first.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "workload/trace_import.h"
#include "workload/workload_io.h"

namespace dagsched {
namespace {

// DAGSCHED_DATA_DIR is injected by tests/CMakeLists.txt.
const std::string kDataDir = DAGSCHED_DATA_DIR;

TEST(GoldenFiles, SampleWorkloadParsesToKnownValues) {
  const JobSet jobs = load_workload(kDataDir + "/sample.wl");
  ASSERT_EQ(jobs.size(), 4u);

  // Job 0: map-reduce-ish DAG, step profit.
  EXPECT_DOUBLE_EQ(jobs[0].release(), 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].work(), 18.0);
  EXPECT_DOUBLE_EQ(jobs[0].span(), 6.0);
  EXPECT_TRUE(jobs[0].has_deadline());
  EXPECT_DOUBLE_EQ(jobs[0].relative_deadline(), 14.0);
  EXPECT_DOUBLE_EQ(jobs[0].peak_profit(), 10.0);

  // Job 1: single node, plateau+linear.
  EXPECT_DOUBLE_EQ(jobs[1].release(), 2.5);
  EXPECT_FALSE(jobs[1].has_deadline());
  EXPECT_DOUBLE_EQ(jobs[1].profit().plateau_end(), 8.0);
  EXPECT_DOUBLE_EQ(jobs[1].profit().support_end(), 20.0);
  EXPECT_DOUBLE_EQ(jobs[1].profit().at(14.0), 3.0);  // halfway down

  // Job 2: chain, exponential decay.
  EXPECT_DOUBLE_EQ(jobs[2].work(), 4.0);
  EXPECT_DOUBLE_EQ(jobs[2].span(), 4.0);
  EXPECT_EQ(jobs[2].profit().support_end(), kTimeInfinity);
  EXPECT_NEAR(jobs[2].profit().at(9.0), 2.0 * std::exp(-1.0), 1e-12);

  // Job 3: piecewise staircase.
  EXPECT_DOUBLE_EQ(jobs[3].peak_profit(), 9.0);
  EXPECT_DOUBLE_EQ(jobs[3].profit().at(2.0), 9.0);
  EXPECT_DOUBLE_EQ(jobs[3].profit().at(3.0), 4.0);
  EXPECT_DOUBLE_EQ(jobs[3].profit().at(10.0), 1.5);
  EXPECT_DOUBLE_EQ(jobs[3].profit().at(11.5), 0.0);
  EXPECT_DOUBLE_EQ(jobs[3].span(), 3.0);  // 0 -> 1 -> 3
}

TEST(GoldenFiles, SampleWorkloadRoundTrips) {
  const JobSet jobs = load_workload(kDataDir + "/sample.wl");
  std::stringstream buffer;
  write_workload(buffer, jobs);
  const JobSet again = read_workload(buffer);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].work(), jobs[i].work()) << i;
    EXPECT_DOUBLE_EQ(again[i].span(), jobs[i].span()) << i;
    for (double t = 0.0; t < 25.0; t += 1.3) {
      EXPECT_NEAR(again[i].profit().at(t), jobs[i].profit().at(t), 1e-12)
          << "job " << i << " t " << t;
    }
  }
}

TEST(GoldenFiles, SampleTraceParsesToKnownValues) {
  const JobSet jobs = load_trace_csv(kDataDir + "/sample_trace.csv");
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_DOUBLE_EQ(jobs[0].release(), 0.0);
  EXPECT_NEAR(jobs[0].work(), 20.0, 1e-9);
  EXPECT_NEAR(jobs[0].span(), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(jobs[0].peak_profit(), 2.5);
  EXPECT_NEAR(jobs[2].work(), 30.0, 1e-9);
  EXPECT_NEAR(jobs[2].span(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(jobs[3].release(), 6.0);
}

}  // namespace
}  // namespace dagsched
