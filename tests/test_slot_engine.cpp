// SlotEngine: quantized machine model, slot semantics, idle skipping.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/slot_engine.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

SimResult run_slotted(const JobSet& jobs, SchedulerBase& scheduler,
                      ProcCount m, double speed = 1.0) {
  auto sel = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = m;
  options.speed = speed;
  options.record_trace = true;
  SlotEngine engine(jobs, scheduler, *sel, options);
  return engine.run();
}

TEST(SlotEngine, UnitChainTakesOneSlotPerNode) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(4, 1.0)), 0.0, 10.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run_slotted(jobs, scheduler, 2);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 4.0);
}

TEST(SlotEngine, SuccessorsWaitForNextSlot) {
  // Two nodes of 0.5 in a chain: the event engine would finish at 1.0, but
  // the slot model keeps the successor for the next slot: completion 1.5.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(2, 0.5)), 0.0, 10.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run_slotted(jobs, scheduler, 1);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 1.5);
}

TEST(SlotEngine, ParallelBlockWaves) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_parallel_block(6, 1.0)), 0.0, 10.0,
                              1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run_slotted(jobs, scheduler, 4);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 2.0);
  EXPECT_DOUBLE_EQ(result.busy_proc_time, 6.0);
}

TEST(SlotEngine, SpeedConsumesMoreWorkPerSlot) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(2, 2.0)), 0.0, 10.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run_slotted(jobs, scheduler, 1, 2.0);
  ASSERT_TRUE(result.outcomes[0].completed);
  // Each node (work 2) fits one slot at speed 2.
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 2.0);
}

TEST(SlotEngine, LateArrivalSkipsIdleSlots) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 100.0, 10.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run_slotted(jobs, scheduler, 1);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 101.0);
  // Decisions should be tiny (idle skip), not ~100.
  EXPECT_LT(result.decisions, 10u);
}

TEST(SlotEngine, ExpiredJobsTerminateRun) {
  // A job that can never run (deadline in the past relative to its work on
  // one processor) must not spin the engine to the horizon.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(10, 1.0)), 0.0, 2.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run_slotted(jobs, scheduler, 1);
  EXPECT_FALSE(result.outcomes[0].completed);
  EXPECT_LT(result.decisions, 50u);
}

TEST(SlotEngine, TraceIsValidSchedule) {
  Rng rng(55);
  JobSet jobs;
  for (int i = 0; i < 8; ++i) {
    RandomDagParams params;
    params.nodes = 12;
    params.edge_prob = 0.15;
    params.work = WorkDist::constant(1.0);
    Dag dag = make_random_dag(rng, params);
    const double deadline =
        3.0 * ((dag.total_work() - dag.span()) / 4.0 + dag.span()) + 4.0;
    jobs.add(Job::with_deadline(share(std::move(dag)),
                                static_cast<double>(i), deadline, 1.0));
  }
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run_slotted(jobs, scheduler, 4);
  EXPECT_EQ(result.trace.validate(jobs, 4, 1.0), "");
  EXPECT_GT(result.jobs_completed, 0u);
}

}  // namespace
}  // namespace dagsched
