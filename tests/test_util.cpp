// Unit tests for src/util: RNG, float comparison, stats, CSV, table,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/float_cmp.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dagsched {
namespace {

TEST(FloatCmp, BasicRelations) {
  EXPECT_TRUE(approx_eq(1.0, 1.0));
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_eq(1.0, 1.001));
  EXPECT_TRUE(approx_lt(1.0, 2.0));
  EXPECT_FALSE(approx_lt(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_le(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_gt(2.0, 1.0));
  EXPECT_TRUE(approx_ge(1.0, 1.0 - 1e-12));
  EXPECT_TRUE(approx_zero(1e-12));
  EXPECT_FALSE(approx_zero(1e-3));
}

TEST(FloatCmp, RelativeToleranceForLargeValues) {
  const double big = 1e12;
  EXPECT_TRUE(approx_eq(big, big * (1.0 + 1e-12)));
  EXPECT_FALSE(approx_eq(big, big * 1.001));
}

TEST(FloatCmp, SnapNonnegative) {
  EXPECT_EQ(snap_nonnegative(-1e-12), 0.0);
  EXPECT_EQ(snap_nonnegative(0.5), 0.5);
  EXPECT_LT(snap_nonnegative(-1.0), 0.0);  // big negatives pass through
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(7);
  Rng s1 = base.split(0);
  Rng s2 = base.split(1);
  Rng s1b = Rng(7).split(0);
  EXPECT_EQ(s1(), s1b());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1() == s2()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(99);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RunningStats, WelfordMatchesDirect) {
  RunningStats stats;
  const double xs[] = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.75);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 15.0);
  // Sample variance: sum((x-3.75)^2)/3 = (7.5625+3.0625+0.0625+18.0625)/3.
  EXPECT_NEAR(stats.variance(), 28.75 / 3.0, 1e-12);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet samples;
  for (int i = 1; i <= 5; ++i) samples.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(samples.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(samples.median(), 3.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.25), 2.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet samples;
  samples.add(0.0);
  samples.add(10.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.5), 5.0);
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/dagsched_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "plain"});
    csv.row({"2", "has,comma"});
    csv.row({"3", "has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, NumericCellsRoundTrip) {
  EXPECT_EQ(CsvWriter::cell(1.5), "1.5");
  EXPECT_EQ(CsvWriter::cell(static_cast<long long>(42)), "42");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "v"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "23"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 3), "1.23");
  EXPECT_EQ(TextTable::num(static_cast<long long>(7)), "7");
  EXPECT_EQ(TextTable::num(std::numeric_limits<double>::infinity()), "inf");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace dagsched
