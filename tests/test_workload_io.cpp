// Workload (de)serialization: round trips, schedule-equivalence of loaded
// instances, malformed-input errors.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "workload/scenarios.h"
#include "workload/workload_io.h"

namespace dagsched {
namespace {

void expect_jobsets_equal(const JobSet& a, const JobSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].release(), b[i].release()) << "job " << i;
    EXPECT_DOUBLE_EQ(a[i].work(), b[i].work()) << "job " << i;
    EXPECT_DOUBLE_EQ(a[i].span(), b[i].span()) << "job " << i;
    EXPECT_EQ(a[i].dag().num_nodes(), b[i].dag().num_nodes());
    EXPECT_EQ(a[i].dag().num_edges(), b[i].dag().num_edges());
    EXPECT_DOUBLE_EQ(a[i].peak_profit(), b[i].peak_profit());
    // Sample the profit functions on a grid.
    for (double t = 0.0; t < 50.0; t += 0.7) {
      EXPECT_NEAR(a[i].profit().at(t), b[i].profit().at(t), 1e-9)
          << "job " << i << " t " << t;
    }
  }
}

JobSet round_trip(const JobSet& jobs) {
  std::stringstream buffer;
  write_workload(buffer, jobs);
  return read_workload(buffer);
}

TEST(WorkloadIo, RoundTripStepJobs) {
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_fig1_dag(4, 3, 1.0)), 0.5, 10.0, 2.0));
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_chain(5, 0.75)), 3.0, 8.0, 1.5));
  jobs.finalize();
  expect_jobsets_equal(jobs, round_trip(jobs));
}

TEST(WorkloadIo, RoundTripAllProfitShapes) {
  auto dag = std::make_shared<const Dag>(make_parallel_block(4, 1.0));
  JobSet jobs;
  jobs.add(Job(dag, 0.0, ProfitFn::step(2.0, 5.0)));
  jobs.add(Job(dag, 1.0, ProfitFn::plateau_linear(3.0, 4.0, 12.0)));
  jobs.add(Job(dag, 2.0, ProfitFn::plateau_exponential(1.5, 6.0, 0.25)));
  jobs.add(Job(dag, 3.0,
               ProfitFn::piecewise({{2.0, 5.0}, {4.0, 3.0}, {9.0, 1.0}})));
  jobs.finalize();
  expect_jobsets_equal(jobs, round_trip(jobs));
}

TEST(WorkloadIo, RoundTripGeneratedWorkload) {
  Rng rng(314);
  const JobSet jobs = generate_workload(rng, scenario_thm2(0.5, 0.8, 8));
  ASSERT_GT(jobs.size(), 5u);
  expect_jobsets_equal(jobs, round_trip(jobs));
}

TEST(WorkloadIo, LoadedInstanceSchedulesIdentically) {
  Rng rng(141);
  const JobSet original = generate_workload(rng, scenario_thm2(0.5, 0.9, 4));
  const JobSet loaded = round_trip(original);

  auto run = [](const JobSet& jobs) {
    ListScheduler scheduler({ListPolicy::kEdf, false, true});
    auto selector = make_selector(SelectorKind::kFifo);
    EngineOptions options;
    options.num_procs = 4;
    return simulate(jobs, scheduler, *selector, options).total_profit;
  };
  EXPECT_DOUBLE_EQ(run(original), run(loaded));
}

TEST(WorkloadIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dagsched_io_test.wl";
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_single_node(2.0)), 0.0, 4.0, 1.0));
  jobs.finalize();
  save_workload(path, jobs);
  expect_jobsets_equal(jobs, load_workload(path));
  std::remove(path.c_str());
}

TEST(WorkloadIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "dagsched-workload 1\n"
      "\n"
      "job 0\n"
      "# profit next\n"
      "profit step 1 4\n"
      "nodes 2\n"
      "1.0 2.0\n"
      "edges 1\n"
      "0 1\n"
      "end\n");
  const JobSet jobs = read_workload(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].work(), 3.0);
  EXPECT_DOUBLE_EQ(jobs[0].span(), 3.0);
}

TEST(WorkloadIo, MalformedInputsThrowWithLineNumbers) {
  const char* bad_inputs[] = {
      "",                                       // empty
      "not-a-workload 1\n",                     // bad magic
      "dagsched-workload 99\n",                 // bad version
      "dagsched-workload 1\njob zero\n",        // bad release
      "dagsched-workload 1\njob 0\nprofit step 1\n",  // truncated profit
      "dagsched-workload 1\njob 0\nprofit step 1 4\nnodes 0\n",  // 0 nodes
      "dagsched-workload 1\njob 0\nprofit step 1 4\nnodes 2\n1.0\n",  // few
      "dagsched-workload 1\njob 0\nprofit step 1 4\nnodes 1\n1\nedges 1\n",
  };
  for (const char* text : bad_inputs) {
    std::stringstream in(text);
    EXPECT_THROW(read_workload(in), std::runtime_error) << text;
  }
}

TEST(WorkloadIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_workload("/nonexistent/definitely/missing.wl"),
               std::runtime_error);
}

}  // namespace
}  // namespace dagsched
