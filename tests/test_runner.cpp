// Experiment harness: run_workload, OPT bracketing, trial aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "exp/runner.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

TEST(Runner, RunWorkloadProducesConsistentMetrics) {
  Rng rng(1);
  const JobSet jobs = generate_workload(rng, scenario_thm2(0.5, 0.7, 8));
  ASSERT_FALSE(jobs.empty());
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  RunConfig config;
  config.m = 8;
  const RunMetrics metrics = run_workload(jobs, scheduler, config);
  EXPECT_EQ(metrics.num_jobs, jobs.size());
  EXPECT_LE(metrics.completed, metrics.num_jobs);
  EXPECT_GE(metrics.fraction, 0.0);
  EXPECT_LE(metrics.fraction, 1.0 + 1e-9);
  EXPECT_GT(metrics.decisions, 0u);
}

TEST(Runner, OptBracketOrdered) {
  Rng rng(2);
  const JobSet jobs = generate_workload(rng, scenario_thm2(0.5, 0.9, 8));
  const OptBracket bracket = estimate_opt(jobs, 8);
  EXPECT_GE(bracket.upper, bracket.lower - 1e-6);
  EXPECT_GT(bracket.lower, 0.0);
  EXPECT_FALSE(bracket.lower_scheduler.empty());
  // Ratios behave.
  EXPECT_GE(bracket.ratio_upper(bracket.lower), 1.0 - 1e-9);
  EXPECT_DOUBLE_EQ(bracket.ratio_lower(bracket.lower), 1.0);
}

TEST(Runner, AlgorithmNeverExceedsUpperBound) {
  Rng rng(3);
  const JobSet jobs = generate_workload(rng, scenario_shootout(1.2, 8, 0.2, 1.0));
  const OptBracket bracket = estimate_opt(jobs, 8);
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  RunConfig config;
  config.m = 8;
  const RunMetrics metrics = run_workload(jobs, scheduler, config);
  EXPECT_LE(metrics.profit, bracket.upper + 1e-6);
}

TEST(Runner, OfflineGreedyLowerBoundWithinBracket) {
  Rng rng(17);
  const JobSet jobs = generate_workload(rng, scenario_shootout(2.0, 8, 0.3, 1.0));
  ASSERT_FALSE(jobs.empty());
  const Profit planned = offline_greedy_lower_bound(jobs, 8);
  const OptBracket bracket = estimate_opt(jobs, 8);
  // The planner is folded into the bracket's lower bound...
  EXPECT_GE(bracket.lower, planned - 1e-9);
  // ...and stays below the LP upper bound.
  EXPECT_LE(planned, bracket.upper + 1e-6);
  EXPECT_GT(planned, 0.0);
}

TEST(Runner, OfflineGreedySelectsDenseJobsUnderOverload) {
  // One machine, window [0, 2]: profit-3 job of work 2 vs two profit-2
  // jobs of work 1 each.  Classic density ranks the small ones first; the
  // planner must accept exactly those (total 4), as the exact OPT would.
  JobSet jobs;
  auto node = [](Work w) {
    return std::make_shared<const Dag>(make_single_node(w));
  };
  jobs.add(Job::with_deadline(node(2.0), 0.0, 2.0, 3.0));
  jobs.add(Job::with_deadline(node(1.0), 0.0, 2.0, 2.0));
  jobs.add(Job::with_deadline(node(1.0), 0.0, 2.0, 2.0));
  jobs.finalize();
  EXPECT_DOUBLE_EQ(offline_greedy_lower_bound(jobs, 1), 4.0);
}

TEST(Runner, TrialsAggregateDeterministically) {
  TrialConfig config;
  config.workload = scenario_thm2(0.5, 0.6, 8);
  config.workload.horizon = 120.0;
  config.run.m = 8;
  config.trials = 4;
  config.base_seed = 77;
  const SchedulerFactory factory = [] {
    return std::make_unique<DeadlineScheduler>(
        DeadlineSchedulerOptions{.params = Params::from_epsilon(0.5)});
  };
  const TrialStats a = run_trials(config, factory);
  const TrialStats b = run_trials(config, factory);
  EXPECT_EQ(a.profit.count(), 4u);
  EXPECT_DOUBLE_EQ(a.profit.mean(), b.profit.mean());
  EXPECT_DOUBLE_EQ(a.fraction.mean(), b.fraction.mean());
}

TEST(Runner, TrialsParallelMatchesSequential) {
  TrialConfig config;
  config.workload = scenario_thm2(0.5, 0.6, 8);
  config.workload.horizon = 100.0;
  config.run.m = 8;
  config.trials = 6;
  config.base_seed = 5;
  const SchedulerFactory factory = [] {
    return std::make_unique<ListScheduler>(
        ListSchedulerOptions{ListPolicy::kEdf, false, true});
  };
  ThreadPool pool(3);
  const TrialStats sequential = run_trials(config, factory, nullptr);
  const TrialStats parallel = run_trials(config, factory, &pool);
  EXPECT_DOUBLE_EQ(sequential.profit.mean(), parallel.profit.mean());
  EXPECT_DOUBLE_EQ(sequential.profit.min(), parallel.profit.min());
  EXPECT_DOUBLE_EQ(sequential.profit.max(), parallel.profit.max());
}

TEST(Runner, WithOptPopulatesRatios) {
  TrialConfig config;
  config.workload = scenario_thm2(0.5, 0.6, 4);
  config.workload.horizon = 60.0;
  config.run.m = 4;
  config.trials = 2;
  config.with_opt = true;
  const SchedulerFactory factory = [] {
    return std::make_unique<DeadlineScheduler>(
        DeadlineSchedulerOptions{.params = Params::from_epsilon(0.5)});
  };
  const TrialStats stats = run_trials(config, factory);
  EXPECT_EQ(stats.ratio_ub.count(), 2u);
  EXPECT_GE(stats.ratio_ub.min(), 1.0 - 1e-6);
}

TEST(Runner, SlotEngineRouting) {
  Rng rng(9);
  WorkloadConfig wconfig =
      scenario_profit(0.5, 0.5, 8, ProfitPolicy::Shape::kPlateauLinear);
  wconfig.horizon = 60.0;
  const JobSet jobs = generate_workload(rng, wconfig);
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  RunConfig config;
  config.m = 8;
  config.engine = EngineKind::kSlot;
  const RunMetrics metrics = run_workload(jobs, scheduler, config);
  EXPECT_GE(metrics.profit, 0.0);
}

TEST(Runner, BothEnginesProduceEqualMetricsOnIntegralWorkload) {
  // One canned config through the kernel-backed factory: on an integral
  // workload (unit node works, integer releases and deadlines, speed 1)
  // the two stepping drivers must agree on every aggregate the runner
  // reports (they execute the same shared kernel).
  JobSet jobs;
  Rng rng(11);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto width = static_cast<std::size_t>(rng.uniform_int(1, 4));
    auto dag = std::make_shared<const Dag>(make_parallel_block(width, 1.0));
    const auto release = static_cast<Time>(rng.uniform_int(0, 20));
    const auto slack = static_cast<Time>(rng.uniform_int(4, 30));
    jobs.add(Job::with_deadline(dag, release, release + slack,
                                std::floor(rng.uniform(1.0, 5.0))));
  }
  jobs.finalize();
  ASSERT_FALSE(jobs.empty());

  RunConfig config;
  config.m = 4;
  RunMetrics by_engine[2];
  const EngineKind kinds[2] = {EngineKind::kEvent, EngineKind::kSlot};
  for (int i = 0; i < 2; ++i) {
    ListScheduler scheduler({ListPolicy::kEdf, false, true});
    config.engine = kinds[i];
    by_engine[i] = run_workload(jobs, scheduler, config);
  }
  EXPECT_NEAR(by_engine[0].profit, by_engine[1].profit, 1e-6);
  EXPECT_NEAR(by_engine[0].fraction, by_engine[1].fraction, 1e-9);
  EXPECT_EQ(by_engine[0].completed, by_engine[1].completed);
  EXPECT_EQ(by_engine[0].num_jobs, by_engine[1].num_jobs);
  EXPECT_NEAR(by_engine[0].busy_proc_time, by_engine[1].busy_proc_time, 1e-6);
  EXPECT_EQ(by_engine[0].failure, SimFailureKind::kNone);
  EXPECT_EQ(by_engine[1].failure, SimFailureKind::kNone);
}

}  // namespace
}  // namespace dagsched
