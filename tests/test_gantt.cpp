// Gantt rendering: ASCII layout and SVG structure.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "sim/gantt.h"

namespace dagsched {
namespace {

Trace simple_trace() {
  Trace trace;
  trace.add(0.0, 2.0, 0, 0, 0);
  trace.add(2.0, 4.0, 1, 0, 0);
  trace.add(0.0, 4.0, 2, 0, 1);
  return trace;
}

TEST(AsciiGantt, RendersRowsAndLegend) {
  const std::string out = to_ascii_gantt(simple_trace(), 2, {.width = 40});
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P1"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("J0='0'"), std::string::npos);
  EXPECT_NE(out.find("J2='2'"), std::string::npos);
  // Row P1 is fully busy with job 2: no idle dots between the pipes.
  const auto p1 = out.find("P1  |");
  ASSERT_NE(p1, std::string::npos);
  const std::string row = out.substr(p1 + 5, 40);
  EXPECT_EQ(row.find('.'), std::string::npos);
}

TEST(AsciiGantt, IdleShownAsDots) {
  Trace trace;
  trace.add(0.0, 1.0, 0, 0, 0);  // busy only the first tenth of [0,10)
  trace.add(9.0, 10.0, 1, 0, 0);
  const std::string out =
      to_ascii_gantt(trace, 1, {.width = 50});
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(AsciiGantt, WindowRestriction) {
  const std::string out = to_ascii_gantt(
      simple_trace(), 2, {.width = 20, .t0 = 0.0, .t1 = 2.0});
  // Job 1 runs [2,4) only: must not appear in the [0,2) window.
  EXPECT_EQ(out.find("J1"), std::string::npos);
}

TEST(SvgGantt, WellFormedWithRects) {
  const std::string svg = to_svg_gantt(simple_trace(), 2);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Three intervals -> three rects with per-job titles.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, 3u);
  EXPECT_NE(svg.find("<title>J2 node 0"), std::string::npos);
}

TEST(Gantt, EmptyTraceRendersWithoutCrashing) {
  const std::string ascii = to_ascii_gantt(Trace{}, 3);
  EXPECT_NE(ascii.find("P2"), std::string::npos);
  const std::string svg = to_svg_gantt(Trace{}, 3);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Gantt, EndToEndFromEngineTrace) {
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_parallel_block(8, 1.0)), 0.0, 10.0,
      1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  options.record_trace = true;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  const std::string out = to_ascii_gantt(result.trace, 4);
  // All four processors busy at the start.
  for (const char* row : {"P0  |0", "P1  |0", "P2  |0", "P3  |0"}) {
    EXPECT_NE(out.find(row), std::string::npos) << row;
  }
}

}  // namespace
}  // namespace dagsched
