// Causal trace export and latency attribution: the Chrome trace_event
// document round-trips through the JSON parser with a well-formed track
// structure, the per-job phase decomposition sums exactly to the response
// time (with and without restart-from-zero faults), and diff_event_logs
// finds divergences / forgives the cross-engine end-of-run tail.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "job/job.h"
#include "obs/attribution.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "obs/trace_export.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "util/json.h"
#include "util/rng.h"

namespace dagsched {
namespace {

JobSet integer_workload(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  JobSet jobs;
  for (std::size_t i = 0; i < count; ++i) {
    RandomDagParams params;
    params.nodes = static_cast<std::size_t>(rng.uniform_int(4, 16));
    params.edge_prob = 0.15;
    params.work = WorkDist::constant(1.0);
    Dag dag = make_random_dag(rng, params);
    const double release = static_cast<double>(rng.uniform_int(0, 40));
    const double greedy = (dag.total_work() - dag.span()) / 4.0 + dag.span();
    const double deadline = std::ceil(greedy * rng.uniform(1.2, 2.5)) + 2.0;
    jobs.add(Job::with_deadline(std::make_shared<const Dag>(std::move(dag)),
                                release, deadline,
                                std::floor(rng.uniform(1.0, 10.0))));
  }
  jobs.finalize();
  return jobs;
}

struct RecordedRun {
  SimResult result;
  EventLog events;
};

RecordedRun run_recorded(const JobSet& jobs, ProcCount m,
                         const FaultInjector* faults = nullptr) {
  RecordedRun run;
  ObsSink sink;
  sink.events = &run.events;
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  options.record_trace = true;
  options.obs = &sink;
  options.faults = faults;
  EventEngine engine(jobs, scheduler, *selector, options);
  run.result = engine.run();
  return run;
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(TraceExport, DocumentRoundTripsAndIsWellFormed) {
  const JobSet jobs = integer_workload(17u, 10);
  const RecordedRun run = run_recorded(jobs, 4);

  TraceExportInputs inputs;
  inputs.jobs = &jobs;
  inputs.result = &run.result;
  inputs.events = &run.events;
  inputs.m = 4;
  inputs.label = "unit test";
  const JsonValue doc = export_chrome_trace(inputs);

  // The emitted document must survive our own strict parser -- this is the
  // "valid Chrome trace JSON" acceptance check.
  const JsonParseResult parsed = json_parse(doc.dump());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue& root = parsed.value;
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("otherData").at("schema").as_string(),
            "dagsched.trace_export/1");

  const JsonValue& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  std::map<double, int> async_balance;  // id -> #begin - #end
  std::size_t exec_slices = 0;
  double last_ts = -1.0;
  bool in_prelude = true;
  for (const JsonValue& event : events.items()) {
    ASSERT_TRUE(event.is_object());
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") {
      EXPECT_TRUE(in_prelude) << "metadata must precede timeline events";
      continue;
    }
    in_prelude = false;
    const double ts = event.at("ts").as_number();
    EXPECT_GE(ts, last_ts) << "timeline events must be sorted";
    last_ts = ts;
    if (ph == "X") {
      EXPECT_GE(event.at("dur").as_number(), 0.0);
      ++exec_slices;
    } else if (ph == "b") {
      async_balance[event.at("id").as_number()] += 1;
    } else if (ph == "e") {
      async_balance[event.at("id").as_number()] -= 1;
    } else {
      EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
    }
  }
  // Every job got an async track; each begin has a matching end.
  EXPECT_EQ(async_balance.size(), jobs.size());
  for (const auto& [id, balance] : async_balance) {
    EXPECT_EQ(balance, 0) << "unbalanced async track for job " << id;
  }
  EXPECT_GT(exec_slices, 0u);
  EXPECT_EQ(root.at("otherData").at("exec_slices").as_number(),
            static_cast<double>(exec_slices));
}

TEST(TraceExport, FaultInstantsLandOnMachineTracks) {
  const JobSet jobs = integer_workload(23u, 8);
  FaultPlanConfig config;
  config.seed = 5;
  config.mtbf = 12.0;
  config.mttr = 3.0;
  config.horizon = 60.0;
  config.integral_times = true;
  FaultInjector injector(build_fault_plan(config, 4));
  const RecordedRun run = run_recorded(jobs, 4, &injector);
  ASSERT_TRUE(injector.has_churn()) << "config produced no churn; tighten it";

  TraceExportInputs inputs;
  inputs.jobs = &jobs;
  inputs.result = &run.result;
  inputs.events = &run.events;
  inputs.m = 4;
  const JsonValue doc = export_chrome_trace(inputs);

  std::size_t fault_instants = 0;
  for (const JsonValue& event : doc.at("traceEvents").items()) {
    const std::string& name = event.at("name").as_string();
    if (name == "proc-down" || name == "proc-up") {
      EXPECT_EQ(event.at("ph").as_string(), "i");
      EXPECT_EQ(event.at("pid").as_number(), 1.0) << "faults belong to the "
                                                     "machine process";
      ++fault_instants;
    }
  }
  EXPECT_GT(fault_instants, 0u);
}

// ---------------------------------------------------------------------------
// Latency attribution
// ---------------------------------------------------------------------------

TEST(Attribution, PhasesSumExactlyToResponse) {
  const JobSet jobs = integer_workload(31u, 12);
  const RecordedRun run = run_recorded(jobs, 4);

  const AttributionResult attribution =
      attribute_latency(jobs, run.result, &run.events);
  ASSERT_EQ(attribution.jobs.size(), jobs.size());
  EXPECT_LE(attribution.max_identity_error, 1e-9);

  LatencyPhases recomputed;
  std::size_t ran = 0;
  for (const JobAttribution& job : attribution.jobs) {
    EXPECT_LE(job.identity_error(), 1e-9) << "job " << job.job;
    EXPECT_GE(job.response(), 0.0);
    // No phase may be negative.
    EXPECT_GE(job.phases.pending, 0.0);
    EXPECT_GE(job.phases.queued, 0.0);
    EXPECT_GE(job.phases.running, 0.0);
    EXPECT_GE(job.phases.preempted, 0.0);
    EXPECT_GE(job.phases.restart_lost, 0.0);
    EXPECT_GE(job.phases.post_deadline, 0.0);
    if (job.phases.running > 0.0) ++ran;
    recomputed.pending += job.phases.pending;
    recomputed.queued += job.phases.queued;
    recomputed.running += job.phases.running;
  }
  EXPECT_GT(ran, 0u) << "nothing executed; test is vacuous";
  EXPECT_DOUBLE_EQ(recomputed.running, attribution.totals.running);
}

TEST(Attribution, CompletedJobsDecomposeCompletionMinusArrival) {
  const JobSet jobs = integer_workload(47u, 10);
  const RecordedRun run = run_recorded(jobs, 8);

  const AttributionResult attribution =
      attribute_latency(jobs, run.result, &run.events);
  std::size_t completed = 0;
  for (const JobAttribution& job : attribution.jobs) {
    if (!job.completed) continue;
    ++completed;
    const JobOutcome& outcome =
        run.result.outcomes[static_cast<std::size_t>(job.job)];
    EXPECT_NEAR(job.phases.sum(),
                outcome.completion_time - job.arrival, 1e-9)
        << "job " << job.job;
  }
  EXPECT_GT(completed, 0u);
}

TEST(Attribution, RestartFromZeroFaultsShowUpAsLostTime) {
  // Enough churn with restart=zero that some in-flight progress is lost;
  // the lost execution must surface in restart_lost, and the identity must
  // still hold exactly.
  const JobSet jobs = integer_workload(61u, 14);
  FaultPlanConfig config;
  config.seed = 9;
  config.mtbf = 8.0;
  config.mttr = 2.0;
  config.horizon = 80.0;
  // Non-integral transition times so failures strike mid-node; integral
  // churn on unit-work nodes always lands on node boundaries and loses
  // nothing.
  config.integral_times = false;
  config.restart = RestartPolicy::kRestartFromZero;
  FaultInjector injector(build_fault_plan(config, 4));
  const RecordedRun run = run_recorded(jobs, 4, &injector);
  ASSERT_GT(run.result.lost_work, 0.0)
      << "no progress was lost; loosen mtbf so the test exercises restarts";

  const AttributionResult attribution =
      attribute_latency(jobs, run.result, &run.events);
  EXPECT_LE(attribution.max_identity_error, 1e-9);
  EXPECT_GT(attribution.totals.restart_lost, 0.0);
}

TEST(Attribution, DegradesGracefullyWithoutEventLog) {
  const JobSet jobs = integer_workload(71u, 8);
  const RecordedRun run = run_recorded(jobs, 4);

  const AttributionResult attribution =
      attribute_latency(jobs, run.result, nullptr);
  ASSERT_EQ(attribution.jobs.size(), jobs.size());
  // Without admission context, admitted-at-arrival: pending collapses into
  // queued, but the identity is untouched.
  EXPECT_LE(attribution.max_identity_error, 1e-9);
  for (const JobAttribution& job : attribution.jobs) {
    EXPECT_EQ(job.phases.pending, 0.0) << "job " << job.job;
  }
}

// ---------------------------------------------------------------------------
// Event-log diff
// ---------------------------------------------------------------------------

std::vector<DecisionEvent> make_log(
    std::initializer_list<std::pair<ObsEventKind, JobId>> entries) {
  std::vector<DecisionEvent> log;
  double t = 0.0;
  for (const auto& [kind, job] : entries) {
    DecisionEvent event;
    event.time = t;
    t += 1.0;
    event.job = job;
    event.kind = kind;
    log.push_back(event);
  }
  return log;
}

TEST(EventLogDiffTest, IdenticalLogsDoNotDiverge) {
  const auto log = make_log({{ObsEventKind::kArrival, 0},
                             {ObsEventKind::kAdmit, 0},
                             {ObsEventKind::kComplete, 0}});
  const EventLogDiff diff = diff_event_logs(log, log);
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.forgiven_tail, 0u);
  ASSERT_EQ(diff.kind_deltas.size(), 3u);
  EXPECT_EQ(diff.kind_deltas[0].lhs, diff.kind_deltas[0].rhs);
}

TEST(EventLogDiffTest, ReportsFirstDivergenceAndKindDeltas) {
  const auto lhs = make_log({{ObsEventKind::kArrival, 0},
                             {ObsEventKind::kAdmit, 0},
                             {ObsEventKind::kComplete, 0}});
  const auto rhs = make_log({{ObsEventKind::kArrival, 0},
                             {ObsEventKind::kDefer, 0},
                             {ObsEventKind::kDrop, 0}});
  const EventLogDiff diff = diff_event_logs(lhs, rhs);
  ASSERT_TRUE(diff.diverged());
  EXPECT_EQ(diff.first_divergence, 1u);
  EXPECT_FALSE(diff.description.empty());
  // admit appears only on the left, defer/drop only on the right.
  bool saw_admit_delta = false;
  for (const auto& delta : diff.kind_deltas) {
    if (delta.kind == "admit") {
      saw_admit_delta = true;
      EXPECT_EQ(delta.lhs, 1u);
      EXPECT_EQ(delta.rhs, 0u);
    }
  }
  EXPECT_TRUE(saw_admit_delta);
}

TEST(EventLogDiffTest, DecisionsModeForgivesTrailingDrops) {
  const auto lhs = make_log({{ObsEventKind::kAdmit, 0}});
  auto rhs = make_log({{ObsEventKind::kAdmit, 0},
                       {ObsEventKind::kDrop, 1},
                       {ObsEventKind::kDrop, 2}});
  EventLogDiffOptions options;
  options.decisions_only = true;
  EventLogDiff diff = diff_event_logs(lhs, rhs, options);
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.forgiven_tail, 2u);

  // A non-drop tail is not forgiven...
  rhs.push_back(make_log({{ObsEventKind::kAdmit, 3}}).front());
  diff = diff_event_logs(lhs, rhs, options);
  EXPECT_TRUE(diff.diverged());

  // ...and neither is any tail when forgiveness is off.
  options.ignore_tail_drops = false;
  rhs.pop_back();
  diff = diff_event_logs(lhs, rhs, options);
  EXPECT_TRUE(diff.diverged());
  EXPECT_EQ(diff.first_divergence, 1u);
}

TEST(EventLogDiffTest, DecisionsModeIgnoresTimestampSkew) {
  auto lhs = make_log({{ObsEventKind::kAdmit, 0}, {ObsEventKind::kDrop, 1}});
  auto rhs = lhs;
  for (DecisionEvent& event : rhs) event.time += 0.5;
  EventLogDiffOptions options;
  options.decisions_only = true;
  EXPECT_TRUE(diff_event_logs(lhs, rhs, options).identical());
  // The full comparison does see the skew.
  EXPECT_TRUE(diff_event_logs(lhs, rhs).diverged());
}

TEST(EventLogDiffTest, EnginesProduceNoDecisionDivergence) {
  // The acceptance check behind `dagsched trace diff --decisions`: both
  // engines on an integral workload agree on every policy decision.
  const JobSet jobs = integer_workload(5u, 14);

  EventLog ev_log;
  ObsSink ev_sink;
  ev_sink.events = &ev_log;
  DeadlineScheduler s1({.params = Params::from_epsilon(0.5)});
  auto sel1 = make_selector(SelectorKind::kFifo);
  EngineOptions ev_options;
  ev_options.num_procs = 4;
  ev_options.obs = &ev_sink;
  EventEngine event_engine(jobs, s1, *sel1, ev_options);
  (void)event_engine.run();

  EventLog slot_log;
  ObsSink slot_sink;
  slot_sink.events = &slot_log;
  DeadlineScheduler s2({.params = Params::from_epsilon(0.5)});
  auto sel2 = make_selector(SelectorKind::kFifo);
  SlotEngineOptions slot_options;
  slot_options.num_procs = 4;
  slot_options.obs = &slot_sink;
  SlotEngine slot_engine(jobs, s2, *sel2, slot_options);
  (void)slot_engine.run();

  EventLogDiffOptions options;
  options.decisions_only = true;
  const EventLogDiff diff =
      diff_event_logs(ev_log.events(), slot_log.events(), options);
  EXPECT_TRUE(diff.identical())
      << format_event_log_diff(diff, "event-engine", "slot-engine");
}

}  // namespace
}  // namespace dagsched
