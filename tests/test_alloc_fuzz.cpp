// Allocation-validation fuzz: a hostile scheduler that mixes legal
// allocations with every class of malformed one (overcommit, duplicate job,
// unarrived job, completed job, out-of-range job, zero processors) must be
// rejected with a structured SimFailureKind::kBadAllocation on both stepping
// drivers -- never a DS_CHECK process abort, never a corrupted result.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dag/generators.h"
#include "sim/kernel/engine_factory.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

JobSet fuzz_jobs(Rng& rng) {
  JobSet jobs;
  const int n = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < n; ++i) {
    const auto width = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const double work = rng.uniform(0.5, 3.0);
    const double release = rng.uniform(0.0, 8.0);
    jobs.add(Job::with_deadline(share(make_parallel_block(width, work)),
                                release, release + rng.uniform(5.0, 30.0),
                                rng.uniform(1.0, 4.0)));
  }
  jobs.finalize();
  return jobs;
}

/// Behaves like a greedy FCFS scheduler except that, at one randomly chosen
/// decision, it emits one randomly chosen malformed allocation.
class HostileScheduler final : public SchedulerBase {
 public:
  HostileScheduler(std::uint64_t seed, std::size_t strike_decision)
      : rng_(seed), strike_decision_(strike_decision) {}

  std::string name() const override { return "hostile"; }

  bool struck() const { return struck_; }

  void decide(const EngineContext& ctx, Assignment& out) override {
    const auto active = ctx.active_jobs();
    if (decision_++ == strike_decision_) {
      struck_ = true;
      emit_malformed(ctx, out);
      return;
    }
    ProcCount left = ctx.num_procs();
    for (const JobId job : active) {
      if (left == 0) break;
      const ProcCount grant = static_cast<ProcCount>(
          rng_.uniform_int(1, static_cast<std::int64_t>(left)));
      out.add(job, grant);
      left -= grant;
    }
  }

  void reset() override {
    decision_ = 0;
    struck_ = false;
  }

 private:
  void emit_malformed(const EngineContext& ctx, Assignment& out) {
    const auto active = ctx.active_jobs();
    // With no active job some attack shapes are unavailable; fall back to
    // the out-of-range one, which is always expressible.
    const std::int64_t shape =
        active.empty() ? 4 : rng_.uniform_int(0, 5);
    const JobId victim = active.empty() ? 0 : active.front();
    switch (shape) {
      case 0:  // overcommit: one entry above m
        out.add(victim, ctx.num_procs() + 1);
        break;
      case 1:  // overcommit: entries summing above m
        if (active.size() >= 2) {
          for (const JobId job : active) out.add(job, ctx.num_procs());
        } else {
          out.add(victim, ctx.num_procs() + 1);
        }
        break;
      case 2:  // duplicate job
        out.add(victim, 1);
        out.add(victim, 1);
        break;
      case 3:  // zero processors
        out.add(victim, 0);
        break;
      case 4:  // out-of-range job id
        out.add(static_cast<JobId>(ctx.num_jobs() + 7), 1);
        break;
      case 5: {  // unarrived or completed job: any non-active job id
        for (JobId job = 0; job < ctx.num_jobs(); ++job) {
          bool is_active = false;
          for (const JobId a : active) is_active |= (a == job);
          if (!is_active) {
            out.add(job, 1);
            return;
          }
        }
        out.add(victim, 0);  // every job active: degrade to zero-procs
        break;
      }
      default: break;
    }
  }

  Rng rng_;
  std::size_t strike_decision_ = 0;
  std::size_t decision_ = 0;
  bool struck_ = false;
};

TEST(AllocFuzz, MalformedAllocationsRejectedNotAborted) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const JobSet jobs = fuzz_jobs(rng);
    const auto strike = static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (const EngineKind kind : {EngineKind::kEvent, EngineKind::kSlot}) {
      HostileScheduler scheduler(seed * 977 + 3, strike);
      auto selector = make_selector(SelectorKind::kFifo);
      SimOptions options;
      options.num_procs = static_cast<ProcCount>(rng.uniform_int(2, 6));
      const SimResult result =
          run_simulation(kind, jobs, scheduler, *selector, options);
      const std::string label = std::string(engine_kind_name(kind)) +
                                " seed=" + std::to_string(seed);
      if (scheduler.struck()) {
        // The hostile decision happened: it must have been rejected with a
        // structured failure and finalized outcomes.
        EXPECT_EQ(result.failure, SimFailureKind::kBadAllocation) << label;
        EXPECT_FALSE(result.failure_message.empty()) << label;
        EXPECT_EQ(result.outcomes.size(), jobs.size()) << label;
      } else {
        // The run quiesced before the strike decision was reached; it must
        // have completed normally.
        EXPECT_EQ(result.failure, SimFailureKind::kNone) << label;
      }
    }
  }
}

TEST(AllocFuzz, CompletedJobAllocationRejected) {
  // Deterministic direct case for the "allocate to a completed job" class,
  // which the fuzz loop only hits probabilistically: run one tiny job to
  // completion, then keep allocating to it.
  class Necromancer final : public SchedulerBase {
   public:
    std::string name() const override { return "necromancer"; }
    void decide(const EngineContext& ctx, Assignment& out) override {
      // Job 0 completes after one unit of work; afterwards it leaves the
      // active list, but we keep allocating to it anyway.
      out.add(0, 1);
      (void)ctx;
    }
  };
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 50.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(5.0)), 0.0, 50.0, 1.0));
  jobs.finalize();
  for (const EngineKind kind : {EngineKind::kEvent, EngineKind::kSlot}) {
    Necromancer scheduler;
    auto selector = make_selector(SelectorKind::kFifo);
    SimOptions options;
    options.num_procs = 2;
    const SimResult result =
        run_simulation(kind, jobs, scheduler, *selector, options);
    EXPECT_EQ(result.failure, SimFailureKind::kBadAllocation)
        << engine_kind_name(kind);
    // Job 0 did complete before the rejection.
    EXPECT_TRUE(result.outcomes[0].completed) << engine_kind_name(kind);
  }
}

}  // namespace
}  // namespace dagsched
