// Decision event log: JSONL round-trips, cross-engine event-sequence
// equivalence, and an offline replay of the Section-3 admission condition
// (2) against the logged decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/deadline_scheduler.h"
#include "core/density_index.h"
#include "dag/generators.h"
#include "job/job.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "obs/trace_export.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(ObsEventKind, NamesRoundTrip) {
  const ObsEventKind kinds[] = {
      ObsEventKind::kArrival,  ObsEventKind::kAdmit, ObsEventKind::kDefer,
      ObsEventKind::kDrop,     ObsEventKind::kSchedule,
      ObsEventKind::kComplete, ObsEventKind::kExpire, ObsEventKind::kPreempt,
  };
  for (const ObsEventKind kind : kinds) {
    const auto parsed = obs_event_kind_from_name(obs_event_kind_name(kind));
    ASSERT_TRUE(parsed.has_value()) << obs_event_kind_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(obs_event_kind_from_name("bogus").has_value());
}

TEST(EventLog, JsonlRoundTripsExactly) {
  EventLog log;
  log.emit(0.0, 0, ObsEventKind::kArrival);
  log.emit(0.0, 0, ObsEventKind::kAdmit, "cond2-ok",
           {{"v", 1.5}, {"n", 2.0}, {"good", 1.0}});
  log.emit(3.25, 7, ObsEventKind::kDefer, "window-full", {{"v", 0.125}});
  log.emit(10.0, 7, ObsEventKind::kDrop, "stale");
  log.emit(12.0, 0, ObsEventKind::kComplete);

  std::stringstream stream;
  log.write_jsonl(stream);

  std::string error;
  const auto parsed = EventLog::parse_jsonl(stream, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ((*parsed)[i], log.events()[i]) << "event " << i;
  }
}

TEST(EventLog, ParseRejectsMalformedLines) {
  std::istringstream bad("{\"t\":0,\"job\":1,\"kind\":\"arrival\"}\nnot json\n");
  std::string error;
  EXPECT_FALSE(EventLog::parse_jsonl(bad, &error).has_value());
  // The error must locate the offending line for the user.
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::istringstream unknown_kind(
      "{\"t\":0,\"job\":1,\"kind\":\"arrival\"}\n"
      "{\"t\":1,\"job\":1,\"kind\":\"teleport\"}\n");
  error.clear();
  EXPECT_FALSE(EventLog::parse_jsonl(unknown_kind, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("teleport"), std::string::npos) << error;
}

TEST(EventLog, FaultEventKindsRoundTripExactly) {
  // PR-2's fault kinds must survive serialization bit-for-bit: the trace
  // exporter and `trace diff` both consume re-parsed logs.
  EventLog log;
  log.emit(1.0, kInvalidJob, ObsEventKind::kProcDown, "fault",
           {{"proc", 3.0}});
  log.emit(2.0, kInvalidJob, ObsEventKind::kProcUp, "recovered",
           {{"proc", 3.0}});
  log.emit(2.0, 4, ObsEventKind::kNodeRestart, "proc-lost",
           {{"node", 9.0}, {"lost", 0.75}});
  log.emit(3.5, 4, ObsEventKind::kWorkOverrun, "declared-exceeded",
           {{"node", 9.0}, {"factor", 1.5}});
  log.emit(4.0, 5, ObsEventKind::kReadmitFail, "capacity-shrunk",
           {{"v", 2.25}});
  log.emit(9.0, kInvalidJob, ObsEventKind::kEngineAbort, "livelock-guard");

  std::stringstream stream;
  log.write_jsonl(stream);
  std::string error;
  const auto parsed = EventLog::parse_jsonl(stream, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ((*parsed)[i], log.events()[i]) << "event " << i;
  }
}

TEST(EventLog, DetailValueLookup) {
  DecisionEvent event;
  event.detail = {{"v", 2.0}, {"n", 3.0}};
  EXPECT_DOUBLE_EQ(event.detail_value("v"), 2.0);
  EXPECT_DOUBLE_EQ(event.detail_value("missing", -1.0), -1.0);
}

// ---------------------------------------------------------------------------
// Engine-integrated logging
// ---------------------------------------------------------------------------

JobSet integer_workload(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  JobSet jobs;
  for (std::size_t i = 0; i < count; ++i) {
    RandomDagParams params;
    params.nodes = static_cast<std::size_t>(rng.uniform_int(4, 16));
    params.edge_prob = 0.15;
    params.work = WorkDist::constant(1.0);
    Dag dag = make_random_dag(rng, params);
    const double release = static_cast<double>(rng.uniform_int(0, 40));
    const double greedy = (dag.total_work() - dag.span()) / 4.0 + dag.span();
    const double deadline = std::ceil(greedy * rng.uniform(1.2, 2.5)) + 2.0;
    jobs.add(Job::with_deadline(std::make_shared<const Dag>(std::move(dag)),
                                release, deadline,
                                std::floor(rng.uniform(1.0, 10.0))));
  }
  jobs.finalize();
  return jobs;
}

class ObsCrossEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObsCrossEngine, EnginesEmitSameDecisionSequence) {
  const JobSet jobs = integer_workload(GetParam(), 14);

  EventLog ev_log;
  ObsSink ev_sink;
  ev_sink.events = &ev_log;
  DeadlineScheduler s1({.params = Params::from_epsilon(0.5)});
  auto sel1 = make_selector(SelectorKind::kFifo);
  EngineOptions ev_options;
  ev_options.num_procs = 4;
  ev_options.obs = &ev_sink;
  EventEngine event_engine(jobs, s1, *sel1, ev_options);
  (void)event_engine.run();

  EventLog slot_log;
  ObsSink slot_sink;
  slot_sink.events = &slot_log;
  DeadlineScheduler s2({.params = Params::from_epsilon(0.5)});
  auto sel2 = make_selector(SelectorKind::kFifo);
  SlotEngineOptions slot_options;
  slot_options.num_procs = 4;
  slot_options.obs = &slot_sink;
  SlotEngine slot_engine(jobs, s2, *sel2, slot_options);
  (void)slot_engine.run();

  // The engines must agree on every policy decision they both make.  The
  // event engine additionally drains deadline-expiry events after the last
  // unit of work (the slot engine stops stepping once nothing is runnable),
  // so a trailing run of end-of-run drops is forgiven -- diff_event_logs's
  // decisions_only mode encodes exactly this comparison.
  EventLogDiffOptions options;
  options.decisions_only = true;
  const EventLogDiff diff =
      diff_event_logs(ev_log.events(), slot_log.events(), options);
  EXPECT_TRUE(diff.identical())
      << format_event_log_diff(diff, "event-engine", "slot-engine");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsCrossEngine,
                         ::testing::Values(1u, 7u, 23u, 91u));

TEST(ObsReplay, AdmitDeferEventsSatisfyCondition2) {
  // Replay the paper scheduler's density-threshold admission condition
  // against the logged decisions: maintain an independent
  // DensityWindowIndex from the event stream alone and check that every
  // "cond2-ok" admit was indeed admissible and every "window-full" defer
  // indeed was not.
  const JobSet jobs = integer_workload(0xabcdu, 40);
  const ProcCount m = 2;  // tight machine so the window actually fills

  EventLog log;
  ObsSink sink;
  sink.events = &log;
  const Params params = Params::from_epsilon(0.5);
  DeadlineScheduler scheduler({.params = params});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  options.obs = &sink;
  EventEngine engine(jobs, scheduler, *selector, options);
  (void)engine.run();

  const double cap = params.b * static_cast<double>(m);
  DensityWindowIndex index;
  std::size_t checked = 0;
  std::size_t deferred_full = 0;
  for (const DecisionEvent& event : log.events()) {
    const Density v = event.detail_value("v");
    const auto n = static_cast<ProcCount>(event.detail_value("n"));
    switch (event.kind) {
      case ObsEventKind::kAdmit:
        ASSERT_TRUE(index.admits(v, n, params.c, cap))
            << "logged admit of job " << event.job << " at t=" << event.time
            << " violates condition (2)";
        index.insert(event.job, v, n);
        ++checked;
        break;
      case ObsEventKind::kDefer:
        if (event.reason == "window-full") {
          EXPECT_FALSE(index.admits(v, n, params.c, cap))
              << "job " << event.job << " deferred at t=" << event.time
              << " though condition (2) held";
          ++deferred_full;
        }
        break;
      case ObsEventKind::kComplete:
      case ObsEventKind::kExpire:
        index.erase(event.job);
        break;
      default:
        break;
    }
  }
  EXPECT_GT(checked, 0u) << "workload admitted nothing; test is vacuous";
  EXPECT_GT(deferred_full, 0u)
      << "workload never filled the window; tighten it to exercise (2)";
}

}  // namespace
}  // namespace dagsched
