// Node-selection policies: order semantics and the adversarial/critical-path
// behaviours the Theorem-1 experiment relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dag/generators.h"
#include "dag/unfolding.h"
#include "sim/node_selector.h"

namespace dagsched {
namespace {

TEST(Selector, FifoTakesReadyPrefix) {
  const Dag dag = make_parallel_block(6, 1.0);
  UnfoldingState state(dag);
  auto selector = make_selector(SelectorKind::kFifo);
  std::vector<NodeId> out;
  selector->select(dag, state, 3, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), state.ready().begin()));
}

TEST(Selector, CapsAtReadyCount) {
  const Dag dag = make_parallel_block(2, 1.0);
  UnfoldingState state(dag);
  auto selector = make_selector(SelectorKind::kFifo);
  std::vector<NodeId> out;
  selector->select(dag, state, 10, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Selector, AdversarialPrefersBlockOverChain) {
  // Fig-1 DAG: chain node (id 0) has huge bottom level; block nodes small.
  const Dag dag = make_fig1_dag(4, 5, 1.0);
  UnfoldingState state(dag);
  auto selector = make_selector(SelectorKind::kAdversarial);
  std::vector<NodeId> out;
  selector->select(dag, state, 4, out);
  ASSERT_EQ(out.size(), 4u);
  // The chain head (bottom level 5) must NOT be selected while 15 block
  // nodes (bottom level 1) are ready.
  for (NodeId node : out) {
    EXPECT_DOUBLE_EQ(dag.bottom_level(node), 1.0);
  }
}

TEST(Selector, CriticalPathPrefersChain) {
  const Dag dag = make_fig1_dag(4, 5, 1.0);
  UnfoldingState state(dag);
  auto selector = make_selector(SelectorKind::kCriticalPath);
  std::vector<NodeId> out;
  selector->select(dag, state, 4, out);
  ASSERT_EQ(out.size(), 4u);
  // The chain head must be the first pick.
  EXPECT_DOUBLE_EQ(dag.bottom_level(out[0]), 5.0);
}

TEST(Selector, RandomIsDeterministicPerSeedAndDistinct) {
  const Dag dag = make_parallel_block(20, 1.0);
  UnfoldingState state(dag);
  auto s1 = make_selector(SelectorKind::kRandom, 42);
  auto s2 = make_selector(SelectorKind::kRandom, 42);
  std::vector<NodeId> out1, out2;
  s1->select(dag, state, 8, out1);
  s2->select(dag, state, 8, out2);
  EXPECT_EQ(out1, out2);
  const std::set<NodeId> unique(out1.begin(), out1.end());
  EXPECT_EQ(unique.size(), out1.size());
}

TEST(Selector, LifoTakesNewestReady) {
  const Dag dag = make_parallel_block(5, 1.0);
  UnfoldingState state(dag);
  auto selector = make_selector(SelectorKind::kLifo);
  std::vector<NodeId> out;
  selector->select(dag, state, 2, out);
  ASSERT_EQ(out.size(), 2u);
  const auto ready = state.ready();
  EXPECT_EQ(out[0], ready[ready.size() - 1]);
  EXPECT_EQ(out[1], ready[ready.size() - 2]);
}

TEST(Selector, KindNames) {
  EXPECT_STREQ(selector_kind_name(SelectorKind::kFifo), "fifo");
  EXPECT_STREQ(selector_kind_name(SelectorKind::kAdversarial), "adversarial");
  EXPECT_EQ(make_selector(SelectorKind::kCriticalPath)->name(),
            "critical-path");
}

// Property: every selector returns min(k, ready) distinct ready nodes.
class SelectorContract
    : public ::testing::TestWithParam<std::tuple<SelectorKind, std::size_t>> {};

TEST_P(SelectorContract, ReturnsDistinctReadyNodes) {
  const auto [kind, k] = GetParam();
  Rng rng(9);
  RandomDagParams params;
  params.nodes = 30;
  params.edge_prob = 0.08;
  const Dag dag = make_random_dag(rng, params);
  UnfoldingState state(dag);
  auto selector = make_selector(kind, 7);
  std::vector<NodeId> out;
  // Drive execution to exercise evolving ready sets.
  while (!state.complete()) {
    selector->select(dag, state, k, out);
    EXPECT_EQ(out.size(), std::min(k, state.ready_count()));
    std::set<NodeId> unique;
    for (NodeId node : out) {
      EXPECT_TRUE(state.is_ready(node));
      EXPECT_TRUE(unique.insert(node).second) << "duplicate node " << node;
    }
    ASSERT_FALSE(out.empty());
    for (NodeId node : out) state.advance(node, state.remaining_work(node));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SelectorContract,
    ::testing::Combine(::testing::Values(SelectorKind::kFifo,
                                         SelectorKind::kLifo,
                                         SelectorKind::kRandom,
                                         SelectorKind::kAdversarial,
                                         SelectorKind::kCriticalPath),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{64})));

}  // namespace
}  // namespace dagsched
