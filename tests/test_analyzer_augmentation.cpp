// Instance analyzer and minimal-speed bisection.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "dag/generators.h"
#include "exp/augmentation.h"
#include "workload/analyzer.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

TEST(Analyzer, EmptyInstance) {
  const InstanceProfile profile = analyze_instance(JobSet{}, 4);
  EXPECT_EQ(profile.jobs, 0u);
}

TEST(Analyzer, HandComputedProfile) {
  JobSet jobs;
  // Chain: W = L = 4, D = 8, p = 2 -> slack = 8/4 = 2; parallelism 1.
  jobs.add(Job::with_deadline(share(make_chain(4, 1.0)), 0.0, 8.0, 2.0));
  // Block: W = 8, L = 1, D = 3, p = 4 -> m=4 greedy = 7/4+1 = 2.75;
  // slack = 3/2.75; parallelism 8.
  jobs.add(Job::with_deadline(share(make_parallel_block(8, 1.0)), 2.0, 3.0,
                              4.0));
  jobs.finalize();
  const InstanceProfile profile = analyze_instance(jobs, 4);
  EXPECT_EQ(profile.jobs, 2u);
  EXPECT_DOUBLE_EQ(profile.parallelism.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.parallelism.quantile(1.0), 8.0);
  EXPECT_NEAR(profile.slack.quantile(1.0), 2.0, 1e-12);
  EXPECT_NEAR(profile.slack.quantile(0.0), 3.0 / 2.75, 1e-12);
  // Densities: 0.5 both -> spread 1.
  EXPECT_DOUBLE_EQ(profile.density_spread, 1.0);
  EXPECT_DOUBLE_EQ(profile.sequential_fraction, 0.5);
  EXPECT_DOUBLE_EQ(profile.feasible_fraction, 1.0);
  // Load: work 12 over window [0, 8] on 4 procs = 12/32.
  EXPECT_NEAR(profile.offered_load, 12.0 / 32.0, 1e-12);

  std::ostringstream oss;
  print_profile(oss, profile);
  EXPECT_NE(oss.str().find("jobs:"), std::string::npos);
  EXPECT_NE(oss.str().find("density spread"), std::string::npos);
}

TEST(Analyzer, DetectsThm2SlackViolations) {
  Rng rng(4);
  WorkloadConfig config = scenario_tight(0.5, 8);
  config.horizon = 60.0;
  const JobSet jobs = generate_workload(rng, config);
  const InstanceProfile profile = analyze_instance(jobs, 8);
  // Tight deadlines: slack near max(L, W/m)/greedy < 1+eps for parallel
  // jobs; at minimum it must be < 1.5.
  EXPECT_LT(profile.slack.quantile(0.0), 1.5);
}

TEST(Augmentation, FindsThresholdOnFig1) {
  // Fig-1 instance with deadline L: the adversarial threshold is 2 - 1/m,
  // but with the FIFO selector on a fig1 DAG (block nodes first in ready
  // order) completion also takes (W-L)/m + L, so the bisection should find
  // ~2 - 1/m as well.
  const ProcCount m = 4;
  auto dag = share(make_fig1_dag(m, 8, 1.0));
  JobSet jobs;
  jobs.add(Job::with_deadline(dag, 0.0, dag->span() * (1 + 1e-9), 1.0));
  jobs.finalize();

  AugmentationQuery query;
  query.target_fraction = 1.0;
  query.speed_lo = 1.0;
  query.speed_hi = 3.0;
  query.tolerance = 0.005;
  query.run.m = m;
  query.run.selector = SelectorKind::kAdversarial;
  const AugmentationResult result = find_min_speed(
      jobs, [] { return make_named_scheduler("fcfs"); }, query);
  EXPECT_NEAR(result.min_speed, 2.0 - 1.0 / m, 0.01);
  EXPECT_DOUBLE_EQ(result.achieved, 1.0);
  EXPECT_GT(result.evaluations, 5u);
}

TEST(Augmentation, ReportsUnreachableTarget) {
  // Impossible deadline: no speed below hi can reach it.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(100, 1.0)), 0.0, 5.0, 1.0));
  jobs.finalize();
  AugmentationQuery query;
  query.target_fraction = 1.0;
  query.speed_hi = 2.0;
  query.run.m = 4;
  const AugmentationResult result = find_min_speed(
      jobs, [] { return make_named_scheduler("edf"); }, query);
  EXPECT_GT(result.min_speed, 2.5);
  EXPECT_LT(result.achieved, 1.0);
}

TEST(Augmentation, NoAugmentationNeededForEasyInstance) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 10.0, 1.0));
  jobs.finalize();
  AugmentationQuery query;
  query.target_fraction = 1.0;
  query.run.m = 1;
  const AugmentationResult result = find_min_speed(
      jobs, [] { return make_named_scheduler("edf"); }, query);
  EXPECT_DOUBLE_EQ(result.min_speed, 1.0);
}

}  // namespace
}  // namespace dagsched
