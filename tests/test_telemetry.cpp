// Runtime-telemetry layer: log-bucketed latency-histogram accuracy against
// exact sorted samples, merge algebra, overflow behavior, the
// dagsched.telemetry/1 JSONL round-trip, the off==seed decision-log parity
// contract, and the memory-accounting gauges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "obs/event_log.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/telemetry/latency_histogram.h"
#include "obs/telemetry/telemetry.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "util/rng.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

JobSet telemetry_jobs(std::size_t horizon = 120, double load = 1.2) {
  Rng rng(99);
  WorkloadConfig config = scenario_thm2(0.5, load, 8);
  config.horizon = static_cast<double>(horizon);
  return generate_workload(rng, config);
}

/// Exact nearest-rank percentile of a sorted sample vector -- the ground
/// truth the histogram approximates.
std::uint64_t exact_percentile(const std::vector<std::uint64_t>& sorted,
                               double q) {
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[rank - 1];
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below kSubCount get unit-width buckets: percentiles are exact.
  LatencyHistogram hist;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubCount; ++v) {
    hist.record(v);
  }
  EXPECT_EQ(hist.percentile_ns(0.5), (LatencyHistogram::kSubCount - 1) / 2);
  EXPECT_EQ(hist.percentile_ns(1.0), LatencyHistogram::kSubCount - 1);
  EXPECT_EQ(hist.min_ns(), 0u);
  EXPECT_EQ(hist.max_ns(), LatencyHistogram::kSubCount - 1);
}

TEST(LatencyHistogram, PercentilesBoundedByRelativeError) {
  // Against an exact sorted sample, every reported percentile must sit in
  // [exact, exact * (1 + 2^-kSubBits) + 1): never under-reporting, and
  // over-reporting by at most one bucket width.
  Rng rng(7);
  LatencyHistogram hist;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~7 decades, the shape of real latency tails.
    const double log_ns = rng.uniform(0.0, 16.0);
    const auto v = static_cast<std::uint64_t>(std::exp(log_ns));
    samples.push_back(v);
    hist.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t exact = exact_percentile(samples, q);
    const std::uint64_t approx = hist.percentile_ns(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    const double bound =
        static_cast<double>(exact) *
            (1.0 + 1.0 / static_cast<double>(LatencyHistogram::kSubCount)) +
        1.0;
    EXPECT_LE(static_cast<double>(approx), bound) << "q=" << q;
  }
  EXPECT_EQ(hist.count(), samples.size());
  EXPECT_EQ(hist.max_ns(), samples.back());
}

TEST(LatencyHistogram, MergeIsAssociativeAndMatchesUnion) {
  Rng rng(21);
  LatencyHistogram a, b, c, whole;
  for (int i = 0; i < 3000; ++i) {
    const auto v = static_cast<std::uint64_t>(
        std::exp(rng.uniform(0.0, 14.0)));
    whole.record(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
  }
  LatencyHistogram left_first = a;   // (a + b) + c
  left_first.merge(b);
  left_first.merge(c);
  LatencyHistogram right_first = b;  // a + (b + c)
  right_first.merge(c);
  LatencyHistogram a_copy = a;
  a_copy.merge(right_first);

  for (const LatencyHistogram* merged : {&left_first, &a_copy}) {
    EXPECT_EQ(merged->count(), whole.count());
    EXPECT_EQ(merged->min_ns(), whole.min_ns());
    EXPECT_EQ(merged->max_ns(), whole.max_ns());
    EXPECT_DOUBLE_EQ(merged->sum_ns(), whole.sum_ns());
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      ASSERT_EQ(merged->buckets()[i], whole.buckets()[i]) << "bucket " << i;
    }
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(merged->percentile_ns(q), whole.percentile_ns(q)) << q;
    }
  }
}

TEST(LatencyHistogram, OverflowBucketCatchesHugeValues) {
  LatencyHistogram hist;
  hist.record(10);
  hist.record(LatencyHistogram::kMaxTrackedNs);      // first overflow value
  hist.record(LatencyHistogram::kMaxTrackedNs * 4);  // far past the range
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.overflow_count(), 2u);
  EXPECT_EQ(hist.max_ns(), LatencyHistogram::kMaxTrackedNs * 4);
  // Percentiles whose rank lands in the overflow bucket report max.
  EXPECT_EQ(hist.percentile_ns(1.0), LatencyHistogram::kMaxTrackedNs * 4);
  // The tracked sub-range still answers exactly.
  EXPECT_EQ(hist.percentile_ns(0.1), 10u);
}

TEST(LatencyHistogram, BucketEdgesRoundTrip) {
  // Every value must land in a bucket whose [lower, next-lower) range
  // contains it -- the invariant percentile accuracy rests on.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
        std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{1023},
        std::uint64_t{1024}, std::uint64_t{123456789},
        LatencyHistogram::kMaxTrackedNs - 1}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    ASSERT_LT(i, LatencyHistogram::kNumBuckets) << v;
    EXPECT_GE(v, LatencyHistogram::bucket_lower_bound(i)) << v;
    const std::uint64_t next = i + 1 < LatencyHistogram::kNumBuckets
                                   ? LatencyHistogram::bucket_lower_bound(i + 1)
                                   : LatencyHistogram::kMaxTrackedNs;
    EXPECT_LT(v, next) << v;
  }
}

// ---------------------------------------------------------------------------
// TelemetryRecorder + JSONL
// ---------------------------------------------------------------------------

TEST(TelemetryRecorder, JsonlRoundTripsThroughParser) {
  std::ostringstream out;
  TelemetryOptions options;
  options.out = &out;
  options.sim_interval = 10.0;
  options.include_rss = false;
  TelemetryRecorder recorder(options);
  recorder.begin_run(0.0);
  const auto t0 = TelemetryRecorder::Clock::now();
  recorder.record_decide_since(t0);
  recorder.record_admission_since(t0);

  TelemetrySample sample;
  sample.sim_time = 10.0;
  sample.decisions = 5;
  sample.arrivals = 2;
  sample.jobs_in_flight = 2;
  sample.kernel_bytes = 100;
  sample.unfolding_bytes = 200;
  sample.scheduler_bytes = 50;
  ASSERT_TRUE(recorder.snapshot_due(sample.sim_time));
  recorder.emit_snapshot(sample);
  EXPECT_FALSE(recorder.snapshot_due(11.0));  // deadline advanced past now

  sample.sim_time = 25.0;
  sample.decisions = 9;
  recorder.finish_run(sample);
  EXPECT_EQ(recorder.snapshots_emitted(), 2u);

  std::istringstream in(out.str());
  std::string error;
  const auto snapshots = parse_telemetry_jsonl(in, &error);
  ASSERT_TRUE(snapshots.has_value()) << error;
  ASSERT_EQ(snapshots->size(), 2u);

  const JsonValue& first = (*snapshots)[0];
  EXPECT_EQ(first.find("schema")->as_string(), kTelemetrySchema);
  EXPECT_DOUBLE_EQ(first.find("seq")->as_number(), 0.0);
  EXPECT_FALSE(first.find("final")->as_bool());
  EXPECT_DOUBLE_EQ(first.find("sim_time")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(first.find("counters")->find("decisions")->as_number(),
                   5.0);
  const JsonValue* gauges = first.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("tracked_bytes")->as_number(), 350.0);
  EXPECT_DOUBLE_EQ(gauges->find("bytes_per_job")->as_number(), 350.0 / 2.0);
  EXPECT_DOUBLE_EQ(gauges->find("rss_bytes")->as_number(), 0.0);
  ASSERT_NE(first.find("decide_ns"), nullptr);
  EXPECT_DOUBLE_EQ(first.find("decide_ns")->find("count")->as_number(), 1.0);

  const JsonValue& last = (*snapshots)[1];
  EXPECT_TRUE(last.find("final")->as_bool());
  EXPECT_DOUBLE_EQ(last.find("seq")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(last.find("counters")->find("decisions")->as_number(),
                   9.0);
}

TEST(TelemetryParser, RejectsMalformedAndWrongSchemaLines) {
  std::istringstream bad("{\"schema\":\"dagsched.telemetry/1\"}\nnot json\n");
  std::string error;
  EXPECT_FALSE(parse_telemetry_jsonl(bad, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::istringstream wrong("{\"schema\":\"dagsched.run_report/1\"}\n");
  error.clear();
  EXPECT_FALSE(parse_telemetry_jsonl(wrong, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

/// Runs the workload on the given engine, returning the serialized decision
/// log; optionally with a telemetry recorder attached.
std::string run_and_log(const JobSet& jobs, bool slot,
                        TelemetryRecorder* telemetry) {
  EventLog log;
  ObsSink sink;
  sink.events = &log;
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto sel = make_selector(SelectorKind::kFifo);
  SimResult result;
  if (slot) {
    SlotEngineOptions options;
    options.num_procs = 8;
    options.obs = &sink;
    options.telemetry = telemetry;
    SlotEngine engine(jobs, scheduler, *sel, options);
    result = engine.run();
  } else {
    EngineOptions options;
    options.num_procs = 8;
    options.obs = &sink;
    options.telemetry = telemetry;
    result = simulate(jobs, scheduler, *sel, options);
  }
  EXPECT_FALSE(result.failed());
  std::ostringstream out;
  log.write_jsonl(out);
  return out.str();
}

TEST(TelemetryIntegration, DecisionLogsAreByteIdenticalWithTelemetry) {
  // The contract the CLI parity script checks across all scheduler/engine
  // combos, asserted in-process here for both engines: attaching a recorder
  // must not change a single decision byte.
  const JobSet jobs = telemetry_jobs();
  for (const bool slot : {false, true}) {
    const std::string plain = run_and_log(jobs, slot, nullptr);
    TelemetryRecorder recorder;  // histogram-only, no sink
    const std::string with_telemetry = run_and_log(jobs, slot, &recorder);
    EXPECT_EQ(plain, with_telemetry) << (slot ? "slot" : "event");
    EXPECT_GT(recorder.decide_histogram().count(), 0u);
  }
}

TEST(TelemetryIntegration, KernelFillsHistogramsAndGauges) {
  const JobSet jobs = telemetry_jobs();
  std::ostringstream out;
  TelemetryOptions options;
  options.out = &out;
  options.sim_interval = 30.0;
  options.include_rss = false;
  TelemetryRecorder recorder(options);

  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions engine_options;
  engine_options.num_procs = 8;
  engine_options.telemetry = &recorder;
  const SimResult result = simulate(jobs, scheduler, *sel, engine_options);
  ASSERT_FALSE(result.failed());

  // Every decision and every arrival was timed.
  EXPECT_EQ(recorder.decide_histogram().count(), result.decisions);
  EXPECT_EQ(recorder.admission_histogram().count(), jobs.size());

  // The final sample carries the memory accounting: all three subsystems
  // report non-zero allocated bytes on a non-trivial run.
  ASSERT_TRUE(recorder.has_sample());
  const TelemetrySample& sample = recorder.last_sample();
  EXPECT_TRUE(sample.final_snapshot);
  EXPECT_EQ(sample.decisions, result.decisions);
  EXPECT_EQ(sample.arrivals, jobs.size());
  EXPECT_EQ(sample.completions, result.jobs_completed);
  EXPECT_GT(sample.kernel_bytes, 0u);
  EXPECT_GT(sample.unfolding_bytes, 0u);
  EXPECT_GT(sample.scheduler_bytes, 0u);

  // Periodic + final snapshots landed in the stream and parse back.
  EXPECT_GE(recorder.snapshots_emitted(), 2u);
  std::istringstream in(out.str());
  std::string error;
  const auto snapshots = parse_telemetry_jsonl(in, &error);
  ASSERT_TRUE(snapshots.has_value()) << error;
  EXPECT_EQ(snapshots->size(), recorder.snapshots_emitted());
  EXPECT_TRUE(snapshots->back().find("final")->as_bool());
  EXPECT_GT(snapshots->back().find("gauges")->find("bytes_per_job")
                ->as_number(),
            0.0);
}

TEST(TelemetryIntegration, RunReportGainsTelemetrySectionOnlyWhenAttached) {
  const JobSet jobs = telemetry_jobs(60);
  TelemetryRecorder recorder;
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions engine_options;
  engine_options.num_procs = 8;
  engine_options.telemetry = &recorder;
  const SimResult result = simulate(jobs, scheduler, *sel, engine_options);
  ASSERT_FALSE(result.failed());

  RunReportInputs inputs;
  inputs.scheduler = "s";
  inputs.engine = "event";
  inputs.m = 8;
  inputs.jobs = &jobs;
  inputs.result = &result;
  const JsonValue without = build_run_report(inputs);
  EXPECT_EQ(without.find("telemetry"), nullptr);

  inputs.telemetry = &recorder;
  const JsonValue with = build_run_report(inputs);
  const JsonValue* section = with.find("telemetry");
  ASSERT_NE(section, nullptr);
  EXPECT_GT(section->find("decide_ns")->find("count")->as_number(), 0.0);
  ASSERT_NE(section->find("gauges"), nullptr);
  EXPECT_GT(section->find("gauges")->find("tracked_bytes")->as_number(), 0.0);
  // The renderer shows the section.
  EXPECT_NE(format_run_report(with).find("[telemetry]"), std::string::npos);
  EXPECT_EQ(format_run_report(without).find("[telemetry]"),
            std::string::npos);
}

}  // namespace
}  // namespace dagsched
