// Work-conserving extension of the Section-5 scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "core/profit_scheduler.h"
#include "dag/generators.h"
#include "sim/slot_engine.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

SimResult run(const JobSet& jobs, bool work_conserving, ProcCount m) {
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5),
                             .work_conserving = work_conserving});
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = m;
  SlotEngine engine(jobs, scheduler, *selector, options);
  return engine.run();
}

TEST(ProfitWorkConserving, RescuesJobThatLostItsSlots) {
  // Two identical jobs with exponential decay: the second is pinned to
  // later slots.  With work conservation it can also use idle capacity in
  // earlier slots (the machine has room: m=16, each n~13 -> one at a time
  // assigned, 3 procs idle... too few).  Use jobs with n ~ m/3 so two fit
  // physically but slot assignment staggers them.
  const ProcCount m = 16;
  auto dag = share(make_parallel_block(12, 1.0));  // n ~ 5
  const Time plateau = 8.0;
  JobSet jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.add(Job(dag, 0.0,
                 ProfitFn::plateau_exponential(5.0, plateau, 0.2)));
  }
  jobs.finalize();
  const SimResult plain = run(jobs, false, m);
  const SimResult wc = run(jobs, true, m);
  EXPECT_EQ(wc.jobs_completed, 3u);
  // Work conservation never completes later in aggregate.
  Time plain_total = 0.0, wc_total = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (plain.outcomes[i].completed) {
      plain_total += plain.outcomes[i].completion_time;
    }
    if (wc.outcomes[i].completed) wc_total += wc.outcomes[i].completion_time;
  }
  EXPECT_LE(wc_total, plain_total + 1e-9);
  EXPECT_GE(wc.total_profit, plain.total_profit - 1e-9);
}

TEST(ProfitWorkConserving, NeverWorseOnScenarioWorkloads) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    WorkloadConfig config =
        scenario_profit(0.5, 0.9, 8, ProfitPolicy::Shape::kPlateauExp);
    config.horizon = 80.0;
    const JobSet jobs = generate_workload(rng, config);
    const SimResult plain = run(jobs, false, 8);
    const SimResult wc = run(jobs, true, 8);
    // Not a theorem, but opportunistic extra work should not lose profit
    // beyond noise on these benign instances.
    EXPECT_GE(wc.total_profit, 0.95 * plain.total_profit) << seed;
    EXPECT_GE(wc.jobs_completed + 1, plain.jobs_completed) << seed;
  }
}

TEST(ProfitWorkConserving, NameReflectsOption) {
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5),
                             .work_conserving = true});
  EXPECT_NE(scheduler.name().find("work-conserving"), std::string::npos);
}

}  // namespace
}  // namespace dagsched
