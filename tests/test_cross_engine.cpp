// Cross-validation: on integer workloads (unit node works, integer releases
// and deadlines, speed 1) the EventEngine and SlotEngine must produce
// identical schedules for job-level schedulers -- the continuous engine is
// then an exact accelerated implementation of the paper's time-step model.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "job/job.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "obs/trace_export.h"
#include "sim/event_engine.h"
#include "sim/kernel/engine_factory.h"
#include "sim/slot_engine.h"
#include "util/rng.h"

namespace dagsched {
namespace {

JobSet integer_workload(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  JobSet jobs;
  for (std::size_t i = 0; i < count; ++i) {
    RandomDagParams params;
    params.nodes = static_cast<std::size_t>(rng.uniform_int(4, 16));
    params.edge_prob = 0.15;
    params.work = WorkDist::constant(1.0);
    Dag dag = make_random_dag(rng, params);
    const double release = static_cast<double>(rng.uniform_int(0, 40));
    // Integer deadline with comfortable slack.
    const double greedy =
        (dag.total_work() - dag.span()) / 4.0 + dag.span();
    const double deadline =
        std::ceil(greedy * rng.uniform(1.5, 3.0)) + 2.0;
    jobs.add(Job::with_deadline(std::make_shared<const Dag>(std::move(dag)),
                                release, deadline,
                                std::floor(rng.uniform(1.0, 10.0))));
  }
  jobs.finalize();
  return jobs;
}

class CrossEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngine, EdfSchedulesIdentically) {
  const JobSet jobs = integer_workload(GetParam(), 14);
  ListScheduler s1({ListPolicy::kEdf, false, true});
  ListScheduler s2({ListPolicy::kEdf, false, true});
  auto sel1 = make_selector(SelectorKind::kFifo);
  auto sel2 = make_selector(SelectorKind::kFifo);

  EngineOptions ev_options;
  ev_options.num_procs = 4;
  EventEngine event_engine(jobs, s1, *sel1, ev_options);
  const SimResult ev = event_engine.run();

  SlotEngineOptions slot_options;
  slot_options.num_procs = 4;
  SlotEngine slot_engine(jobs, s2, *sel2, slot_options);
  const SimResult slot = slot_engine.run();

  ASSERT_EQ(ev.outcomes.size(), slot.outcomes.size());
  for (std::size_t i = 0; i < ev.outcomes.size(); ++i) {
    EXPECT_EQ(ev.outcomes[i].completed, slot.outcomes[i].completed)
        << "job " << i;
    if (ev.outcomes[i].completed && slot.outcomes[i].completed) {
      EXPECT_NEAR(ev.outcomes[i].completion_time,
                  slot.outcomes[i].completion_time, 1e-6)
          << "job " << i;
    }
  }
  EXPECT_NEAR(ev.total_profit, slot.total_profit, 1e-6);
}

TEST_P(CrossEngine, PaperSchedulerSchedulesIdentically) {
  const JobSet jobs = integer_workload(GetParam() ^ 0x5555, 12);
  DeadlineScheduler s1({.params = Params::from_epsilon(0.5)});
  DeadlineScheduler s2({.params = Params::from_epsilon(0.5)});
  auto sel1 = make_selector(SelectorKind::kFifo);
  auto sel2 = make_selector(SelectorKind::kFifo);

  EngineOptions ev_options;
  ev_options.num_procs = 4;
  EventEngine event_engine(jobs, s1, *sel1, ev_options);
  const SimResult ev = event_engine.run();

  SlotEngineOptions slot_options;
  slot_options.num_procs = 4;
  SlotEngine slot_engine(jobs, s2, *sel2, slot_options);
  const SimResult slot = slot_engine.run();

  for (std::size_t i = 0; i < ev.outcomes.size(); ++i) {
    EXPECT_EQ(ev.outcomes[i].completed, slot.outcomes[i].completed)
        << "job " << i;
    if (ev.outcomes[i].completed && slot.outcomes[i].completed) {
      EXPECT_NEAR(ev.outcomes[i].completion_time,
                  slot.outcomes[i].completion_time, 1e-6)
          << "job " << i;
    }
  }
  EXPECT_NEAR(ev.total_profit, slot.total_profit, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngine,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Full parity matrix: every registered scheduler x every fault mode
// ---------------------------------------------------------------------------

enum class FaultMode { kNone, kChurnResume, kChurnZero };

const char* fault_mode_name(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone: return "none";
    case FaultMode::kChurnResume: return "churn-resume";
    case FaultMode::kChurnZero: return "churn-zero";
  }
  return "?";
}

std::optional<FaultInjector> matrix_injector(FaultMode mode, ProcCount m) {
  if (mode == FaultMode::kNone) return std::nullopt;
  FaultPlanConfig config;
  config.seed = 23;
  config.mtbf = 25.0;
  config.mttr = 4.0;
  config.horizon = 300.0;
  config.min_procs = 2;
  // Integral transition times keep churn slot-aligned, a precondition for
  // slot/event equivalence (mid-slot capacity changes have no slot-engine
  // representation).
  config.integral_times = true;
  config.restart = mode == FaultMode::kChurnZero
                       ? RestartPolicy::kRestartFromZero
                       : RestartPolicy::kResume;
  return FaultInjector(build_fault_plan(config, m));
}

SimResult run_matrix_cell(EngineKind kind, const JobSet& jobs,
                          const std::string& scheduler_name,
                          const FaultInjector* faults, EventLog* log) {
  auto scheduler = make_named_scheduler(scheduler_name, 0.5);
  auto selector = make_selector(SelectorKind::kFifo);
  ObsSink sink;
  sink.events = log;
  SimOptions options;
  options.num_procs = 4;
  options.obs = &sink;
  options.faults = faults;
  return run_simulation(kind, jobs, *scheduler, *selector, options);
}

TEST(CrossEngineMatrix, AllSchedulersAllFaultModesDecideIdentically) {
  // Every scheduler the registry knows (minus the slot-only "profit"), with
  // no faults, resume-churn, and restart-from-zero churn: both stepping
  // drivers over the shared kernel must emit the identical policy-decision
  // sequence (admit/defer/drop/schedule by kind, job, reason).
  const JobSet jobs = integer_workload(97, 12);
  for (const std::string& name : named_scheduler_list()) {
    if (name == "profit") continue;  // SlotEngine-only by contract
    for (const FaultMode mode :
         {FaultMode::kNone, FaultMode::kChurnResume, FaultMode::kChurnZero}) {
      const std::optional<FaultInjector> injector = matrix_injector(mode, 4);
      const FaultInjector* faults = injector ? &*injector : nullptr;
      EventLog ev_log;
      EventLog slot_log;
      const SimResult ev =
          run_matrix_cell(EngineKind::kEvent, jobs, name, faults, &ev_log);
      const SimResult slot =
          run_matrix_cell(EngineKind::kSlot, jobs, name, faults, &slot_log);
      const std::string label =
          name + " / " + fault_mode_name(mode);

      EventLogDiffOptions diff_options;
      diff_options.decisions_only = true;
      const EventLogDiff diff =
          diff_event_logs(ev_log.events(), slot_log.events(), diff_options);
      EXPECT_TRUE(diff.identical())
          << label << ": "
          << format_event_log_diff(diff, "event", "slot");

      ASSERT_EQ(ev.outcomes.size(), slot.outcomes.size()) << label;
      for (std::size_t i = 0; i < ev.outcomes.size(); ++i) {
        EXPECT_EQ(ev.outcomes[i].completed, slot.outcomes[i].completed)
            << label << " job " << i;
      }
      EXPECT_NEAR(ev.total_profit, slot.total_profit, 1e-6) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Pinned tie-break order at a decision point
// ---------------------------------------------------------------------------

TEST(CrossEngineMatrix, SimultaneousEventOrderIsPinned) {
  // At one decision point the kernel must deliver: completions of the
  // previous step, then fault transitions (recoveries before failures),
  // then arrivals (by release, then job id), then deadline expiries (by
  // deadline, then job id) -- on both engines.  This pins the tie-break
  // contract of sim/kernel/kernel.cpp's deliver_due_events().
  auto share = [](Dag dag) {
    return std::make_shared<const Dag>(std::move(dag));
  };
  JobSet jobs;
  // Jobs 0..2 arrive together at t=0; jobs 1 and 2 have deadlines that
  // expire simultaneously at t=2 (too tight to finish: work 4, span 4).
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 50.0, 1.0));
  jobs.add(Job::with_deadline(share(make_chain(4, 1.0)), 0.0, 2.0, 1.0));
  jobs.add(Job::with_deadline(share(make_chain(4, 1.0)), 0.0, 2.0, 1.0));
  // Job 3 arrives exactly at the expiry instant t=2.
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 2.0, 60.0, 1.0));
  jobs.finalize();

  for (const EngineKind kind : {EngineKind::kEvent, EngineKind::kSlot}) {
    EventLog log;
    run_matrix_cell(kind, jobs, "edf", nullptr, &log);
    // Project the log onto the kinds whose relative order we pin.
    std::vector<std::pair<ObsEventKind, JobId>> sequence;
    for (const DecisionEvent& event : log.events()) {
      if (event.kind == ObsEventKind::kArrival ||
          event.kind == ObsEventKind::kExpire) {
        sequence.emplace_back(event.kind, event.job);
      }
    }
    const std::vector<std::pair<ObsEventKind, JobId>> expected = {
        // t=0: simultaneous arrivals in job-id order.
        {ObsEventKind::kArrival, 0},
        {ObsEventKind::kArrival, 1},
        {ObsEventKind::kArrival, 2},
        // t=2: the arrival precedes the simultaneous expiries, which land
        // in job-id order.
        {ObsEventKind::kArrival, 3},
        {ObsEventKind::kExpire, 1},
        {ObsEventKind::kExpire, 2},
    };
    ASSERT_EQ(sequence.size(), expected.size()) << engine_kind_name(kind);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(sequence[i].first, expected[i].first)
          << engine_kind_name(kind) << " position " << i;
      EXPECT_EQ(sequence[i].second, expected[i].second)
          << engine_kind_name(kind) << " position " << i;
    }
  }
}

}  // namespace
}  // namespace dagsched
