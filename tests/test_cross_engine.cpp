// Cross-validation: on integer workloads (unit node works, integer releases
// and deadlines, speed 1) the EventEngine and SlotEngine must produce
// identical schedules for job-level schedulers -- the continuous engine is
// then an exact accelerated implementation of the paper's time-step model.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "util/rng.h"

namespace dagsched {
namespace {

JobSet integer_workload(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  JobSet jobs;
  for (std::size_t i = 0; i < count; ++i) {
    RandomDagParams params;
    params.nodes = static_cast<std::size_t>(rng.uniform_int(4, 16));
    params.edge_prob = 0.15;
    params.work = WorkDist::constant(1.0);
    Dag dag = make_random_dag(rng, params);
    const double release = static_cast<double>(rng.uniform_int(0, 40));
    // Integer deadline with comfortable slack.
    const double greedy =
        (dag.total_work() - dag.span()) / 4.0 + dag.span();
    const double deadline =
        std::ceil(greedy * rng.uniform(1.5, 3.0)) + 2.0;
    jobs.add(Job::with_deadline(std::make_shared<const Dag>(std::move(dag)),
                                release, deadline,
                                std::floor(rng.uniform(1.0, 10.0))));
  }
  jobs.finalize();
  return jobs;
}

class CrossEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngine, EdfSchedulesIdentically) {
  const JobSet jobs = integer_workload(GetParam(), 14);
  ListScheduler s1({ListPolicy::kEdf, false, true});
  ListScheduler s2({ListPolicy::kEdf, false, true});
  auto sel1 = make_selector(SelectorKind::kFifo);
  auto sel2 = make_selector(SelectorKind::kFifo);

  EngineOptions ev_options;
  ev_options.num_procs = 4;
  EventEngine event_engine(jobs, s1, *sel1, ev_options);
  const SimResult ev = event_engine.run();

  SlotEngineOptions slot_options;
  slot_options.num_procs = 4;
  SlotEngine slot_engine(jobs, s2, *sel2, slot_options);
  const SimResult slot = slot_engine.run();

  ASSERT_EQ(ev.outcomes.size(), slot.outcomes.size());
  for (std::size_t i = 0; i < ev.outcomes.size(); ++i) {
    EXPECT_EQ(ev.outcomes[i].completed, slot.outcomes[i].completed)
        << "job " << i;
    if (ev.outcomes[i].completed && slot.outcomes[i].completed) {
      EXPECT_NEAR(ev.outcomes[i].completion_time,
                  slot.outcomes[i].completion_time, 1e-6)
          << "job " << i;
    }
  }
  EXPECT_NEAR(ev.total_profit, slot.total_profit, 1e-6);
}

TEST_P(CrossEngine, PaperSchedulerSchedulesIdentically) {
  const JobSet jobs = integer_workload(GetParam() ^ 0x5555, 12);
  DeadlineScheduler s1({.params = Params::from_epsilon(0.5)});
  DeadlineScheduler s2({.params = Params::from_epsilon(0.5)});
  auto sel1 = make_selector(SelectorKind::kFifo);
  auto sel2 = make_selector(SelectorKind::kFifo);

  EngineOptions ev_options;
  ev_options.num_procs = 4;
  EventEngine event_engine(jobs, s1, *sel1, ev_options);
  const SimResult ev = event_engine.run();

  SlotEngineOptions slot_options;
  slot_options.num_procs = 4;
  SlotEngine slot_engine(jobs, s2, *sel2, slot_options);
  const SimResult slot = slot_engine.run();

  for (std::size_t i = 0; i < ev.outcomes.size(); ++i) {
    EXPECT_EQ(ev.outcomes[i].completed, slot.outcomes[i].completed)
        << "job " << i;
    if (ev.outcomes[i].completed && slot.outcomes[i].completed) {
      EXPECT_NEAR(ev.outcomes[i].completion_time,
                  slot.outcomes[i].completion_time, 1e-6)
          << "job " << i;
    }
  }
  EXPECT_NEAR(ev.total_profit, slot.total_profit, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngine,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dagsched
