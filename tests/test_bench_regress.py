#!/usr/bin/env python3
"""Gate semantics of scripts/bench_regress.py.

The perf gate must (a) treat measurement names present only in the current
report -- e.g. a freshly added bench_scale family -- as informational, never
a failure; (b) treat retired names the same way; (c) fail (exit 1) only when
a name present in BOTH reports slows past the threshold; (d) honor
--warn-only.  Runs under plain unittest (CI has no pytest).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "bench_regress.py"


def report(measurements: dict[str, float],
           counters: dict[str, dict[str, float]] | None = None) -> dict:
    counters = counters or {}
    return {
        "schema": "dagsched.bench_report/1",
        "bench": "engine_perf",
        "measurements": [
            {
                "name": name,
                "real_time_ns": ns,
                "cpu_time_ns": ns,
                "iterations": 1,
                "aggregate": "",
                "counters": counters.get(name, {}),
            }
            for name, ns in measurements.items()
        ],
    }


def run_gate(baseline: dict[str, float], current: dict[str, float],
             *extra: str,
             baseline_counters: dict[str, dict[str, float]] | None = None,
             current_counters: dict[str, dict[str, float]] | None = None,
             ) -> subprocess.CompletedProcess:
    with tempfile.TemporaryDirectory() as tmp:
        base_path = pathlib.Path(tmp) / "baseline.json"
        cur_path = pathlib.Path(tmp) / "current.json"
        base_path.write_text(json.dumps(report(baseline, baseline_counters)))
        cur_path.write_text(json.dumps(report(current, current_counters)))
        return subprocess.run(
            [sys.executable, str(SCRIPT), str(base_path), str(cur_path),
             "--threshold", "0.25", *extra],
            capture_output=True,
            text=True,
            check=False,
        )


class BenchRegressGate(unittest.TestCase):
    def test_new_measurement_names_are_informational(self):
        # A new scale benchmark joining the report must not fail the gate.
        result = run_gate(
            {"BM_EventEnginePaperS/50": 400000.0},
            {
                "BM_EventEnginePaperS/50": 410000.0,
                "BM_EventEnginePaperSScale/100000": 3.4e9,
                "BM_DensityQueueOps/100000": 104.0,
            },
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("(new)", result.stdout)

    def test_missing_measurement_names_are_informational(self):
        result = run_gate(
            {"BM_EventEnginePaperS/50": 400000.0, "BM_Retired/1": 100.0},
            {"BM_EventEnginePaperS/50": 400000.0},
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("(gone)", result.stdout)

    def test_regression_past_threshold_fails(self):
        result = run_gate(
            {"BM_EventEnginePaperSScale/10000": 1e9},
            {"BM_EventEnginePaperSScale/10000": 1.5e9},
        )
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_slowdown_within_threshold_passes(self):
        result = run_gate(
            {"BM_EventEnginePaperSScale/10000": 1e9},
            {"BM_EventEnginePaperSScale/10000": 1.2e9},
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_warn_only_never_fails(self):
        result = run_gate(
            {"BM_EventEnginePaperSScale/10000": 1e9},
            {"BM_EventEnginePaperSScale/10000": 2e9},
            "--warn-only",
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_latency_counter_regression_fails(self):
        # _ns counters (the telemetry benches' decide_p99_ns) gate exactly
        # like real_time_ns: shared names past the threshold fail.
        result = run_gate(
            {"BM_EventEnginePaperSTelemetry/50": 1e5},
            {"BM_EventEnginePaperSTelemetry/50": 1e5},
            baseline_counters={
                "BM_EventEnginePaperSTelemetry/50": {"decide_p99_ns": 100.0}
            },
            current_counters={
                "BM_EventEnginePaperSTelemetry/50": {"decide_p99_ns": 200.0}
            },
        )
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn(
            "BM_EventEnginePaperSTelemetry/50:decide_p99_ns", result.stdout
        )

    def test_counter_appearing_is_informational(self):
        # A counter present only in the current report is a "(new)" row.
        result = run_gate(
            {"BM_EventEnginePaperSTelemetry/50": 1e5},
            {"BM_EventEnginePaperSTelemetry/50": 1e5},
            current_counters={
                "BM_EventEnginePaperSTelemetry/50": {"decide_p99_ns": 200.0}
            },
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("(new)", result.stdout)

    def test_throughput_counters_are_not_gated(self):
        # items_per_second halving is not a latency regression; only _ns
        # counters are compared.
        result = run_gate(
            {"BM_EventEnginePaperS/50": 1e5},
            {"BM_EventEnginePaperS/50": 1e5},
            baseline_counters={
                "BM_EventEnginePaperS/50": {"items_per_second": 2e6}
            },
            current_counters={
                "BM_EventEnginePaperS/50": {"items_per_second": 1e6}
            },
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertNotIn("items_per_second", result.stdout)


if __name__ == "__main__":
    unittest.main()
