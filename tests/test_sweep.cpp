// Sweep executor + sweep report: the determinism contract (docs/SWEEP.md).
//
// The two load-bearing properties:
//   * histogram shard-and-merge is exact -- merging N per-worker
//     LatencyHistograms equals one recorder that saw every sample, for any
//     partition and any merge order;
//   * a sweep's per-cell results (event logs byte-for-byte, metrics,
//     histograms) are invariant to the worker-thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "exp/sweep/report_writer.h"
#include "exp/sweep/sweep.h"
#include "exp/sweep/work_pool.h"
#include "obs/sweep_report.h"
#include "obs/telemetry/latency_histogram.h"
#include "util/json.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

// Deterministic pseudo-random latencies spanning several octaves.
std::vector<std::uint64_t> sample_latencies(std::size_t count) {
  std::vector<std::uint64_t> samples;
  samples.reserve(count);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < count; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    samples.push_back(state % 5'000'000);  // up to 5 ms
  }
  return samples;
}

TEST(LatencyHistogramMerge, ShardedMergeEqualsSingleRecorder) {
  const std::vector<std::uint64_t> samples = sample_latencies(4096);
  LatencyHistogram single;
  for (const std::uint64_t ns : samples) single.record(ns);

  for (const std::size_t shards : {2u, 3u, 8u}) {
    std::vector<LatencyHistogram> workers(shards);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      workers[i % shards].record(samples[i]);
    }
    LatencyHistogram merged;
    for (const LatencyHistogram& worker : workers) merged.merge(worker);
    EXPECT_TRUE(merged == single) << shards << " shards";
  }
}

TEST(LatencyHistogramMerge, MergeIsAssociativeAndOrderIndependent) {
  const std::vector<std::uint64_t> samples = sample_latencies(900);
  LatencyHistogram a, b, c;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(samples[i]);
  }

  LatencyHistogram left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  LatencyHistogram bc = b;  // a + (b + c)
  bc.merge(c);
  LatencyHistogram right = a;
  right.merge(bc);
  LatencyHistogram reversed = c;  // c + b + a
  reversed.merge(b);
  reversed.merge(a);

  EXPECT_TRUE(left == right);
  EXPECT_TRUE(left == reversed);
}

TEST(LatencyHistogramMerge, EqualityDetectsDifferences) {
  LatencyHistogram a, b;
  a.record(100);
  b.record(100);
  EXPECT_TRUE(a == b);
  b.record(101);
  EXPECT_FALSE(a == b);
}

// --------------------------------------------------------------------------
// Sweep executor
// --------------------------------------------------------------------------

JobSet small_workload() {
  Rng rng(7);
  return generate_workload(rng, scenario_thm2(0.5, 0.9, 8));
}

/// The acceptance matrix: 4 schedulers x 3 fault modes x 2 engines.
std::vector<SweepCellSpec> acceptance_cells(const JobSet& jobs) {
  const char* kSchedulers[] = {"s", "s-wc", "fcfs", "edf"};
  const std::pair<const char*, const char*> kFaults[] = {
      {"none", ""},
      {"churn-resume",
       "mtbf=60,mttr=20,horizon=300,seed=5,min-procs=4,restart=resume"},
      {"churn-zero",
       "mtbf=45,mttr=15,horizon=300,seed=9,min-procs=4,restart=zero"},
  };
  const EngineKind kEngines[] = {EngineKind::kEvent, EngineKind::kSlot};

  std::vector<SweepCellSpec> cells;
  for (const char* scheduler : kSchedulers) {
    for (const auto& [fault_label, fault_spec] : kFaults) {
      for (const EngineKind engine : kEngines) {
        SweepCellSpec spec;
        spec.workload_label = "thm2";
        spec.jobs = &jobs;
        spec.scheduler = scheduler;
        spec.engine = engine;
        spec.m = 8;
        spec.fault_label = fault_label;
        spec.fault_spec = fault_spec;
        spec.id = std::string(scheduler) + "_" + engine_kind_name(engine) +
                  "_thm2_" + fault_label;
        cells.push_back(std::move(spec));
      }
    }
  }
  return cells;
}

TEST(Sweep, ResultsInvariantToThreadCount) {
  const JobSet jobs = small_workload();
  SweepOptions options;
  options.capture_events = true;

  options.threads = 1;
  const SweepResult serial = run_sweep(acceptance_cells(jobs), options);
  ASSERT_EQ(serial.results.size(), 24u);
  ASSERT_EQ(serial.failed_cells, 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    options.threads = threads;
    const SweepResult parallel = run_sweep(acceptance_cells(jobs), options);
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      const SweepCellResult& lhs = serial.results[i];
      const SweepCellResult& rhs = parallel.results[i];
      // Byte-identical decision logs: the headline determinism contract.
      EXPECT_EQ(lhs.events_jsonl, rhs.events_jsonl)
          << serial.cells[i].id << " with " << threads << " threads";
      EXPECT_FALSE(lhs.events_jsonl.empty()) << serial.cells[i].id;
      EXPECT_EQ(lhs.metrics.decisions, rhs.metrics.decisions);
      EXPECT_EQ(lhs.metrics.completed, rhs.metrics.completed);
      EXPECT_EQ(lhs.metrics.profit, rhs.metrics.profit);
      EXPECT_EQ(lhs.counters, rhs.counters);
      // Latency samples differ run to run (wall clock), but counts track
      // the decision sequence exactly.
      EXPECT_EQ(lhs.decide.count(), rhs.decide.count());
      EXPECT_EQ(lhs.transition.count(), rhs.transition.count());
    }
    EXPECT_EQ(parallel.counters, serial.counters);
  }
}

// --------------------------------------------------------------------------
// WorkStealingPool (exp/sweep/work_pool.h): the parking protocol.
// --------------------------------------------------------------------------

// The no-lost-wakeup property on the *last* cell: workers that have parked
// on the condition variable (the backlog was empty when they arrived) must
// be woken both by a late push and by close().  If a wakeup were lost --
// e.g. the producer published between a worker's emptiness check and its
// wait -- this test would hang rather than fail an assertion, so it runs
// the handoff many times to give a racy interleaving every chance to bite.
TEST(WorkStealingPool, LastCellHandoffLosesNoWakeups) {
  constexpr std::size_t kWorkers = 4;
  for (int round = 0; round < 200; ++round) {
    WorkStealingPool pool(kWorkers);
    std::atomic<std::size_t> claimed{0};
    std::atomic<std::size_t> returned{0};
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&pool, &claimed, &returned, w] {
        while (const auto cell = pool.next(w)) {
          claimed.fetch_add(1 + *cell);
        }
        returned.fetch_add(1);
      });
    }
    // One straggler cell pushed while (most) workers are already idle --
    // spinning or parked -- then close.  Exactly one worker must claim it
    // and all of them must return.
    pool.push(0);
    pool.close();
    for (std::thread& worker : workers) worker.join();
    ASSERT_EQ(claimed.load(), 1u) << "round " << round;
    ASSERT_EQ(returned.load(), kWorkers) << "round " << round;
  }
}

TEST(WorkStealingPool, DrainsEveryCellExactlyOnceAcrossWorkers) {
  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kCells = 257;
  WorkStealingPool pool(kWorkers);
  std::mutex seen_mutex;
  std::vector<std::size_t> seen;
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&pool, &seen_mutex, &seen, w] {
      while (const auto cell = pool.next(w)) {
        std::lock_guard lock(seen_mutex);
        seen.push_back(*cell);
      }
    });
  }
  for (std::size_t i = 0; i < kCells; ++i) pool.push(i);
  pool.close();
  for (std::thread& worker : workers) worker.join();
  ASSERT_EQ(seen.size(), kCells);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < kCells; ++i) EXPECT_EQ(seen[i], i);
}

TEST(WorkStealingPool, CloseOnEmptyPoolReleasesEveryWorker) {
  WorkStealingPool pool(2);
  std::vector<std::thread> workers;
  std::atomic<int> nullopts{0};
  for (std::size_t w = 0; w < 2; ++w) {
    workers.emplace_back([&pool, &nullopts, w] {
      if (!pool.next(w)) nullopts.fetch_add(1);
    });
  }
  pool.close();
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(nullopts.load(), 2);
}

TEST(Sweep, CellResultMatchesDirectRun) {
  const JobSet jobs = small_workload();
  SweepOptions options;
  options.capture_events = true;
  std::vector<SweepCellSpec> cells = acceptance_cells(jobs);
  const SweepCellSpec spec = cells[0];

  options.threads = 4;
  const SweepResult sweep = run_sweep(std::move(cells), options);
  const SweepCellResult direct = run_sweep_cell(spec, options);
  EXPECT_EQ(direct.events_jsonl, sweep.results[0].events_jsonl);
  EXPECT_EQ(direct.metrics.decisions, sweep.results[0].metrics.decisions);
  EXPECT_EQ(direct.metrics.profit, sweep.results[0].metrics.profit);
}

TEST(Sweep, MergedHistogramEqualsBucketwiseMergeOfCells) {
  const JobSet jobs = small_workload();
  SweepOptions options;
  options.threads = 4;
  const SweepResult sweep = run_sweep(acceptance_cells(jobs), options);

  LatencyHistogram decide, transition, admission;
  for (const SweepCellResult& result : sweep.results) {
    decide.merge(result.decide);
    transition.merge(result.transition);
    admission.merge(result.admission);
  }
  EXPECT_TRUE(sweep.decide == decide);
  EXPECT_TRUE(sweep.transition == transition);
  EXPECT_TRUE(sweep.admission == admission);
  EXPECT_GT(sweep.decide.count(), 0u);
}

TEST(Sweep, ConfigErrorIsolatedToItsCell) {
  const JobSet jobs = small_workload();
  std::vector<SweepCellSpec> cells = acceptance_cells(jobs);
  SweepCellSpec bad;
  bad.id = "bogus_cell";
  bad.workload_label = "thm2";
  bad.jobs = &jobs;
  bad.scheduler = "no-such-scheduler";
  cells.insert(cells.begin() + 3, bad);
  SweepCellSpec mismatched;
  mismatched.id = "profit_on_event";
  mismatched.workload_label = "thm2";
  mismatched.jobs = &jobs;
  mismatched.scheduler = "profit";
  mismatched.engine = EngineKind::kEvent;
  cells.push_back(mismatched);

  SweepOptions options;
  options.threads = 4;
  const SweepResult sweep = run_sweep(std::move(cells), options);
  EXPECT_EQ(sweep.failed_cells, 2u);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    if (sweep.cells[i].id == "bogus_cell" ||
        sweep.cells[i].id == "profit_on_event") {
      EXPECT_TRUE(sweep.results[i].config_failed()) << sweep.cells[i].id;
      EXPECT_FALSE(sweep.results[i].error.empty());
    } else {
      EXPECT_TRUE(sweep.results[i].ok()) << sweep.cells[i].id;
      ++ok;
    }
  }
  EXPECT_EQ(ok, 24u);
}

TEST(Sweep, TelemetryOffMatchesTelemetryOnEventLogs) {
  const JobSet jobs = small_workload();
  SweepOptions on;
  on.threads = 2;
  on.capture_events = true;
  SweepOptions off = on;
  off.telemetry = false;

  const SweepResult with = run_sweep(acceptance_cells(jobs), on);
  const SweepResult without = run_sweep(acceptance_cells(jobs), off);
  for (std::size_t i = 0; i < with.results.size(); ++i) {
    EXPECT_EQ(with.results[i].events_jsonl, without.results[i].events_jsonl)
        << with.cells[i].id;
  }
  EXPECT_EQ(without.decide.count(), 0u);
}

// --------------------------------------------------------------------------
// Report round-trip and diff
// --------------------------------------------------------------------------

SweepReportDoc report_roundtrip(const SweepResult& sweep) {
  std::ostringstream out;
  write_sweep_report(out, sweep);
  std::istringstream in(out.str());
  std::string error;
  const auto doc = parse_sweep_report(in, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.value_or(SweepReportDoc{});
}

TEST(SweepReport, RoundTripPreservesCellsAndSummary) {
  const JobSet jobs = small_workload();
  SweepOptions options;
  options.threads = 2;
  const SweepResult sweep = run_sweep(acceptance_cells(jobs), options);
  const SweepReportDoc doc = report_roundtrip(sweep);

  EXPECT_EQ(doc.header.at("schema").as_string(), kSweepReportSchema);
  ASSERT_EQ(doc.cells.size(), sweep.cells.size());
  for (std::size_t i = 0; i < doc.cells.size(); ++i) {
    EXPECT_EQ(doc.cells[i].at("id").as_string(), sweep.cells[i].id);
  }
  ASSERT_TRUE(doc.has_summary());
  EXPECT_EQ(doc.summary.at("rollups").at("config_errors").as_number(), 0.0);
  // The summary histogram is the exact merge of the per-cell histograms.
  const JsonValue& merged = doc.summary.at("decide_ns");
  EXPECT_EQ(merged.at("count").as_number(),
            static_cast<double>(sweep.decide.count()));
  EXPECT_EQ(merged.at("p99").as_number(),
            static_cast<double>(sweep.decide.percentile_ns(0.99)));
  EXPECT_FALSE(format_sweep_report(doc).empty());
}

TEST(SweepReport, ParserRejectsMalformedInput) {
  std::string error;
  std::istringstream empty("");
  EXPECT_FALSE(parse_sweep_report(empty, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  std::istringstream wrong_schema(
      "{\"schema\":\"dagsched.run_report/1\",\"kind\":\"header\"}\n");
  EXPECT_FALSE(parse_sweep_report(wrong_schema, &error).has_value());

  std::istringstream bad_json(
      "{\"schema\":\"dagsched.sweep/1\",\"kind\":\"header\"}\nnot json\n");
  EXPECT_FALSE(parse_sweep_report(bad_json, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

/// Builds a minimal sweep doc with one cell from literal JSON.
SweepReportDoc doc_with_cell(double wall_ms, double p99_ns, double decisions,
                             const std::string& id = "cell_a") {
  SweepReportDoc doc;
  doc.header = json_parse(
                   "{\"schema\":\"dagsched.sweep/1\",\"kind\":\"header\","
                   "\"cells\":1}")
                   .value;
  std::ostringstream cell;
  cell << "{\"kind\":\"cell\",\"id\":\"" << id << "\",\"ok\":true,"
       << "\"wall_ms\":" << wall_ms << ",\"metrics\":{\"decisions\":"
       << decisions << ",\"completed\":5,\"jobs\":10,\"profit\":1.5},"
       << "\"failure\":\"none\",\"decide_ns\":{\"count\":100,\"p99\":"
       << p99_ns << "}}";
  const JsonParseResult parsed = json_parse(cell.str());
  EXPECT_TRUE(parsed.ok) << parsed.error;
  doc.cells.push_back(parsed.value);
  return doc;
}

TEST(SweepDiff, ClassifiesRegressionsImprovementsAndSemanticChanges) {
  const SweepReportDoc base = doc_with_cell(10.0, 4000.0, 100.0);

  // Identical -> ok.
  EXPECT_FALSE(diff_sweep_reports(base, base).regressed());

  // Wall +50% past the default 25% threshold -> perf regression.
  const SweepDiff slower =
      diff_sweep_reports(base, doc_with_cell(15.0, 4000.0, 100.0));
  EXPECT_EQ(slower.regressions, 1u);
  EXPECT_TRUE(slower.regressed());

  // Wall -50% -> improvement, not a failure.
  const SweepDiff faster =
      diff_sweep_reports(base, doc_with_cell(5.0, 4000.0, 100.0));
  EXPECT_EQ(faster.improved, 1u);
  EXPECT_FALSE(faster.regressed());

  // Decisions differ -> semantic change even though timing is identical.
  const SweepDiff semantic =
      diff_sweep_reports(base, doc_with_cell(10.0, 4000.0, 101.0));
  EXPECT_EQ(semantic.semantic_changes, 1u);
  EXPECT_TRUE(semantic.regressed());

  // Sub-floor baselines never classify on timing alone.
  const SweepDiff noise = diff_sweep_reports(
      doc_with_cell(0.2, 100.0, 100.0), doc_with_cell(0.9, 400.0, 100.0));
  EXPECT_EQ(noise.regressions, 0u);
  EXPECT_FALSE(noise.regressed());
}

TEST(SweepDiff, NewAndGoneCellsAreInformational) {
  SweepReportDoc base = doc_with_cell(10.0, 4000.0, 100.0);
  SweepReportDoc current = doc_with_cell(10.0, 4000.0, 100.0, "cell_b");
  const SweepDiff diff = diff_sweep_reports(base, current);
  EXPECT_FALSE(diff.regressed());
  std::map<std::string, SweepDiffClass> classes;
  for (const SweepDiffRow& row : diff.rows) classes[row.id] = row.klass;
  EXPECT_EQ(classes.at("cell_a"), SweepDiffClass::kGone);
  EXPECT_EQ(classes.at("cell_b"), SweepDiffClass::kNew);
}

JsonValue bench_doc(double real_time_ns) {
  std::ostringstream doc;
  doc << "{\"schema\":\"dagsched.bench_report/1\",\"measurements\":["
      << "{\"name\":\"decide_hot\",\"real_time_ns\":" << real_time_ns
      << ",\"counters\":{\"decide_p99_ns\":1234.0}}]}";
  const JsonParseResult parsed = json_parse(doc.str());
  EXPECT_TRUE(parsed.ok) << parsed.error;
  return parsed.value;
}

TEST(SweepDiff, BenchReportsUseTheSameThresholdPolicy) {
  const JsonValue base = bench_doc(1'000'000.0);
  EXPECT_FALSE(diff_bench_reports(base, bench_doc(1'100'000.0)).regressed());
  const SweepDiff slower = diff_bench_reports(base, bench_doc(1'500'000.0));
  EXPECT_EQ(slower.regressions, 1u);
  const SweepDiff wider = diff_bench_reports(base, bench_doc(1'500'000.0),
                                             {.threshold = 0.6});
  EXPECT_FALSE(wider.regressed());
}

}  // namespace
}  // namespace dagsched
