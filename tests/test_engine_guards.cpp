// Engine defense: illegal allocations are rejected with a structured
// SimFailureKind::kBadAllocation (the kernel finalizes outcomes and returns
// cleanly -- no process abort), while contract violations that indicate
// mis-wired *code* (clairvoyance peeks, wrong engine, unfinalized job sets)
// still abort loudly.  These are the contract checks EXTENDING.md promises.
#include <gtest/gtest.h>

#include <memory>

#include "core/profit_scheduler.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "sim/kernel/engine_factory.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

JobSet two_jobs() {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_parallel_block(4, 1.0)), 0.0, 50.0,
                              1.0));
  jobs.add(Job::with_deadline(share(make_parallel_block(4, 1.0)), 10.0, 50.0,
                              1.0));
  jobs.finalize();
  return jobs;
}

/// Misbehaving scheduler driven by a mode switch.
class RogueScheduler final : public SchedulerBase {
 public:
  enum class Mode {
    kOverAllocate,   // > m processors total
    kDuplicate,      // same job twice
    kZeroProcs,      // 0-processor entry
    kUnarrived,      // allocates to a job not yet released
    kUnknown,        // allocates to an out-of-range job id
  };
  explicit RogueScheduler(Mode mode) : mode_(mode) {}
  std::string name() const override { return "rogue"; }
  void decide(const EngineContext& ctx, Assignment& out) override {
    if (ctx.active_jobs().empty()) return;
    const JobId job = ctx.active_jobs().front();
    switch (mode_) {
      case Mode::kOverAllocate:
        out.add(job, ctx.num_procs() + 1);
        break;
      case Mode::kDuplicate:
        out.add(job, 1);
        out.add(job, 1);
        break;
      case Mode::kZeroProcs:
        out.add(job, 0);
        break;
      case Mode::kUnarrived:
        out.add(1, 1);  // job 1 releases at t=10
        break;
      case Mode::kUnknown:
        out.add(777, 1);
        break;
    }
  }

 private:
  Mode mode_;
};

class EngineGuardRejection
    : public ::testing::TestWithParam<RogueScheduler::Mode> {};

TEST_P(EngineGuardRejection, IllegalAllocationRejectedStructurally) {
  // The malformed allocation must surface as kBadAllocation on *both*
  // stepping drivers (the validation lives once, in the kernel), with
  // outcomes finalized so the caller can still report partial results.
  const JobSet jobs = two_jobs();
  for (const EngineKind kind : {EngineKind::kEvent, EngineKind::kSlot}) {
    RogueScheduler scheduler(GetParam());
    auto selector = make_selector(SelectorKind::kFifo);
    SimOptions options;
    options.num_procs = 2;
    const SimResult result =
        run_simulation(kind, jobs, scheduler, *selector, options);
    EXPECT_TRUE(result.failed()) << engine_kind_name(kind);
    EXPECT_EQ(result.failure, SimFailureKind::kBadAllocation)
        << engine_kind_name(kind);
    EXPECT_FALSE(result.failure_message.empty()) << engine_kind_name(kind);
    EXPECT_EQ(result.outcomes.size(), jobs.size()) << engine_kind_name(kind);
    EXPECT_EQ(result.jobs_completed, 0u) << engine_kind_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, EngineGuardRejection,
    ::testing::Values(RogueScheduler::Mode::kOverAllocate,
                      RogueScheduler::Mode::kDuplicate,
                      RogueScheduler::Mode::kZeroProcs,
                      RogueScheduler::Mode::kUnarrived,
                      RogueScheduler::Mode::kUnknown));

TEST(EngineGuards, SemiNonClairvoyantPeekAborts) {
  // A scheduler that claims to be semi-non-clairvoyant but touches DAG
  // structure must die at the gated accessor.
  class Peeker final : public SchedulerBase {
   public:
    std::string name() const override { return "peeker"; }
    void decide(const EngineContext& ctx, Assignment& out) override {
      if (!ctx.active_jobs().empty()) {
        (void)ctx.dag_of(ctx.active_jobs().front());  // forbidden
        out.add(ctx.active_jobs().front(), 1);
      }
    }
  };
  const JobSet jobs = two_jobs();
  Peeker scheduler;
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 2;
  EventEngine engine(jobs, scheduler, *selector, options);
  EXPECT_DEATH(engine.run(), "peeked");
}

TEST(EngineGuards, ProfitSchedulerRefusesEventEngine) {
  // Fractional node works make the event engine hit decide() at fractional
  // times; the slot scheduler must refuse rather than mis-map slots.
  JobSet jobs;
  jobs.add(Job(share(make_parallel_block(6, 0.7)), 0.0,
               ProfitFn::plateau_linear(2.0, 6.0, 18.0)));
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  EventEngine engine(jobs, scheduler, *selector, options);
  EXPECT_DEATH(engine.run(), "SlotEngine");
}

TEST(EngineGuards, UnsortedJobSetRejected) {
  // Engines require finalize(); hand-built unsorted sets abort.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 5.0, 2.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 1.0, 2.0, 1.0));
  // no finalize()
  class Idle final : public SchedulerBase {
   public:
    std::string name() const override { return "idle"; }
    void decide(const EngineContext&, Assignment&) override {}
  };
  Idle scheduler;
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  EXPECT_DEATH(EventEngine(jobs, scheduler, *selector, options),
               "not finalized");
}

}  // namespace
}  // namespace dagsched
