// ArgParser: flag forms, typed access, error handling.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/arg_parse.h"

namespace dagsched {
namespace {

ArgParser make(std::initializer_list<const char*> args) {
  static std::vector<const char*> storage;
  storage.assign(args.begin(), args.end());
  return ArgParser(static_cast<int>(storage.size()), storage.data());
}

TEST(ArgParse, DefaultsWhenAbsent) {
  ArgParser args = make({"prog"});
  EXPECT_EQ(args.get_int("m", 8), 8);
  EXPECT_DOUBLE_EQ(args.get_double("load", 1.5), 1.5);
  EXPECT_EQ(args.get_string("out", "x.csv"), "x.csv");
  EXPECT_FALSE(args.get_flag("verbose"));
  args.finish();
}

TEST(ArgParse, SpaceAndEqualsForms) {
  ArgParser args = make({"prog", "--m", "16", "--load=2.5", "--name=sweep"});
  EXPECT_EQ(args.get_int("m", 0), 16);
  EXPECT_DOUBLE_EQ(args.get_double("load", 0), 2.5);
  EXPECT_EQ(args.get_string("name", ""), "sweep");
  args.finish();
}

TEST(ArgParse, BareFlagIsTrue) {
  ArgParser args = make({"prog", "--csv", "--verbose=false"});
  EXPECT_TRUE(args.get_flag("csv"));
  EXPECT_FALSE(args.get_flag("verbose"));
  args.finish();
}

TEST(ArgParse, NegativeNumbers) {
  // A value starting with '-' (not '--') is consumed as the value.
  ArgParser args = make({"prog", "--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
  args.finish();
}

TEST(ArgParse, PositionalArguments) {
  ArgParser args = make({"prog", "input.wl", "--m", "4", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.wl");
  EXPECT_EQ(args.positional()[1], "output.csv");
  EXPECT_EQ(args.get_int("m", 0), 4);
  args.finish();
}

TEST(ArgParse, MalformedValuesThrow) {
  EXPECT_THROW(make({"prog", "--m", "abc"}).get_int("m", 0),
               std::invalid_argument);
  EXPECT_THROW(make({"prog", "--load", "1.5x"}).get_double("load", 0),
               std::invalid_argument);
  EXPECT_THROW(make({"prog", "--flag", "maybe"}).get_flag("flag"),
               std::invalid_argument);
}

TEST(ArgParse, UnknownFlagsDetectedByFinish) {
  ArgParser args = make({"prog", "--m", "4", "--tpyo", "1"});
  EXPECT_EQ(args.get_int("m", 0), 4);
  EXPECT_THROW(args.finish(), std::invalid_argument);
}

TEST(ArgParse, LastValueWins) {
  ArgParser args = make({"prog", "--m", "4", "--m", "8"});
  EXPECT_EQ(args.get_int("m", 0), 8);
  args.finish();
}

TEST(ArgParse, HasDistinguishesAbsentFromEmptyValue) {
  // `--interval=` must be visible as "present with an empty value" so
  // strict flags can reject it instead of silently using the default.
  ArgParser given_empty = make({"prog", "--interval="});
  EXPECT_TRUE(given_empty.has("interval"));
  EXPECT_EQ(given_empty.get_string("interval", "default"), "");

  ArgParser absent = make({"prog"});
  EXPECT_FALSE(absent.has("interval"));
  EXPECT_EQ(absent.get_string("interval", "default"), "default");

  // has() does not consume: finish() still flags the unused flag.
  ArgParser unused = make({"prog", "--interval=5"});
  EXPECT_TRUE(unused.has("interval"));
  EXPECT_THROW(unused.finish(), std::invalid_argument);
}

}  // namespace
}  // namespace dagsched
