// Assorted edge-case coverage: option caps, boundary semantics, zero-size
// requests -- the corners a downstream user will eventually hit.
#include <gtest/gtest.h>

#include <memory>

#include "core/deadline_scheduler.h"
#include "core/profit_scheduler.h"
#include "exp/runner.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "sim/views.h"
#include "workload/analyzer.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

TEST(EdgeCases, SelectorWithZeroBudgetReturnsNothing) {
  const Dag dag = make_parallel_block(4, 1.0);
  UnfoldingState state(dag);
  for (const SelectorKind kind :
       {SelectorKind::kFifo, SelectorKind::kRandom,
        SelectorKind::kAdversarial}) {
    auto selector = make_selector(kind, 3);
    std::vector<NodeId> out{99};  // pre-filled: select must clear
    selector->select(dag, state, 0, out);
    EXPECT_TRUE(out.empty()) << selector_kind_name(kind);
  }
}

TEST(EdgeCases, DeadlineUnreachableBoundarySemantics) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 1.0, 4.0, 1.0));
  jobs.finalize();
  JobStateTable state;
  state.reset(jobs);
  state.set_arrived(0);
  const JobView view(&jobs[0], &state, 0);
  // d = 5.  Strictly before: reachable.  At d: unreachable (remaining work
  // cannot finish by d).  deadline_expired stays false exactly at d.
  EXPECT_FALSE(view.deadline_unreachable(4.999));
  EXPECT_TRUE(view.deadline_unreachable(5.0));
  EXPECT_FALSE(view.deadline_expired(5.0));
  EXPECT_TRUE(view.deadline_expired(5.001));
}

TEST(EdgeCases, SlotEngineHonorsMaxSlotsCap) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(50, 1.0)), 0.0, 500.0, 1.0));
  jobs.finalize();
  auto scheduler = [] {
    return DeadlineScheduler({.params = Params::from_epsilon(0.5)});
  }();
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = 2;
  options.max_slots = 10;  // far below the 50 slots the chain needs
  SlotEngine engine(jobs, scheduler, *selector, options);
  const SimResult result = engine.run();
  EXPECT_FALSE(result.outcomes[0].completed);
  EXPECT_LE(result.end_time, 11.0);
}

TEST(EdgeCases, ProfitSchedulerSearchCapLeavesJobUnscheduled) {
  // Exponential decay never hits zero, but the search cap bounds the scan;
  // make the early slots inadmissible by saturating them first.
  const ProcCount m = 8;
  auto big = share(make_parallel_block(40, 1.0));
  JobSet jobs;
  // Saturating competitor with huge profit (denser in every window).
  jobs.add(Job(big, 0.0, ProfitFn::plateau_exponential(500.0, 9.0, 1e-6)));
  // Victim with a tiny search budget configured below.
  jobs.add(Job(big, 0.0, ProfitFn::plateau_exponential(1.0, 9.0, 1e-6)));
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5),
                             .max_search_slots = 12});
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = m;
  SlotEngine engine(jobs, scheduler, *selector, options);
  engine.run();
  // The rich job is scheduled; whether the victim fits depends on window
  // math -- the invariant under test is that an *unscheduled* job reports
  // an infinite chosen deadline instead of a bogus one.
  ASSERT_GE(scheduler.scheduled_count(), 1u);
  for (JobId j = 0; j < jobs.size(); ++j) {
    if (scheduler.allocation_of(j) != nullptr &&
        scheduler.assigned_slots(j).empty()) {
      EXPECT_EQ(scheduler.chosen_deadline(j), kTimeInfinity);
    }
  }
}

TEST(EdgeCases, DensityIndexSingleMemberWideWindow) {
  DensityWindowIndex index;
  index.insert(7, 1.0, 3);
  EXPECT_DOUBLE_EQ(index.max_window_load(1e9), 3.0);
  EXPECT_DOUBLE_EQ(index.load_at_least(1.0), 3.0);
  // Boundaries are exact (no tolerance): any density above the member's
  // excludes it.
  EXPECT_DOUBLE_EQ(index.load_at_least(1.0 + 1e-12), 0.0);
  EXPECT_DOUBLE_EQ(index.load_at_least(2.0), 0.0);
}

TEST(EdgeCases, AnalyzerOnSingleInstantJob) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 1.0, 1.0));
  jobs.finalize();
  const InstanceProfile profile = analyze_instance(jobs, 4);
  EXPECT_EQ(profile.jobs, 1u);
  EXPECT_DOUBLE_EQ(profile.parallelism.median(), 1.0);
  EXPECT_DOUBLE_EQ(profile.sequential_fraction, 1.0);
  EXPECT_DOUBLE_EQ(profile.feasible_fraction, 1.0);
}

TEST(EdgeCases, CheckMacrosFormatMessages) {
  EXPECT_DEATH(
      [] {
        const int x = 3;
        DS_CHECK_MSG(x == 4, "expected " << 4 << " got " << x);
      }(),
      "expected 4 got 3");
}

TEST(EdgeCases, EngineWithJobsReleasedAtSameInstant) {
  // 16 simultaneous releases on 2 processors: engine must serialize them
  // without double-allocating at the shared decision instant.
  JobSet jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 100.0,
                                1.0));
  }
  jobs.finalize();
  // Work-conserving EDF exercises the engine's parallelism; note the paper
  // scheduler would serialize here by design (its b*m window cap on m=2
  // admits one unit job at a time).
  auto scheduler = make_named_scheduler("edf");
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 2;
  const SimResult result = simulate(jobs, *scheduler, *selector, options);
  EXPECT_EQ(result.jobs_completed, 16u);
  EXPECT_NEAR(result.busy_proc_time, 16.0, 1e-9);
  EXPECT_NEAR(result.end_time, 8.0, 1e-9);  // 16 unit jobs over 2 procs
}

}  // namespace
}  // namespace dagsched
