// SlotEngine legality for the whole scheduler zoo, plus truncation paths
// of the OPT machinery (LP window cap, branch-and-bound node limit) and
// bracket-ordering stress for the combined OPT estimate.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "opt/exact.h"
#include "opt/upper_bound.h"
#include "sim/slot_engine.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

class SlotZoo
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(SlotZoo, LegalScheduleOnSlotEngine) {
  const auto& [name, seed] = GetParam();
  Rng rng(seed);
  WorkloadConfig config =
      scenario_profit(0.5, 1.0, 8, ProfitPolicy::Shape::kPlateauLinear);
  config.horizon = 70.0;
  const JobSet jobs = generate_workload(rng, config);
  ASSERT_FALSE(jobs.empty());

  auto scheduler = make_named_scheduler(name, 0.5);
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = 8;
  options.record_trace = true;
  SlotEngine engine(jobs, *scheduler, *selector, options);
  const SimResult result = engine.run();
  EXPECT_EQ(result.trace.validate(jobs, 8, 1.0), "") << name;
  EXPECT_LE(result.total_profit, jobs.total_peak_profit() + 1e-9) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlotZoo,
    ::testing::Combine(::testing::Values("s", "s-wc", "profit", "edf", "hdf",
                                         "federated", "equi"),
                       ::testing::Values(71u, 72u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
           param_info) {
      std::string label = std::get<0>(param_info.param) + "_" +
                          std::to_string(std::get<1>(param_info.param));
      for (char& ch : label) {
        if (ch == '-') ch = '_';
      }
      return label;
    });

TEST(UpperBoundCaps, WindowCapStillSound) {
  Rng rng(31);
  const JobSet jobs = generate_workload(rng, scenario_shootout(1.5, 8, 0.3, 1.0));
  OptBoundOptions tight_options;
  tight_options.max_windows = 4;  // drastically fewer capacity constraints
  const OptBound capped = compute_opt_upper_bound(jobs, 8, tight_options);
  const OptBound full = compute_opt_upper_bound(jobs, 8);
  // Fewer constraints can only weaken (raise) the LP bound.
  EXPECT_GE(capped.value(), full.value() - 1e-6);
  EXPECT_LE(full.value(), jobs.total_peak_profit() + 1e-9);
}

TEST(ExactCaps, NodeLimitTruncationReported) {
  // 18 mutually-conflicting jobs with a 1-node budget: truncated result,
  // still a valid lower bound (>= 0, <= total profit).
  std::vector<SeqJob> jobs;
  for (int i = 0; i < 18; ++i) {
    jobs.push_back({0.0, 10.0, 2.0, 1.0});
  }
  const ExactOptResult result = exact_opt_sequential(jobs, 2, 1.0, 10);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_GE(result.value, 0.0);
  EXPECT_LE(result.value, 18.0);
}

class BracketOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BracketOrdering, LowerNeverExceedsUpper) {
  Rng rng(GetParam());
  // Alternate between step-profit and decaying-profit workloads: the
  // decaying case once exposed a planner that counted peaks for jobs
  // finishing past their plateau (regression guard).
  WorkloadConfig config =
      GetParam() % 2 == 0
          ? scenario_shootout(rng.uniform(0.5, 2.5), 8, 0.2, 1.5)
          : scenario_profit(0.5, rng.uniform(0.5, 1.5), 8,
                            ProfitPolicy::Shape::kPlateauExp);
  config.horizon = 60.0;
  const JobSet jobs = generate_workload(rng, config);
  if (jobs.empty()) GTEST_SKIP();
  // estimate_opt internally DS_CHECKs upper >= lower; surviving the call
  // plus this assertion covers the planner against the LP bound.
  const OptBracket bracket = estimate_opt(jobs, 8);
  EXPECT_LE(bracket.lower, bracket.upper + 1e-6);
  EXPECT_FALSE(bracket.lower_scheduler.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BracketOrdering,
                         ::testing::Values(601, 602, 603, 604, 605, 606, 607,
                                           608, 609, 610));

}  // namespace
}  // namespace dagsched
