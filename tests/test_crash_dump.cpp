// CrashDumpGuard: a DS_CHECK failure must flush the pending decision-event
// buffer (plus a final engine-abort event) to disk before the process dies.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/crash_dump.h"
#include "obs/event_log.h"
#include "util/check.h"

namespace dagsched {
namespace {

TEST(CrashDumpDeathTest, FlushesEventsAndEmitsEngineAbort) {
  const std::string path = ::testing::TempDir() + "crash_events.jsonl";
  std::remove(path.c_str());

  // The death-test child installs the guard, buffers two events, then trips
  // a DS_CHECK; the parent inspects the file the dying child left behind.
  EXPECT_DEATH(
      {
        EventLog log;
        log.emit(1.0, 0, ObsEventKind::kArrival);
        log.emit(2.5, 0, ObsEventKind::kAdmit, "window-fits",
                 {{"v", 1.5}, {"n", 2.0}});
        CrashDumpGuard guard(&log, path);
        DS_CHECK_MSG(false, "synthetic failure for the crash-dump test");
      },
      "DS_CHECK failed");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "crash dump was not written to " << path;
  std::string error;
  const auto events = EventLog::parse_jsonl(in, &error);
  ASSERT_TRUE(events.has_value()) << error;
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[0].kind, ObsEventKind::kArrival);
  EXPECT_EQ((*events)[1].kind, ObsEventKind::kAdmit);
  EXPECT_EQ((*events)[1].reason, "window-fits");
  EXPECT_EQ((*events)[2].kind, ObsEventKind::kEngineAbort);
  EXPECT_EQ((*events)[2].reason, "ds-check");
  // The abort event is stamped with the last known simulation time.
  EXPECT_EQ((*events)[2].time, 2.5);
}

TEST(CrashDump, GuardRestoresPreviousHookOnDestruction) {
  bool outer_called = false;
  CheckFailureHook outer = [&outer_called](const std::string&) {
    outer_called = true;
  };
  const CheckFailureHook before = set_check_failure_hook(outer);
  {
    EventLog log;
    CrashDumpGuard guard(&log, ::testing::TempDir() + "unused.jsonl");
    // Guard owns the hook inside this scope...
  }
  // ...and hands the previous hook back afterwards.  We cannot trip
  // DS_CHECK without dying, but we can verify the slot by swapping again.
  const CheckFailureHook restored = set_check_failure_hook(before);
  EXPECT_TRUE(static_cast<bool>(restored));
  EXPECT_FALSE(outer_called);
}

TEST(CrashDumpDeathTest, StreamedLogEndsOnCompleteLine) {
  // Streaming mode: the guard must truncate a partial trailing JSONL
  // record (here simulated by a raw write that a buffer-boundary flush
  // could leave behind) before appending the engine-abort event, so the
  // dump always parses end to end.
  const std::string path = ::testing::TempDir() + "crash_stream.jsonl";
  std::remove(path.c_str());

  EXPECT_DEATH(
      {
        std::ofstream out(path);
        EventLog log;
        log.stream_to(&out);
        log.emit(1.0, 0, ObsEventKind::kArrival);
        log.emit(2.0, 1, ObsEventKind::kArrival);
        out << "{\"t\":3,\"jo";  // ragged tail: a half-flushed record
        CrashDumpGuard guard(&log, path);
        DS_CHECK_MSG(false, "synthetic failure for the streamed-dump test");
      },
      "DS_CHECK failed");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "streamed crash dump missing at " << path;
  std::string error;
  const auto events = EventLog::parse_jsonl(in, &error);
  ASSERT_TRUE(events.has_value()) << error;  // no partial record survived
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[0].kind, ObsEventKind::kArrival);
  EXPECT_EQ((*events)[1].kind, ObsEventKind::kArrival);
  EXPECT_EQ((*events)[2].kind, ObsEventKind::kEngineAbort);
  EXPECT_EQ((*events)[2].reason, "ds-check");
  EXPECT_EQ((*events)[2].time, 2.0);
}

TEST(CrashDump, StreamedEmitMatchesWriteJsonlBytes) {
  EventLog streamed, buffered;
  std::ostringstream live;
  streamed.stream_to(&live);
  for (int i = 0; i < 4; ++i) {
    const auto t = static_cast<Time>(i);
    streamed.emit(t, static_cast<JobId>(i), ObsEventKind::kAdmit,
                  "window-fits", {{"v", 1.5}, {"n", 2.0}});
    buffered.emit(t, static_cast<JobId>(i), ObsEventKind::kAdmit,
                  "window-fits", {{"v", 1.5}, {"n", 2.0}});
  }
  std::ostringstream at_end;
  buffered.write_jsonl(at_end);
  EXPECT_EQ(live.str(), at_end.str());
}

}  // namespace
}  // namespace dagsched
