// Scheduler S (Section 3): admission, queue dynamics, density priority,
// and the paper's structural invariants enforced at every decision point.
#include <gtest/gtest.h>

#include <memory>

#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/event_engine.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

/// Deadline with exactly (1+eps) slack on m processors.
Time slack_deadline(const Dag& dag, ProcCount m, double eps) {
  return (1.0 + eps) *
         ((dag.total_work() - dag.span()) / static_cast<double>(m) +
          dag.span());
}

SimResult run(const JobSet& jobs, DeadlineScheduler& scheduler, ProcCount m,
              double speed = 1.0,
              std::function<void(const EngineContext&, const Assignment&)>
                  observer = nullptr) {
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  options.speed = speed;
  options.observer = std::move(observer);
  return simulate(jobs, scheduler, *sel, options);
}

TEST(DeadlineScheduler, SingleGoodJobAdmittedAndCompleted) {
  const ProcCount m = 16;
  Dag dag = make_parallel_block(30, 1.0);
  const Time deadline = slack_deadline(dag, m, 0.5);
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, deadline, 1.0));
  jobs.finalize();

  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  const SimResult result = run(jobs, scheduler, m);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_LE(result.outcomes[0].completion_time, deadline + 1e-9);
  EXPECT_DOUBLE_EQ(result.total_profit, 1.0);
  EXPECT_EQ(scheduler.started_count(), 1u);

  // The allocation matches the standalone formula.
  const JobAllocation* alloc = scheduler.allocation_of(0);
  ASSERT_NE(alloc, nullptr);
  const JobAllocation expected = compute_deadline_allocation(
      30.0, 1.0, deadline, 1.0, scheduler.params(), 1.0);
  EXPECT_EQ(alloc->n, expected.n);
  EXPECT_DOUBLE_EQ(alloc->x, expected.x);
}

TEST(DeadlineScheduler, CompletionRespectsGuaranteedBound) {
  // Observation 2 through the whole stack: the job finishes within x_i of
  // its start when nothing competes.
  const ProcCount m = 8;
  Dag dag = make_fig2_dag(4, 20, 1.0);  // chain then block
  const Time deadline = slack_deadline(dag, m, 1.0);
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, deadline, 2.0));
  jobs.finalize();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(1.0)});
  const SimResult result = run(jobs, scheduler, m);
  ASSERT_TRUE(result.outcomes[0].completed);
  const JobAllocation* alloc = scheduler.allocation_of(0);
  ASSERT_NE(alloc, nullptr);
  EXPECT_LE(result.outcomes[0].completion_time, alloc->x + 1e-9);
}

TEST(DeadlineScheduler, NotDeltaGoodJobWaitsInPAndExpires) {
  const ProcCount m = 16;
  Dag dag = make_parallel_block(30, 1.0);
  // Tight deadline below the delta-good threshold: D < (1+2delta) * anything
  // achievable.
  const Time deadline = 1.001 * std::max(dag.span(), dag.total_work() / m);
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, deadline, 1.0));
  jobs.finalize();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  const SimResult result = run(jobs, scheduler, m);
  EXPECT_FALSE(result.outcomes[0].completed);
  EXPECT_EQ(scheduler.started_count(), 0u);
  EXPECT_DOUBLE_EQ(result.total_profit, 0.0);
}

TEST(DeadlineScheduler, AdmissionRejectsSaturatedDensityWindow) {
  const ProcCount m = 16;
  const double eps = 0.5;
  Dag dag1 = make_parallel_block(30, 1.0);
  Dag dag2 = make_parallel_block(30, 1.0);
  const Time deadline = slack_deadline(dag1, m, eps);
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(dag1)), 0.0, deadline, 1.0));
  jobs.add(Job::with_deadline(share(std::move(dag2)), 0.0, deadline, 1.0));
  jobs.finalize();

  DeadlineScheduler scheduler({.params = Params::from_epsilon(eps)});
  bool checked = false;
  const SimResult result =
      run(jobs, scheduler, m, 1.0,
          [&](const EngineContext& ctx, const Assignment&) {
            if (ctx.now() == 0.0 && !checked) {
              checked = true;
              // Identical densities, n ~ 13 each: 2n > b*m, so exactly one
              // of the two is in Q.
              EXPECT_NE(scheduler.in_queue_q(0), scheduler.in_queue_q(1));
              EXPECT_NE(scheduler.in_queue_p(0), scheduler.in_queue_p(1));
            }
          });
  EXPECT_TRUE(checked);
  // The Q job completes; the P job is not fresh by then (deadline ~4.2,
  // needed freshness ~3.6 after completion ~3) and expires.
  EXPECT_EQ(result.jobs_completed, 1u);
}

TEST(DeadlineScheduler, DrainPAdmitsFreshJobAfterCompletion) {
  const ProcCount m = 16;
  const double eps = 0.5;
  Dag big = make_parallel_block(30, 1.0);
  Dag patient = make_parallel_block(30, 1.0);
  const Time d_big = slack_deadline(big, m, eps);
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(big)), 0.0, d_big, 1.0));
  // Same arrival, long deadline: initially rejected (its small n still lands
  // in the big job's density window), admitted after the big job completes.
  jobs.add(Job::with_deadline(share(std::move(patient)), 0.0, 30.0, 1.0));
  jobs.finalize();

  DeadlineScheduler scheduler({.params = Params::from_epsilon(eps)});
  bool initially_rejected = false;
  const SimResult result =
      run(jobs, scheduler, m, 1.0,
          [&](const EngineContext& ctx, const Assignment&) {
            if (ctx.now() == 0.0) {
              initially_rejected = scheduler.in_queue_p(1);
            }
          });
  EXPECT_TRUE(initially_rejected);
  EXPECT_EQ(result.jobs_completed, 2u);
  EXPECT_TRUE(result.outcomes[1].completed);
  EXPECT_EQ(scheduler.started_count(), 2u);
}

TEST(DeadlineScheduler, HigherDensityJobRunsFirst) {
  const ProcCount m = 4;
  const double eps = 0.5;
  Dag cheap = make_parallel_block(12, 1.0);
  Dag precious = make_parallel_block(12, 1.0);
  const Time deadline = slack_deadline(cheap, m, eps) * 3.0;  // roomy
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(cheap)), 0.0, deadline, 1.0));
  jobs.add(Job::with_deadline(share(std::move(precious)), 0.0, deadline, 10.0));
  jobs.finalize();

  DeadlineScheduler scheduler({.params = Params::from_epsilon(eps)});
  JobId first_running = kInvalidJob;
  run(jobs, scheduler, m, 1.0,
      [&](const EngineContext& ctx, const Assignment& assignment) {
        if (ctx.now() == 0.0 && first_running == kInvalidJob &&
            !assignment.allocs.empty()) {
          first_running = assignment.allocs.front().job;
        }
      });
  EXPECT_EQ(first_running, 1u);  // the 10x-profit job
}

TEST(DeadlineScheduler, CompletedJobsAlwaysMeetTheirDeadlines) {
  Rng rng(2024);
  WorkloadConfig config;
  config.m = 16;
  config.target_load = 1.2;  // overload: some jobs must be sacrificed
  config.horizon = 200.0;
  config.deadline.kind = DeadlinePolicy::Kind::kProportionalSlack;
  config.deadline.eps = 0.5;
  const JobSet jobs = generate_workload(rng, config);
  ASSERT_GT(jobs.size(), 10u);

  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  const SimResult result = run(jobs, scheduler, config.m);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!result.outcomes[i].completed) continue;
    EXPECT_LE(result.outcomes[i].completion_time,
              jobs[i].absolute_deadline() + 1e-6);
    EXPECT_DOUBLE_EQ(result.outcomes[i].profit, jobs[i].peak_profit());
  }
}

// Observation 3 / Lemmas 1-3 as run-time invariants over random workloads.
class SchedulerInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerInvariants, HoldAtEveryDecision) {
  Rng rng(GetParam());
  WorkloadConfig config;
  config.m = 16;
  config.target_load = 1.0;
  config.horizon = 150.0;
  config.deadline.kind = DeadlinePolicy::Kind::kProportionalSlack;
  config.deadline.eps = 0.6;
  const JobSet jobs = generate_workload(rng, config);

  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.6)});
  const Params& p = scheduler.params();
  const double cap = p.b * 16.0;
  std::size_t checks = 0;
  run(jobs, scheduler, config.m, 1.0,
      [&](const EngineContext& ctx, const Assignment& assignment) {
        ++checks;
        // Observation 3: every density window within b*m.
        EXPECT_LE(scheduler.queue_index().max_window_load(p.c), cap + 1e-9);
        // Granted allocations use each job's fixed n_i.
        for (const JobAlloc& alloc : assignment.allocs) {
          const JobAllocation* ja = scheduler.allocation_of(alloc.job);
          ASSERT_NE(ja, nullptr);
          EXPECT_EQ(alloc.procs, ja->n);
          // Lemma 3.
          const JobView view = ctx.view(alloc.job);
          EXPECT_LE(ja->x * static_cast<double>(ja->n),
                    p.a() * view.work() + 1e-6);
          // Lemma 2 (delta-goodness of everything S runs).
          EXPECT_LE(ja->x * (1.0 + 2.0 * p.delta),
                    view.relative_deadline() + 1e-9);
        }
      });
  EXPECT_GT(checks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerInvariants,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(DeadlineScheduler, AblationsRunCleanly) {
  Rng rng(7);
  WorkloadConfig config;
  config.m = 8;
  config.target_load = 0.8;
  config.horizon = 100.0;
  config.deadline.eps = 0.5;
  const JobSet jobs = generate_workload(rng, config);

  for (const DeadlineSchedulerOptions& options :
       {DeadlineSchedulerOptions{.enforce_admission = false},
        DeadlineSchedulerOptions{.work_conserving = true},
        DeadlineSchedulerOptions{.admit_on_deadline = true},
        DeadlineSchedulerOptions{
            .density_def = DeadlineSchedulerOptions::DensityDef::kClassic},
        DeadlineSchedulerOptions{
            .density_def = DeadlineSchedulerOptions::DensityDef::kSquashed}}) {
    DeadlineScheduler scheduler(options);
    const SimResult result = run(jobs, scheduler, config.m);
    EXPECT_GE(result.total_profit, 0.0) << scheduler.name();
    EXPECT_LE(result.total_profit, jobs.total_peak_profit() + 1e-9)
        << scheduler.name();
  }
}

TEST(DeadlineScheduler, PlateauProfitJobsUsePlateauReduction) {
  const ProcCount m = 8;
  Dag dag = make_parallel_block(16, 1.0);
  const Time plateau = slack_deadline(dag, m, 0.5);
  JobSet jobs;
  jobs.add(Job(share(std::move(dag)), 0.0,
               ProfitFn::plateau_linear(4.0, plateau, plateau * 3.0)));
  jobs.finalize();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  const SimResult result = run(jobs, scheduler, m);
  ASSERT_TRUE(result.outcomes[0].completed);
  // Completed within the plateau => full peak earned.
  EXPECT_DOUBLE_EQ(result.outcomes[0].profit, 4.0);
}

TEST(DeadlineScheduler, ResetAllowsReuse) {
  const ProcCount m = 8;
  Dag dag = make_parallel_block(16, 1.0);
  const Time deadline = slack_deadline(dag, m, 0.5);
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, deadline, 1.0));
  jobs.finalize();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  const SimResult first = run(jobs, scheduler, m);
  const SimResult second = run(jobs, scheduler, m);
  EXPECT_DOUBLE_EQ(first.total_profit, second.total_profit);
  EXPECT_EQ(scheduler.started_count(), 1u);  // reset cleared the first run
}

}  // namespace
}  // namespace dagsched
