// Exact OPT for sequential-job instances: Horn feasibility, branch & bound,
// and consistency with the LP upper bound and with achieved schedules.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "opt/exact.h"
#include "opt/upper_bound.h"
#include "sim/event_engine.h"
#include "util/rng.h"

namespace dagsched {
namespace {

SeqJob seq(Time release, Time deadline, Work work, Profit profit = 1.0) {
  return {release, deadline, work, profit};
}

TEST(Feasible, EmptyAndSingles) {
  EXPECT_TRUE(preemptive_feasible({}, 1));
  EXPECT_TRUE(preemptive_feasible({seq(0, 2, 2)}, 1));
  EXPECT_FALSE(preemptive_feasible({seq(0, 2, 2.5)}, 1));
  EXPECT_FALSE(preemptive_feasible({seq(0, 2, 2.5)}, 8));  // one machine each
  EXPECT_TRUE(preemptive_feasible({seq(0, 2, 2.5)}, 1, 2.0));  // speed helps
}

TEST(Feasible, CapacityOnOneMachine) {
  // Two unit jobs in [0,2] on one machine: exactly fits.
  EXPECT_TRUE(preemptive_feasible({seq(0, 2, 1), seq(0, 2, 1)}, 1));
  // Three do not.
  EXPECT_FALSE(
      preemptive_feasible({seq(0, 2, 1), seq(0, 2, 1), seq(0, 2, 1)}, 1));
  // But fit on two machines.
  EXPECT_TRUE(
      preemptive_feasible({seq(0, 2, 1), seq(0, 2, 1), seq(0, 2, 1)}, 2));
}

TEST(Feasible, RequiresPreemptionOrMigration) {
  // Classic: three jobs of work 2 in [0,3] on two machines: total work 6 =
  // capacity 6, feasible only with migration/preemption (McNaughton).
  EXPECT_TRUE(
      preemptive_feasible({seq(0, 3, 2), seq(0, 3, 2), seq(0, 3, 2)}, 2));
  // Tighten one deadline: infeasible.
  EXPECT_FALSE(
      preemptive_feasible({seq(0, 1.9, 2), seq(0, 3, 2), seq(0, 3, 2)}, 2));
}

TEST(Feasible, WindowStructureMatters) {
  // Job B nested inside job A's window: A=[0,4] w=3, B=[1,2] w=1, m=1:
  // B needs [1,2] entirely, A has 3 units in the remaining 3 => feasible.
  EXPECT_TRUE(preemptive_feasible({seq(0, 4, 3), seq(1, 2, 1)}, 1));
  // A with work 3.5 no longer fits around B.
  EXPECT_FALSE(preemptive_feasible({seq(0, 4, 3.5), seq(1, 2, 1)}, 1));
}

TEST(ExactOpt, PicksBestSubset) {
  // One machine, window [0,2]: can serve 2 units of work.  Jobs: profit 3
  // (work 2), profit 2+2 (work 1 each).  Best: the two small ones.
  const std::vector<SeqJob> jobs = {seq(0, 2, 2, 3.0), seq(0, 2, 1, 2.0),
                                    seq(0, 2, 1, 2.0)};
  const ExactOptResult result = exact_opt_sequential(jobs, 1);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.value, 4.0);
  EXPECT_FALSE(result.selected[0]);
  EXPECT_TRUE(result.selected[1]);
  EXPECT_TRUE(result.selected[2]);
}

TEST(ExactOpt, TakesEverythingWhenFeasible) {
  const std::vector<SeqJob> jobs = {seq(0, 10, 2, 1), seq(1, 8, 2, 1),
                                    seq(2, 9, 2, 1)};
  const ExactOptResult result = exact_opt_sequential(jobs, 2);
  EXPECT_DOUBLE_EQ(result.value, 3.0);
}

TEST(ExactOpt, MatchesBruteForceOnRandomInstances) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const ProcCount m = static_cast<ProcCount>(rng.uniform_int(1, 3));
    std::vector<SeqJob> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      const Time release = rng.uniform(0.0, 10.0);
      const Time deadline = release + rng.uniform(0.5, 6.0);
      const Work work = rng.uniform(0.2, deadline - release);
      jobs.push_back(seq(release, deadline, work, rng.uniform(0.5, 3.0)));
    }
    // Brute force over all subsets.
    double best = 0.0;
    for (std::size_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<SeqJob> subset;
      double profit = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          subset.push_back(jobs[i]);
          profit += jobs[i].profit;
        }
      }
      if (profit > best && preemptive_feasible(subset, m)) best = profit;
    }
    const ExactOptResult result = exact_opt_sequential(jobs, m);
    ASSERT_TRUE(result.proven_optimal);
    EXPECT_NEAR(result.value, best, 1e-9) << "trial " << trial;
  }
}

TEST(ToSequential, AcceptsChainsRejectsParallel) {
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_chain(4, 1.0)), 0.0, 10.0, 2.0));
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_single_node(3.0)), 1.0, 5.0, 1.0));
  jobs.finalize();
  const auto sequential = to_sequential(jobs);
  ASSERT_TRUE(sequential.has_value());
  ASSERT_EQ(sequential->size(), 2u);
  EXPECT_DOUBLE_EQ((*sequential)[0].work, 4.0);
  EXPECT_DOUBLE_EQ((*sequential)[0].deadline, 10.0);

  JobSet parallel;
  parallel.add(Job::with_deadline(
      std::make_shared<const Dag>(make_parallel_block(4, 1.0)), 0.0, 10.0,
      1.0));
  parallel.finalize();
  EXPECT_FALSE(to_sequential(parallel).has_value());
}

// Consistency: exact OPT lies within [any achieved schedule, LP bound].
class ExactBracket : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactBracket, ExactWithinLpAndAchieved) {
  Rng rng(GetParam());
  JobSet jobs;
  for (int i = 0; i < 12; ++i) {
    const auto nodes = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const Time release = rng.uniform(0.0, 20.0);
    auto dag = std::make_shared<const Dag>(make_chain(nodes, 1.0));
    const Time deadline = dag->total_work() * rng.uniform(1.1, 3.0);
    jobs.add(Job::with_deadline(std::move(dag), release, deadline,
                                rng.uniform(0.5, 2.0)));
  }
  jobs.finalize();
  const auto sequential = to_sequential(jobs);
  ASSERT_TRUE(sequential.has_value());
  const ProcCount m = 2;
  const ExactOptResult exact = exact_opt_sequential(*sequential, m);
  ASSERT_TRUE(exact.proven_optimal);

  const OptBound lp = compute_opt_upper_bound(jobs, m);
  EXPECT_LE(exact.value, lp.value() + 1e-6);

  ListScheduler edf({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  const SimResult achieved = simulate(jobs, edf, *selector, options);
  EXPECT_GE(exact.value, achieved.total_profit - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactBracket,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace dagsched
