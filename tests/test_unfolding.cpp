// UnfoldingState: dynamic ready-set maintenance and progress accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "dag/builder.h"
#include "dag/generators.h"
#include "dag/unfolding.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(Unfolding, SourcesInitiallyReady) {
  const Dag dag = make_fig2_dag(3, 4, 1.0);  // chain -> block
  UnfoldingState state(dag);
  EXPECT_EQ(state.ready_count(), 1u);  // only the chain head
  EXPECT_EQ(state.nodes_remaining(), 7u);
  EXPECT_DOUBLE_EQ(state.total_remaining_work(), 7.0);
  EXPECT_FALSE(state.complete());
}

TEST(Unfolding, PartialAdvanceKeepsNodeReady) {
  const Dag dag = make_chain(2, 2.0);
  UnfoldingState state(dag);
  const NodeId head = state.ready()[0];
  EXPECT_FALSE(state.advance(head, 1.0));
  EXPECT_TRUE(state.is_ready(head));
  EXPECT_DOUBLE_EQ(state.remaining_work(head), 1.0);
  EXPECT_DOUBLE_EQ(state.total_remaining_work(), 3.0);
}

TEST(Unfolding, CompletionUnlocksSuccessors) {
  const Dag dag = make_chain(3, 1.0);
  UnfoldingState state(dag);
  std::vector<NodeId> newly;
  EXPECT_TRUE(state.advance(state.ready()[0], 1.0, &newly));
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_TRUE(state.is_ready(newly[0]));
  EXPECT_EQ(state.ready_count(), 1u);
  EXPECT_EQ(state.nodes_remaining(), 2u);
}

TEST(Unfolding, JoinWaitsForAllPredecessors) {
  // a, b -> join.
  DagBuilder builder;
  const NodeId a = builder.add_node(1.0);
  const NodeId b = builder.add_node(1.0);
  const NodeId join = builder.add_node(1.0);
  builder.add_edge(a, join);
  builder.add_edge(b, join);
  const Dag dag = std::move(builder).build();

  UnfoldingState state(dag);
  EXPECT_EQ(state.ready_count(), 2u);
  std::vector<NodeId> newly;
  state.advance(a, 1.0, &newly);
  EXPECT_TRUE(newly.empty());  // join still blocked on b
  EXPECT_FALSE(state.is_ready(join));
  state.advance(b, 1.0, &newly);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], join);
}

TEST(Unfolding, CompleteAfterAllNodes) {
  const Dag dag = make_parallel_block(3, 1.0);
  UnfoldingState state(dag);
  ASSERT_EQ(state.ready_count(), 3u);
  const std::vector<NodeId> nodes(state.ready().begin(), state.ready().end());
  for (NodeId node : nodes) state.advance(node, 1.0);
  EXPECT_TRUE(state.complete());
  EXPECT_EQ(state.ready_count(), 0u);
  EXPECT_DOUBLE_EQ(state.total_remaining_work(), 0.0);
}

TEST(Unfolding, TinyResidueSnapsToCompletion) {
  const Dag dag = make_single_node(1.0);
  UnfoldingState state(dag);
  // Split into three uneven chunks whose float sum wobbles around 1.0.
  state.advance(0, 0.3);
  state.advance(0, 0.3);
  EXPECT_TRUE(state.advance(0, 0.4 + 1e-12));
  EXPECT_TRUE(state.complete());
}

TEST(Unfolding, RemainingSpanTracksProgress) {
  const Dag dag = make_chain(4, 1.0);  // span 4
  UnfoldingState state(dag);
  EXPECT_DOUBLE_EQ(state.remaining_span(), 4.0);
  state.advance(state.ready()[0], 1.0);
  EXPECT_DOUBLE_EQ(state.remaining_span(), 3.0);
  state.advance(state.ready()[0], 0.5);
  EXPECT_DOUBLE_EQ(state.remaining_span(), 2.5);
}

TEST(Unfolding, RandomDagFullExecutionBySweeps) {
  // Property: repeatedly finishing every ready node completes any DAG in
  // at most num_nodes sweeps, and the ready list never contains duplicates.
  Rng rng(77);
  RandomDagParams params;
  params.nodes = 40;
  params.edge_prob = 0.12;
  const Dag dag = make_random_dag(rng, params);
  UnfoldingState state(dag);
  std::size_t sweeps = 0;
  while (!state.complete()) {
    ASSERT_LT(sweeps++, static_cast<std::size_t>(dag.num_nodes()));
    std::vector<NodeId> batch(state.ready().begin(), state.ready().end());
    std::sort(batch.begin(), batch.end());
    ASSERT_TRUE(std::adjacent_find(batch.begin(), batch.end()) == batch.end());
    for (NodeId node : batch) {
      state.advance(node, state.remaining_work(node));
    }
  }
  EXPECT_DOUBLE_EQ(state.total_remaining_work(), 0.0);
}

}  // namespace
}  // namespace dagsched
