// The admission audit trail: every queue transition is recorded with the
// right reason.
#include <gtest/gtest.h>

#include <memory>

#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

using Action = AuditEvent::Action;

std::vector<Action> actions_for(const DeadlineScheduler& scheduler,
                                JobId job) {
  std::vector<Action> actions;
  for (const AuditEvent& event : scheduler.audit()) {
    if (event.job == job) actions.push_back(event.action);
  }
  return actions;
}

SimResult run(const JobSet& jobs, DeadlineScheduler& scheduler, ProcCount m) {
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  return simulate(jobs, scheduler, *selector, options);
}

TEST(Audit, DisabledByDefault) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_parallel_block(8, 1.0)), 0.0, 10.0,
                              1.0));
  jobs.finalize();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  run(jobs, scheduler, 8);
  EXPECT_TRUE(scheduler.audit().empty());
}

TEST(Audit, RecordsAdmissionAndRejectionReasons) {
  const ProcCount m = 16;
  const double eps = 0.5;
  Dag d1 = make_parallel_block(30, 1.0);
  const Time slack_dl =
      (1.0 + eps) *
      ((d1.total_work() - d1.span()) / static_cast<double>(m) + d1.span());
  JobSet jobs;
  // Job 0: admitted directly.
  jobs.add(Job::with_deadline(share(std::move(d1)), 0.0, slack_dl, 1.0));
  // Job 1: same shape/deadline, same window -> rejected (window full),
  // never fresh again -> dropped stale.
  jobs.add(Job::with_deadline(share(make_parallel_block(30, 1.0)), 0.0,
                              slack_dl, 1.0));
  // Job 2: deadline below (1+2delta)*L -- no processor count can make it
  // delta-good.
  jobs.add(Job::with_deadline(share(make_parallel_block(30, 1.0)), 0.0,
                              1.2, 1.0));
  // Job 3: long deadline, rejected initially, promoted at completion.
  jobs.add(Job::with_deadline(share(make_parallel_block(30, 1.0)), 0.0,
                              30.0, 1.0));
  jobs.finalize();

  DeadlineScheduler scheduler(
      {.params = Params::from_epsilon(eps), .record_audit = true});
  run(jobs, scheduler, m);

  EXPECT_EQ(actions_for(scheduler, 0),
            std::vector<Action>{Action::kAdmitted});
  {
    const auto job1 = actions_for(scheduler, 1);
    ASSERT_FALSE(job1.empty());
    EXPECT_EQ(job1.front(), Action::kQueuedWindowFull);
    EXPECT_EQ(job1.back(), Action::kDroppedStale);
  }
  {
    const auto job2 = actions_for(scheduler, 2);
    ASSERT_FALSE(job2.empty());
    EXPECT_EQ(job2.front(), Action::kQueuedNotGood);
  }
  {
    const auto job3 = actions_for(scheduler, 3);
    ASSERT_GE(job3.size(), 2u);
    EXPECT_EQ(job3.front(), Action::kQueuedWindowFull);
    EXPECT_EQ(job3.back(), Action::kPromoted);
  }
  // Times are non-decreasing.
  for (std::size_t i = 1; i < scheduler.audit().size(); ++i) {
    EXPECT_GE(scheduler.audit()[i].time, scheduler.audit()[i - 1].time);
  }
}

TEST(Audit, ExpiredInQRecorded) {
  // A job admitted to Q but starved past its deadline by denser later
  // arrivals (the preemption-trap mechanic, without admission protection).
  const ProcCount m = 16;
  JobSet jobs;
  auto dag = share(make_parallel_block(65, 1.0));  // n = 13 at D below
  jobs.add(Job::with_deadline(dag, 0.0, 7.5, 1.0));
  jobs.add(Job::with_deadline(dag, 1.0, 7.5, 10.0));  // denser, steals procs
  jobs.finalize();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5),
                               .enforce_admission = false,
                               .record_audit = true});
  run(jobs, scheduler, m);
  const auto job0 = actions_for(scheduler, 0);
  ASSERT_FALSE(job0.empty());
  EXPECT_EQ(job0.front(), Action::kAdmitted);
  EXPECT_EQ(job0.back(), Action::kExpiredInQ);
}

TEST(Audit, ActionNamesAreStable) {
  EXPECT_STREQ(audit_action_name(Action::kAdmitted), "admitted");
  EXPECT_STREQ(audit_action_name(Action::kQueuedWindowFull),
               "queued:window-full");
  EXPECT_STREQ(audit_action_name(Action::kExpiredInQ), "expired-in-Q");
}

TEST(Audit, EveryArrivedJobHasAFirstEvent) {
  Rng rng(51);
  WorkloadConfig config = scenario_shootout(1.5, 8, 0.3, 1.2);
  config.horizon = 80.0;
  const JobSet jobs = generate_workload(rng, config);
  DeadlineScheduler scheduler(
      {.params = Params::from_epsilon(0.5), .record_audit = true});
  run(jobs, scheduler, 8);
  std::vector<bool> seen(jobs.size(), false);
  for (const AuditEvent& event : scheduler.audit()) {
    seen[event.job] = true;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "job " << i << " has no audit event";
  }
}

}  // namespace
}  // namespace dagsched
