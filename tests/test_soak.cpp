// Soak test: a large instance through the full stack, checking global
// invariants scale (no quadratic blowups in queues, no accounting drift).
#include <gtest/gtest.h>

#include "core/deadline_scheduler.h"
#include "exp/runner.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

TEST(Soak, ThousandsOfJobsThroughEventEngine) {
  Rng rng(20260707);
  WorkloadConfig config = scenario_shootout(1.2, 16, 0.3, 1.2);
  config.horizon = 3000.0;  // ~2-3k jobs
  const JobSet jobs = generate_workload(rng, config);
  ASSERT_GT(jobs.size(), 1500u);

  for (const char* name : {"s", "edf", "hdf"}) {
    auto scheduler = make_named_scheduler(name, 0.5);
    RunConfig run;
    run.m = 16;
    const RunMetrics metrics = run_workload(jobs, *scheduler, run);
    // Accounting sanity at scale.
    EXPECT_GT(metrics.completed, jobs.size() / 10) << name;
    EXPECT_LE(metrics.profit, jobs.total_peak_profit() + 1e-6) << name;
    EXPECT_GT(metrics.profit, 0.0) << name;
    // Busy time cannot exceed machine capacity over the simulated span.
    EXPECT_LE(metrics.busy_proc_time, 16.0 * metrics.end_time + 1e-6)
        << name;
    // Decision count stays near-linear in jobs + nodes (guards against a
    // quadratic regression in the engine or queues).
    EXPECT_LT(metrics.decisions, 80u * jobs.size()) << name;
  }
}

TEST(Soak, SchedulerSQueuesStayBounded) {
  Rng rng(99887766);
  WorkloadConfig config = scenario_thm2(0.5, 2.0, 16);  // heavy overload
  config.horizon = 1000.0;
  const JobSet jobs = generate_workload(rng, config);
  ASSERT_GT(jobs.size(), 500u);
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  RunConfig run;
  run.m = 16;
  const RunMetrics metrics = run_workload(jobs, scheduler, run);
  // Every started job is accounted: started profit bounded by total.
  EXPECT_LE(scheduler.started_profit(), jobs.total_peak_profit() + 1e-6);
  EXPECT_LE(scheduler.started_count(), jobs.size());
  EXPECT_GT(metrics.completed, 0u);
}

}  // namespace
}  // namespace dagsched
