// Unit tests for Dag / DagBuilder: validation, CSR adjacency, metrics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "dag/builder.h"
#include "dag/dag.h"
#include "dag/dot.h"

namespace dagsched {
namespace {

Dag diamond() {
  // a -> {b, c} -> d with weights 1, 2, 3, 4.
  DagBuilder b;
  const NodeId a = b.add_node(1.0);
  const NodeId n2 = b.add_node(2.0);
  const NodeId n3 = b.add_node(3.0);
  const NodeId d = b.add_node(4.0);
  b.add_edge(a, n2);
  b.add_edge(a, n3);
  b.add_edge(n2, d);
  b.add_edge(n3, d);
  return std::move(b).build();
}

TEST(DagBuilder, RejectsEmpty) {
  DagBuilder b;
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(DagBuilder, RejectsNonPositiveWork) {
  DagBuilder b;
  EXPECT_THROW(b.add_node(0.0), std::invalid_argument);
  EXPECT_THROW(b.add_node(-1.0), std::invalid_argument);
}

TEST(DagBuilder, RejectsSelfEdge) {
  DagBuilder b;
  const NodeId a = b.add_node(1.0);
  EXPECT_THROW(b.add_edge(a, a), std::invalid_argument);
}

TEST(DagBuilder, RejectsOutOfRangeEdge) {
  DagBuilder b;
  const NodeId a = b.add_node(1.0);
  EXPECT_THROW(b.add_edge(a, 5), std::invalid_argument);
}

TEST(DagBuilder, RejectsDuplicateEdge) {
  DagBuilder b;
  const NodeId a = b.add_node(1.0);
  const NodeId c = b.add_node(1.0);
  b.add_edge(a, c);
  b.add_edge(a, c);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(DagBuilder, RejectsCycle) {
  DagBuilder b;
  const NodeId a = b.add_node(1.0);
  const NodeId c = b.add_node(1.0);
  const NodeId d = b.add_node(1.0);
  b.add_edge(a, c);
  b.add_edge(c, d);
  b.add_edge(d, a);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(Dag, DiamondMetrics) {
  const Dag dag = diamond();
  EXPECT_EQ(dag.num_nodes(), 4u);
  EXPECT_EQ(dag.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 10.0);
  // Longest path a -> c(3) -> d: 1 + 3 + 4 = 8.
  EXPECT_DOUBLE_EQ(dag.span(), 8.0);
}

TEST(Dag, DiamondAdjacency) {
  const Dag dag = diamond();
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sources()[0], 0u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  EXPECT_EQ(dag.sinks()[0], 3u);
  EXPECT_EQ(dag.out_degree(0), 2u);
  EXPECT_EQ(dag.in_degree(3), 2u);
  EXPECT_EQ(dag.successors(1).size(), 1u);
  EXPECT_EQ(dag.successors(1)[0], 3u);
  EXPECT_EQ(dag.predecessors(2).size(), 1u);
  EXPECT_EQ(dag.predecessors(2)[0], 0u);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag dag = diamond();
  const auto topo = dag.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (NodeId succ : dag.successors(v)) {
      EXPECT_LT(pos[v], pos[succ]);
    }
  }
}

TEST(Dag, Levels) {
  const Dag dag = diamond();
  EXPECT_DOUBLE_EQ(dag.top_level(0), 1.0);
  EXPECT_DOUBLE_EQ(dag.top_level(1), 3.0);   // 1 + 2
  EXPECT_DOUBLE_EQ(dag.top_level(2), 4.0);   // 1 + 3
  EXPECT_DOUBLE_EQ(dag.top_level(3), 8.0);   // 1 + 3 + 4
  EXPECT_DOUBLE_EQ(dag.bottom_level(0), 8.0);
  EXPECT_DOUBLE_EQ(dag.bottom_level(1), 6.0);  // 2 + 4
  EXPECT_DOUBLE_EQ(dag.bottom_level(2), 7.0);  // 3 + 4
  EXPECT_DOUBLE_EQ(dag.bottom_level(3), 4.0);
}

TEST(Dag, DisconnectedComponentsAllowed) {
  DagBuilder b;
  b.add_node(2.0);
  b.add_node(3.0);
  const Dag dag = std::move(b).build();
  EXPECT_EQ(dag.sources().size(), 2u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 5.0);
  EXPECT_DOUBLE_EQ(dag.span(), 3.0);
}

TEST(Dag, AddChainHelper) {
  DagBuilder b;
  const auto [first, last] = b.add_chain(5, 2.0);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 4u);
  const Dag dag = std::move(b).build();
  EXPECT_DOUBLE_EQ(dag.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(dag.span(), 10.0);
}

TEST(Dot, ExportContainsNodesAndEdges) {
  const std::string dot = to_dot(diamond(), "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
  // Critical-path nodes (0, 2, 3) are highlighted.
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);
}

}  // namespace
}  // namespace dagsched
