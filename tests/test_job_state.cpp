// JobStateTable: the kernel's structure-of-arrays per-job state
// (sim/kernel/job_state.h) -- active-set tombstone compaction bound, arena
// reuse across resets, and the ActiveJobs skipping view.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "dag/generators.h"
#include "job/job.h"
#include "sim/context.h"
#include "sim/kernel/job_state.h"

namespace dagsched {
namespace {

JobSet make_jobs(std::size_t n) {
  auto dag = std::make_shared<const Dag>(make_single_node(1.0));
  JobSet jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.add(Job::with_deadline(dag, 0.0, 100.0, 1.0));
  }
  jobs.finalize();
  return jobs;
}

/// The documented bound: after maybe_compact(), the slot vector is never
/// longer than max(kCompactMinSlots, kCompactSlack x live) -- i.e. the
/// ActiveJobs skipping view degrades at most 2x past the minimum.
void expect_within_bound(const JobStateTable& state) {
  const std::size_t bound =
      std::max(JobStateTable::kCompactMinSlots,
               JobStateTable::kCompactSlack * state.active_live());
  EXPECT_LE(state.active_slots().size(), bound)
      << "live=" << state.active_live();
}

TEST(JobStateTable, CompactionBoundsTombstoneSlack) {
  const std::size_t n = 4096;
  const JobSet jobs = make_jobs(n);
  JobStateTable state;
  state.reset(jobs);

  // Activate everything, then deactivate in batches of varying size; after
  // every batch's maybe_compact() the 2x bound must hold.
  for (JobId id = 0; id < n; ++id) state.activate(id);
  EXPECT_EQ(state.active_live(), n);
  JobId next = 0;
  for (const std::size_t batch : {1u, 7u, 64u, 500u, 1000u, 2000u}) {
    for (std::size_t i = 0; i < batch && next < n; ++i) {
      state.deactivate(next++);
    }
    state.maybe_compact();
    expect_within_bound(state);
  }
  // Drain the rest one at a time -- the worst case for tombstone pile-up.
  while (next < n) {
    state.deactivate(next++);
    state.maybe_compact();
    expect_within_bound(state);
  }
  EXPECT_EQ(state.active_live(), 0u);
}

TEST(JobStateTable, CompactionPreservesArrivalOrderAndPositions) {
  const std::size_t n = 512;
  const JobSet jobs = make_jobs(n);
  JobStateTable state;
  state.reset(jobs);
  for (JobId id = 0; id < n; ++id) state.activate(id);
  // Tombstone every even job, forcing a compaction.
  for (JobId id = 0; id < n; id += 2) state.deactivate(id);
  state.maybe_compact();
  expect_within_bound(state);

  // The skipping view sees exactly the odd jobs, in arrival order.
  std::vector<JobId> seen;
  for (const JobId id : ActiveJobs(&state.active_slots(),
                                   state.active_live())) {
    seen.push_back(id);
  }
  ASSERT_EQ(seen.size(), n / 2);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<JobId>(2 * i + 1));
  }
  // Positions stay consistent: deactivating post-compaction still works.
  state.deactivate(1);
  EXPECT_EQ(state.active_live(), n / 2 - 1);
}

TEST(JobStateTable, ResetReusesArenaCapacity) {
  const std::size_t n = 64;
  auto dag = std::make_shared<const Dag>(make_chain(8, 1.0));
  JobSet jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.add(Job::with_deadline(dag, 0.0, 100.0, 1.0));
  }
  jobs.finalize();

  JobStateTable state;
  state.reset(jobs);
  for (JobId id = 0; id < n; ++id) {
    state.emplace_unfolding(id, jobs[id].dag());
  }
  const std::size_t high = state.unfolding_arena().high_water();
  EXPECT_GT(high, 0u);

  state.reset(jobs);
  EXPECT_EQ(state.unfolding_arena().used(), 0u);
  const std::size_t capacity = state.unfolding_arena().capacity();
  for (JobId id = 0; id < n; ++id) {
    state.emplace_unfolding(id, jobs[id].dag());
  }
  // Same working set: the coalesced arena chunk absorbs it with no growth.
  EXPECT_EQ(state.unfolding_arena().capacity(), capacity);
  EXPECT_EQ(state.unfolding_arena().high_water(), high);
}

}  // namespace
}  // namespace dagsched
