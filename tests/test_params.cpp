// Params: the paper's constant constraints (Table 1).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/params.h"

namespace dagsched {
namespace {

TEST(Params, FromEpsilonSatisfiesAllConstraints) {
  for (double eps : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    const Params p = Params::from_epsilon(eps);
    EXPECT_DOUBLE_EQ(p.epsilon, eps);
    EXPECT_LT(p.delta, eps / 2.0);
    EXPECT_GT(p.delta, 0.0);
    EXPECT_GE(p.c, 1.0 + 1.0 / (p.delta * eps));
    EXPECT_NEAR(p.b, std::sqrt((1.0 + 2.0 * p.delta) / (1.0 + eps)), 1e-15);
    EXPECT_LT(p.b, 1.0);
    EXPECT_GT(p.a(), 1.0);
  }
}

TEST(Params, CompletionFractionPositive) {
  // Lemma 5's constant eps - 1/((c-1) delta) must be strictly positive for
  // the canonical parameterization.
  for (double eps : {0.1, 0.5, 1.0, 3.0}) {
    const Params p = Params::from_epsilon(eps);
    EXPECT_GT(p.completion_fraction(), 0.0) << "eps=" << eps;
  }
}

TEST(Params, AMatchesLemma3Formula) {
  const Params p = Params::from_epsilon(0.5);  // delta = 0.125
  EXPECT_NEAR(p.a(), 1.0 + (1.0 + 0.25) / (0.5 - 0.25), 1e-12);  // = 6
}

TEST(Params, RejectsInvalidEpsilon) {
  EXPECT_THROW(Params::from_epsilon(0.0), std::invalid_argument);
  EXPECT_THROW(Params::from_epsilon(-1.0), std::invalid_argument);
}

TEST(Params, ExplicitValidation) {
  // Valid explicit parameterization.
  const Params p = Params::explicit_params(0.5, 0.2, 20.0);
  EXPECT_DOUBLE_EQ(p.delta, 0.2);
  // delta >= eps/2 rejected.
  EXPECT_THROW(Params::explicit_params(0.5, 0.25, 100.0),
               std::invalid_argument);
  // c below 1 + 1/(delta*eps) = 11 rejected.
  EXPECT_THROW(Params::explicit_params(0.5, 0.2, 5.0), std::invalid_argument);
}

TEST(Params, ValidateRejectsTamperedB) {
  Params p = Params::from_epsilon(0.5);
  p.b = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace dagsched
