// Workload generation: determinism, load targeting, deadline/profit policy
// semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/scenarios.h"
#include "workload/workload.h"

namespace dagsched {
namespace {

TEST(Workload, DeterministicPerSeed) {
  WorkloadConfig config;
  config.m = 8;
  config.target_load = 0.7;
  config.horizon = 100.0;
  Rng r1(42), r2(42), r3(43);
  const JobSet a = generate_workload(r1, config);
  const JobSet b = generate_workload(r2, config);
  const JobSet c = generate_workload(r3, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].release(), b[i].release());
    EXPECT_DOUBLE_EQ(a[i].work(), b[i].work());
    EXPECT_DOUBLE_EQ(a[i].peak_profit(), b[i].peak_profit());
  }
  // Different seed gives a different instance (overwhelmingly likely).
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < std::min(a.size(), c.size()); ++i) {
    differs = a[i].release() != c[i].release() || a[i].work() != c[i].work();
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, HitsTargetLoadApproximately) {
  WorkloadConfig config;
  config.m = 16;
  config.target_load = 0.8;
  config.horizon = 2000.0;  // long horizon for concentration
  Rng rng(7);
  const JobSet jobs = generate_workload(rng, config);
  const double load = jobs.utilization(config.m, config.horizon);
  EXPECT_NEAR(load, 0.8, 0.2);
}

TEST(Workload, SortedAndNonNegativeReleases) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kPeriodicBurst,
        ArrivalKind::kUniform}) {
    WorkloadConfig config;
    config.arrivals.kind = kind;
    config.horizon = 200.0;
    Rng rng(11);
    const JobSet jobs = generate_workload(rng, config);
    EXPECT_TRUE(jobs.sorted_by_release());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_GE(jobs[i].release(), 0.0);
      EXPECT_LT(jobs[i].release(), config.horizon);
    }
  }
}

TEST(Workload, IntegralReleasesFlag) {
  WorkloadConfig config;
  config.integral_releases = true;
  config.horizon = 100.0;
  Rng rng(13);
  const JobSet jobs = generate_workload(rng, config);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs[i].release(), std::floor(jobs[i].release()));
  }
}

TEST(DeadlinePolicyTest, ProportionalSlackExact) {
  Rng rng(1);
  DeadlinePolicy policy;
  policy.kind = DeadlinePolicy::Kind::kProportionalSlack;
  policy.eps = 0.5;
  const Time d = assign_deadline(rng, policy, 100.0, 10.0, 8);
  EXPECT_DOUBLE_EQ(d, 1.5 * (90.0 / 8.0 + 10.0));
}

TEST(DeadlinePolicyTest, TightIsNearIdealBound) {
  Rng rng(1);
  DeadlinePolicy policy;
  policy.kind = DeadlinePolicy::Kind::kTight;
  policy.tight_margin = 0.01;
  // W=100, L=10, m=8: ideal = max(10, 12.5) = 12.5.
  EXPECT_DOUBLE_EQ(assign_deadline(rng, policy, 100.0, 10.0, 8),
                   12.5 * 1.01);
  // Chain-dominant: W=20, L=15, m=8: ideal = 15.
  EXPECT_DOUBLE_EQ(assign_deadline(rng, policy, 20.0, 15.0, 8), 15.0 * 1.01);
}

TEST(DeadlinePolicyTest, ReasonableAtLeastGreedyBound) {
  Rng rng(5);
  DeadlinePolicy policy;
  policy.kind = DeadlinePolicy::Kind::kReasonable;
  policy.extra = 2.0;
  for (int i = 0; i < 100; ++i) {
    const Time d = assign_deadline(rng, policy, 64.0, 4.0, 16);
    const double greedy = 60.0 / 16.0 + 4.0;
    EXPECT_GE(d, greedy - 1e-9);
    EXPECT_LE(d, greedy * 3.0 + 1e-9);
  }
}

TEST(DeadlinePolicyTest, UniformSlackWithinRange) {
  Rng rng(5);
  DeadlinePolicy policy;
  policy.kind = DeadlinePolicy::Kind::kUniformSlack;
  policy.eps_lo = 0.2;
  policy.eps_hi = 0.4;
  const double greedy = 60.0 / 16.0 + 4.0;
  for (int i = 0; i < 100; ++i) {
    const Time d = assign_deadline(rng, policy, 64.0, 4.0, 16);
    EXPECT_GE(d, 1.2 * greedy - 1e-9);
    EXPECT_LE(d, 1.4 * greedy + 1e-9);
  }
}

TEST(ProfitPolicyTest, ShapesMatchConfig) {
  Rng rng(3);
  ProfitPolicy policy;
  policy.shape = ProfitPolicy::Shape::kStep;
  EXPECT_TRUE(assign_profit(rng, policy, 10.0, 5.0).is_step());
  policy.shape = ProfitPolicy::Shape::kPlateauLinear;
  const ProfitFn linear = assign_profit(rng, policy, 10.0, 5.0);
  EXPECT_FALSE(linear.is_step());
  EXPECT_DOUBLE_EQ(linear.plateau_end(), 5.0);
  EXPECT_DOUBLE_EQ(linear.support_end(), 10.0);  // decay = 1.0
  policy.shape = ProfitPolicy::Shape::kPlateauExp;
  EXPECT_EQ(assign_profit(rng, policy, 10.0, 5.0).support_end(),
            kTimeInfinity);
}

TEST(ProfitPolicyTest, ProportionalWorkBoundsDensitySpread) {
  Rng rng(9);
  ProfitPolicy policy;
  policy.magnitude = ProfitPolicy::Magnitude::kProportionalWork;
  policy.lo = 0.5;
  policy.hi = 2.0;
  for (int i = 0; i < 100; ++i) {
    const Work w = rng.uniform(1.0, 100.0);
    const ProfitFn fn = assign_profit(rng, policy, w, 10.0);
    const double classic_density = fn.peak() / w;
    EXPECT_GE(classic_density, 0.5 - 1e-9);
    EXPECT_LE(classic_density, 2.0 + 1e-9);
  }
}

TEST(Scenarios, PresetsAreSane) {
  const WorkloadConfig thm2 = scenario_thm2(0.5, 0.7, 16);
  EXPECT_EQ(thm2.deadline.kind, DeadlinePolicy::Kind::kProportionalSlack);
  EXPECT_DOUBLE_EQ(thm2.deadline.eps, 0.5);

  const WorkloadConfig tight = scenario_tight(0.7, 16);
  EXPECT_EQ(tight.deadline.kind, DeadlinePolicy::Kind::kTight);

  const WorkloadConfig profit =
      scenario_profit(0.5, 0.7, 16, ProfitPolicy::Shape::kPlateauExp);
  EXPECT_TRUE(profit.integral_releases);
  EXPECT_EQ(profit.profit.shape, ProfitPolicy::Shape::kPlateauExp);

  const WorkloadConfig shootout = scenario_shootout(0.7, 16, 0.1, 1.0);
  EXPECT_EQ(shootout.profit.magnitude, ProfitPolicy::Magnitude::kPareto);
  // All presets generate non-empty workloads.
  for (const WorkloadConfig& config : {thm2, tight, profit, shootout}) {
    Rng rng(21);
    EXPECT_GT(generate_workload(rng, config).size(), 0u);
  }
}

TEST(SampleDag, AllFamiliesProduceValidDags) {
  Rng rng(17);
  for (const DagFamily family :
       {DagFamily::kChain, DagFamily::kParallelBlock, DagFamily::kForkJoin,
        DagFamily::kLayered, DagFamily::kSeriesParallel, DagFamily::kRandom,
        DagFamily::kMixed, DagFamily::kWavefront, DagFamily::kStencil,
        DagFamily::kMapReduce}) {
    for (int i = 0; i < 10; ++i) {
      const Dag dag = sample_dag(rng, family, 1.0);
      EXPECT_GE(dag.num_nodes(), 1u);
      EXPECT_LE(dag.span(), dag.total_work() + 1e-9);
    }
  }
}

}  // namespace
}  // namespace dagsched
