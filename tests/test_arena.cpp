// BumpArena / NodePool / PoolAllocator / DaryHeap: the allocators and heap
// behind the zero-steady-state-allocation contract (util/arena.h,
// util/dary_heap.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/dary_heap.h"
#include "util/rng.h"
#include "util/types.h"

namespace dagsched {
namespace {

TEST(BumpArena, AlignmentAndDisjointness) {
  BumpArena arena;
  auto* a = static_cast<char*>(arena.allocate(3, 1));
  auto* b = arena.allocate_array<double>(4);
  auto* c = arena.allocate_array<std::uint32_t>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint32_t), 0u);
  // Write through every pointer; distinct regions must not clobber.
  a[0] = 'x';
  for (int i = 0; i < 4; ++i) b[i] = 1.5 * i;
  for (std::uint32_t i = 0; i < 5; ++i) c[i] = 100u + i;
  EXPECT_EQ(a[0], 'x');
  EXPECT_DOUBLE_EQ(b[3], 4.5);
  EXPECT_EQ(c[4], 104u);
  EXPECT_GE(arena.used(), 3 + 4 * sizeof(double) + 5 * sizeof(std::uint32_t));
  EXPECT_EQ(arena.high_water(), arena.used());
}

TEST(BumpArena, GrowsAcrossChunksAndCoalescesOnReset) {
  BumpArena arena;
  // Force multiple chunk spills (initial chunk is 4 KiB).
  for (int i = 0; i < 64; ++i) arena.allocate_array<double>(128);  // 64 KiB
  const std::size_t high = arena.high_water();
  EXPECT_GE(high, 64u * 128u * sizeof(double));

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), high);
  EXPECT_GE(arena.capacity(), high);
  // The same working set now fits in the coalesced chunk: capacity must not
  // change while re-allocating it.
  const std::size_t capacity = arena.capacity();
  for (int i = 0; i < 64; ++i) arena.allocate_array<double>(128);
  EXPECT_EQ(arena.capacity(), capacity);
}

TEST(BumpArena, ReservePresizesASingleChunk) {
  BumpArena arena;
  arena.reserve(1 << 16);
  EXPECT_GE(arena.capacity(), std::size_t{1} << 16);
  const std::size_t capacity = arena.capacity();
  for (int i = 0; i < 64; ++i) arena.allocate_array<double>(128);  // 64 KiB
  EXPECT_EQ(arena.capacity(), capacity);  // never spilled
}

TEST(NodePool, RecyclesFreedNodesLifo) {
  NodePool pool;
  void* a = pool.allocate(48);
  void* b = pool.allocate(48);
  EXPECT_EQ(pool.live(), 2u);
  pool.deallocate(a);
  pool.deallocate(b);
  EXPECT_EQ(pool.live(), 0u);
  // LIFO: the most recently freed node comes back first.
  EXPECT_EQ(pool.allocate(48), b);
  EXPECT_EQ(pool.allocate(48), a);
  const std::size_t capacity = pool.capacity_bytes();
  // A full free/realloc cycle within capacity must not grow the pool.
  pool.deallocate(a);
  pool.deallocate(b);
  pool.allocate(48);
  pool.allocate(48);
  EXPECT_EQ(pool.capacity_bytes(), capacity);
}

TEST(PoolAllocator, BacksAStdSetThroughClearRefillCycles) {
  NodePool pool;
  std::set<std::pair<double, JobId>, std::less<>,
           PoolAllocator<std::pair<double, JobId>>>
      set{std::less<>{}, PoolAllocator<std::pair<double, JobId>>(&pool)};
  for (JobId j = 0; j < 200; ++j) set.emplace(200.0 - j, j);
  EXPECT_EQ(set.size(), 200u);
  EXPECT_EQ(pool.live(), 200u);
  EXPECT_DOUBLE_EQ(set.begin()->first, 1.0);
  const std::size_t capacity = pool.capacity_bytes();
  set.clear();
  EXPECT_EQ(pool.live(), 0u);
  for (JobId j = 0; j < 200; ++j) set.emplace(static_cast<double>(j), j);
  EXPECT_EQ(pool.capacity_bytes(), capacity);  // fully recycled, no growth
}

TEST(DaryHeap, PopsInSortedOrderLikeAMinPriorityQueue) {
  using Entry = std::pair<Time, JobId>;
  DaryHeap<Entry> heap;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ref;
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const Entry e{rng.uniform(0.0, 100.0), static_cast<JobId>(i % 37)};
    heap.push(e);
    ref.push(e);
  }
  ASSERT_EQ(heap.size(), ref.size());
  while (!ref.empty()) {
    EXPECT_EQ(heap.top(), ref.top());
    heap.pop();
    ref.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeap, InterleavedPushPopMatchesReference) {
  DaryHeap<Time> heap;
  std::priority_queue<Time, std::vector<Time>, std::greater<>> ref;
  Rng rng(7);
  for (int round = 0; round < 3000; ++round) {
    if (ref.empty() || rng.uniform(0.0, 1.0) < 0.6) {
      const Time t = rng.uniform(0.0, 50.0);
      heap.push(t);
      ref.push(t);
    } else {
      EXPECT_DOUBLE_EQ(heap.top(), ref.top());
      heap.pop();
      ref.pop();
    }
  }
}

TEST(DaryHeap, ClearRetainsCapacity) {
  DaryHeap<std::pair<Time, JobId>> heap;
  for (JobId j = 0; j < 500; ++j) heap.push({static_cast<Time>(j), j});
  const std::size_t bytes = heap.memory_bytes();
  EXPECT_GE(bytes, 500u * sizeof(std::pair<Time, JobId>));
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.memory_bytes(), bytes);
}

}  // namespace
}  // namespace dagsched
