// Full-stack property tests: every scheduler produces a legal schedule
// (validated trace) and sane accounting on randomized workloads.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/equi.h"
#include "baselines/federated.h"
#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "exp/runner.h"
#include "sim/event_engine.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

enum class Which {
  kPaperS,
  kPaperSNoAdmission,
  kPaperSWorkConserving,
  kEdf,
  kLlf,
  kHdf,
  kFcfs,
  kFederated,
  kEqui,
  kPaperSRecompute,
};

std::unique_ptr<SchedulerBase> make_scheduler(Which which) {
  switch (which) {
    case Which::kPaperS:
      return std::make_unique<DeadlineScheduler>(
          DeadlineSchedulerOptions{.params = Params::from_epsilon(0.5)});
    case Which::kPaperSNoAdmission:
      return std::make_unique<DeadlineScheduler>(DeadlineSchedulerOptions{
          .params = Params::from_epsilon(0.5), .enforce_admission = false});
    case Which::kPaperSWorkConserving:
      return std::make_unique<DeadlineScheduler>(DeadlineSchedulerOptions{
          .params = Params::from_epsilon(0.5), .work_conserving = true});
    case Which::kEdf:
      return std::make_unique<ListScheduler>(
          ListSchedulerOptions{ListPolicy::kEdf, false, true});
    case Which::kLlf:
      return std::make_unique<ListScheduler>(
          ListSchedulerOptions{ListPolicy::kLlf, false, true});
    case Which::kHdf:
      return std::make_unique<ListScheduler>(
          ListSchedulerOptions{ListPolicy::kHdf, false, true});
    case Which::kFcfs:
      return std::make_unique<ListScheduler>(
          ListSchedulerOptions{ListPolicy::kFcfs, false, true});
    case Which::kFederated:
      return std::make_unique<FederatedScheduler>();
    case Which::kEqui:
      return std::make_unique<EquiScheduler>();
    case Which::kPaperSRecompute:
      return std::make_unique<DeadlineScheduler>(DeadlineSchedulerOptions{
          .params = Params::from_epsilon(0.5),
          .recompute_on_admission = true});
  }
  return nullptr;
}

class AllSchedulers
    : public ::testing::TestWithParam<std::tuple<Which, std::uint64_t>> {};

TEST_P(AllSchedulers, ProducesLegalScheduleAndSaneAccounting) {
  const auto [which, seed] = GetParam();
  Rng rng(seed);
  WorkloadConfig config = scenario_shootout(1.0, 8, 0.2, 1.2);
  config.horizon = 120.0;
  const JobSet jobs = generate_workload(rng, config);
  ASSERT_FALSE(jobs.empty());

  auto scheduler = make_scheduler(which);
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 8;
  options.record_trace = true;
  const SimResult result = simulate(jobs, *scheduler, *selector, options);

  // Legal machine behaviour, end to end.
  EXPECT_EQ(result.trace.validate(jobs, 8, 1.0), "") << scheduler->name();

  // Accounting invariants.
  EXPECT_LE(result.total_profit, jobs.total_peak_profit() + 1e-9);
  EXPECT_LE(result.jobs_completed, jobs.size());
  Work executed = 0.0;
  Work total_work = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    executed += result.outcomes[i].executed;
    total_work += jobs[i].work();
    if (result.outcomes[i].completed) {
      EXPECT_NEAR(result.outcomes[i].executed, jobs[i].work(), 1e-6);
      EXPECT_GE(result.outcomes[i].completion_time, jobs[i].release());
      EXPECT_GE(result.outcomes[i].first_start, jobs[i].release() - 1e-9);
    }
  }
  EXPECT_LE(executed, total_work + 1e-6);
  // Work conservation: busy processor-time equals executed work at speed 1.
  EXPECT_NEAR(result.busy_proc_time, executed, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllSchedulers,
    ::testing::Combine(
        ::testing::Values(Which::kPaperS, Which::kPaperSNoAdmission,
                          Which::kPaperSWorkConserving, Which::kEdf,
                          Which::kLlf, Which::kHdf, Which::kFcfs,
                          Which::kFederated, Which::kEqui,
                          Which::kPaperSRecompute),
        ::testing::Values(1001u, 1002u, 1003u)));

// Speed monotonicity: more speed never hurts the paper scheduler on the
// same instance (a sanity property behind Corollaries 1 and 2).
TEST(SpeedMonotonicity, PaperSchedulerProfitsFromSpeed) {
  Rng rng(4242);
  WorkloadConfig config = scenario_tight(0.8, 8);
  config.horizon = 120.0;
  const JobSet jobs = generate_workload(rng, config);
  double prev = -1.0;
  for (const double speed : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
    RunConfig run;
    run.m = 8;
    run.speed = speed;
    const RunMetrics metrics = run_workload(jobs, scheduler, run);
    // Not strictly monotone in theory (admission is myopic), but must not
    // collapse; allow small dips.
    EXPECT_GE(metrics.profit, prev * 0.75) << "speed " << speed;
    prev = std::max(prev, metrics.profit);
  }
}

}  // namespace
}  // namespace dagsched
