// End-to-end fault injection through both engines: deterministic replay,
// cross-engine fault-timeline agreement, machine-model safety (no node on a
// down processor), and work conservation modulo accounted lost work.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "sim/event_engine.h"
#include "sim/node_selector.h"
#include "sim/slot_engine.h"

namespace dagsched {
namespace {

JobSet loose_workload(std::size_t n) {
  // Staggered releases, deadlines loose enough that everything finishes
  // even under churn (the work-conservation tests need full completion).
  JobSet jobs;
  for (std::size_t i = 0; i < n; ++i) {
    auto dag = std::make_shared<const Dag>(
        make_fig1_dag(3, 4, 1.0 + 0.25 * static_cast<double>(i % 3)));
    jobs.add(Job::with_deadline(dag, static_cast<Time>(2 * i), 4000.0, 1.0));
  }
  jobs.finalize();
  return jobs;
}

FaultInjector make_injector(ProcCount m, double mtbf, RestartPolicy restart,
                            bool integral = false, double overrun_prob = 0.0,
                            double overrun_factor = 1.0) {
  FaultPlanConfig config;
  config.seed = 17;
  config.mtbf = mtbf;
  config.mttr = 4.0;
  config.horizon = 80.0;
  config.min_procs = 2;
  config.integral_times = integral;
  config.restart = restart;
  config.overrun_prob = overrun_prob;
  config.overrun_factor = overrun_factor;
  return FaultInjector(build_fault_plan(config, m));
}

SimResult run_event(const JobSet& jobs, const FaultInjector* faults,
                    EventLog* log, bool record_trace = false) {
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  options.record_trace = record_trace;
  options.faults = faults;
  ObsSink sink;
  sink.events = log;
  options.obs = log != nullptr ? &sink : nullptr;
  EventEngine engine(jobs, scheduler, *selector, options);
  return engine.run();
}

SimResult run_slot(const JobSet& jobs, const FaultInjector* faults,
                   EventLog* log, bool record_trace = false) {
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = 4;
  options.record_trace = record_trace;
  options.faults = faults;
  ObsSink sink;
  sink.events = log;
  options.obs = log != nullptr ? &sink : nullptr;
  SlotEngine engine(jobs, scheduler, *selector, options);
  return engine.run();
}

TEST(FaultInjection, EventEngineReplayIsByteIdentical) {
  const JobSet jobs = loose_workload(10);
  const FaultInjector injector =
      make_injector(4, 12.0, RestartPolicy::kRestartFromZero);
  EventLog log_a, log_b;
  const SimResult a = run_event(jobs, &injector, &log_a);
  const SimResult b = run_event(jobs, &injector, &log_b);
  EXPECT_EQ(a.total_profit, b.total_profit);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.busy_proc_time, b.busy_proc_time);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(log_a.events(), log_b.events());
}

TEST(FaultInjection, SlotEngineReplayIsByteIdentical) {
  const JobSet jobs = loose_workload(10);
  const FaultInjector injector =
      make_injector(4, 12.0, RestartPolicy::kRestartFromZero, true);
  EventLog log_a, log_b;
  const SimResult a = run_slot(jobs, &injector, &log_a);
  const SimResult b = run_slot(jobs, &injector, &log_b);
  EXPECT_EQ(a.total_profit, b.total_profit);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(log_a.events(), log_b.events());
}

std::vector<DecisionEvent> proc_events(const EventLog& log) {
  std::vector<DecisionEvent> out;
  for (const DecisionEvent& event : log.events()) {
    if (event.kind == ObsEventKind::kProcDown ||
        event.kind == ObsEventKind::kProcUp) {
      out.push_back(event);
    }
  }
  return out;
}

TEST(FaultInjection, EnginesSeeTheSameFaultTimeline) {
  // With integral transition times both engines must deliver the identical
  // sequence of proc-down/proc-up events at the identical instants.  The
  // engines reach quiescence at different times (the slot engine is
  // discretized), so the shorter log must be an exact prefix of the longer.
  const JobSet jobs = loose_workload(10);
  const FaultInjector injector =
      make_injector(4, 10.0, RestartPolicy::kResume, true);
  ASSERT_TRUE(injector.has_churn());
  EventLog event_log, slot_log;
  run_event(jobs, &injector, &event_log);
  run_slot(jobs, &injector, &slot_log);
  const auto from_event = proc_events(event_log);
  const auto from_slot = proc_events(slot_log);
  ASSERT_FALSE(from_event.empty());
  ASSERT_FALSE(from_slot.empty());
  const std::size_t common = std::min(from_event.size(), from_slot.size());
  EXPECT_GT(common, from_event.size() / 2);
  for (std::size_t i = 0; i < common; ++i) {
    EXPECT_EQ(from_event[i].time, from_slot[i].time) << "transition " << i;
    EXPECT_EQ(from_event[i].kind, from_slot[i].kind) << "transition " << i;
    EXPECT_EQ(from_event[i].detail_value("proc", -1.0),
              from_slot[i].detail_value("proc", -1.0))
        << "transition " << i;
  }
}

TEST(FaultInjection, NoNodeExecutesOnDownProcessor) {
  const JobSet jobs = loose_workload(12);
  for (const bool slot : {false, true}) {
    const FaultInjector injector =
        make_injector(4, 8.0, RestartPolicy::kResume, slot);
    const SimResult result = slot
                                 ? run_slot(jobs, &injector, nullptr, true)
                                 : run_event(jobs, &injector, nullptr, true);
    ASSERT_FALSE(result.trace.empty());
    for (const TraceInterval& iv : result.trace.intervals()) {
      for (const DownInterval& down : injector.plan().down_intervals()) {
        if (down.proc != iv.proc) continue;
        const bool overlaps =
            iv.start < down.end - 1e-9 && down.begin < iv.end - 1e-9;
        EXPECT_FALSE(overlaps)
            << (slot ? "slot" : "event") << " engine ran J" << iv.job << "/"
            << iv.node << " on proc " << iv.proc << " during [" << iv.start
            << ", " << iv.end << ") but the proc is down over ["
            << down.begin << ", " << down.end << ")";
      }
    }
  }
}

TEST(FaultInjection, WorkConservationModuloLostWork) {
  // Every job completes (loose deadlines), so the processor-time consumed
  // must equal the total declared work plus exactly the work thrown away by
  // restart-from-zero recoveries.
  const JobSet jobs = loose_workload(8);
  const FaultInjector injector =
      make_injector(4, 10.0, RestartPolicy::kRestartFromZero);
  const SimResult result = run_event(jobs, &injector, nullptr);
  ASSERT_EQ(result.jobs_completed, jobs.size());
  Work total = 0.0;
  for (const Job& job : jobs.jobs()) total += job.work();
  EXPECT_NEAR(result.busy_proc_time, total + result.lost_work, 1e-6);
}

TEST(FaultInjection, ResumePolicyLosesNoWork) {
  const JobSet jobs = loose_workload(8);
  const FaultInjector injector =
      make_injector(4, 10.0, RestartPolicy::kResume);
  const SimResult result = run_event(jobs, &injector, nullptr);
  ASSERT_EQ(result.jobs_completed, jobs.size());
  EXPECT_EQ(result.lost_work, 0.0);
  Work total = 0.0;
  for (const Job& job : jobs.jobs()) total += job.work();
  EXPECT_NEAR(result.busy_proc_time, total, 1e-6);
}

TEST(FaultInjection, OverrunConsumesActualWorkButShowsDeclared) {
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_chain(1, 10.0)), 0.0, 4000.0, 1.0));
  jobs.finalize();
  FaultPlanConfig config;
  config.seed = 9;
  config.overrun_prob = 1.0;
  config.overrun_factor = 2.0;
  const FaultInjector injector(build_fault_plan(config, 4));
  const double mult = injector.plan().work_multiplier(0, 0);
  ASSERT_GT(mult, 1.0);
  const SimResult result = run_event(jobs, &injector, nullptr);
  ASSERT_EQ(result.jobs_completed, 1u);
  EXPECT_NEAR(result.busy_proc_time, 10.0 * mult, 1e-9);
}

TEST(FaultInjection, QuietInjectorMatchesNoInjector) {
  // min_procs = m swallows every candidate failure and overruns are off, so
  // an attached injector with nothing to inject must not perturb the run.
  const JobSet jobs = loose_workload(10);
  FaultPlanConfig config;
  config.seed = 17;
  config.mtbf = 10.0;
  config.mttr = 4.0;
  config.horizon = 80.0;
  config.min_procs = 4;
  const FaultInjector injector(build_fault_plan(config, 4));
  ASSERT_FALSE(injector.has_churn());
  const SimResult with = run_event(jobs, &injector, nullptr);
  const SimResult without = run_event(jobs, nullptr, nullptr);
  EXPECT_EQ(with.total_profit, without.total_profit);
  EXPECT_EQ(with.decisions, without.decisions);
  EXPECT_EQ(with.busy_proc_time, without.busy_proc_time);
  EXPECT_EQ(with.jobs_completed, without.jobs_completed);
}

TEST(FaultInjection, RestartEventsCarryLostWork) {
  const JobSet jobs = loose_workload(12);
  const FaultInjector injector =
      make_injector(4, 6.0, RestartPolicy::kRestartFromZero);
  EventLog log;
  const SimResult result = run_event(jobs, &injector, &log);
  Work event_lost = 0.0;
  std::size_t downs = 0;
  for (const DecisionEvent& event : log.events()) {
    if (event.kind == ObsEventKind::kNodeRestart) {
      event_lost += event.detail_value("lost");
    }
    if (event.kind == ObsEventKind::kProcDown) ++downs;
  }
  EXPECT_GT(downs, 0u);
  EXPECT_NEAR(event_lost, result.lost_work, 1e-9);
}

TEST(FaultInjection, DeadlineSchedulerShrinkReAdmits) {
  // The paper-S scheduler must survive shrinks: re-run condition (2) and
  // keep running.  We only require the run to terminate cleanly and stay
  // deterministic; policy details are covered by the scheduler unit tests.
  const JobSet jobs = loose_workload(12);
  const FaultInjector injector =
      make_injector(4, 8.0, RestartPolicy::kRestartFromZero);
  DeadlineScheduler scheduler(
      DeadlineSchedulerOptions{.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  options.faults = &injector;
  EventEngine engine(jobs, scheduler, *selector, options);
  const SimResult result = engine.run();
  EXPECT_FALSE(result.failed());
  EXPECT_GT(result.jobs_completed, 0u);
}

}  // namespace
}  // namespace dagsched
