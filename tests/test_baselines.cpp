// Baseline schedulers: ordering semantics and federated admission.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/federated.h"
#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/event_engine.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

SimResult run(const JobSet& jobs, SchedulerBase& scheduler, ProcCount m,
              std::function<void(const EngineContext&, const Assignment&)>
                  observer = nullptr) {
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  options.observer = std::move(observer);
  return simulate(jobs, scheduler, *sel, options);
}

TEST(ListSchedulerTest, EdfPrefersEarlierDeadline) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 0.0, 50.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 0.0, 5.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  JobId first = kInvalidJob;
  run(jobs, scheduler, 1,
      [&first](const EngineContext& ctx, const Assignment& assignment) {
        if (ctx.now() == 0.0 && first == kInvalidJob &&
            !assignment.allocs.empty()) {
          first = assignment.allocs.front().job;
        }
      });
  EXPECT_EQ(first, 1u);  // the tighter deadline
}

TEST(ListSchedulerTest, HdfPrefersDenserJob) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(4.0)), 0.0, 50.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 0.0, 50.0, 4.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kHdf, false, true});
  JobId first = kInvalidJob;
  run(jobs, scheduler, 1,
      [&first](const EngineContext& ctx, const Assignment& assignment) {
        if (ctx.now() == 0.0 && first == kInvalidJob &&
            !assignment.allocs.empty()) {
          first = assignment.allocs.front().job;
        }
      });
  EXPECT_EQ(first, 1u);  // density 2 vs 0.25
}

TEST(ListSchedulerTest, FcfsPrefersEarlierArrival) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(3.0)), 0.0, 50.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 1.0, 50.0, 9.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kFcfs, false, true});
  const SimResult result = run(jobs, scheduler, 1);
  // Job 0 runs to completion first despite job 1's profit.
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 3.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].completion_time, 4.0);
}

TEST(ListSchedulerTest, WorkConservingSplitsAcrossJobs) {
  // Two blocks of 4 ready nodes each on m=6: EDF gives 4 + 2.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_parallel_block(4, 1.0)), 0.0, 5.0,
                              1.0));
  jobs.add(Job::with_deadline(share(make_parallel_block(4, 1.0)), 0.0, 6.0,
                              1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  bool checked = false;
  run(jobs, scheduler, 6,
      [&checked](const EngineContext& ctx, const Assignment& assignment) {
        if (ctx.now() == 0.0 && !checked) {
          checked = true;
          ASSERT_EQ(assignment.allocs.size(), 2u);
          EXPECT_EQ(assignment.total_procs(), 6u);
          EXPECT_EQ(assignment.allocs[0].procs, 4u);
          EXPECT_EQ(assignment.allocs[1].procs, 2u);
        }
      });
  EXPECT_TRUE(checked);
}

TEST(ListSchedulerTest, DropsExpiredJobs) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(10, 1.0)), 0.0, 2.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 5.0, 10.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  const SimResult result = run(jobs, scheduler, 1);
  EXPECT_FALSE(result.outcomes[0].completed);
  EXPECT_TRUE(result.outcomes[1].completed);
  // Job 0 only ran until its deadline at t=2.
  EXPECT_LE(result.outcomes[0].executed, 2.0 + 1e-9);
}

TEST(ListSchedulerTest, ClairvoyantLaxityDeclaresItself) {
  ListScheduler plain({ListPolicy::kLlf, false, true});
  ListScheduler clairvoyant({ListPolicy::kLlf, true, true});
  EXPECT_FALSE(plain.clairvoyant());
  EXPECT_TRUE(clairvoyant.clairvoyant());
  EXPECT_NE(plain.name(), clairvoyant.name());
}

TEST(Federated, ComputesMinimalCluster) {
  // W=100, L=10, D=40: ceil(90/30) = 3 processors.
  JobSet jobs;
  Dag dag = make_fig2_dag(9, 91, 1.0);  // W=100, L=10
  ASSERT_DOUBLE_EQ(dag.total_work(), 100.0);
  ASSERT_DOUBLE_EQ(dag.span(), 10.0);
  jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, 40.0, 1.0));
  jobs.finalize();
  FederatedScheduler scheduler;
  bool checked = false;
  run(jobs, scheduler, 8,
      [&checked](const EngineContext& ctx, const Assignment& assignment) {
        if (ctx.now() == 0.0 && !checked && !assignment.allocs.empty()) {
          checked = true;
          EXPECT_EQ(assignment.allocs[0].procs, 3u);
        }
      });
  EXPECT_TRUE(checked);
  EXPECT_EQ(scheduler.admitted_count(), 1u);
}

TEST(Federated, RejectsWhenMachineCommitted) {
  JobSet jobs;
  // Each job needs ceil(30/(5-1)) = 8 of 8 processors... use two jobs that
  // each need 5 of 8: second rejected.
  for (int i = 0; i < 2; ++i) {
    Dag dag = make_fig2_dag(1, 40, 1.0);  // W=41, L=2
    // cluster = ceil(39 / (D - 2)); D = 10 -> ceil(39/8) = 5.
    jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, 10.0, 1.0));
  }
  jobs.finalize();
  FederatedScheduler scheduler;
  const SimResult result = run(jobs, scheduler, 8);
  EXPECT_EQ(scheduler.admitted_count(), 1u);
  EXPECT_TRUE(result.outcomes[0].completed);
  EXPECT_FALSE(result.outcomes[1].completed);
}

TEST(Federated, ClusterReleasedOnCompletion) {
  JobSet jobs;
  Dag d1 = make_parallel_block(8, 1.0);
  Dag d2 = make_parallel_block(8, 1.0);
  jobs.add(Job::with_deadline(share(std::move(d1)), 0.0, 3.0, 1.0));
  // Arrives after the first completes; cluster must be free again.
  jobs.add(Job::with_deadline(share(std::move(d2)), 4.0, 3.0, 1.0));
  jobs.finalize();
  FederatedScheduler scheduler;
  const SimResult result = run(jobs, scheduler, 8);
  EXPECT_EQ(scheduler.admitted_count(), 2u);
  EXPECT_EQ(result.jobs_completed, 2u);
}

TEST(Federated, InfeasibleDeadlineNeverAdmitted) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(10, 1.0)), 0.0, 5.0, 1.0));
  jobs.finalize();
  FederatedScheduler scheduler;
  const SimResult result = run(jobs, scheduler, 8);
  EXPECT_EQ(scheduler.admitted_count(), 0u);
  EXPECT_FALSE(result.outcomes[0].completed);
}

}  // namespace
}  // namespace dagsched
