// Scale smoke: the hot path at 10^4-job scale.
//
// The indexed queues and O(1) kernel bookkeeping only matter past the sizes
// the unit tests exercise, so this suite runs a 20k+ job integer workload
// end to end through both stepping drivers and checks (a) the engines still
// agree on every aggregate (the integer-workload equivalence of
// test_cross_engine.cpp, at scale), and (b) the decision count stays linear
// in the job count -- a quadratic scan re-sneaking into a callback shows up
// here as a blown budget or a timed-out test long before benchmarks run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "exp/runner.h"
#include "job/job.h"
#include "util/rng.h"

namespace dagsched {
namespace {

constexpr std::size_t kJobs = 20000;

// Heavy-traffic integer workload: unit node works, integer releases and
// deadlines, far more demand than 16 processors can serve -- the regime
// where the scheduler queues actually grow to O(10^4) members.
JobSet scale_workload() {
  Rng rng(29);
  JobSet jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const auto width = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto segments = static_cast<std::size_t>(rng.uniform_int(1, 2));
    auto dag = std::make_shared<const Dag>(
        make_fork_join(segments, width, 1.0, 1.0));
    const auto release = static_cast<Time>(rng.uniform_int(0, 2500));
    const auto slack = static_cast<Time>(rng.uniform_int(4, 40));
    jobs.add(Job::with_deadline(dag, release, release + slack,
                                std::floor(rng.uniform(1.0, 8.0))));
  }
  jobs.finalize();
  return jobs;
}

struct EngineRuns {
  RunMetrics event;
  RunMetrics slot;
};

template <typename MakeScheduler>
EngineRuns run_both(const JobSet& jobs, MakeScheduler make_scheduler) {
  EngineRuns out;
  RunConfig config;
  config.m = 16;
  {
    auto scheduler = make_scheduler();
    config.engine = EngineKind::kEvent;
    out.event = run_workload(jobs, *scheduler, config);
  }
  {
    auto scheduler = make_scheduler();
    config.engine = EngineKind::kSlot;
    out.slot = run_workload(jobs, *scheduler, config);
  }
  return out;
}

void expect_equal_metrics(const EngineRuns& runs) {
  EXPECT_NEAR(runs.event.profit, runs.slot.profit, 1e-6);
  EXPECT_NEAR(runs.event.fraction, runs.slot.fraction, 1e-9);
  EXPECT_EQ(runs.event.completed, runs.slot.completed);
  EXPECT_EQ(runs.event.num_jobs, runs.slot.num_jobs);
  EXPECT_EQ(runs.event.failure, SimFailureKind::kNone);
  EXPECT_EQ(runs.slot.failure, SimFailureKind::kNone);
}

// Decisions are triggered by arrivals, completions, deadlines, and slot
// boundaries; none of those is super-linear in the job count on this
// workload.  The budget is deliberately loose -- it exists to catch
// accidental O(n) decision storms, not to pin the exact count.
void expect_decision_budget(const RunMetrics& metrics, std::size_t num_jobs,
                            std::size_t horizon_slots) {
  EXPECT_LE(metrics.decisions, 8 * num_jobs + 4 * horizon_slots + 1000);
}

TEST(ScaleSmoke, PaperSchedulerAgreesAcrossEnginesAt20k) {
  const JobSet jobs = scale_workload();
  ASSERT_GE(jobs.size(), kJobs);
  const EngineRuns runs = run_both(jobs, [] {
    return std::make_unique<DeadlineScheduler>(
        DeadlineSchedulerOptions{.params = Params::from_epsilon(0.5)});
  });
  expect_equal_metrics(runs);
  EXPECT_GT(runs.event.completed, 0u);
  expect_decision_budget(runs.event, jobs.size(), 2600);
  expect_decision_budget(runs.slot, jobs.size(), 2600);
}

TEST(ScaleSmoke, EdfAgreesAcrossEnginesAt20k) {
  const JobSet jobs = scale_workload();
  const EngineRuns runs = run_both(jobs, [] {
    return std::make_unique<ListScheduler>(
        ListSchedulerOptions{ListPolicy::kEdf, false, true});
  });
  expect_equal_metrics(runs);
  EXPECT_GT(runs.event.completed, 0u);
  expect_decision_budget(runs.event, jobs.size(), 2600);
  expect_decision_budget(runs.slot, jobs.size(), 2600);
}

}  // namespace
}  // namespace dagsched
