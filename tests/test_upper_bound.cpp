// OPT upper bound: soundness (never below any achievable profit) and
// tightness (below the trivial bound when the machine is overloaded).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "opt/upper_bound.h"
#include "sim/event_engine.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

TEST(Feasibility, DetectsImpossibleJobs) {
  // Chain of 10 with deadline 5: even infinite processors need 10.
  const Job chain =
      Job::with_deadline(share(make_chain(10, 1.0)), 0.0, 5.0, 1.0);
  EXPECT_FALSE(clairvoyantly_feasible(chain, 64, 1.0));
  EXPECT_TRUE(clairvoyantly_feasible(chain, 64, 2.5));  // speed helps

  // Block of 16 with deadline 3 on 4 procs: W/m = 4 > 3.
  const Job block =
      Job::with_deadline(share(make_parallel_block(16, 1.0)), 0.0, 3.0, 1.0);
  EXPECT_FALSE(clairvoyantly_feasible(block, 4, 1.0));
  EXPECT_TRUE(clairvoyantly_feasible(block, 8, 1.0));
}

TEST(UpperBound, TrivialSumsFeasiblePeaks) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(10, 1.0)), 0.0, 5.0, 7.0));
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 2.0, 3.0));
  jobs.finalize();
  const OptBound bound = compute_opt_upper_bound(jobs, 4);
  // The chain is infeasible: only the second job's profit counts.
  EXPECT_DOUBLE_EQ(bound.trivial, 3.0);
  EXPECT_LE(bound.value(), 3.0 + 1e-9);
}

TEST(UpperBound, CapacityTightensOverload) {
  // 8 identical unit-node jobs, all in window [0, 2], m=1: capacity 2 of 8
  // work units => at most 2 jobs' profit.
  JobSet jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 2.0, 1.0));
  }
  jobs.finalize();
  const OptBound bound = compute_opt_upper_bound(jobs, 1);
  EXPECT_DOUBLE_EQ(bound.trivial, 8.0);
  ASSERT_TRUE(bound.lp_used);
  EXPECT_NEAR(bound.lp, 2.0, 1e-6);
}

TEST(UpperBound, UnboundedSupportContributesPeak) {
  JobSet jobs;
  jobs.add(Job(share(make_single_node(1.0)), 0.0,
               ProfitFn::plateau_exponential(5.0, 2.0, 0.1)));
  jobs.finalize();
  const OptBound bound = compute_opt_upper_bound(jobs, 1);
  EXPECT_DOUBLE_EQ(bound.value(), 5.0);
}

// Soundness property: the bound is >= the profit of every scheduler run we
// can produce (clairvoyant or not, any speed-1 configuration).
class UpperBoundSound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpperBoundSound, DominatesAchievedProfit) {
  Rng rng(GetParam());
  WorkloadConfig config;
  config.m = 8;
  config.target_load = rng.uniform(0.5, 2.0);
  config.horizon = 80.0;
  config.deadline.kind = DeadlinePolicy::Kind::kUniformSlack;
  config.deadline.eps_lo = 0.1;
  config.deadline.eps_hi = 1.5;
  const JobSet jobs = generate_workload(rng, config);
  if (jobs.empty()) GTEST_SKIP();

  const OptBound bound = compute_opt_upper_bound(jobs, config.m);

  for (const ListPolicy policy :
       {ListPolicy::kEdf, ListPolicy::kHdf, ListPolicy::kFcfs}) {
    for (const SelectorKind selector :
         {SelectorKind::kFifo, SelectorKind::kCriticalPath}) {
      ListScheduler scheduler({policy, false, true});
      auto sel = make_selector(selector);
      EngineOptions options;
      options.num_procs = config.m;
      const SimResult result = simulate(jobs, scheduler, *sel, options);
      EXPECT_LE(result.total_profit, bound.value() + 1e-6)
          << "policy=" << list_policy_name(policy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpperBoundSound,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(UpperBound, LpSkippedAboveJobCap) {
  JobSet jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.add(Job::with_deadline(share(make_single_node(1.0)),
                                static_cast<double>(i), 2.0, 1.0));
  }
  jobs.finalize();
  OptBoundOptions options;
  options.max_lp_jobs = 10;
  const OptBound bound = compute_opt_upper_bound(jobs, 1, options);
  EXPECT_FALSE(bound.lp_used);
  EXPECT_DOUBLE_EQ(bound.value(), bound.trivial);
}

}  // namespace
}  // namespace dagsched
