// Determinism regression: for every registered scheduler, the same seed and
// configuration must produce bit-identical results across runs -- the
// property every experiment in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

class Determinism : public ::testing::TestWithParam<std::string> {};

TEST_P(Determinism, IdenticalRunsProduceIdenticalResults) {
  const std::string name = GetParam();
  Rng rng1(12345), rng2(12345);
  WorkloadConfig config =
      name == "profit"
          ? scenario_profit(0.5, 0.8, 8, ProfitPolicy::Shape::kPlateauLinear)
          : scenario_shootout(1.2, 8, 0.3, 1.2);
  config.horizon = 80.0;
  const JobSet jobs1 = generate_workload(rng1, config);
  const JobSet jobs2 = generate_workload(rng2, config);

  RunConfig run;
  run.m = 8;
  run.engine = (name == "profit") ? EngineKind::kSlot : EngineKind::kEvent;
  auto s1 = make_named_scheduler(name, 0.5);
  auto s2 = make_named_scheduler(name, 0.5);
  const RunMetrics a = run_workload(jobs1, *s1, run);
  const RunMetrics b = run_workload(jobs2, *s2, run);
  EXPECT_EQ(a.profit, b.profit);  // bitwise, not NEAR
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.busy_proc_time, b.busy_proc_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, Determinism,
    ::testing::ValuesIn(named_scheduler_list()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Determinism, RandomSelectorIsSeedStable) {
  Rng rng(5);
  WorkloadConfig config = scenario_shootout(1.0, 8, 0.3, 1.0);
  config.horizon = 60.0;
  const JobSet jobs = generate_workload(rng, config);
  RunConfig run;
  run.m = 8;
  run.selector = SelectorKind::kRandom;
  run.selector_seed = 99;
  auto s1 = make_named_scheduler("edf");
  auto s2 = make_named_scheduler("edf");
  EXPECT_EQ(run_workload(jobs, *s1, run).profit,
            run_workload(jobs, *s2, run).profit);
}

TEST(Determinism, NamedSchedulerRegistryComplete) {
  for (const std::string& name : named_scheduler_list()) {
    EXPECT_NE(make_named_scheduler(name), nullptr) << name;
  }
  EXPECT_THROW(make_named_scheduler("definitely-not-a-scheduler"),
               std::invalid_argument);
}

}  // namespace
}  // namespace dagsched
