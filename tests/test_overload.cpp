// Graceful overload degradation: when decide() breaches its wall-clock
// budget, the kernel emits a machine-checkable `overload.breach` event and
// sheds the scheduler's lowest-value admissible work (kDrop events with
// `overload.shed.*` slugs); the first in-budget decision afterwards emits
// `overload.recovered`.  The probe hook replaces the measured latency so
// these tests are deterministic on any machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "sim/kernel/engine_factory.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

constexpr ProcCount kM = 4;

JobSet overload_jobs() {
  Rng rng(9);
  WorkloadConfig config = scenario_shootout(1.5, kM, 0.3, 1.2);
  config.horizon = 60.0;
  return generate_workload(rng, config);
}

struct OverloadOutcome {
  SimResult result;
  std::vector<DecisionEvent> events;
};

OverloadOutcome run_with_budget(const JobSet& jobs, const std::string& name,
                                EngineKind engine,
                                std::uint64_t decide_budget_ns,
                                std::size_t breach_from,
                                std::size_t breach_until,
                                std::size_t shed_max = 1) {
  auto scheduler = make_named_scheduler(name, 0.5);
  auto selector = make_selector(SelectorKind::kFifo, 1);
  EventLog log;
  ObsSink sink;
  sink.events = &log;
  SimOptions options;
  options.num_procs = kM;
  options.obs = &sink;
  options.decide_budget_ns = decide_budget_ns;
  options.overload_shed_max = shed_max;
  if (decide_budget_ns > 0) {
    // Deterministic latency: decisions in [breach_from, breach_until) take
    // 10x the budget; everything else is instantaneous.
    options.overload_probe = [=](std::size_t decision,
                                 std::uint64_t) -> std::uint64_t {
      if (decision >= breach_from && decision < breach_until) {
        return decide_budget_ns * 10;
      }
      return 0;
    };
  }
  OverloadOutcome outcome;
  outcome.result = run_simulation(engine, jobs, *scheduler, *selector,
                                  options);
  outcome.events = log.events();
  return outcome;
}

class OverloadDegradation
    : public ::testing::TestWithParam<std::tuple<std::string, EngineKind>> {};

bool requires_slot_engine(const std::string& name) {
  // ProfitScheduler's slot-indexed windows only make sense on the
  // discrete-slot engine (it DS_CHECKs integral decision times).
  return name == "profit";
}

TEST_P(OverloadDegradation, BreachShedsAndRecovers) {
  const auto& [name, engine] = GetParam();
  if (requires_slot_engine(name) && engine == EngineKind::kEvent) {
    GTEST_SKIP() << name << " is slot-engine only";
  }
  const JobSet jobs = overload_jobs();

  // Reference run to find a decision range where work is in flight.
  const OverloadOutcome base =
      run_with_budget(jobs, name, engine, 0, 0, 0);
  if (base.result.decisions < 8) GTEST_SKIP() << "too few decisions";

  // Breach a narrow early window so the run has plenty of in-budget
  // decisions left afterwards to recover in.
  const std::size_t from = 2;
  const std::size_t until = 5;
  const OverloadOutcome overloaded =
      run_with_budget(jobs, name, engine, 1000, from, until);

  EXPECT_GT(overloaded.result.overload_breaches, 0u);
  EXPECT_GT(overloaded.result.overload_recoveries, 0u);

  std::size_t breach_events = 0, recover_events = 0, shed_events = 0;
  for (const DecisionEvent& event : overloaded.events) {
    if (event.kind == ObsEventKind::kOverload) {
      if (event.reason == "overload.breach") ++breach_events;
      if (event.reason == "overload.recovered") ++recover_events;
    }
    if (event.kind == ObsEventKind::kDrop &&
        event.reason.rfind("overload.shed.", 0) == 0) {
      ++shed_events;
    }
  }
  EXPECT_EQ(breach_events, overloaded.result.overload_breaches);
  EXPECT_EQ(recover_events, overloaded.result.overload_recoveries);
  EXPECT_EQ(shed_events, overloaded.result.overload_sheds);

  // The run ends in the recovered state, and it still terminates cleanly:
  // shedding is degradation, not deadlock.
  EXPECT_FALSE(overloaded.result.failed());
}

TEST_P(OverloadDegradation, BudgetOffIsByteIdenticalToSeed) {
  const auto& [name, engine] = GetParam();
  if (requires_slot_engine(name) && engine == EngineKind::kEvent) {
    GTEST_SKIP() << name << " is slot-engine only";
  }
  const JobSet jobs = overload_jobs();
  const OverloadOutcome a = run_with_budget(jobs, name, engine, 0, 0, 0);
  const OverloadOutcome b = run_with_budget(jobs, name, engine, 0, 0, 0);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.result.total_profit, b.result.total_profit);
  EXPECT_EQ(a.result.overload_breaches, 0u);
  EXPECT_EQ(a.result.overload_sheds, 0u);
  EXPECT_EQ(a.result.overload_recoveries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, OverloadDegradation,
    ::testing::Combine(::testing::ValuesIn(named_scheduler_list()),
                       ::testing::Values(EngineKind::kEvent,
                                         EngineKind::kSlot)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, EngineKind>>&
           param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + (std::get<1>(param_info.param) == EngineKind::kEvent
                         ? "_event"
                         : "_slot");
    });

TEST(OverloadDegradation, SchedulerSpecificShedSlugs) {
  // Each scheduler family degrades through its own policy-shaped door; the
  // slug names which one so an operator can tell *what* was sacrificed.
  const JobSet jobs = overload_jobs();
  struct Expectation {
    const char* scheduler;
    EngineKind engine;
    std::vector<std::string> slugs;
  };
  const std::vector<Expectation> expectations = {
      {"s",
       EngineKind::kEvent,
       {"overload.shed.waiting", "overload.shed.started"}},
      {"profit", EngineKind::kSlot, {"overload.shed.window"}},
      {"edf", EngineKind::kEvent, {"overload.shed.lowest-priority"}},
      {"llf", EngineKind::kEvent, {"overload.shed.lowest-priority"}},
      {"federated", EngineKind::kEvent, {"overload.shed.cluster"}},
      {"equi", EngineKind::kEvent, {"overload.shed.share"}},
  };
  for (const Expectation& expectation : expectations) {
    const OverloadOutcome base = run_with_budget(
        jobs, expectation.scheduler, expectation.engine, 0, 0, 0);
    if (base.result.decisions < 8) continue;
    const OverloadOutcome overloaded = run_with_budget(
        jobs, expectation.scheduler, expectation.engine, 1000, 2, 8);
    for (const DecisionEvent& event : overloaded.events) {
      if (event.kind != ObsEventKind::kDrop ||
          event.reason.rfind("overload.shed.", 0) != 0) {
        continue;
      }
      bool known = false;
      for (const std::string& slug : expectation.slugs) {
        known = known || event.reason == slug;
      }
      EXPECT_TRUE(known) << expectation.scheduler << " shed with '"
                         << event.reason << "'";
    }
  }
}

TEST(OverloadDegradation, ShedMaxBoundsPerBreachSheds) {
  const JobSet jobs = overload_jobs();
  const OverloadOutcome one =
      run_with_budget(jobs, "s", EngineKind::kEvent, 1000, 2, 3, 1);
  const OverloadOutcome three =
      run_with_budget(jobs, "s", EngineKind::kEvent, 1000, 2, 3, 3);
  // A single breached decision sheds at most shed_max jobs.
  EXPECT_LE(one.result.overload_sheds, one.result.overload_breaches);
  EXPECT_LE(three.result.overload_sheds,
            3 * three.result.overload_breaches);
}

}  // namespace
}  // namespace dagsched
