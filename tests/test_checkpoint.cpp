// Durable checkpoint/restore: wire primitives, the dagsched.checkpoint/1
// container, kill-resume decision parity across every scheduler x engine x
// fault mode, and corruption fuzzing (bit flips, truncation at every
// boundary, version skew) -- a corrupt checkpoint must always surface as a
// structured CheckpointError, never a crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "sim/checkpoint/checkpoint.h"
#include "sim/kernel/engine_factory.h"
#include "sim/kernel/kernel.h"
#include "util/wire.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

// ---------------------------------------------------------------------------
// Wire primitives.

TEST(Wire, Crc32CheckVector) {
  // The canonical CRC-32 (IEEE, reflected) check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(Wire, ScalarsRoundTrip) {
  CheckpointWriter out;
  out.u8(0xAB);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.f64(-1.5);
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.boolean(true);
  out.boolean(false);
  out.str("hello");
  out.str("");

  CheckpointReader in(out.data(), "<test>", "t");
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.f64(), -1.5);
  EXPECT_TRUE(std::isnan(in.f64()));  // bit-pattern transport, no text trip
  EXPECT_TRUE(in.boolean());
  EXPECT_FALSE(in.boolean());
  EXPECT_EQ(in.str(), "hello");
  EXPECT_EQ(in.str(), "");
  EXPECT_TRUE(in.done());
  in.expect_done();
}

TEST(Wire, TruncationAndStrictnessThrow) {
  CheckpointWriter out;
  out.u32(7);
  {
    CheckpointReader in(out.data(), "<test>", "t");
    in.u32();
    EXPECT_THROW(in.u8(), CheckpointError);  // past the end
  }
  {
    CheckpointReader in(out.data(), "<test>", "t");
    EXPECT_THROW(in.u64(), CheckpointError);  // not enough bytes
  }
  {
    // boolean must be exactly 0 or 1.
    CheckpointReader in("\x02", "<test>", "t");
    EXPECT_THROW(in.boolean(), CheckpointError);
  }
  {
    // A corrupt element count may not promise more than the payload holds.
    CheckpointWriter w;
    w.u64(1u << 30);
    CheckpointReader in(w.data(), "<test>", "t");
    EXPECT_THROW(in.count(8), CheckpointError);
  }
  {
    // Unconsumed trailing bytes are schema drift, not success.
    CheckpointReader in(out.data(), "<test>", "t");
    EXPECT_THROW(in.expect_done(), CheckpointError);
  }
}

TEST(Wire, Fnv1a64Chains) {
  const std::uint64_t once = fnv1a64("ab");
  const std::uint64_t chained = fnv1a64("b", fnv1a64("a"));
  EXPECT_EQ(once, chained);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

// ---------------------------------------------------------------------------
// Container format.

CheckpointFile sample_file() {
  CheckpointFile file;
  file.meta.config_hash = 0x1122334455667788ull;
  file.meta.workload = "w.wl";
  file.meta.engine = "event";
  file.meta.scheduler = "s";
  file.meta.fault_spec = "mtbf=10,mttr=2,horizon=50";
  file.meta.m = 4;
  file.meta.speed = 1.5;
  file.meta.jobs = 14;
  file.meta.sim_time = 33.25;
  file.meta.slot = 33;
  file.meta.decisions = 70;
  file.meta.events_emitted = 22;
  CheckpointWriter kernel_out;
  kernel_out.str("s");
  kernel_out.u64(123);
  CheckpointWriter sched_out;
  sched_out.f64(2.5);
  file.sections.push_back({"kernel", kernel_out.take()});
  file.sections.push_back({"scheduler", sched_out.take()});
  return file;
}

TEST(CheckpointFormat, SerializeParseRoundTrip) {
  const CheckpointFile file = sample_file();
  const std::string bytes = serialize_checkpoint(file);
  const CheckpointFile parsed = parse_checkpoint_bytes(bytes, "<mem>");
  EXPECT_EQ(parsed.meta.schema, kCheckpointSchema);
  EXPECT_EQ(parsed.meta.config_hash, file.meta.config_hash);
  EXPECT_EQ(parsed.meta.workload, file.meta.workload);
  EXPECT_EQ(parsed.meta.engine, file.meta.engine);
  EXPECT_EQ(parsed.meta.scheduler, file.meta.scheduler);
  EXPECT_EQ(parsed.meta.fault_spec, file.meta.fault_spec);
  EXPECT_EQ(parsed.meta.m, file.meta.m);
  EXPECT_EQ(parsed.meta.speed, file.meta.speed);
  EXPECT_EQ(parsed.meta.jobs, file.meta.jobs);
  EXPECT_EQ(parsed.meta.sim_time, file.meta.sim_time);
  EXPECT_EQ(parsed.meta.slot, file.meta.slot);
  EXPECT_EQ(parsed.meta.decisions, file.meta.decisions);
  EXPECT_EQ(parsed.meta.events_emitted, file.meta.events_emitted);
  ASSERT_EQ(parsed.sections.size(), 2u);
  EXPECT_EQ(parsed.sections[0].name, "kernel");
  EXPECT_EQ(parsed.sections[0].payload, file.sections[0].payload);
  EXPECT_EQ(parsed.sections[1].name, "scheduler");
  EXPECT_EQ(parsed.sections[1].payload, file.sections[1].payload);

  // Deterministic: same state, same bytes.
  EXPECT_EQ(serialize_checkpoint(file), bytes);
}

TEST(CheckpointFormat, FileRoundTripAndOverwrite) {
  const std::string path = ::testing::TempDir() + "ckpt_roundtrip.bin";
  const CheckpointFile file = sample_file();
  write_checkpoint_file(path, file);
  write_checkpoint_file(path, file);  // atomic rename overwrites cleanly
  const CheckpointFile parsed = read_checkpoint_file(path);
  EXPECT_EQ(parsed.meta.decisions, file.meta.decisions);
  EXPECT_EQ(parsed.source, path);
  ASSERT_NE(parsed.find_section("kernel"), nullptr);
  EXPECT_EQ(parsed.find_section("missing"), nullptr);
}

TEST(CheckpointFormat, VersionSkewIsDiagnosed) {
  CheckpointFile file = sample_file();
  file.meta.schema = "dagsched.checkpoint/2";
  const std::string bytes = serialize_checkpoint(file);
  try {
    parse_checkpoint_bytes(bytes, "<mem>");
    FAIL() << "version skew accepted";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("dagsched.checkpoint/2"),
              std::string::npos)
        << error.what();
  }
}

TEST(CheckpointFormat, ResumeCompatibilityDiagnostics) {
  const CheckpointFile file = sample_file();
  CheckpointMeta current = file.meta;
  EXPECT_NO_THROW(verify_resume_compatible(file, current));

  auto expect_mismatch = [&file](CheckpointMeta meta,
                                 const std::string& needle) {
    try {
      verify_resume_compatible(file, meta);
      FAIL() << "mismatch in '" << needle << "' accepted";
    } catch (const CheckpointError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };
  CheckpointMeta meta = current;
  meta.scheduler = "edf";
  expect_mismatch(meta, "scheduler");
  meta = current;
  meta.engine = "slot";
  expect_mismatch(meta, "engine");
  meta = current;
  meta.m = 8;
  expect_mismatch(meta, "m");
  meta = current;
  meta.speed = 2.0;
  expect_mismatch(meta, "speed");
  meta = current;
  meta.jobs = 99;
  expect_mismatch(meta, "job");
  meta = current;
  meta.fault_spec = "";
  expect_mismatch(meta, "fault");
  meta = current;
  meta.config_hash ^= 1;
  expect_mismatch(meta, "config");
}

TEST(CheckpointFormat, FingerprintCoversEveryInput) {
  const std::uint64_t base = run_config_fingerprint(
      "bytes", "s", 0.5, 4, 1.0, "event", "fifo", "mtbf=10");
  EXPECT_EQ(base, run_config_fingerprint("bytes", "s", 0.5, 4, 1.0, "event",
                                         "fifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("byteZ", "s", 0.5, 4, 1.0, "event",
                                         "fifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("bytes", "edf", 0.5, 4, 1.0, "event",
                                         "fifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("bytes", "s", 0.25, 4, 1.0, "event",
                                         "fifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("bytes", "s", 0.5, 8, 1.0, "event",
                                         "fifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("bytes", "s", 0.5, 4, 2.0, "event",
                                         "fifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("bytes", "s", 0.5, 4, 1.0, "slot",
                                         "fifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("bytes", "s", 0.5, 4, 1.0, "event",
                                         "lifo", "mtbf=10"));
  EXPECT_NE(base, run_config_fingerprint("bytes", "s", 0.5, 4, 1.0, "event",
                                         "fifo", ""));
}

// ---------------------------------------------------------------------------
// Kill-resume decision parity: for every scheduler x engine x fault mode,
// a run resumed from a mid-run snapshot must produce an event-log suffix
// byte-identical to the uninterrupted run, and land on the same result.

constexpr ProcCount kParityM = 4;

JobSet parity_jobs() {
  Rng rng(21);
  WorkloadConfig config = scenario_shootout(1.2, kParityM, 0.3, 1.2);
  config.horizon = 60.0;
  return generate_workload(rng, config);
}

std::optional<FaultInjector> parity_faults(const std::string& spec) {
  std::optional<FaultInjector> injector;
  if (spec.empty()) return injector;
  std::string error;
  const auto config = parse_fault_spec(spec, &error);
  EXPECT_TRUE(config.has_value()) << error;
  injector.emplace(build_fault_plan(*config, kParityM));
  return injector;
}

SimResult parity_run(const JobSet& jobs, const std::string& scheduler_name,
                     EngineKind engine, const std::string& fault_spec,
                     EventLog* log, CheckpointSink* checkpoint,
                     const CheckpointFile* resume) {
  auto scheduler = make_named_scheduler(scheduler_name, 0.5);
  auto selector = make_selector(SelectorKind::kFifo, 1);
  std::optional<FaultInjector> injector = parity_faults(fault_spec);
  ObsSink sink;
  sink.events = log;
  SimOptions options;
  options.num_procs = kParityM;
  options.obs = log != nullptr ? &sink : nullptr;
  options.faults = injector ? &*injector : nullptr;
  options.checkpoint = checkpoint;
  options.resume = resume;
  return run_simulation(engine, jobs, *scheduler, *selector, options);
}

class KillResumeParity
    : public ::testing::TestWithParam<
          std::tuple<std::string, EngineKind, std::string>> {};

TEST_P(KillResumeParity, ResumedSuffixIsByteIdentical) {
  const auto& [scheduler_name, engine, fault_spec] = GetParam();
  if (scheduler_name == "profit" && engine == EngineKind::kEvent) {
    GTEST_SKIP() << "profit is slot-engine only";
  }
  const JobSet jobs = parity_jobs();

  // Uninterrupted reference run.
  EventLog full_log;
  const SimResult full = parity_run(jobs, scheduler_name, engine, fault_spec,
                                    &full_log, nullptr, nullptr);
  if (full.decisions < 3) GTEST_SKIP() << "too few decisions to bisect";

  // Checkpointing run: snapshots must not perturb the simulation, and the
  // last snapshot lands mid-run (limit 2 at ~quarter intervals).
  // The path must be unique per parameter combo: ctest runs each combo as
  // its own process, and the two churn variants of one scheduler x engine
  // pair are adjacent in the suite -- a shared name makes them clobber each
  // other's snapshot under parallel ctest.
  const std::string fault_tag =
      fault_spec.empty()
          ? "_nofault"
          : (fault_spec.find("restart=zero") != std::string::npos ? "_zero"
                                                                  : "_resume");
  const std::string path = ::testing::TempDir() + "parity_" + scheduler_name +
                           (engine == EngineKind::kEvent ? "_ev" : "_sl") +
                           fault_tag + ".ckpt";
  const auto interval =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(full.decisions) / 4);
  EventLog ck_log;
  CheckpointMeta base;
  base.scheduler = scheduler_name;
  CheckpointSink sink(path, interval, base, &ck_log);
  sink.set_snapshot_limit(2);
  const SimResult with_ck = parity_run(jobs, scheduler_name, engine,
                                       fault_spec, &ck_log, &sink, nullptr);
  EXPECT_EQ(with_ck.decisions, full.decisions);
  EXPECT_EQ(with_ck.total_profit, full.total_profit);
  EXPECT_EQ(ck_log.events(), full_log.events())
      << "checkpointing perturbed the run";
  ASSERT_GT(sink.snapshots(), 0u);

  // Resume from the last on-disk snapshot.
  const CheckpointFile file = read_checkpoint_file(path);
  ASSERT_LE(file.meta.events_emitted, full_log.size());
  EventLog resumed_log;
  const SimResult resumed = parity_run(jobs, scheduler_name, engine,
                                       fault_spec, &resumed_log, nullptr,
                                       &file);

  const std::vector<DecisionEvent> suffix(
      full_log.events().begin() +
          static_cast<std::ptrdiff_t>(file.meta.events_emitted),
      full_log.events().end());
  EXPECT_EQ(resumed_log.events(), suffix);
  EXPECT_EQ(resumed.decisions, full.decisions);
  EXPECT_EQ(resumed.jobs_completed, full.jobs_completed);
  EXPECT_EQ(resumed.total_profit, full.total_profit);  // bitwise, not NEAR
  EXPECT_EQ(resumed.busy_proc_time, full.busy_proc_time);
  EXPECT_EQ(resumed.failed(), full.failed());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, KillResumeParity,
    ::testing::Combine(
        ::testing::ValuesIn(named_scheduler_list()),
        ::testing::Values(EngineKind::kEvent, EngineKind::kSlot),
        ::testing::Values(
            std::string(),
            std::string(
                "mtbf=30,mttr=5,horizon=60,seed=3,integral=1,restart=resume"),
            std::string(
                "mtbf=30,mttr=5,horizon=60,seed=3,integral=1,restart=zero"))),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, EngineKind, std::string>>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += std::get<1>(param_info.param) == EngineKind::kEvent ? "_event"
                                                            : "_slot";
      const std::string& faults = std::get<2>(param_info.param);
      if (faults.empty()) {
        name += "_none";
      } else if (faults.find("restart=zero") != std::string::npos) {
        name += "_churn_zero";
      } else {
        name += "_churn_resume";
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Corruption fuzzing.  Every mutation of a real checkpoint must either
// parse (benign, e.g. a flipped bit inside an uncovered length prefix that
// still checks out) or throw CheckpointError -- never any other exception,
// never a crash, never UB (the sanitizer jobs run this file too).

std::string real_checkpoint_bytes() {
  const JobSet jobs = parity_jobs();
  const std::string path = ::testing::TempDir() + "fuzz_source.ckpt";
  EventLog log;
  CheckpointMeta base;
  base.scheduler = "s";
  CheckpointSink sink(path, 5, base, &log);
  sink.set_snapshot_limit(1);
  parity_run(jobs, "s", EngineKind::kEvent, "", &log, &sink, nullptr);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CheckpointFuzz, EveryTruncationIsAStructuredError) {
  const std::string bytes = real_checkpoint_bytes();
  ASSERT_GT(bytes.size(), 64u);
  // Every prefix is a truncation somewhere -- exhaustively over the header
  // region, strided through the sections, and the exact end minus one.
  std::vector<std::size_t> lengths;
  for (std::size_t len = 0; len < std::min<std::size_t>(96, bytes.size());
       ++len) {
    lengths.push_back(len);
  }
  for (std::size_t len = 96; len < bytes.size(); len += 31) {
    lengths.push_back(len);
  }
  lengths.push_back(bytes.size() - 1);
  for (const std::size_t len : lengths) {
    EXPECT_THROW(parse_checkpoint_bytes(bytes.substr(0, len), "<fuzz>"),
                 CheckpointError)
        << "truncation at " << len << " of " << bytes.size();
  }
  // Trailing garbage is diagnosed too.
  EXPECT_THROW(parse_checkpoint_bytes(bytes + "x", "<fuzz>"), CheckpointError);
}

TEST(CheckpointFuzz, BitFlipsNeverEscapeTheErrorType) {
  const std::string bytes = real_checkpoint_bytes();
  std::size_t caught = 0, parsed_ok = 0;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 3) {
    for (const int bit : {0, 6}) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      try {
        (void)parse_checkpoint_bytes(mutated, "<fuzz>");
        ++parsed_ok;  // e.g. a flip inside the ignored tmp-file slack
      } catch (const CheckpointError&) {
        ++caught;
      }
      // Anything else (std::bad_alloc, std::length_error, segfault)
      // propagates and fails the test.
    }
  }
  // CRC coverage means nearly every flip is detected.
  EXPECT_GT(caught, 10 * (parsed_ok + 1));
}

TEST(CheckpointFuzz, SemanticCorruptionIsRejectedOnLoadNotCrashed) {
  // Valid container, corrupt *content*: mutate section payload bytes and
  // re-serialize (CRCs recomputed), then drive the full load path.  The
  // load must throw CheckpointError on inconsistent state -- reaching a
  // DS_CHECK abort would kill this test.
  const std::string bytes = real_checkpoint_bytes();
  const CheckpointFile pristine = parse_checkpoint_bytes(bytes, "<fuzz>");
  const JobSet jobs = parity_jobs();

  std::size_t rejected = 0, accepted = 0;
  for (std::size_t section = 0; section < pristine.sections.size();
       ++section) {
    const std::size_t payload_size =
        pristine.sections[section].payload.size();
    for (std::size_t pos = 0; pos < payload_size; pos += 17) {
      CheckpointFile mutated = pristine;
      std::string& payload = mutated.sections[section].payload;
      payload[pos] = static_cast<char>(payload[pos] ^ 0x41);
      const std::string rebuilt = serialize_checkpoint(mutated);
      const CheckpointFile file = parse_checkpoint_bytes(rebuilt, "<fuzz>");

      auto scheduler = make_named_scheduler("s", 0.5);
      auto selector = make_selector(SelectorKind::kFifo, 1);
      KernelOptions options;
      options.num_procs = kParityM;
      SimKernel kernel(jobs, *scheduler, *selector, options);
      kernel.begin(jobs[0].release());
      try {
        CheckpointReader kernel_in = file.section_reader("kernel");
        CheckpointReader sched_in = file.section_reader("scheduler");
        kernel.load_checkpoint_state(kernel_in, sched_in);
        ++accepted;  // benign flip (e.g. low mantissa bit of a work value)
      } catch (const CheckpointError&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  (void)accepted;
}

}  // namespace
}  // namespace dagsched
