// DensityWindowIndex: admission condition (2) bookkeeping, checked against
// a brute-force reference on randomized member sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/density_index.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(DensityIndex, EmptyAdmitsWithinCap) {
  DensityWindowIndex index;
  EXPECT_TRUE(index.admits(1.0, 4, 2.0, 8.0));
  EXPECT_FALSE(index.admits(1.0, 9, 2.0, 8.0));
}

TEST(DensityIndex, InsertEraseContains) {
  DensityWindowIndex index;
  index.insert(0, 1.0, 2);
  index.insert(1, 3.0, 4);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.contains(0));
  EXPECT_TRUE(index.erase(0));
  EXPECT_FALSE(index.erase(0));
  EXPECT_FALSE(index.contains(0));
  EXPECT_EQ(index.size(), 1u);
}

TEST(DensityIndex, WindowLoadHalfOpen) {
  DensityWindowIndex index;
  index.insert(0, 1.0, 2);
  index.insert(1, 2.0, 3);
  index.insert(2, 4.0, 5);
  EXPECT_DOUBLE_EQ(index.window_load(1.0, 4.0), 5.0);   // [1, 4): jobs 0, 1
  EXPECT_DOUBLE_EQ(index.window_load(1.0, 4.01), 10.0); // includes job 2
  EXPECT_DOUBLE_EQ(index.window_load(2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(index.load_at_least(2.0), 8.0);
  EXPECT_DOUBLE_EQ(index.load_at_least(0.1), 10.0);
}

TEST(DensityIndex, AdmitsRespectsExistingWindows) {
  // Window [v_j, 2 v_j), cap 8.  Jobs at density 1.0 with n=3 and 1.5 with
  // n=4: their shared window [1.0, 2.0) holds 7.
  DensityWindowIndex index;
  index.insert(0, 1.0, 3);
  index.insert(1, 1.5, 4);
  // Adding density 1.9, n=1 lands in [1.0, 2.0): 8 <= 8 OK.
  EXPECT_TRUE(index.admits(1.9, 1, 2.0, 8.0));
  // n=2 would push that window to 9 > 8.
  EXPECT_FALSE(index.admits(1.9, 2, 2.0, 8.0));
  // Density 3.5 is outside every existing window start's range and its own
  // window [3.5, 7) is empty: any n <= cap admits.
  EXPECT_TRUE(index.admits(3.5, 8, 2.0, 8.0));
}

TEST(DensityIndex, AdmitsBoundaryExactlyAtVOverC) {
  // v_j = 1, c = 2: window [1, 2).  New density exactly 2 is NOT inside
  // (half-open), and its own window [2, 4) is empty.
  DensityWindowIndex index;
  index.insert(0, 1.0, 8);
  EXPECT_TRUE(index.admits(2.0, 8, 2.0, 8.0));
  // Density 1.999 IS inside [1, 2): total would be 16 > 8.
  EXPECT_FALSE(index.admits(1.999, 8, 2.0, 8.0));
}

TEST(DensityIndex, MaxWindowLoad) {
  DensityWindowIndex index;
  index.insert(0, 1.0, 2);
  index.insert(1, 1.5, 3);
  index.insert(2, 10.0, 4);
  // Window at v=1.0, c=2: [1, 2) holds 5.  At 1.5: [1.5, 3) holds 3.
  // At 10: holds 4.
  EXPECT_DOUBLE_EQ(index.max_window_load(2.0), 5.0);
}

// Brute-force reference: simulate condition (2) literally.
bool brute_admits(const std::vector<std::pair<Density, double>>& members,
                  Density v, double n, double c, double cap) {
  std::vector<std::pair<Density, double>> all = members;
  all.emplace_back(v, n);
  for (const auto& [vj, nj] : all) {
    (void)nj;
    double load = 0.0;
    for (const auto& [vk, nk] : all) {
      if (vk >= vj && vk < c * vj) load += nk;
    }
    if (load > cap) return false;
  }
  return true;
}

class DensityIndexFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DensityIndexFuzz, AdmitsMatchesBruteForce) {
  Rng rng(GetParam());
  const double c = rng.uniform(1.5, 20.0);
  const double cap = rng.uniform(4.0, 32.0);
  DensityWindowIndex index;
  std::vector<std::pair<Density, double>> members;
  std::vector<JobId> ids;
  JobId next_id = 0;

  for (int step = 0; step < 400; ++step) {
    const Density v = rng.uniform(0.01, 10.0);
    const auto n = static_cast<ProcCount>(rng.uniform_int(1, 6));
    const bool expected = brute_admits(members, v, n, c, cap);
    const bool actual = index.admits(v, n, c, cap);
    ASSERT_EQ(actual, expected)
        << "v=" << v << " n=" << n << " c=" << c << " cap=" << cap
        << " members=" << members.size();
    // Maintain the inductive invariant: only insert admitted members (as the
    // schedulers do).  Occasionally erase a member to exercise removal.
    if (expected) {
      index.insert(next_id, v, n);
      ids.push_back(next_id);
      ++next_id;
      members.emplace_back(v, static_cast<double>(n));
    } else if (!members.empty() && rng.bernoulli(0.3)) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(members.size()) - 1));
      ASSERT_TRUE(index.erase(ids[victim]));
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    // Invariant from Observation 3: max window load stays within cap.
    EXPECT_LE(index.max_window_load(c), cap + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensityIndexFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DensityIndex, EraseRestoresAdmissibility) {
  DensityWindowIndex index;
  index.insert(0, 1.0, 5);
  index.insert(1, 1.2, 3);
  EXPECT_FALSE(index.admits(1.1, 2, 2.0, 8.0));  // window [1,2) would be 10
  index.erase(0);
  EXPECT_TRUE(index.admits(1.1, 2, 2.0, 8.0));  // now 5
}

TEST(DensityIndex, ClearEmptiesEverything) {
  DensityWindowIndex index;
  index.insert(0, 1.0, 5);
  index.clear();
  EXPECT_TRUE(index.empty());
  EXPECT_DOUBLE_EQ(index.load_at_least(0.0), 0.0);
}

}  // namespace
}  // namespace dagsched
