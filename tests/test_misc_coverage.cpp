// Coverage for the remaining utility paths: logging levels, TextTable CSV
// export, piecewise profits through the Section-5 scheduler, and trace
// validation under speed augmentation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "baselines/list_scheduler.h"
#include "core/profit_scheduler.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "util/logging.h"
#include "util/table.h"

namespace dagsched {
namespace {

TEST(Logging, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Macros below the level must not emit (no crash, no output check needed;
  // this exercises the guard path).
  DS_LOG_DEBUG("invisible " << 1);
  DS_LOG_INFO("invisible " << 2);
  DS_LOG_WARN("invisible " << 3);
  set_log_level(LogLevel::kOff);
  DS_LOG_ERROR("also invisible " << 4);
  set_log_level(original);
}

TEST(TextTableCsv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/dagsched_table.csv";
  TextTable table({"a", "b"});
  table.add_row({"1", "x,y"});
  table.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(ProfitSchedulerPiecewise, SchedulesAgainstStaircase) {
  // Piecewise profit: full value for 8 slots, half for 16, scrap for 30.
  const ProcCount m = 8;
  auto dag = std::make_shared<const Dag>(make_parallel_block(12, 1.0));
  JobSet jobs;
  jobs.add(Job(dag, 0.0,
               ProfitFn::piecewise({{8.0, 10.0}, {16.0, 5.0}, {30.0, 1.0}})));
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = m;
  SlotEngine engine(jobs, scheduler, *selector, options);
  const SimResult result = engine.run();
  ASSERT_TRUE(result.outcomes[0].completed);
  // Alone on the machine, the minimal valid deadline fits the top level.
  EXPECT_DOUBLE_EQ(result.total_profit, 10.0);
  EXPECT_LE(scheduler.chosen_deadline(0), 8.0 + 1e-9);
}

TEST(ProfitSchedulerPiecewise, FallsToLowerLevelUnderCongestion) {
  // Saturate early slots with identical competitors; later arrivals must
  // accept a later deadline and thus a lower staircase level.
  const ProcCount m = 8;
  auto dag = std::make_shared<const Dag>(make_parallel_block(24, 1.0));
  JobSet jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.add(Job(dag, 0.0,
                 ProfitFn::piecewise({{8.0, 10.0}, {40.0, 4.0}})));
  }
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = m;
  SlotEngine engine(jobs, scheduler, *selector, options);
  const SimResult result = engine.run();
  // All are eventually scheduled; at least one had to take the late level.
  EXPECT_EQ(scheduler.scheduled_count(), 4u);
  Time latest = 0.0;
  for (JobId j = 0; j < jobs.size(); ++j) {
    latest = std::max(latest, scheduler.chosen_deadline(j));
  }
  EXPECT_GT(latest, 8.0);
  EXPECT_GT(result.total_profit, 0.0);
}

TEST(TraceSpeed, ValidatesUnderAugmentation) {
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_fig2_dag(3, 12, 1.0)), 0.0, 50.0,
      1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  options.speed = 2.5;
  options.record_trace = true;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_EQ(result.trace.validate(jobs, 4, 2.5), "");
  // Wrong speed must be detected (durations no longer account for work).
  EXPECT_NE(result.trace.validate(jobs, 4, 1.0), "");
}

TEST(EngineGuards, MaxDecisionsFailsStructured) {
  // A scheduler that thrashes between two jobs at every node completion
  // still terminates; the guard only fires on true livelock.  Overflowing
  // a tiny budget must not kill the process: the engine reports a failed
  // SimOutcome with the partial results intact.
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_parallel_block(64, 1.0)), 0.0, 1e6,
      1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 2;
  options.max_decisions = 3;
  EventEngine engine(jobs, scheduler, *selector, options);
  const SimResult result = engine.run();
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(result.failure, SimFailureKind::kDecisionBudget);
  EXPECT_NE(result.failure_message.find("decision budget"),
            std::string::npos);
  EXPECT_GE(result.decisions, 3u);
}

TEST(SchedulerNames, AreDescriptive) {
  EXPECT_EQ(ListScheduler({ListPolicy::kEdf, false, true}).name(), "edf");
  ProfitScheduler profit({.params = Params::from_epsilon(0.25)});
  EXPECT_NE(profit.name().find("paper-S-profit"), std::string::npos);
}

}  // namespace
}  // namespace dagsched
