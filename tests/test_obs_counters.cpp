// Counter/gauge/histogram registry semantics: register-on-first-use,
// accumulate, reset-keeps-registrations, span timers, and engine-integrated
// counter agreement (idle time across both engines).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "obs/counters.h"
#include "obs/sink.h"
#include "obs/span_timer.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"

namespace dagsched {
namespace {

TEST(Counter, AccumulatesAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0.0);
  counter.add();
  counter.add(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
  counter.reset();
  EXPECT_EQ(counter.value(), 0.0);
  counter.add(1.0);
  EXPECT_DOUBLE_EQ(counter.value(), 1.0);
}

TEST(Gauge, LastWriteWins) {
  Gauge gauge;
  gauge.set(4.0);
  gauge.set(-1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.5);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Histogram, TracksStreamingStats) {
  Histogram hist;
  hist.observe(1.0);
  hist.observe(4.0);
  hist.observe(0.25);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 5.25);
  EXPECT_DOUBLE_EQ(hist.min(), 0.25);
  EXPECT_DOUBLE_EQ(hist.max(), 4.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 1.75);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
}

TEST(Histogram, BucketsArePowerOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(Histogram::kBucketBias),
                   1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(Histogram::kBucketBias + 1),
                   2.0);
  Histogram hist;
  hist.observe(1.5);  // bucket covering [1, 2)
  hist.observe(3.0);  // bucket covering [2, 4)
  hist.observe(-7.0);  // non-positive values land in bucket 0
  EXPECT_EQ(hist.buckets()[Histogram::kBucketBias], 1u);
  EXPECT_EQ(hist.buckets()[Histogram::kBucketBias + 1], 1u);
  EXPECT_EQ(hist.buckets()[0], 1u);
}

TEST(MetricRegistry, RegisterOnFirstUseReturnsStablePointer) {
  MetricRegistry registry;
  Counter* a = registry.counter("x");
  Counter* again = registry.counter("x");
  EXPECT_EQ(a, again);
  EXPECT_EQ(registry.size(), 1u);
  // A different instrument family with the same name is distinct.
  Gauge* g = registry.gauge("x");
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(g));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricRegistry, ResetZeroesButKeepsRegistrations) {
  MetricRegistry registry;
  Counter* c = registry.counter("decisions");
  Histogram* h = registry.histogram("dt");
  c->add(7.0);
  h->observe(3.0);
  registry.reset();
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(c->value(), 0.0);       // same pointer, zeroed
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(registry.counter("decisions"), c);
  c->add(1.0);
  EXPECT_DOUBLE_EQ(registry.counter_values().front().second, 1.0);
}

TEST(MetricRegistry, SnapshotsAreNameSorted) {
  MetricRegistry registry;
  registry.counter("zeta")->add(1.0);
  registry.counter("alpha")->add(2.0);
  registry.counter("mid")->add(3.0);
  const auto values = registry.counter_values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[1].first, "mid");
  EXPECT_EQ(values[2].first, "zeta");
}

TEST(ObsMacros, NullPointersAreNoOps) {
  Counter* counter = nullptr;
  Histogram* hist = nullptr;
  DS_OBS_INC(counter);
  DS_OBS_ADD(counter, 5.0);
  DS_OBS_OBSERVE(hist, 1.0);  // must not crash
  SUCCEED();
}

TEST(SpanTimer, RecordsScopedDurations) {
  SpanRegistry registry;
  {
    ScopedSpan span(&registry, "work");
    // Spin a few iterations so the span is non-zero on coarse clocks.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "work");
  EXPECT_EQ(snapshot[0].second.count, 1u);
  EXPECT_GE(snapshot[0].second.total_ns, 0);
}

TEST(SpanTimer, NullRegistryIsNoOp) {
  { ScopedSpan span(static_cast<SpanRegistry*>(nullptr), "nothing"); }
  { ScopedSpan span(static_cast<SpanStats*>(nullptr)); }
  SUCCEED();
}

/// Sparse integral workload: short chain jobs separated by long fully-idle
/// gaps, so the slot engine's idle-skip fast path and the event engine's
/// quiescent jump are both exercised.  Every job completes, so both engines
/// halt at the same end time.
JobSet sparse_workload() {
  JobSet jobs;
  for (const double release : {0.0, 10.0, 25.0}) {
    jobs.add(Job::with_deadline(
        std::make_shared<const Dag>(make_chain(3, 1.0)), release,
        release + 8.0, 1.0));
  }
  jobs.finalize();
  return jobs;
}

double run_idle_counter(const JobSet& jobs, bool slot, ProcCount m,
                        double* busy, double* end_time) {
  MetricRegistry registry;
  ObsSink sink;
  sink.metrics = &registry;
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  SimResult result;
  if (slot) {
    SlotEngineOptions options;
    options.num_procs = m;
    options.obs = &sink;
    SlotEngine engine(jobs, scheduler, *selector, options);
    result = engine.run();
  } else {
    EngineOptions options;
    options.num_procs = m;
    options.obs = &sink;
    EventEngine engine(jobs, scheduler, *selector, options);
    result = engine.run();
  }
  EXPECT_EQ(result.jobs_completed, jobs.size());
  *busy = result.busy_proc_time;
  *end_time = result.end_time;
  return registry.counter("engine.idle_proc_time")->value();
}

TEST(EngineCounters, IdleTimeAgreesAcrossEnginesOnSparseWorkloads) {
  // Fully-idle stretches (nothing released, nothing running) used to be
  // invisible to the slot engine's idle counter because the idle-skip jump
  // bypassed per-slot accounting; the event engine's quiescent jump had the
  // same blind spot.  Both must now account skipped spans, making
  // busy + idle == m * end_time and the two engines agree exactly.
  const JobSet jobs = sparse_workload();
  const ProcCount m = 4;

  double ev_busy = 0.0, ev_end = 0.0, slot_busy = 0.0, slot_end = 0.0;
  const double ev_idle =
      run_idle_counter(jobs, /*slot=*/false, m, &ev_busy, &ev_end);
  const double slot_idle =
      run_idle_counter(jobs, /*slot=*/true, m, &slot_busy, &slot_end);

  // Sanity: the workload is genuinely sparse -- most machine time is idle.
  ASSERT_GT(ev_idle, ev_busy);

  EXPECT_NEAR(ev_idle, slot_idle, 1e-9);
  EXPECT_NEAR(ev_busy + ev_idle, static_cast<double>(m) * ev_end, 1e-9);
  EXPECT_NEAR(slot_busy + slot_idle, static_cast<double>(m) * slot_end, 1e-9);
}

TEST(SpanTimer, AccumulatesAcrossScopes) {
  SpanRegistry registry;
  SpanStats* stats = registry.span("loop");
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(stats);
  }
  EXPECT_EQ(stats->count, 3u);
  EXPECT_GE(stats->mean_ns(), 0.0);
  registry.reset();
  EXPECT_EQ(stats->count, 0u);
}

}  // namespace
}  // namespace dagsched
