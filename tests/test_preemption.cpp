// Preemption counters in both engines, and the EQUI non-clairvoyant
// baseline.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/equi.h"
#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

TEST(Preemption, NoneForUncontestedJob) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_parallel_block(8, 1.0)), 0.0, 10.0,
                              1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  EXPECT_EQ(result.node_preemptions, 0u);
  EXPECT_EQ(result.job_preemptions, 0u);
}

TEST(Preemption, EdfPreemptsForTighterDeadline) {
  // Long job running alone, then a tight job arrives and takes the single
  // processor: exactly one node and one job preemption.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(10.0)), 0.0, 30.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 3.0, 4.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 1;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  EXPECT_EQ(result.jobs_completed, 2u);
  EXPECT_EQ(result.node_preemptions, 1u);
  EXPECT_EQ(result.job_preemptions, 1u);
}

TEST(Preemption, CompletionIsNotPreemption) {
  // Two sequential jobs on one processor, run to completion in turn.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 0.0, 10.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 0.0, 10.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kFcfs, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 1;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  EXPECT_EQ(result.jobs_completed, 2u);
  EXPECT_EQ(result.node_preemptions, 0u);
  EXPECT_EQ(result.job_preemptions, 0u);
}

TEST(Preemption, SlotEngineCountsGaps) {
  // EDF on the slot engine with the same two-job preemption scenario.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(10.0)), 0.0, 30.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 3.0, 4.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = 1;
  SlotEngine engine(jobs, scheduler, *selector, options);
  const SimResult result = engine.run();
  EXPECT_EQ(result.jobs_completed, 2u);
  EXPECT_EQ(result.node_preemptions, 1u);
  EXPECT_EQ(result.job_preemptions, 1u);
}

TEST(Equi, SplitsProcessorsEvenly) {
  JobSet jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.add(Job::with_deadline(share(make_parallel_block(12, 1.0)), 0.0,
                                50.0, 1.0));
  }
  jobs.finalize();
  EquiScheduler scheduler;
  bool checked = false;
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 6;
  options.observer = [&checked](const EngineContext& ctx,
                                const Assignment& assignment) {
    if (ctx.now() == 0.0 && !checked) {
      checked = true;
      ASSERT_EQ(assignment.allocs.size(), 3u);
      for (const JobAlloc& alloc : assignment.allocs) {
        EXPECT_EQ(alloc.procs, 2u);  // 6 / 3
      }
    }
  };
  EventEngine engine(jobs, scheduler, *selector, options);
  const SimResult result = engine.run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(result.jobs_completed, 3u);
}

TEST(Equi, LargestRemainderDistributesLeftovers) {
  JobSet jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.add(Job::with_deadline(share(make_parallel_block(8, 1.0)), 0.0,
                                50.0, 1.0));
  }
  jobs.finalize();
  EquiScheduler scheduler;
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;  // 4/3: grants 2,1,1
  bool checked = false;
  options.observer = [&checked](const EngineContext& ctx,
                                const Assignment& assignment) {
    if (ctx.now() == 0.0 && !checked) {
      checked = true;
      ProcCount total = 0;
      for (const JobAlloc& alloc : assignment.allocs) total += alloc.procs;
      EXPECT_EQ(total, 4u);
      EXPECT_EQ(assignment.allocs.size(), 3u);
    }
  };
  EventEngine engine(jobs, scheduler, *selector, options);
  engine.run();
  EXPECT_TRUE(checked);
}

TEST(Equi, ProfitWeightingBiasesShares) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_parallel_block(20, 1.0)), 0.0, 50.0,
                              9.0));
  jobs.add(Job::with_deadline(share(make_parallel_block(20, 1.0)), 0.0, 50.0,
                              1.0));
  jobs.finalize();
  EquiScheduler scheduler({.weight_by_profit = true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 10;
  bool checked = false;
  options.observer = [&checked](const EngineContext& ctx,
                                const Assignment& assignment) {
    if (ctx.now() == 0.0 && !checked) {
      checked = true;
      ASSERT_EQ(assignment.allocs.size(), 2u);
      EXPECT_EQ(assignment.allocs[0].procs, 9u);
      EXPECT_EQ(assignment.allocs[1].procs, 1u);
    }
  };
  EventEngine engine(jobs, scheduler, *selector, options);
  engine.run();
  EXPECT_TRUE(checked);
}

TEST(Equi, NeverPeeksAtDagStructure) {
  // EQUI must run fine as a declared non-clairvoyant scheduler on any
  // workload (any DAG peek would DS_CHECK-abort inside EngineContext).
  Rng rng(8);
  const JobSet jobs = generate_workload(rng, scenario_shootout(1.5, 8, 0.3, 1.0));
  EquiScheduler scheduler;
  EXPECT_FALSE(scheduler.clairvoyant());
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 8;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  EXPECT_GE(result.total_profit, 0.0);
}

}  // namespace
}  // namespace dagsched
