// The paper's accounting lemmas as executable properties.
//
// Lemma 5 states ||C|| >= (eps - 1/((c-1)delta)) ||R||: the profit of jobs
// S completes is at least a constant fraction of the profit of jobs it
// *starts*.  With the canonical minimal c the constant is ~0, so we test at
// c = 8 * c_min where it is ~0.44 -- a real, falsifiable bound.
#include <gtest/gtest.h>

#include <memory>

#include "core/analysis.h"
#include "core/deadline_scheduler.h"
#include "sim/event_engine.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

class Lemma5 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma5, CompletedProfitDominatesStartedFraction) {
  const double eps = 0.5;
  const double delta = eps / 4.0;
  const double c_min = 1.0 + 1.0 / (delta * eps);
  const Params params = Params::explicit_params(eps, delta, 8.0 * c_min);
  const double fraction = params.completion_fraction();
  ASSERT_GT(fraction, 0.3);

  Rng rng(GetParam());
  WorkloadConfig config = scenario_thm2(eps, 1.4, 16);  // overload
  config.horizon = 150.0;
  const JobSet jobs = generate_workload(rng, config);
  ASSERT_FALSE(jobs.empty());

  DeadlineScheduler scheduler({.params = params});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 16;
  const SimResult result = simulate(jobs, scheduler, *selector, options);

  // ||C||: profit of completed *started* jobs == total profit (S only
  // completes jobs it started).
  const Profit completed = result.total_profit;
  const Profit started = scheduler.started_profit();
  ASSERT_GT(started, 0.0);
  EXPECT_GE(completed, fraction * started - 1e-9)
      << "Lemma 5 violated: ||C||=" << completed << " ||R||=" << started
      << " fraction=" << fraction;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma5,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

// Lemma 4's structural precondition, observed: when a started job misses
// its deadline, high-density jobs were monopolizing the machine during its
// window.  We verify the weaker accounting consequence: S never completes
// a job late (started jobs either finish by their deadline or earn 0).
TEST(LemmaProperties, StartedJobsNeverFinishLate) {
  Rng rng(777);
  WorkloadConfig config = scenario_thm2(0.5, 1.8, 8);
  config.horizon = 120.0;
  const JobSet jobs = generate_workload(rng, config);
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 8;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (result.outcomes[i].completed) {
      EXPECT_LE(result.outcomes[i].completion_time,
                jobs[i].absolute_deadline() + 1e-6);
    }
  }
}

// The paper's "processor steps" accounting: total busy processor time never
// exceeds sum over started jobs of x_i n_i (Observation 2 aggregated).
TEST(LemmaProperties, BusyTimeWithinStartedBudget) {
  Rng rng(888);
  WorkloadConfig config = scenario_thm2(0.5, 1.0, 8);
  config.horizon = 100.0;
  const JobSet jobs = generate_workload(rng, config);
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 8;
  const SimResult result = simulate(jobs, scheduler, *selector, options);

  double budget = 0.0;
  for (JobId j = 0; j < jobs.size(); ++j) {
    const JobAllocation* alloc = scheduler.allocation_of(j);
    if (alloc == nullptr || alloc->n == 0) continue;
    budget += alloc->x * static_cast<double>(alloc->n);
  }
  EXPECT_LE(result.busy_proc_time, budget + 1e-6);
}

}  // namespace
}  // namespace dagsched
