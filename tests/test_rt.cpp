// Sporadic DAG task systems: model validation, release generation,
// schedulability tests, and the federated guarantee as an executable
// property (test passes => simulation meets every deadline).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/federated.h"
#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "rt/schedulability.h"
#include "rt/task.h"
#include "sim/event_engine.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

SporadicTask make_task(Dag dag, Time period, Time deadline) {
  SporadicTask task;
  task.dag = share(std::move(dag));
  task.period = period;
  task.relative_deadline = deadline;
  task.profit = 1.0;
  task.validate();  // surfaces invalid parameters as the tests expect
  return task;
}

TEST(SporadicTaskTest, ValidationRules) {
  EXPECT_NO_THROW(make_task(make_parallel_block(8, 1.0), 10.0, 8.0));
  // D > T (unconstrained) rejected.
  EXPECT_THROW(make_task(make_parallel_block(8, 1.0), 10.0, 12.0),
               std::invalid_argument);
  // Span exceeds deadline.
  EXPECT_THROW(make_task(make_chain(10, 1.0), 12.0, 8.0),
               std::invalid_argument);
  EXPECT_THROW(make_task(make_parallel_block(8, 1.0), 0.0, 0.0),
               std::invalid_argument);
}

TEST(SporadicTaskTest, UtilizationMath) {
  TaskSet tasks;
  tasks.add(make_task(make_parallel_block(10, 1.0), 5.0, 5.0));  // u = 2
  tasks.add(make_task(make_chain(3, 1.0), 6.0, 6.0));            // u = 0.5
  EXPECT_DOUBLE_EQ(tasks.total_utilization(), 2.5);
}

TEST(ReleaseJobs, PeriodicSpacingAndDeadlines) {
  TaskSet tasks;
  tasks.add(make_task(make_parallel_block(4, 1.0), 10.0, 7.0));
  Rng rng(5);
  const JobSet jobs = release_jobs(tasks, 100.0, rng, 0.0);
  ASSERT_GE(jobs.size(), 9u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs[i].relative_deadline(), 7.0);
    if (i > 0) {
      EXPECT_NEAR(jobs[i].release() - jobs[i - 1].release(), 10.0, 1e-9);
    }
  }
}

TEST(ReleaseJobs, SporadicGapsAtLeastPeriod) {
  TaskSet tasks;
  tasks.add(make_task(make_parallel_block(4, 1.0), 10.0, 7.0));
  Rng rng(6);
  const JobSet jobs = release_jobs(tasks, 200.0, rng, 0.5);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const double gap = jobs[i].release() - jobs[i - 1].release();
    EXPECT_GE(gap, 10.0 - 1e-9);
    EXPECT_LE(gap, 15.0 + 1e-9);
  }
}

TEST(Federated, ClusterMathAndCapacity) {
  TaskSet tasks;
  // W=16, L=1, D=4: ceil(15/3) = 5 processors.
  tasks.add(make_task(make_parallel_block(16, 1.0), 5.0, 4.0));
  // Chain: W=L=3, D=4: 1 processor.
  tasks.add(make_task(make_chain(3, 1.0), 5.0, 4.0));
  const FederatedResult on8 = federated_schedulable(tasks, 8);
  EXPECT_TRUE(on8.schedulable);
  ASSERT_EQ(on8.clusters.size(), 2u);
  EXPECT_EQ(on8.clusters[0], 5u);
  EXPECT_EQ(on8.clusters[1], 1u);
  EXPECT_FALSE(federated_schedulable(tasks, 5).schedulable);
}

TEST(Gedf, CapacityBoundTest) {
  TaskSet tasks;
  tasks.add(make_task(make_parallel_block(10, 1.0), 10.0, 10.0));  // u=1, L=1
  // m=4, bound 2.618: need total u <= 1.527 and L <= D/2.618.
  EXPECT_TRUE(gedf_capacity_schedulable(tasks, 4));
  tasks.add(make_task(make_parallel_block(10, 1.0), 10.0, 10.0));
  EXPECT_FALSE(gedf_capacity_schedulable(tasks, 4));  // u=2 > 1.527
  EXPECT_TRUE(gedf_capacity_schedulable(tasks, 8));
  // Span too close to deadline fails the bound even at low utilization.
  TaskSet spanny;
  spanny.add(make_task(make_chain(6, 1.0), 100.0, 10.0));  // L=6 > 10/2.618
  EXPECT_FALSE(gedf_capacity_schedulable(spanny, 8));
}

TEST(PaperAdmission, SnapshotConditions) {
  const Params params = Params::from_epsilon(0.5);
  TaskSet roomy;
  // D exactly at the Theorem-2 slack: greedy = 15/8 + 1 = 2.875 -> 4.3125.
  roomy.add(make_task(make_parallel_block(16, 1.0), 10.0, 4.3125 + 0.01));
  const PaperAdmissionResult ok = paper_admission_snapshot(roomy, 8, params);
  EXPECT_TRUE(ok.slack_ok);
  EXPECT_TRUE(ok.windows_ok);
  EXPECT_TRUE(ok.admissible);

  TaskSet tight;
  tight.add(make_task(make_parallel_block(16, 1.0), 10.0, 2.9));
  EXPECT_FALSE(paper_admission_snapshot(tight, 8, params).slack_ok);
}

// The guarantee behind federated_schedulable, end to end: if the test
// passes, simulating the released jobs under the federated baseline meets
// every deadline.
class FederatedGuarantee : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FederatedGuarantee, NoMissesWhenTestPasses) {
  Rng rng(GetParam());
  const ProcCount m = 16;
  // Rejection-sample a schedulable task set.
  TaskSet tasks;
  for (int attempt = 0; attempt < 60; ++attempt) {
    TaskGenConfig config;
    config.num_tasks = 5;
    config.total_utilization = rng.uniform(1.0, 4.0);
    TaskSet candidate = generate_task_set(rng, config);
    if (federated_schedulable(candidate, m).schedulable) {
      tasks = std::move(candidate);
      break;
    }
  }
  if (tasks.empty()) GTEST_SKIP() << "no schedulable set found";

  Rng release_rng = rng.split(1);
  const JobSet jobs = release_jobs(tasks, 150.0, release_rng, 0.3);
  FederatedScheduler scheduler;
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  EXPECT_EQ(result.jobs_completed, jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_LE(result.outcomes[i].completion_time,
              jobs[i].absolute_deadline() + 1e-6)
        << "job " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederatedGuarantee,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Same spirit for GEDF: capacity-bound pass => EDF simulation meets all
// deadlines (the proven guarantee of Li et al.).
class GedfGuarantee : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GedfGuarantee, NoMissesWhenBoundHolds) {
  Rng rng(GetParam() ^ 0xBEEF);
  const ProcCount m = 16;
  TaskSet tasks;
  for (int attempt = 0; attempt < 60; ++attempt) {
    TaskGenConfig config;
    config.num_tasks = 6;
    config.total_utilization = rng.uniform(1.0, 5.5);
    TaskSet candidate = generate_task_set(rng, config);
    if (gedf_capacity_schedulable(candidate, m)) {
      tasks = std::move(candidate);
      break;
    }
  }
  if (tasks.empty()) GTEST_SKIP() << "no schedulable set found";

  Rng release_rng = rng.split(2);
  const JobSet jobs = release_jobs(tasks, 150.0, release_rng, 0.2);
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  EXPECT_EQ(result.jobs_completed, jobs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GedfGuarantee,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(Dbf, HandComputedSteps) {
  TaskSet tasks;
  // W=8, D=4, T=10.
  tasks.add(make_task(make_parallel_block(8, 1.0), 10.0, 4.0));
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 3.9), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 4.0), 8.0);
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 13.9), 8.0);
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 14.0), 16.0);  // second release at 10
}

TEST(Dbf, FeasibilityNecessaryCondition) {
  TaskSet tasks;
  // dbf(4) = 8 > 1*4: infeasible on one processor... but a parallel block
  // CAN use more processors; on m=2, dbf(4) = 8 <= 8.
  tasks.add(make_task(make_parallel_block(8, 1.0), 10.0, 4.0));
  EXPECT_FALSE(dbf_feasible(tasks, 1, 50.0));
  EXPECT_TRUE(dbf_feasible(tasks, 2, 50.0));
}

TEST(Dbf, SufficientTestsNeverAcceptDbfInfeasible) {
  // Consistency: federated/GEDF acceptance implies the necessary dbf
  // condition holds (otherwise one of the tests would be unsound).
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    TaskGenConfig config;
    config.num_tasks = 6;
    config.total_utilization = rng.uniform(1.0, 12.0);
    const TaskSet tasks = generate_task_set(rng, config);
    const ProcCount m = 16;
    const bool fed = federated_schedulable(tasks, m).schedulable;
    const bool gedf = gedf_capacity_schedulable(tasks, m);
    if (fed || gedf) {
      EXPECT_TRUE(dbf_feasible(tasks, m, 400.0))
          << "trial " << trial << " fed=" << fed << " gedf=" << gedf;
    }
  }
}

TEST(TaskGen, HitsUtilizationApproximately) {
  Rng rng(99);
  TaskGenConfig config;
  config.num_tasks = 12;
  config.total_utilization = 6.0;
  const TaskSet tasks = generate_task_set(rng, config);
  ASSERT_EQ(tasks.size(), 12u);
  // The parallelism cap may shave some utilization; never exceed target.
  EXPECT_LE(tasks.total_utilization(), 6.0 + 1e-9);
  EXPECT_GT(tasks.total_utilization(), 2.0);
  for (const SporadicTask& task : tasks.tasks()) {
    EXPECT_NO_THROW(task.validate());
  }
}

}  // namespace
}  // namespace dagsched
