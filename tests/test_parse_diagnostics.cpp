// Positioned ingestion diagnostics: every malformed input class produces a
// ParseError carrying source:line:column, and benign formatting variation
// (CRLF, trailing blank lines, comments) parses cleanly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/csv.h"
#include "util/parse_error.h"
#include "workload/trace_import.h"
#include "workload/workload_io.h"

namespace dagsched {
namespace {

ParseError capture_wl(const std::string& text) {
  std::istringstream in(text);
  try {
    read_workload(in, "test.wl");
  } catch (const ParseError& error) {
    return error;
  }
  ADD_FAILURE() << "expected ParseError for:\n" << text;
  return ParseError("none", 0, 0, "no error");
}

ParseError capture_csv(const std::string& text) {
  std::istringstream in(text);
  try {
    import_trace_csv(in, {}, "test.csv");
  } catch (const ParseError& error) {
    return error;
  }
  ADD_FAILURE() << "expected ParseError for:\n" << text;
  return ParseError("none", 0, 0, "no error");
}

// A minimal valid workload; tests below mutate one line at a time.
const char* kValidWl =
    "dagsched-workload 1\n"
    "job 0\n"
    "profit step 2 10\n"
    "nodes 2\n"
    "1.5 2.5\n"
    "edges 1\n"
    "0 1\n"
    "end\n";

TEST(WorkloadDiagnostics, ValidBaselineParses) {
  std::istringstream in(kValidWl);
  const JobSet jobs = read_workload(in, "test.wl");
  EXPECT_EQ(jobs.size(), 1u);
}

struct WlCase {
  const char* text;
  std::size_t line;
  std::size_t column;
  const char* substring;
};

TEST(WorkloadDiagnostics, PositionedErrors) {
  const WlCase cases[] = {
      {"", 1, 1, "empty input"},
      {"not-a-workload 1\njob 0\n", 1, 1, "bad header"},
      {"dagsched-workload 9\n", 1, 19, "unsupported version"},
      {"dagsched-workload 1\nblob 0\n", 2, 1, "expected 'job'"},
      {"dagsched-workload 1\njob -3\n", 2, 5, "release time must be >= 0"},
      {"dagsched-workload 1\njob nan\n", 2, 5, "must be finite"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10 junk\n", 3, 18,
       "trailing junk"},
      {"dagsched-workload 1\njob 0\nprofit blob 2 10\n", 3, 8,
       "unknown profit kind"},
      {"dagsched-workload 1\njob 0\nprofit step -2 10\n", 3, 13,
       "peak profit must be positive"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10\nnodes 0\n", 4, 7,
       "node count must be >= 1"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10\nnodes 2\n1.5 -2.5\n",
       5, 5, "node work must be positive"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10\nnodes 2\n1.5 nan\n",
       5, 5, "must be finite"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10\nnodes 3\n1.5 2.5\n",
       5, 8, "missing node work"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10\nnodes 2\n1.5 2.5\n"
       "edges 1\n0 7\nend\n",
       7, 3, "out of range"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10\nnodes 2\n1.5 2.5\n"
       "edges 1\n1 1\nend\n",
       7, 1, "self-edge"},
      {"dagsched-workload 1\njob 0\nprofit step 2 10\nnodes 2\n1.5 2.5\n"
       "edges 0\nfin\n",
       7, 1, "expected 'end'"},
  };
  for (const WlCase& c : cases) {
    const ParseError error = capture_wl(c.text);
    EXPECT_EQ(error.source(), "test.wl") << c.text;
    EXPECT_EQ(error.line(), c.line) << c.text;
    EXPECT_EQ(error.column(), c.column) << c.text;
    EXPECT_NE(std::string(error.what()).find(c.substring), std::string::npos)
        << "diagnostic was: " << error.what();
    // GCC-style prefix so editors can jump to the position.
    const std::string expected_prefix = "test.wl:" + std::to_string(c.line) +
                                        ":" + std::to_string(c.column) + ": ";
    EXPECT_EQ(std::string(error.what()).rfind(expected_prefix, 0), 0u)
        << error.what();
  }
}

TEST(WorkloadDiagnostics, CrlfAndTrailingBlanksParse) {
  std::string crlf(kValidWl);
  std::string with_crlf;
  for (const char c : crlf) {
    if (c == '\n') with_crlf += "\r\n";
    else with_crlf += c;
  }
  with_crlf += "\r\n\r\n";  // trailing blank lines
  std::istringstream in(with_crlf);
  const JobSet jobs = read_workload(in, "test.wl");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].work(), 4.0);
}

struct CsvCase {
  const char* row;  // appended after a valid header
  std::size_t column;
  const char* substring;
};

TEST(TraceDiagnostics, PositionedErrors) {
  const std::string header = "release,work,span,deadline,profit\n";
  const CsvCase cases[] = {
      {"1,2", 1, "expected 5 fields"},
      {"x,10,2,20,5", 1, "bad release"},
      {"-1,10,2,20,5", 1, "negative release"},
      {"0,nan,2,20,5", 3, "work must be finite"},
      {"0,inf,2,20,5", 3, "work must be finite"},
      {"0,-10,2,20,5", 3, "non-positive work"},
      {"0,10,-2,20,5", 6, "non-positive span"},
      {"0,10,20,20,5", 6, "exceeds work"},
      {"0,10,2,0,5", 8, "non-positive deadline"},
      {"0,10,2,20,-5", 11, "non-positive profit"},
      {"0,10,2,20,5x", 11, "trailing junk"},
  };
  for (const CsvCase& c : cases) {
    const ParseError error = capture_csv(header + c.row + "\n");
    EXPECT_EQ(error.source(), "test.csv") << c.row;
    EXPECT_EQ(error.line(), 2u) << c.row;
    EXPECT_EQ(error.column(), c.column) << c.row << " -> " << error.what();
    EXPECT_NE(std::string(error.what()).find(c.substring), std::string::npos)
        << "diagnostic was: " << error.what();
  }
}

TEST(TraceDiagnostics, BadHeaderIsPositioned) {
  const ParseError error = capture_csv("release,work,span,due,profit\n");
  EXPECT_EQ(error.line(), 1u);
  EXPECT_EQ(error.column(), 19u);  // start of the offending column name
  EXPECT_NE(std::string(error.what()).find("bad header"), std::string::npos);
}

TEST(TraceDiagnostics, CrlfAndTrailingBlanksParse) {
  std::istringstream in(
      "release,work,span,deadline,profit\r\n"
      "0,10,2,20,5\r\n"
      "1, 8 ,2,20,4\r\n"
      "\r\n"
      "\r\n");
  const JobSet jobs = import_trace_csv(in, {}, "test.csv");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].work(), 8.0);
}

TEST(CsvSplit, TracksColumnsAndQuotes) {
  const auto cells = split_csv_line("a,\"b,c\",d\r");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].text, "a");
  EXPECT_EQ(cells[0].column, 1u);
  EXPECT_EQ(cells[1].text, "b,c");
  EXPECT_EQ(cells[1].column, 3u);
  EXPECT_EQ(cells[2].text, "d");
  EXPECT_EQ(cells[2].column, 9u);
}

}  // namespace
}  // namespace dagsched
