// Allocation math: n_i, x_i, density, and Lemmas 1-3 as numeric checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/allocation.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(Allocation, PureChainGetsOneProcessor) {
  const Params p = Params::from_epsilon(0.5);
  // W == L: only the critical path exists.
  const JobAllocation alloc =
      compute_deadline_allocation(10.0, 10.0, 20.0, 1.0, p, 1.0);
  EXPECT_EQ(alloc.n, 1u);
  EXPECT_DOUBLE_EQ(alloc.x, 10.0);
  EXPECT_TRUE(alloc.good);
}

TEST(Allocation, InfeasibleWhenDeadlineBelowSpan) {
  const Params p = Params::from_epsilon(0.5);
  // D/(1+2delta) <= L: no processor count can make the job delta-good.
  const JobAllocation alloc =
      compute_deadline_allocation(10.0, 8.0, 9.0, 1.0, p, 1.0);
  EXPECT_EQ(alloc.n, 0u);
  EXPECT_FALSE(alloc.good);
}

TEST(Allocation, MatchesPaperFormulaBeforeRounding) {
  const Params p = Params::from_epsilon(0.5);  // delta = 0.125
  const Work W = 100.0, L = 4.0;
  const Time D = 30.0;
  const JobAllocation alloc =
      compute_deadline_allocation(W, L, D, 2.0, p, 1.0);
  const double exact_n = (W - L) / (D / 1.25 - L);  // = 96/20 = 4.8
  EXPECT_EQ(alloc.n, static_cast<ProcCount>(std::ceil(exact_n)));  // 5
  EXPECT_DOUBLE_EQ(alloc.x, (W - L) / 5.0 + L);                    // 23.2
  EXPECT_DOUBLE_EQ(alloc.v, 2.0 / (alloc.x * 5.0));
  EXPECT_TRUE(alloc.good);
  // delta-good: x (1+2delta) <= D.
  EXPECT_LE(alloc.x * 1.25, D + 1e-9);
}

TEST(Allocation, SpeedScalesWorkAndSpan) {
  const Params p = Params::from_epsilon(0.5);
  const JobAllocation at1 =
      compute_deadline_allocation(100.0, 4.0, 30.0, 2.0, p, 1.0);
  const JobAllocation at2 =
      compute_deadline_allocation(200.0, 8.0, 30.0, 2.0, p, 2.0);
  // Doubling both the job and the speed is a no-op.
  EXPECT_EQ(at1.n, at2.n);
  EXPECT_DOUBLE_EQ(at1.x, at2.x);
}

// Lemma 1 (with the rounding allowance): n_i <= ceil(b^2 m) whenever the
// deadline satisfies the Theorem-2 assumption.
TEST(Allocation, Lemma1ProcessorBound) {
  Rng rng(3);
  for (double eps : {0.2, 0.5, 1.0}) {
    const Params p = Params::from_epsilon(eps);
    for (ProcCount m : {4u, 16u, 64u}) {
      for (int trial = 0; trial < 200; ++trial) {
        const Work L = rng.uniform(1.0, 10.0);
        const Work W = L + rng.uniform(0.0, 100.0 * L);
        const Time D =
            (1.0 + eps) * ((W - L) / static_cast<double>(m) + L) *
            rng.uniform(1.0, 3.0);  // at least the assumed slack
        const JobAllocation alloc =
            compute_deadline_allocation(W, L, D, 1.0, p, 1.0);
        ASSERT_GE(alloc.n, 1u);
        EXPECT_LE(alloc.n,
                  static_cast<ProcCount>(
                      std::ceil(p.b * p.b * static_cast<double>(m))))
            << "eps=" << eps << " m=" << m << " W=" << W << " L=" << L;
      }
    }
  }
}

// Lemma 2: every allocated job is delta-good.
TEST(Allocation, Lemma2DeltaGood) {
  Rng rng(17);
  const Params p = Params::from_epsilon(0.4);
  for (int trial = 0; trial < 500; ++trial) {
    const Work L = rng.uniform(0.5, 5.0);
    const Work W = L + rng.uniform(0.0, 50.0);
    const Time D = rng.uniform(L * (1.0 + 2.0 * p.delta) * 1.01, 100.0);
    const JobAllocation alloc =
        compute_deadline_allocation(W, L, D, 1.0, p, 1.0);
    if (alloc.n == 0) continue;  // infeasible deadline, allowed
    EXPECT_LE(alloc.x * (1.0 + 2.0 * p.delta), D + 1e-9);
  }
}

// Lemma 3: x_i n_i <= a W_i under the Theorem-2 deadline assumption.
TEST(Allocation, Lemma3ProcessorSteps) {
  Rng rng(29);
  for (double eps : {0.3, 0.8}) {
    const Params p = Params::from_epsilon(eps);
    const double a = p.a();
    for (int trial = 0; trial < 300; ++trial) {
      const ProcCount m = 16;
      const Work L = rng.uniform(1.0, 8.0);
      const Work W = L + rng.uniform(0.0, 60.0 * L);
      const Time D =
          (1.0 + eps) * ((W - L) / static_cast<double>(m) + L) *
          rng.uniform(1.0, 2.0);
      const JobAllocation alloc =
          compute_deadline_allocation(W, L, D, 1.0, p, 1.0);
      ASSERT_GE(alloc.n, 1u);
      EXPECT_LE(alloc.x * static_cast<double>(alloc.n), a * W + 1e-6)
          << "eps=" << eps << " W=" << W << " L=" << L << " D=" << D;
    }
  }
}

TEST(Allocation, ProfitVariantUsesPlateau) {
  const Params p = Params::from_epsilon(0.5);
  const JobAllocation alloc =
      compute_profit_allocation(100.0, 4.0, 30.0, p, 1.0);
  // Same formula as the deadline variant with D := x* = 30.
  const JobAllocation ref =
      compute_deadline_allocation(100.0, 4.0, 30.0, 1.0, p, 1.0);
  EXPECT_EQ(alloc.n, ref.n);
  EXPECT_DOUBLE_EQ(alloc.x, ref.x);
  // Lemma 14: x (1+2delta) <= x*.
  EXPECT_LE(alloc.x * (1.0 + 2.0 * p.delta), 30.0 + 1e-9);
}

TEST(Allocation, ProfitVariantInfeasiblePlateau) {
  const Params p = Params::from_epsilon(0.5);
  const JobAllocation alloc =
      compute_profit_allocation(10.0, 8.0, 9.0, p, 1.0);
  EXPECT_EQ(alloc.n, 0u);
}

}  // namespace
}  // namespace dagsched
