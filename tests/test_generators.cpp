// Generator tests: exact shapes for the deterministic families (including
// the paper's Figure-1/Figure-2 constructions) and parameterized property
// sweeps over the randomized families.
#include <gtest/gtest.h>

#include "dag/generators.h"
#include "util/float_cmp.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(Generators, SingleNode) {
  const Dag dag = make_single_node(2.5);
  EXPECT_EQ(dag.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 2.5);
  EXPECT_DOUBLE_EQ(dag.span(), 2.5);
}

TEST(Generators, Chain) {
  const Dag dag = make_chain(10, 0.5);
  EXPECT_EQ(dag.num_nodes(), 10u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 5.0);
  EXPECT_DOUBLE_EQ(dag.span(), 5.0);  // fully sequential
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
}

TEST(Generators, ParallelBlock) {
  const Dag dag = make_parallel_block(16, 2.0);
  EXPECT_EQ(dag.num_nodes(), 16u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 32.0);
  EXPECT_DOUBLE_EQ(dag.span(), 2.0);  // fully parallel
  EXPECT_EQ(dag.num_edges(), 0u);
}

TEST(Generators, Fig1ExactShape) {
  // m=4, chain of 6 nodes of weight 2: L = 12, W = m*L = 48.
  const Dag dag = make_fig1_dag(4, 6, 2.0);
  EXPECT_EQ(dag.num_nodes(), 6u + 3u * 6u);
  EXPECT_DOUBLE_EQ(dag.span(), 12.0);
  EXPECT_DOUBLE_EQ(dag.total_work(), 48.0);
  // The paper's construction: L == W/m exactly.
  EXPECT_DOUBLE_EQ(dag.span(), dag.total_work() / 4.0);
}

TEST(Generators, Fig1RequiresTwoProcs) {
  EXPECT_THROW(make_fig1_dag(1, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(make_fig1_dag(4, 0, 1.0), std::invalid_argument);
}

TEST(Generators, Fig2ExactShape) {
  // chain of 9 + block of 30, node size 0.5: span = 10*0.5 = 5.
  const Dag dag = make_fig2_dag(9, 30, 0.5);
  EXPECT_EQ(dag.num_nodes(), 39u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 39 * 0.5);
  EXPECT_DOUBLE_EQ(dag.span(), 5.0);
  // Every block node depends on the chain end.
  EXPECT_EQ(dag.sinks().size(), 30u);
  EXPECT_EQ(dag.sources().size(), 1u);
}

TEST(Generators, ForkJoinShape) {
  const Dag dag = make_fork_join(3, 4, 1.0, 0.01);
  // Per segment: fork + join + 4 bodies = 6 nodes.
  EXPECT_EQ(dag.num_nodes(), 18u);
  EXPECT_NEAR(dag.total_work(), 3 * (4 * 1.0 + 2 * 0.01), 1e-12);
  // Span: 3 segments of fork+body+join.
  EXPECT_NEAR(dag.span(), 3 * (1.0 + 2 * 0.01), 1e-12);
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
}

TEST(Generators, WavefrontShape) {
  const Dag dag = make_wavefront(4, 6, 2.0);
  EXPECT_EQ(dag.num_nodes(), 24u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 48.0);
  // Span is the staircase path: (rows + cols - 1) * node_work.
  EXPECT_DOUBLE_EQ(dag.span(), 9 * 2.0);
  EXPECT_EQ(dag.sources().size(), 1u);  // corner (0,0)
  EXPECT_EQ(dag.sinks().size(), 1u);    // corner (rows-1, cols-1)
  // Interior cells have in-degree 2.
  EXPECT_EQ(dag.in_degree(7), 2u);  // (1,1)
}

TEST(Generators, WavefrontDegenerateToChain) {
  const Dag dag = make_wavefront(1, 5, 1.0);
  EXPECT_DOUBLE_EQ(dag.span(), 5.0);  // single row = chain
  EXPECT_DOUBLE_EQ(dag.total_work(), 5.0);
}

TEST(Generators, Stencil1dShape) {
  const Dag dag = make_stencil_1d(3, 5, 1.0);
  EXPECT_EQ(dag.num_nodes(), 15u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 15.0);
  EXPECT_DOUBLE_EQ(dag.span(), 3.0);  // one node per iteration
  // First row are the only sources.
  EXPECT_EQ(dag.sources().size(), 5u);
  EXPECT_EQ(dag.sinks().size(), 5u);
  // An interior cell depends on three halo neighbours.
  EXPECT_EQ(dag.in_degree(5 + 2), 3u);  // (t=1, i=2)
  // Border cells have in-degree 2.
  EXPECT_EQ(dag.in_degree(5 + 0), 2u);
}

TEST(Generators, MapReduceShape) {
  const Dag dag = make_map_reduce(4, 2, 3.0, 5.0, 1.0);
  EXPECT_EQ(dag.num_nodes(), 7u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 4 * 3.0 + 2 * 5.0 + 1.0);
  // Span: one map -> one reduce -> output.
  EXPECT_DOUBLE_EQ(dag.span(), 3.0 + 5.0 + 1.0);
  // Complete bipartite shuffle: every reducer waits on all mappers.
  EXPECT_EQ(dag.in_degree(4), 4u);
  EXPECT_EQ(dag.in_degree(5), 4u);
  EXPECT_EQ(dag.sinks().size(), 1u);
}

TEST(Generators, HpcShapesRejectDegenerate) {
  EXPECT_THROW(make_wavefront(0, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(make_stencil_1d(2, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_map_reduce(0, 2, 1.0, 1.0), std::invalid_argument);
}

TEST(WorkDistTest, ConstantAndClamping) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(WorkDist::constant(3.0).sample(rng), 3.0);
  // Constant 0 would be an invalid node weight; the sampler clamps.
  EXPECT_GT(WorkDist::constant(0.0).sample(rng), 0.0);
}

TEST(WorkDistTest, UniformWithinBounds) {
  Rng rng(2);
  const WorkDist dist = WorkDist::uniform(1.0, 2.0);
  for (int i = 0; i < 200; ++i) {
    const Work w = dist.sample(rng);
    EXPECT_GE(w, 1.0);
    EXPECT_LT(w, 2.0);
  }
}

// ---------------------------------------------------------------------------
// Property sweeps over randomized families.
// ---------------------------------------------------------------------------

class RandomFamilies : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFamilies, LayeredIsValidAndLayerDeep) {
  Rng rng(GetParam());
  LayeredParams params;
  params.layers = 5;
  params.min_width = 2;
  params.max_width = 6;
  const Dag dag = make_layered_random(rng, params);
  // Validity (acyclicity etc.) is enforced by build(); check shape: span is
  // at least the number of layers times the min node weight.
  EXPECT_GE(dag.num_nodes(), 10u);
  EXPECT_GT(dag.span(), 0.0);
  EXPECT_LE(dag.span(), dag.total_work() + 1e-9);
}

TEST_P(RandomFamilies, SeriesParallelSingleSourceSink) {
  Rng rng(GetParam());
  SeriesParallelParams params;
  params.max_depth = 3;
  const Dag dag = make_series_parallel(rng, params);
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  EXPECT_LE(dag.span(), dag.total_work() + 1e-9);
}

TEST_P(RandomFamilies, RandomDagRespectsTopoOrder) {
  Rng rng(GetParam());
  RandomDagParams params;
  params.nodes = 24;
  params.edge_prob = 0.15;
  const Dag dag = make_random_dag(rng, params);
  EXPECT_EQ(dag.num_nodes(), 24u);
  // Edges only go forward in node-id order by construction.
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (NodeId succ : dag.successors(v)) EXPECT_GT(succ, v);
  }
}

TEST_P(RandomFamilies, SpanNeverExceedsWorkAndLevelsConsistent) {
  Rng rng(GetParam() ^ 0xABCDEF);
  RandomDagParams params;
  params.nodes = 32;
  params.edge_prob = 0.1;
  const Dag dag = make_random_dag(rng, params);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    // top_level + bottom_level counts the node twice; any path through v is
    // at most the span.
    EXPECT_LE(dag.top_level(v) + dag.bottom_level(v) - dag.node_work(v),
              dag.span() + 1e-9);
    EXPECT_GE(dag.bottom_level(v), dag.node_work(v));
    EXPECT_GE(dag.top_level(v), dag.node_work(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFamilies,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dagsched
