// EventEngine: machine-model semantics, timing exactness, event delivery,
// and the paper's Observations 1 and 2 as executable properties.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/event_engine.h"
#include "util/float_cmp.h"
#include "util/rng.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

/// Grants exactly `n` processors to every active job, in job-id order.
class DedicatedScheduler final : public SchedulerBase {
 public:
  explicit DedicatedScheduler(ProcCount n) : n_(n) {}
  std::string name() const override { return "dedicated"; }
  void decide(const EngineContext& ctx, Assignment& out) override {
    ProcCount free = ctx.num_procs();
    for (const JobId job : ctx.active_jobs()) {
      if (n_ > free) break;
      out.add(job, n_);
      free -= n_;
    }
  }

 private:
  ProcCount n_;
};

/// Never schedules anything.
class IdleScheduler final : public SchedulerBase {
 public:
  std::string name() const override { return "idle"; }
  void decide(const EngineContext&, Assignment&) override {}
};

SimResult run_single(Dag dag, Time deadline, ProcCount m, double speed,
                     SelectorKind selector = SelectorKind::kFifo,
                     bool trace = false) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, deadline, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto sel = make_selector(selector);
  EngineOptions options;
  options.num_procs = m;
  options.speed = speed;
  options.record_trace = trace;
  return simulate(jobs, scheduler, *sel, options);
}

TEST(EventEngine, SingleNodeCompletesAtWork) {
  const SimResult result = run_single(make_single_node(3.0), 10.0, 1, 1.0);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 3.0);
  EXPECT_DOUBLE_EQ(result.total_profit, 1.0);
  EXPECT_DOUBLE_EQ(result.busy_proc_time, 3.0);
}

TEST(EventEngine, SpeedAugmentationScalesTime) {
  const SimResult result = run_single(make_single_node(3.0), 10.0, 1, 2.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 1.5);
}

TEST(EventEngine, ParallelBlockUsesAllProcs) {
  // 8 unit nodes on 4 processors: two waves of 1.0.
  const SimResult result = run_single(make_parallel_block(8, 1.0), 10.0, 4, 1.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 2.0);
  EXPECT_DOUBLE_EQ(result.busy_proc_time, 8.0);
}

TEST(EventEngine, ChainIsSequentialDespiteManyProcs) {
  const SimResult result = run_single(make_chain(5, 1.0), 10.0, 8, 1.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 5.0);
}

TEST(EventEngine, MissedDeadlineEarnsNothing) {
  const SimResult result = run_single(make_chain(5, 1.0), 3.0, 4, 1.0);
  // EDF drops the job once expired; it never completes.
  EXPECT_FALSE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.total_profit, 0.0);
}

TEST(EventEngine, LateReleaseDelaysStart) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 5.0, 10.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 1;
  const SimResult result = simulate(jobs, scheduler, *sel, options);
  EXPECT_DOUBLE_EQ(result.outcomes[0].first_start, 5.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 7.0);
}

TEST(EventEngine, IdleSchedulerLeavesJobsIncomplete) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 0.0, 4.0, 1.0));
  jobs.finalize();
  IdleScheduler scheduler;
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 2;
  const SimResult result = simulate(jobs, scheduler, *sel, options);
  EXPECT_FALSE(result.outcomes[0].completed);
  EXPECT_EQ(result.jobs_completed, 0u);
  EXPECT_DOUBLE_EQ(result.outcomes[0].executed, 0.0);
}

TEST(EventEngine, DeadlineEventDelivered) {
  struct Recorder final : SchedulerBase {
    std::string name() const override { return "recorder"; }
    void decide(const EngineContext&, Assignment&) override {}
    void on_deadline(const EngineContext& ctx, JobId job) override {
      expired_job = job;
      expired_at = ctx.now();
    }
    JobId expired_job = kInvalidJob;
    Time expired_at = -1.0;
  };
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(1.0)), 1.0, 3.0, 1.0));
  jobs.finalize();
  Recorder scheduler;
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 1;
  simulate(jobs, scheduler, *sel, options);
  EXPECT_EQ(scheduler.expired_job, 0u);
  EXPECT_DOUBLE_EQ(scheduler.expired_at, 4.0);  // release 1 + D 3
}

TEST(EventEngine, OverAllocationIsCappedByReadyNodes) {
  // A chain has 1 ready node; granting 4 processors must not over-execute.
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(3, 1.0)), 0.0, 100.0, 1.0));
  jobs.finalize();
  DedicatedScheduler scheduler(4);
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  const SimResult result = simulate(jobs, scheduler, *sel, options);
  EXPECT_TRUE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 3.0);
  EXPECT_DOUBLE_EQ(result.busy_proc_time, 3.0);  // 1 proc effectively busy
}

// Observation 1: with all ready nodes executing at speed s, the remaining
// critical path decreases at rate s.  Chain on one proc at speed 2: span 5
// gone in 2.5.
TEST(EventEngine, Observation1SpanDecreasesAtSpeed) {
  const SimResult result = run_single(make_chain(5, 1.0), 10.0, 1, 2.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion_time, 2.5);
}

// Observation 2 (Graham bound) as a property: a job on n dedicated
// processors finishes within (W - L)/n + L regardless of node selection.
struct GrahamCase {
  std::uint64_t seed;
  ProcCount n;
  SelectorKind selector;
};

class GrahamBound : public ::testing::TestWithParam<GrahamCase> {};

TEST_P(GrahamBound, CompletesWithinBound) {
  const GrahamCase param = GetParam();
  Rng rng(param.seed);
  RandomDagParams dag_params;
  dag_params.nodes = 40;
  dag_params.edge_prob = 0.1;
  Dag dag = make_random_dag(rng, dag_params);
  const Work work = dag.total_work();
  const Work span = dag.span();
  const double bound =
      (work - span) / static_cast<double>(param.n) + span;

  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(dag)), 0.0, 10.0 * bound, 1.0));
  jobs.finalize();
  DedicatedScheduler scheduler(param.n);
  auto sel = make_selector(param.selector, param.seed);
  EngineOptions options;
  options.num_procs = param.n;
  options.record_trace = true;
  const SimResult result = simulate(jobs, scheduler, *sel, options);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_LE(result.outcomes[0].completion_time, bound + 1e-6)
      << "selector=" << selector_kind_name(param.selector)
      << " n=" << param.n;
  EXPECT_EQ(result.trace.validate(jobs, param.n, 1.0), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GrahamBound,
    ::testing::Values(GrahamCase{1, 1, SelectorKind::kFifo},
                      GrahamCase{1, 2, SelectorKind::kLifo},
                      GrahamCase{2, 4, SelectorKind::kAdversarial},
                      GrahamCase{3, 4, SelectorKind::kRandom},
                      GrahamCase{4, 8, SelectorKind::kAdversarial},
                      GrahamCase{5, 8, SelectorKind::kCriticalPath},
                      GrahamCase{6, 16, SelectorKind::kRandom},
                      GrahamCase{7, 3, SelectorKind::kFifo}));

TEST(EventEngine, MultiJobTraceIsValidSchedule) {
  Rng rng(123);
  JobSet jobs;
  for (int i = 0; i < 12; ++i) {
    RandomDagParams params;
    params.nodes = 20;
    params.edge_prob = 0.1;
    Dag dag = make_random_dag(rng, params);
    const double release = rng.uniform(0.0, 30.0);
    const double slack = rng.uniform(1.2, 3.0);
    const double deadline =
        slack * ((dag.total_work() - dag.span()) / 4.0 + dag.span());
    jobs.add(Job::with_deadline(share(std::move(dag)), release, deadline,
                                rng.uniform(0.5, 2.0)));
  }
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  options.record_trace = true;
  const SimResult result = simulate(jobs, scheduler, *sel, options);
  EXPECT_EQ(result.trace.validate(jobs, 4, 1.0), "");
  EXPECT_GT(result.jobs_completed, 0u);
}

TEST(EventEngine, BusyTimeEqualsExecutedWork) {
  Rng rng(321);
  JobSet jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.add(Job::with_deadline(share(make_parallel_block(10, 1.0)),
                                static_cast<double>(i), 100.0, 1.0));
  }
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kFcfs, false, true});
  auto sel = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 3;
  options.speed = 2.0;
  const SimResult result = simulate(jobs, scheduler, *sel, options);
  EXPECT_EQ(result.jobs_completed, 6u);
  Work executed = 0.0;
  for (const JobOutcome& outcome : result.outcomes) {
    executed += outcome.executed;
  }
  // busy processor-time * speed == work executed.
  EXPECT_NEAR(result.busy_proc_time * 2.0, executed, 1e-6);
  EXPECT_NEAR(executed, 60.0, 1e-6);
}

}  // namespace
}  // namespace dagsched
