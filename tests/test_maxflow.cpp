// MaxFlow (Dinic): classic instances and randomized min-cut cross-checks.
#include <gtest/gtest.h>

#include "opt/maxflow.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow flow(2);
  const std::size_t e = flow.add_edge(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(flow.max_flow(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(flow.flow_on(e), 5.0);
}

TEST(MaxFlow, NoPath) {
  MaxFlow flow(3);
  flow.add_edge(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(flow.max_flow(0, 2), 0.0);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow flow(3);
  flow.add_edge(0, 1, 5.0);
  flow.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(flow.max_flow(0, 2), 2.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 3.0);
  flow.add_edge(1, 3, 3.0);
  flow.add_edge(0, 2, 4.0);
  flow.add_edge(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(flow.max_flow(0, 3), 7.0);
}

TEST(MaxFlow, ClassicTextbookInstance) {
  // CLRS figure: max flow 23.
  MaxFlow flow(6);
  flow.add_edge(0, 1, 16);
  flow.add_edge(0, 2, 13);
  flow.add_edge(1, 3, 12);
  flow.add_edge(2, 1, 4);
  flow.add_edge(2, 4, 14);
  flow.add_edge(3, 2, 9);
  flow.add_edge(3, 5, 20);
  flow.add_edge(4, 3, 7);
  flow.add_edge(4, 5, 4);
  EXPECT_DOUBLE_EQ(flow.max_flow(0, 5), 23.0);
}

TEST(MaxFlow, NeedsAugmentingThroughResidual) {
  // The classic trap where a greedy path must be partially undone.
  MaxFlow flow(4);
  flow.add_edge(0, 1, 1);
  flow.add_edge(0, 2, 1);
  flow.add_edge(1, 2, 1);
  flow.add_edge(1, 3, 1);
  flow.add_edge(2, 3, 1);
  EXPECT_DOUBLE_EQ(flow.max_flow(0, 3), 2.0);
}

TEST(MaxFlow, FractionalCapacities) {
  MaxFlow flow(3);
  flow.add_edge(0, 1, 0.75);
  flow.add_edge(1, 2, 1.25);
  EXPECT_NEAR(flow.max_flow(0, 2), 0.75, 1e-12);
}

// Property: flow value equals capacity of a randomly planted cut when the
// cut is the unique bottleneck.
class MaxFlowFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxFlowFuzz, BipartiteMatchesHallBound) {
  // Bipartite b-matching: left nodes with supply 1, right nodes with
  // capacity 1, full bipartite edges => flow = min(left, right).
  Rng rng(GetParam());
  const auto left = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const auto right = static_cast<std::size_t>(rng.uniform_int(1, 8));
  MaxFlow flow(left + right + 2);
  const std::size_t source = left + right;
  const std::size_t sink = left + right + 1;
  for (std::size_t i = 0; i < left; ++i) flow.add_edge(source, i, 1.0);
  for (std::size_t j = 0; j < right; ++j) {
    flow.add_edge(left + j, sink, 1.0);
  }
  for (std::size_t i = 0; i < left; ++i) {
    for (std::size_t j = 0; j < right; ++j) {
      flow.add_edge(i, left + j, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(flow.max_flow(source, sink),
                   static_cast<double>(std::min(left, right)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dagsched
