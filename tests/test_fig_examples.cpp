// Executable versions of the paper's Section-4 examples:
//  * Figure 1 / Theorem 1: on the chain-next-to-block DAG, an adversarial
//    semi-non-clairvoyant execution takes (2 - 1/m) L while a clairvoyant
//    one takes exactly L = W/m, and speed 2 - 1/m is exactly the threshold
//    for meeting a deadline of L.
//  * Figure 2: even the clairvoyant executor needs ~ (W-L)/m + L on the
//    chain-then-block DAG, converging as the node size shrinks.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/event_engine.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

SimResult run_one(std::shared_ptr<const Dag> dag, Time deadline, ProcCount m,
                  double speed, SelectorKind selector) {
  JobSet jobs;
  jobs.add(Job::with_deadline(std::move(dag), 0.0, deadline, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kFcfs, false, true});
  auto sel = make_selector(selector);
  EngineOptions options;
  options.num_procs = m;
  options.speed = speed;
  return simulate(jobs, scheduler, *sel, options);
}

class Fig1 : public ::testing::TestWithParam<ProcCount> {};

TEST_P(Fig1, AdversaryForcesGrahamBoundClairvoyantAchievesIdeal) {
  const ProcCount m = GetParam();
  // chain_nodes = 2m so the block count (m-1)*2m is divisible by m.
  const std::size_t chain = 2 * static_cast<std::size_t>(m);
  auto dag = share(make_fig1_dag(m, chain, 1.0));
  const Work L = dag->span();
  const Work W = dag->total_work();
  ASSERT_DOUBLE_EQ(L, W / static_cast<double>(m));

  // Adversarial execution: block first, then the chain alone.
  const SimResult bad = run_one(dag, 10.0 * L, m, 1.0,
                                SelectorKind::kAdversarial);
  ASSERT_TRUE(bad.outcomes[0].completed);
  const double graham = (W - L) / static_cast<double>(m) + L;
  EXPECT_NEAR(bad.outcomes[0].completion_time, graham, 1e-6);
  EXPECT_NEAR(bad.outcomes[0].completion_time,
              (2.0 - 1.0 / static_cast<double>(m)) * L, 1e-6);

  // Clairvoyant execution finishes in exactly W/m = L.
  const SimResult good = run_one(dag, 10.0 * L, m, 1.0,
                                 SelectorKind::kCriticalPath);
  ASSERT_TRUE(good.outcomes[0].completed);
  EXPECT_NEAR(good.outcomes[0].completion_time, L, 1e-6);
}

TEST_P(Fig1, SpeedThresholdIsTwoMinusOneOverM) {
  const ProcCount m = GetParam();
  const std::size_t chain = 2 * static_cast<std::size_t>(m);
  auto dag = share(make_fig1_dag(m, chain, 1.0));
  const Work L = dag->span();
  const double threshold = 2.0 - 1.0 / static_cast<double>(m);

  // With deadline L, the adversarial execution needs speed >= 2 - 1/m.
  const SimResult at = run_one(dag, L * (1.0 + 1e-9), m, threshold,
                               SelectorKind::kAdversarial);
  EXPECT_TRUE(at.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(at.total_profit, 1.0);

  const SimResult below =
      run_one(dag, L, m, threshold - 0.05, SelectorKind::kAdversarial);
  EXPECT_DOUBLE_EQ(below.total_profit, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Machines, Fig1,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u));

TEST(Fig2, ClairvoyantConvergesToGrahamBoundAsNodesShrink) {
  const ProcCount m = 4;
  const Work W = 32.0, L = 4.0;
  double prev_gap = 1e9;
  for (const double g : {1.0, 0.5, 0.25, 0.125}) {
    const auto chain_nodes = static_cast<std::size_t>(L / g) - 1;
    const auto block_nodes =
        static_cast<std::size_t>(W / g) - chain_nodes;
    auto dag = share(make_fig2_dag(chain_nodes, block_nodes, g));
    ASSERT_NEAR(dag->span(), L, 1e-9);
    ASSERT_NEAR(dag->total_work(), W, 1e-9);

    const SimResult result =
        run_one(dag, 100.0, m, 1.0, SelectorKind::kCriticalPath);
    ASSERT_TRUE(result.outcomes[0].completed);
    const double target = (W - L) / static_cast<double>(m) + L;
    const double completion = result.outcomes[0].completion_time;
    // Paper: completion = (W-L)/m + L - g (1 - 1/m) + rounding; always
    // within one node of the bound, from below.
    EXPECT_LE(completion, target + 1e-9);
    EXPECT_GE(completion, target - 2.0 * g);
    const double gap = target - completion;
    EXPECT_LE(gap, prev_gap + 1e-9);  // converges monotonically
    prev_gap = gap;
  }
}

TEST(Fig2, EvenInfiniteProcessorsCannotBeatSpan) {
  auto dag = share(make_fig2_dag(7, 64, 0.5));  // span 4
  const SimResult result =
      run_one(dag, 100.0, 512, 1.0, SelectorKind::kCriticalPath);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_GE(result.outcomes[0].completion_time, dag->span() - 1e-9);
}

}  // namespace
}  // namespace dagsched
