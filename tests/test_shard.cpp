// Sharded single-run execution (KernelOptions::shards, sim/kernel/shard.h):
// decision-log and result parity against the serial seed path at every
// shard count, across both engines and all fault modes; checkpoint
// kill/resume on sharded runs (including shard-count switches at resume,
// the wire format carries no shard state); the wide-interval parallel
// advance path; warm-restart allocation stability (the sharded counterpart
// of tests/test_zero_alloc.cpp, which must stay single-threaded -- its
// operator-new counter is deliberately non-atomic).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "sim/checkpoint/checkpoint.h"
#include "sim/event_engine.h"
#include "sim/kernel/engine_factory.h"
#include "sim/kernel/shard.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

constexpr ProcCount kParityM = 4;

JobSet parity_jobs() {
  Rng rng(21);
  WorkloadConfig config = scenario_shootout(1.2, kParityM, 0.3, 1.2);
  config.horizon = 60.0;
  return generate_workload(rng, config);
}

std::optional<FaultInjector> make_faults(const std::string& spec,
                                         ProcCount m) {
  std::optional<FaultInjector> injector;
  if (spec.empty()) return injector;
  std::string error;
  const auto config = parse_fault_spec(spec, &error);
  EXPECT_TRUE(config.has_value()) << error;
  injector.emplace(build_fault_plan(*config, m));
  return injector;
}

/// One run at the given shard count; everything else pinned.
SimResult shard_run(const JobSet& jobs, const std::string& scheduler_name,
                    EngineKind engine, const std::string& fault_spec,
                    ProcCount m, std::size_t shards, EventLog* log,
                    CheckpointSink* checkpoint = nullptr,
                    const CheckpointFile* resume = nullptr) {
  auto scheduler = make_named_scheduler(scheduler_name, 0.5);
  auto selector = make_selector(SelectorKind::kFifo, 1);
  std::optional<FaultInjector> injector = make_faults(fault_spec, m);
  ObsSink sink;
  sink.events = log;
  SimOptions options;
  options.num_procs = m;
  options.obs = log != nullptr ? &sink : nullptr;
  options.faults = injector ? &*injector : nullptr;
  options.checkpoint = checkpoint;
  options.resume = resume;
  options.shards = shards;
  return run_simulation(engine, jobs, *scheduler, *selector, options);
}

void expect_bitwise_equal(const SimResult& got, const SimResult& want,
                          std::size_t shards) {
  EXPECT_EQ(got.decisions, want.decisions) << "shards=" << shards;
  EXPECT_EQ(got.jobs_completed, want.jobs_completed) << "shards=" << shards;
  EXPECT_EQ(got.total_profit, want.total_profit)  // bitwise, not NEAR
      << "shards=" << shards;
  EXPECT_EQ(got.busy_proc_time, want.busy_proc_time) << "shards=" << shards;
  EXPECT_EQ(got.end_time, want.end_time) << "shards=" << shards;
  EXPECT_EQ(got.lost_work, want.lost_work) << "shards=" << shards;
  EXPECT_EQ(got.node_preemptions, want.node_preemptions)
      << "shards=" << shards;
  EXPECT_EQ(got.job_preemptions, want.job_preemptions) << "shards=" << shards;
  EXPECT_EQ(got.failed(), want.failed()) << "shards=" << shards;
}

// ---------------------------------------------------------------------------
// Decision-log parity: for every scheduler x engine x fault mode, the runs
// at shards in {2, 4, 8} must produce an event log *equal element by
// element* to the serial run and land on bitwise-identical results.  (The
// CLI-level counterpart -- byte-comparing emitted JSONL -- lives in
// scripts/decision_parity.sh mode `shards`.)

class ShardParity
    : public ::testing::TestWithParam<
          std::tuple<std::string, EngineKind, std::string>> {};

TEST_P(ShardParity, ShardCountNeverChangesTheRun) {
  const auto& [scheduler_name, engine, fault_spec] = GetParam();
  if (scheduler_name == "profit" && engine == EngineKind::kEvent) {
    GTEST_SKIP() << "profit is slot-engine only";
  }
  const JobSet jobs = parity_jobs();

  EventLog serial_log;
  const SimResult serial = shard_run(jobs, scheduler_name, engine, fault_spec,
                                     kParityM, 1, &serial_log);

  for (const std::size_t shards : {2u, 4u, 8u}) {
    EventLog log;
    const SimResult result = shard_run(jobs, scheduler_name, engine,
                                       fault_spec, kParityM, shards, &log);
    expect_bitwise_equal(result, serial, shards);
    EXPECT_EQ(log.events(), serial_log.events()) << "shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ShardParity,
    ::testing::Combine(
        ::testing::ValuesIn(named_scheduler_list()),
        ::testing::Values(EngineKind::kEvent, EngineKind::kSlot),
        ::testing::Values(
            std::string(),
            std::string(
                "mtbf=30,mttr=5,horizon=60,seed=3,integral=1,restart=resume"),
            std::string(
                "mtbf=30,mttr=5,horizon=60,seed=3,integral=1,restart=zero"))),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, EngineKind, std::string>>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += std::get<1>(param_info.param) == EngineKind::kEvent ? "_event"
                                                                  : "_slot";
      const std::string& faults = std::get<2>(param_info.param);
      if (faults.empty()) {
        name += "_none";
      } else if (faults.find("restart=zero") != std::string::npos) {
        name += "_churn_zero";
      } else {
        name += "_churn_resume";
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Wide intervals: with m large enough that a decision interval executes
// >= 64 (job, node) pairs, the event engine routes node advancement through
// ShardRuntime::run_advance() (the epoch-barrier path) instead of the
// serial per-processor loop.  The run must still be indistinguishable.

TEST(ShardWideAdvance, EpochAdvanceMatchesSerial) {
  Rng rng(33);
  WorkloadConfig config = scenario_shootout(1.3, 128, 0.3, 1.2);
  config.horizon = 30.0;
  config.family = DagFamily::kParallelBlock;
  const JobSet jobs = generate_workload(rng, config);

  EventLog serial_log;
  const SimResult serial = shard_run(jobs, "edf", EngineKind::kEvent, "", 128,
                                     1, &serial_log);
  // Guard that the workload actually exercises the parallel path: average
  // executing-node count above 64 implies some interval ran >= 64 entries
  // (the kParallelAdvanceMin gate in kernel.cpp).
  ASSERT_GT(serial.busy_proc_time / serial.end_time, 64.0)
      << "workload too narrow to reach the parallel advance path";

  for (const std::size_t shards : {2u, 4u, 8u}) {
    EventLog log;
    const SimResult result =
        shard_run(jobs, "edf", EngineKind::kEvent, "", 128, shards, &log);
    expect_bitwise_equal(result, serial, shards);
    EXPECT_EQ(log.events(), serial_log.events()) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume on sharded runs.  The dagsched.checkpoint/1 container
// carries no shard state, so a snapshot taken at any shard count must
// resume at any other -- the kill-at-a-decision in-process counterpart of
// decision_parity.sh's process-kill flow.

class ShardKillResume : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ShardKillResume, ShardedSnapshotResumesAtAnyShardCount) {
  const EngineKind engine = GetParam();
  const JobSet jobs = parity_jobs();
  const std::string fault_spec =
      "mtbf=30,mttr=5,horizon=60,seed=3,integral=1,restart=resume";

  EventLog full_log;
  const SimResult full = shard_run(jobs, "s", engine, fault_spec, kParityM, 1,
                                   &full_log);
  ASSERT_GE(full.decisions, 3u);

  // Writer shard count x resume shard count, including the serial column in
  // both roles.  The kill decision varies per combo ("random" but pinned so
  // failures reproduce): snapshots land at ~interval boundaries spread over
  // the run.
  const std::size_t counts[] = {1, 2, 4, 8};
  for (std::size_t wi = 0; wi < std::size(counts); ++wi) {
    const std::size_t write_shards = counts[wi];
    const auto interval = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(full.decisions) / (3 + wi));
    const std::string path = ::testing::TempDir() + "shard_resume_" +
                             (engine == EngineKind::kEvent ? "ev" : "sl") +
                             "_w" + std::to_string(write_shards) + ".ckpt";
    EventLog ck_log;
    CheckpointMeta base;
    base.scheduler = "s";
    CheckpointSink sink(path, interval, base, &ck_log);
    sink.set_snapshot_limit(2);
    const SimResult with_ck = shard_run(jobs, "s", engine, fault_spec,
                                        kParityM, write_shards, &ck_log,
                                        &sink);
    EXPECT_EQ(with_ck.decisions, full.decisions);
    EXPECT_EQ(ck_log.events(), full_log.events())
        << "checkpointing perturbed the sharded run (shards="
        << write_shards << ")";
    ASSERT_GT(sink.snapshots(), 0u);

    const CheckpointFile file = read_checkpoint_file(path);
    ASSERT_LE(file.meta.events_emitted, full_log.size());
    const std::vector<DecisionEvent> suffix(
        full_log.events().begin() +
            static_cast<std::ptrdiff_t>(file.meta.events_emitted),
        full_log.events().end());

    const std::size_t resume_shards = counts[(wi + 2) % std::size(counts)];
    for (const std::size_t rs : {std::size_t{1}, resume_shards}) {
      EventLog resumed_log;
      const SimResult resumed = shard_run(jobs, "s", engine, fault_spec,
                                          kParityM, rs, &resumed_log, nullptr,
                                          &file);
      EXPECT_EQ(resumed_log.events(), suffix)
          << "write_shards=" << write_shards << " resume_shards=" << rs;
      expect_bitwise_equal(resumed, full, rs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ShardKillResume,
                         ::testing::Values(EngineKind::kEvent,
                                           EngineKind::kSlot),
                         [](const ::testing::TestParamInfo<EngineKind>& p) {
                           return p.param == EngineKind::kEvent
                                      ? std::string("event")
                                      : std::string("slot");
                         });

// ---------------------------------------------------------------------------
// ShardRuntime unit behavior: run-ahead staging, restart rendezvous, and
// the zero-steady-state-allocation contract (arena high-water and staging
// capacity must not move across warm restarts -- the sharded analogue of
// test_zero_alloc.cpp's operator-new gate).

TEST(ShardRuntime, StagedStateIsCompleteAndPrecomputeIsDeterministic) {
  const JobSet jobs = parity_jobs();
  ASSERT_GT(jobs.size(), 4u);  // at least two jobs per shard
  auto scheduler = make_named_scheduler("s", 0.5);
  ShardRuntime rt(jobs, *scheduler, nullptr, 1.0, 3);
  rt.restart(0);

  const std::size_t prep_size = scheduler->arrival_precompute_size();
  ASSERT_GT(prep_size, 0u) << "DeadlineScheduler should opt in";
  std::vector<std::byte> expected(prep_size);
  for (JobId id = 0; id < static_cast<JobId>(jobs.size()); ++id) {
    PreparedArrival& staged = rt.acquire(id);
    ASSERT_TRUE(staged.unfolding.engaged()) << "job " << id;
    // The staged unfolding is pristine and matches the job's DAG.
    EXPECT_EQ(&staged.unfolding.dag(), &jobs[id].dag());
    EXPECT_EQ(staged.unfolding.total_remaining_work(),
              jobs[id].dag().total_work());
    EXPECT_EQ(staged.unfolding.nodes_remaining(), jobs[id].dag().num_nodes());
    // Worker-side precompute equals a fresh main-thread evaluation bit for
    // bit (the parity contract's foundation).
    ASSERT_NE(rt.precomputed(id), nullptr);
    scheduler->precompute_arrival(jobs[id], id, 1.0, expected.data());
    EXPECT_EQ(std::memcmp(rt.precomputed(id), expected.data(), prep_size), 0)
        << "job " << id;
  }
}

TEST(ShardRuntime, SchedulersWithoutPrecomputeStageOnlyUnfoldings) {
  const JobSet jobs = parity_jobs();
  auto scheduler = make_named_scheduler("edf", 0.5);
  ASSERT_EQ(scheduler->arrival_precompute_size(), 0u);
  ShardRuntime rt(jobs, *scheduler, nullptr, 1.0, 2);
  rt.restart(0);
  for (JobId id = 0; id < static_cast<JobId>(jobs.size()); ++id) {
    EXPECT_TRUE(rt.acquire(id).unfolding.engaged());
    EXPECT_EQ(rt.precomputed(id), nullptr);
  }
}

TEST(ShardRuntime, WarmRestartsAllocateNothingNew) {
  const JobSet jobs = parity_jobs();
  auto scheduler = make_named_scheduler("s", 0.5);
  ShardRuntime rt(jobs, *scheduler, nullptr, 1.0, 4);

  auto drain = [&rt, &jobs](JobId from) {
    for (JobId id = from; id < static_cast<JobId>(jobs.size()); ++id) {
      // Move-adopt like the kernel does; the descriptor dies here but its
      // arena block stays until the next restart().
      UnfoldingState adopted = std::move(rt.acquire(id).unfolding);
      EXPECT_TRUE(adopted.engaged());
    }
  };

  rt.restart(0);
  drain(0);
  const std::size_t high_water = rt.arena_high_water();
  const std::size_t capacity = rt.arena_capacity();
  const std::size_t staging = rt.staging_bytes();
  EXPECT_GT(high_water, 0u);

  // Full warm re-runs and a mid-stream resume-style restart: identical
  // footprint every time.
  for (int round = 0; round < 3; ++round) {
    rt.restart(0);
    drain(0);
    EXPECT_EQ(rt.arena_high_water(), high_water) << "round " << round;
    EXPECT_EQ(rt.arena_capacity(), capacity) << "round " << round;
    EXPECT_EQ(rt.staging_bytes(), staging) << "round " << round;
  }
  const JobId mid = static_cast<JobId>(jobs.size() / 2);
  rt.restart(mid);
  drain(mid);
  EXPECT_LE(rt.arena_high_water(), high_water);
  EXPECT_EQ(rt.arena_capacity(), capacity);
  EXPECT_EQ(rt.staging_bytes(), staging);
}

// Engine-level warm reuse: a second run() over the same sharded engine
// instance must reproduce the first bitwise (SimKernel::begin() restarts
// the ShardRuntime; stale staging from run 1 must never leak into run 2).
TEST(ShardRuntime, EngineRerunIsBitwiseStable) {
  const JobSet jobs = parity_jobs();
  auto scheduler = make_named_scheduler("s", 0.5);
  auto selector = make_selector(SelectorKind::kFifo, 1);
  EngineOptions options;
  options.num_procs = kParityM;
  options.shards = 4;
  EventEngine engine(jobs, *scheduler, *selector, options);
  const SimResult first = engine.run();
  scheduler->reset();
  const SimResult second = engine.run();
  expect_bitwise_equal(second, first, 4);
}

}  // namespace
}  // namespace dagsched
