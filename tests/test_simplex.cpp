// Simplex LP solver on hand-checkable and randomized instances.
#include <gtest/gtest.h>

#include "opt/simplex.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(Simplex, TrivialNoConstraintsBounded) {
  // max x subject to x <= 1 only.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_row({{0, 1.0}}, 1.0);
  const LpSolution s = solve_lp_max(lp);
  ASSERT_EQ(s.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(s.value, 1.0, 1e-9);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, v=36.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3.0, 5.0};
  lp.add_row({{0, 1.0}}, 4.0);
  lp.add_row({{1, 2.0}}, 12.0);
  lp.add_row({{0, 3.0}, {1, 2.0}}, 18.0);
  const LpSolution s = solve_lp_max(lp);
  ASSERT_EQ(s.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(s.value, 36.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 0.0};
  lp.add_row({{1, 1.0}}, 5.0);  // x0 unconstrained above
  const LpSolution s = solve_lp_max(lp);
  EXPECT_EQ(s.status, LpSolution::Status::kUnbounded);
}

TEST(Simplex, DegenerateTies) {
  // Degenerate vertex: multiple constraints active at the optimum.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0);
  lp.add_row({{0, 1.0}}, 1.0);
  lp.add_row({{1, 1.0}}, 1.0);
  const LpSolution s = solve_lp_max(lp);
  ASSERT_EQ(s.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(s.value, 1.0, 1e-9);
}

TEST(Simplex, ZeroObjective) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {0.0, 0.0};
  lp.add_row({{0, 1.0}, {1, 1.0}}, 3.0);
  const LpSolution s = solve_lp_max(lp);
  ASSERT_EQ(s.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(s.value, 0.0, 1e-12);
}

TEST(Simplex, RejectsNegativeRhs) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  EXPECT_DEATH(lp.add_row({{0, 1.0}}, -1.0), "rhs");
}

// Property: on random knapsack-like LPs the solution is feasible and no
// worse than any of 100 random feasible points.
class SimplexFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexFuzz, OptimalBeatsRandomFeasiblePoints) {
  Rng rng(GetParam());
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 6));
  LpProblem lp;
  lp.num_vars = n;
  lp.objective.resize(n);
  for (auto& c : lp.objective) c = rng.uniform(0.1, 5.0);
  std::vector<std::vector<double>> dense(m, std::vector<double>(n, 0.0));
  std::vector<double> rhs(m);
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.7)) {
        dense[r][j] = rng.uniform(0.1, 3.0);
        terms.emplace_back(j, dense[r][j]);
      }
    }
    rhs[r] = rng.uniform(1.0, 10.0);
    lp.add_row(std::move(terms), rhs[r]);
  }
  // Upper bounds keep the LP bounded.
  for (std::size_t j = 0; j < n; ++j) lp.add_row({{j, 1.0}}, 4.0);

  const LpSolution s = solve_lp_max(lp);
  ASSERT_EQ(s.status, LpSolution::Status::kOptimal);

  // Feasibility of the reported x.
  for (std::size_t r = 0; r < m; ++r) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) lhs += dense[r][j] * s.x[j];
    EXPECT_LE(lhs, rhs[r] + 1e-6);
  }
  double value = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_GE(s.x[j], -1e-9);
    EXPECT_LE(s.x[j], 4.0 + 1e-6);
    value += lp.objective[j] * s.x[j];
  }
  EXPECT_NEAR(value, s.value, 1e-6);

  // Dominates random feasible points.
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> x(n);
    for (auto& xi : x) xi = rng.uniform(0.0, 4.0);
    bool feasible = true;
    for (std::size_t r = 0; r < m && feasible; ++r) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += dense[r][j] * x[j];
      feasible = lhs <= rhs[r];
    }
    if (!feasible) continue;
    double candidate = 0.0;
    for (std::size_t j = 0; j < n; ++j) candidate += lp.objective[j] * x[j];
    EXPECT_LE(candidate, s.value + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace dagsched
