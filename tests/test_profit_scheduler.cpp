// The Section-5 profit scheduler: deadline search, slot assignment,
// Lemmas 14-15 as run-time invariants, and end-to-end profit on the
// SlotEngine.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/profit_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/slot_engine.h"
#include "util/rng.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

Time plateau_for(const Dag& dag, ProcCount m, double eps) {
  return (1.0 + eps) *
         ((dag.total_work() - dag.span()) / static_cast<double>(m) +
          dag.span());
}

SimResult run_slotted(const JobSet& jobs, ProfitScheduler& scheduler,
                      ProcCount m, double speed = 1.0) {
  auto sel = make_selector(SelectorKind::kFifo);
  SlotEngineOptions options;
  options.num_procs = m;
  options.speed = speed;
  SlotEngine engine(jobs, scheduler, *sel, options);
  return engine.run();
}

TEST(ProfitScheduler, SingleJobScheduledWithMinimalSlots) {
  const ProcCount m = 16;
  const double eps = 0.5;
  Dag dag = make_parallel_block(30, 1.0);
  const Time plateau = std::ceil(plateau_for(dag, m, eps)) + 2.0;
  JobSet jobs;
  jobs.add(Job(share(std::move(dag)), 0.0,
               ProfitFn::plateau_linear(5.0, plateau, plateau * 4.0)));
  jobs.finalize();

  ProfitScheduler scheduler({.params = Params::from_epsilon(eps)});
  const SimResult result = run_slotted(jobs, scheduler, m);

  ASSERT_TRUE(result.outcomes[0].completed);
  const JobAllocation* alloc = scheduler.allocation_of(0);
  ASSERT_NE(alloc, nullptr);
  ASSERT_GE(alloc->n, 1u);
  // Lemma 14: x (1+2delta) <= x*.
  EXPECT_LE(alloc->x * (1.0 + 2.0 * scheduler.params().delta),
            plateau + 1e-9);
  // Minimal valid deadline on an empty machine: |I| == ceil((1+delta) x).
  const auto needed = static_cast<std::size_t>(
      std::ceil((1.0 + scheduler.params().delta) * alloc->x - 1e-9));
  EXPECT_EQ(scheduler.assigned_slots(0).size(), needed);
  EXPECT_EQ(scheduler.scheduled_count(), 1u);
  // Completed within the chosen deadline.
  EXPECT_LE(result.outcomes[0].completion_time,
            scheduler.chosen_deadline(0) + 1e-9);
}

TEST(ProfitScheduler, CompletionWithinPlateauEarnsPeak) {
  const ProcCount m = 16;
  const double eps = 0.5;
  Dag dag = make_parallel_block(24, 1.0);
  // Generous plateau: the minimal valid deadline fits inside it.
  const Time plateau = std::ceil(plateau_for(dag, m, eps)) + 6.0;
  JobSet jobs;
  jobs.add(Job(share(std::move(dag)), 0.0,
               ProfitFn::plateau_linear(3.0, plateau, plateau * 5.0)));
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(eps)});
  const SimResult result = run_slotted(jobs, scheduler, m);
  ASSERT_TRUE(result.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(result.total_profit, 3.0);
  // Chosen deadline stayed within the plateau (minimality).
  EXPECT_LE(scheduler.chosen_deadline(0), plateau + 1e-9);
}

TEST(ProfitScheduler, InfeasiblePlateauLeavesJobUnscheduled) {
  const ProcCount m = 4;
  Dag dag = make_chain(10, 1.0);  // W = L = 10
  JobSet jobs;
  // Plateau below (1+eps)L: the Theorem-3 assumption is violated.
  jobs.add(Job(share(std::move(dag)), 0.0,
               ProfitFn::plateau_linear(1.0, 10.5, 40.0)));
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5)});
  const SimResult result = run_slotted(jobs, scheduler, m);
  EXPECT_FALSE(result.outcomes[0].completed);
  EXPECT_EQ(scheduler.scheduled_count(), 0u);
}

TEST(ProfitScheduler, SlotWindowInvariantLemma15) {
  // Several simultaneous jobs; after all arrivals every occupied slot's
  // density windows stay within b*m.
  const ProcCount m = 16;
  const double eps = 0.5;
  JobSet jobs;
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    Dag dag = make_parallel_block(
        static_cast<std::size_t>(rng.uniform_int(10, 40)), 1.0);
    const Time plateau = std::ceil(plateau_for(dag, m, eps)) + 4.0;
    jobs.add(Job(share(std::move(dag)), 0.0,
                 ProfitFn::plateau_linear(rng.uniform(1.0, 5.0), plateau,
                                          plateau * 6.0)));
  }
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(eps)});
  const SimResult result = run_slotted(jobs, scheduler, m);
  (void)result;
  // Inspect all slots any job was assigned to.
  const double cap = scheduler.params().b * static_cast<double>(m);
  for (JobId j = 0; j < jobs.size(); ++j) {
    if (scheduler.allocation_of(j) == nullptr) continue;
    for (const std::uint64_t slot : scheduler.assigned_slots(j)) {
      EXPECT_LE(scheduler.slot_window_load(slot), cap + 1e-9)
          << "slot " << slot;
    }
  }
}

TEST(ProfitScheduler, LaterDeadlineWhenSlotsCongested) {
  // Fill the machine with one job, then submit an identical one: its
  // chosen deadline must be at least as late (it needs slots further out).
  const ProcCount m = 16;
  const double eps = 0.5;
  Dag d1 = make_parallel_block(30, 1.0);
  Dag d2 = make_parallel_block(30, 1.0);
  const Time plateau = std::ceil(plateau_for(d1, m, eps)) + 2.0;
  JobSet jobs;
  jobs.add(Job(share(std::move(d1)), 0.0,
               ProfitFn::plateau_exponential(5.0, plateau, 0.05)));
  jobs.add(Job(share(std::move(d2)), 0.0,
               ProfitFn::plateau_exponential(5.0, plateau, 0.05)));
  jobs.finalize();
  ProfitScheduler scheduler({.params = Params::from_epsilon(eps)});
  const SimResult result = run_slotted(jobs, scheduler, m);
  ASSERT_EQ(scheduler.scheduled_count(), 2u);
  EXPECT_GE(scheduler.chosen_deadline(1), scheduler.chosen_deadline(0));
  // Both eventually complete (exponential support never runs out).
  EXPECT_EQ(result.jobs_completed, 2u);
  EXPECT_GT(result.total_profit, 0.0);
}

TEST(ProfitScheduler, CompletedJobsEarnAtLeastDeadlineProfit) {
  Rng rng(99);
  WorkloadConfig config = scenario_profit(0.5, 0.6, 8,
                                          ProfitPolicy::Shape::kPlateauLinear);
  config.horizon = 120.0;
  const JobSet jobs = generate_workload(rng, config);
  ASSERT_GT(jobs.size(), 3u);
  ProfitScheduler scheduler({.params = Params::from_epsilon(0.5)});
  const SimResult result = run_slotted(jobs, scheduler, 8);
  for (JobId j = 0; j < jobs.size(); ++j) {
    if (!result.outcomes[j].completed) continue;
    if (scheduler.chosen_deadline(j) == kTimeInfinity) continue;
    const Profit at_deadline =
        jobs[j].profit().at(scheduler.chosen_deadline(j));
    EXPECT_GE(result.outcomes[j].profit, at_deadline - 1e-9)
        << "job " << j;
  }
  EXPECT_GT(result.total_profit, 0.0);
}

TEST(ProfitScheduler, SlotReleaseAblationBothWork) {
  Rng rng(123);
  WorkloadConfig config = scenario_profit(0.5, 0.8, 8,
                                          ProfitPolicy::Shape::kPlateauExp);
  config.horizon = 80.0;
  const JobSet jobs = generate_workload(rng, config);
  for (const bool release : {true, false}) {
    ProfitScheduler scheduler(
        {.params = Params::from_epsilon(0.5),
         .release_slots_on_completion = release});
    const SimResult result = run_slotted(jobs, scheduler, 8);
    EXPECT_GE(result.total_profit, 0.0);
    EXPECT_LE(result.total_profit, jobs.total_peak_profit() + 1e-9);
  }
}

}  // namespace
}  // namespace dagsched
