// Scaling invariances of the machine model -- the algebra behind the
// paper's Corollary-1 transformation, checked end to end:
//   * speed s on instance I == speed 1 on I with every node weight / s
//     (and deadlines unchanged), for both engines' completion times;
//   * uniformly scaling all times (works, releases, deadlines) by k scales
//     every completion time by k.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "dag/builder.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "util/rng.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> scale_dag(const Dag& dag, double factor) {
  DagBuilder b;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    b.add_node(dag.node_work(v) * factor);
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (const NodeId succ : dag.successors(v)) b.add_edge(v, succ);
  }
  return std::make_shared<const Dag>(std::move(b).build());
}

JobSet random_jobs(std::uint64_t seed, double work_scale, double time_scale) {
  Rng rng(seed);
  JobSet jobs;
  for (int i = 0; i < 10; ++i) {
    RandomDagParams params;
    params.nodes = 15;
    params.edge_prob = 0.12;
    const Dag base = make_random_dag(rng, params);
    const double release = rng.uniform(0.0, 20.0);
    const double greedy =
        (base.total_work() - base.span()) / 4.0 + base.span();
    const double deadline = greedy * rng.uniform(1.6, 3.0);
    jobs.add(Job::with_deadline(scale_dag(base, work_scale),
                                release * time_scale,
                                deadline * time_scale,
                                rng.uniform(0.5, 2.0)));
  }
  jobs.finalize();
  return jobs;
}

template <typename Scheduler>
SimResult run(const JobSet& jobs, double speed) {
  Scheduler scheduler = [] {
    if constexpr (std::is_same_v<Scheduler, DeadlineScheduler>) {
      return DeadlineScheduler({.params = Params::from_epsilon(0.5)});
    } else {
      return ListScheduler({ListPolicy::kEdf, false, true});
    }
  }();
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 4;
  options.speed = speed;
  return simulate(jobs, scheduler, *selector, options);
}

class ScalingInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingInvariance, SpeedEqualsWorkScaling) {
  // Speed 2 on the base instance == speed 1 on the half-work instance.
  const JobSet base = random_jobs(GetParam(), 1.0, 1.0);
  const JobSet halved = random_jobs(GetParam(), 0.5, 1.0);

  const SimResult fast = run<ListScheduler>(base, 2.0);
  const SimResult unit = run<ListScheduler>(halved, 1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(fast.outcomes[i].completed, unit.outcomes[i].completed) << i;
    if (fast.outcomes[i].completed) {
      EXPECT_NEAR(fast.outcomes[i].completion_time,
                  unit.outcomes[i].completion_time, 1e-6)
          << i;
    }
  }

  // The paper scheduler folds speed into its allocation math, so the same
  // invariance must hold for S.
  const SimResult s_fast = run<DeadlineScheduler>(base, 2.0);
  const SimResult s_unit = run<DeadlineScheduler>(halved, 1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(s_fast.outcomes[i].completed, s_unit.outcomes[i].completed)
        << i;
    if (s_fast.outcomes[i].completed) {
      EXPECT_NEAR(s_fast.outcomes[i].completion_time,
                  s_unit.outcomes[i].completion_time, 1e-6)
          << i;
    }
  }
}

TEST_P(ScalingInvariance, UniformTimeDilation) {
  const double k = 3.0;
  const JobSet base = random_jobs(GetParam() ^ 0xD1A7, 1.0, 1.0);
  const JobSet dilated = random_jobs(GetParam() ^ 0xD1A7, k, k);
  const SimResult a = run<DeadlineScheduler>(base, 1.0);
  const SimResult b = run<DeadlineScheduler>(dilated, 1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].completed, b.outcomes[i].completed) << i;
    if (a.outcomes[i].completed) {
      EXPECT_NEAR(k * a.outcomes[i].completion_time,
                  b.outcomes[i].completion_time, 1e-5)
          << i;
    }
  }
  EXPECT_NEAR(a.total_profit, b.total_profit, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingInvariance,
                         ::testing::Values(41, 42, 43, 44));

}  // namespace
}  // namespace dagsched
