// Job and JobSet semantics.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "dag/generators.h"
#include "job/job.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> block_dag() {
  return std::make_shared<const Dag>(make_parallel_block(8, 1.0));
}

TEST(JobTest, BasicAccessors) {
  const Job job = Job::with_deadline(block_dag(), 2.0, 5.0, 3.0);
  EXPECT_DOUBLE_EQ(job.release(), 2.0);
  EXPECT_DOUBLE_EQ(job.work(), 8.0);
  EXPECT_DOUBLE_EQ(job.span(), 1.0);
  EXPECT_TRUE(job.has_deadline());
  EXPECT_DOUBLE_EQ(job.relative_deadline(), 5.0);
  EXPECT_DOUBLE_EQ(job.absolute_deadline(), 7.0);
  EXPECT_DOUBLE_EQ(job.peak_profit(), 3.0);
}

TEST(JobTest, ExecutionTimeBounds) {
  const Job job = Job::with_deadline(block_dag(), 0.0, 5.0, 1.0);
  // W=8, L=1, m=4: min time = max(1, 2) = 2; greedy = 7/4 + 1 = 2.75.
  EXPECT_DOUBLE_EQ(job.min_execution_time(4), 2.0);
  EXPECT_DOUBLE_EQ(job.greedy_execution_time(4), 2.75);
  // m=16: min = max(1, 0.5) = 1; greedy = 7/16 + 1.
  EXPECT_DOUBLE_EQ(job.min_execution_time(16), 1.0);
  EXPECT_DOUBLE_EQ(job.greedy_execution_time(16), 7.0 / 16.0 + 1.0);
  // Greedy bound always >= ideal bound.
  for (ProcCount m = 1; m <= 32; m *= 2) {
    EXPECT_GE(job.greedy_execution_time(m), job.min_execution_time(m) - 1e-12);
  }
}

TEST(JobTest, RejectsInvalid) {
  EXPECT_THROW(Job(nullptr, 0.0, ProfitFn::step(1.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(Job(block_dag(), -1.0, ProfitFn::step(1.0, 1.0)),
               std::invalid_argument);
}

TEST(JobSetTest, FinalizeSortsByRelease) {
  JobSet jobs;
  jobs.add(Job::with_deadline(block_dag(), 5.0, 1.0, 1.0));
  jobs.add(Job::with_deadline(block_dag(), 1.0, 1.0, 2.0));
  jobs.add(Job::with_deadline(block_dag(), 3.0, 1.0, 3.0));
  EXPECT_FALSE(jobs.sorted_by_release());
  jobs.finalize();
  EXPECT_TRUE(jobs.sorted_by_release());
  EXPECT_DOUBLE_EQ(jobs[0].release(), 1.0);
  EXPECT_DOUBLE_EQ(jobs[2].release(), 5.0);
}

TEST(JobSetTest, Aggregates) {
  JobSet jobs;
  jobs.add(Job::with_deadline(block_dag(), 0.0, 4.0, 2.0));
  jobs.add(Job::with_deadline(block_dag(), 10.0, 6.0, 3.0));
  jobs.finalize();
  EXPECT_DOUBLE_EQ(jobs.total_peak_profit(), 5.0);
  // Total work 16 over m=2, horizon=20: load = 16/40.
  EXPECT_DOUBLE_EQ(jobs.utilization(2, 20.0), 0.4);
  EXPECT_DOUBLE_EQ(jobs.profit_horizon(), 16.0);
}

TEST(JobSetTest, ProfitHorizonInfiniteForExpDecay) {
  JobSet jobs;
  jobs.add(Job(block_dag(), 0.0, ProfitFn::plateau_exponential(1.0, 2.0, 0.1)));
  jobs.finalize();
  EXPECT_EQ(jobs.profit_horizon(), kTimeInfinity);
}

TEST(JobSetTest, SharedDagAcrossJobs) {
  auto dag = block_dag();
  JobSet jobs;
  jobs.add(Job::with_deadline(dag, 0.0, 1.0, 1.0));
  jobs.add(Job::with_deadline(dag, 1.0, 1.0, 1.0));
  jobs.finalize();
  EXPECT_EQ(&jobs[0].dag(), &jobs[1].dag());
}

}  // namespace
}  // namespace dagsched
