// Run-report schema stability: the top-level key set of the versioned
// report document is locked here -- extend by adding keys, never by
// renaming or repurposing (consumers key on them).  Also covers the JSON
// model round-trip and the bench-report flavor.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "sim/event_engine.h"
#include "sim/metrics.h"
#include "util/json.h"
#include "util/rng.h"

namespace dagsched {
namespace {

TEST(Json, RoundTripsThroughDump) {
  JsonValue obj = JsonValue::object();
  obj.set("name", "run");
  obj.set("count", 3);
  obj.set("ratio", 0.5);
  obj.set("flag", true);
  obj.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(1.0);
  arr.push_back("two");
  obj.set("list", std::move(arr));

  const std::string text = obj.dump();
  const JsonParseResult parsed = json_parse(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value, obj);
  // Objects preserve insertion order through serialization.
  EXPECT_EQ(parsed.value.members().front().first, "name");
}

TEST(Json, ParsesEscapesAndRejectsGarbage) {
  const JsonParseResult ok = json_parse("{\"a\":\"x\\n\\\"y\\u0041\"}");
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.value.at("a").as_string(), "x\n\"yA");
  EXPECT_FALSE(json_parse("{\"a\":}").ok);
  EXPECT_FALSE(json_parse("[1,2,]").ok);
  EXPECT_FALSE(json_parse("{} trailing").ok);
}

TEST(Json, IntegralNumbersPrintWithoutExponent) {
  EXPECT_EQ(JsonValue(8).dump(), "8");
  EXPECT_EQ(JsonValue(1e6).dump(), "1000000");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
}

struct ReportFixture {
  JobSet jobs;
  SimResult result;
  ScheduleMetrics metrics;
  MetricRegistry registry;
  SpanRegistry spans;
  EventLog events;

  ReportFixture() {
    Rng rng(11);
    RandomDagParams params;
    params.nodes = 6;
    params.work = WorkDist::constant(1.0);
    for (int i = 0; i < 4; ++i) {
      Dag dag = make_random_dag(rng, params);
      jobs.add(Job::with_deadline(
          std::make_shared<const Dag>(std::move(dag)),
          static_cast<double>(i), 12.0, 5.0));
    }
    jobs.finalize();

    ObsSink sink;
    sink.metrics = &registry;
    sink.spans = &spans;
    sink.events = &events;
    ListScheduler scheduler({ListPolicy::kEdf, false, true});
    auto selector = make_selector(SelectorKind::kFifo);
    EngineOptions options;
    options.num_procs = 4;
    options.record_trace = true;
    options.obs = &sink;
    EventEngine engine(jobs, scheduler, *selector, options);
    result = engine.run();
    metrics = compute_metrics(result, jobs, 4);
  }

  JsonValue build(bool embed_events = true) const {
    RunReportInputs inputs;
    inputs.scheduler = "edf";
    inputs.engine = "event";
    inputs.workload = "synthetic";
    inputs.m = 4;
    inputs.speed = 1.0;
    inputs.jobs = &jobs;
    inputs.result = &result;
    inputs.metrics = &metrics;
    inputs.registry = &registry;
    inputs.spans = &spans;
    if (embed_events) inputs.events = &events;
    return build_run_report(inputs);
  }
};

TEST(RunReport, TopLevelKeySetIsLocked) {
  const ReportFixture fixture;
  const JsonValue report = fixture.build();

  std::vector<std::string> keys;
  for (const auto& [key, value] : report.members()) keys.push_back(key);
  const std::vector<std::string> expected = {
      "schema",   "run",   "results", "metrics", "counters",
      "gauges",   "histograms", "spans", "timeline", "events"};
  EXPECT_EQ(keys, expected)
      << "top-level report keys changed -- bump the schema version and "
         "update every consumer before touching this list";
  EXPECT_EQ(report.at("schema").as_string(), kRunReportSchema);
}

TEST(RunReport, SurvivesJsonRoundTrip) {
  const ReportFixture fixture;
  const JsonValue report = fixture.build();
  const JsonParseResult parsed = json_parse(report.dump());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value, report);
}

TEST(RunReport, ResultsSectionMatchesSimResult) {
  const ReportFixture fixture;
  const JsonValue report = fixture.build();
  const JsonValue& results = report.at("results");
  EXPECT_DOUBLE_EQ(results.at("profit").as_number(),
                   fixture.result.total_profit);
  EXPECT_DOUBLE_EQ(results.at("completed").as_number(),
                   static_cast<double>(fixture.result.jobs_completed));
  EXPECT_DOUBLE_EQ(results.at("end_time").as_number(),
                   fixture.result.end_time);
  // Counters embed the engine's view of the same run.
  EXPECT_DOUBLE_EQ(report.at("counters").at("engine.decisions").as_number(),
                   static_cast<double>(fixture.result.decisions));
}

TEST(RunReport, TimelineCoversRun) {
  const ReportFixture fixture;
  const JsonValue report = fixture.build();
  const JsonValue& timeline = report.at("timeline");
  EXPECT_GT(timeline.at("horizon").as_number(), 0.0);
  const JsonValue& utilization = timeline.at("utilization");
  ASSERT_GT(utilization.size(), 0u);
  for (const JsonValue& value : utilization.items()) {
    EXPECT_GE(value.as_number(), 0.0);
    EXPECT_LE(value.as_number(), 1.0 + 1e-9);
  }
}

TEST(RunReport, FormatsWithoutCrashing) {
  const ReportFixture fixture;
  const std::string text = format_run_report(fixture.build());
  EXPECT_NE(text.find("edf"), std::string::npos);
  EXPECT_NE(text.find("[results]"), std::string::npos);
  // A foreign document degrades gracefully (renders nothing) instead of
  // aborting on missing sections.
  const std::string degenerate = format_run_report(JsonValue::object());
  EXPECT_TRUE(degenerate.empty());
}

TEST(BenchReport, CarriesMeasurements) {
  std::vector<BenchMeasurement> runs(2);
  runs[0].name = "BM_event/16";
  runs[0].real_time_ns = 1234.5;
  runs[0].cpu_time_ns = 1200.0;
  runs[0].iterations = 1000;
  runs[0].counters = {{"decisions", 42.0}};
  runs[1].name = "BM_event/16_mean";
  runs[1].aggregate = true;

  const JsonValue report = build_bench_report("engine_perf", runs);
  EXPECT_EQ(report.at("schema").as_string(), kBenchReportSchema);
  EXPECT_EQ(report.at("bench").as_string(), "engine_perf");
  const JsonValue& measurements = report.at("measurements");
  ASSERT_EQ(measurements.size(), 2u);
  const JsonValue& first = measurements.items()[0];
  EXPECT_EQ(first.at("name").as_string(), "BM_event/16");
  EXPECT_DOUBLE_EQ(first.at("counters").at("decisions").as_number(), 42.0);
  EXPECT_TRUE(measurements.items()[1].at("aggregate").as_bool());

  const JsonParseResult parsed = json_parse(report.dump());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value, report);
}

}  // namespace
}  // namespace dagsched
