// Deterministic adversarial instances: the preemption trap's guaranteed
// separation and the clogger/flat stream shapes.
#include <gtest/gtest.h>

#include <memory>

#include "core/deadline_scheduler.h"
#include "sim/event_engine.h"
#include "workload/adversarial.h"

namespace dagsched {
namespace {

SimResult run(const JobSet& jobs, bool admission, ProcCount m) {
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5),
                               .enforce_admission = admission});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  return simulate(jobs, scheduler, *selector, options);
}

class TrapSeparation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrapSeparation, AdmissionCompletesHalfNoAdmissionOne) {
  const std::size_t waves = GetParam();
  const ProcCount m = 16;
  const JobSet trap = make_preemption_trap(m, 0.5, waves);
  ASSERT_EQ(trap.size(), waves);

  const SimResult with = run(trap, true, m);
  const SimResult without = run(trap, false, m);
  EXPECT_EQ(with.jobs_completed, waves / 2);
  EXPECT_EQ(without.jobs_completed, 1u);
  EXPECT_GT(with.total_profit, without.total_profit);
}

INSTANTIATE_TEST_SUITE_P(Waves, TrapSeparation,
                         ::testing::Values(4u, 8u, 16u, 32u));

TEST(Trap, DensitiesStrictlyIncreaseWithinWindowFactor) {
  const JobSet trap = make_preemption_trap(16, 0.5, 16);
  const double first = trap[0].peak_profit();
  const double last = trap[trap.size() - 1].peak_profit();
  // Spread must stay inside the c window so all waves share windows.
  EXPECT_LT(last / first, Params::from_epsilon(0.5).c);
  for (std::size_t i = 1; i < trap.size(); ++i) {
    EXPECT_GT(trap[i].peak_profit(), trap[i - 1].peak_profit());
    EXPECT_GT(trap[i].release(), trap[i - 1].release());
  }
}

TEST(Trap, RejectsDegenerateParameters) {
  EXPECT_DEATH(make_preemption_trap(2, 0.5, 8), "m >= 4");
  EXPECT_DEATH(make_preemption_trap(16, 0.5, 1), "waves");
  // Too many waves: density spread escapes the window factor.
  EXPECT_DEATH(make_preemption_trap(16, 0.5, 400, 0.05), "spread");
}

TEST(Streams, CloggerAndFlatShapes) {
  const ProcCount m = 16;
  const Dag clog = make_clogger_dag(m);
  const Dag flat = make_flat_dag(m);
  EXPECT_DOUBLE_EQ(clog.total_work(), flat.total_work());
  EXPECT_DOUBLE_EQ(clog.span(), 1.5 * static_cast<double>(m));
  EXPECT_DOUBLE_EQ(flat.span(), 1.0);
}

TEST(Streams, OverloadStreamDeadlinesAndProfits) {
  const ProcCount m = 16;
  auto dag = std::make_shared<const Dag>(make_flat_dag(m));
  const JobSet stream = make_overload_stream(dag, m, 0.5, 10, 2.0, 3.0);
  ASSERT_EQ(stream.size(), 10u);
  const double greedy =
      (dag->total_work() - dag->span()) / static_cast<double>(m) +
      dag->span();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_DOUBLE_EQ(stream[i].release(), 3.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(stream[i].relative_deadline(), 1.5 * greedy);
    EXPECT_DOUBLE_EQ(stream[i].peak_profit(), 2.0 * dag->total_work());
  }
}

}  // namespace
}  // namespace dagsched
