// Trace::validate -- the schedule-legality checker used by integration
// tests; here we verify the checker itself catches each violation class.
#include <gtest/gtest.h>

#include <memory>

#include "dag/generators.h"
#include "job/job.h"
#include "sim/trace.h"

namespace dagsched {
namespace {

JobSet chain_jobset() {
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_chain(2, 1.0)), 1.0, 10.0, 1.0));
  jobs.finalize();
  return jobs;
}

TEST(TraceValidate, AcceptsLegalSchedule) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(1.0, 2.0, 0, 0, 0);
  trace.add(2.0, 3.0, 0, 1, 0);
  EXPECT_EQ(trace.validate(jobs, 1, 1.0), "");
}

TEST(TraceValidate, EmptyTraceIsLegal) {
  const JobSet jobs = chain_jobset();
  EXPECT_EQ(Trace{}.validate(jobs, 1, 1.0), "");
}

TEST(TraceValidate, CatchesProcessorOverlap) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(1.0, 2.5, 0, 0, 0);
  trace.add(2.0, 3.0, 0, 1, 0);  // overlaps on proc 0
  EXPECT_NE(trace.validate(jobs, 1, 1.0).find("overlap"), std::string::npos);
}

TEST(TraceValidate, CatchesProcessorOutOfRange) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(1.0, 2.0, 0, 0, 3);
  EXPECT_NE(trace.validate(jobs, 1, 1.0).find("processor"), std::string::npos);
}

TEST(TraceValidate, CatchesRunBeforeRelease) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(0.5, 1.5, 0, 0, 0);  // release is 1.0
  EXPECT_NE(trace.validate(jobs, 1, 1.0).find("release"), std::string::npos);
}

TEST(TraceValidate, CatchesPrecedenceViolation) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(1.0, 2.0, 0, 1, 0);  // node 1 before node 0 ever ran
  const std::string err = trace.validate(jobs, 1, 1.0);
  EXPECT_NE(err.find("predecessor"), std::string::npos);
}

TEST(TraceValidate, CatchesPartialPredecessor) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(1.0, 1.5, 0, 0, 0);  // only half of node 0
  trace.add(2.0, 3.0, 0, 1, 0);
  const std::string err = trace.validate(jobs, 1, 1.0);
  EXPECT_NE(err.find("incomplete"), std::string::npos);
}

TEST(TraceValidate, CatchesStartBeforePredecessorEnd) {
  JobSet jobs;
  jobs.add(Job::with_deadline(
      std::make_shared<const Dag>(make_chain(2, 1.0)), 0.0, 10.0, 1.0));
  jobs.finalize();
  Trace trace;
  trace.add(0.0, 1.0, 0, 0, 0);
  trace.add(0.5, 1.5, 0, 1, 1);  // starts while predecessor still running
  const std::string err = trace.validate(jobs, 2, 1.0);
  EXPECT_NE(err.find("started"), std::string::npos);
}

TEST(TraceValidate, CatchesOverExecution) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(1.0, 4.0, 0, 0, 0);  // node 0 has work 1.0, ran 3.0
  const std::string err = trace.validate(jobs, 1, 1.0);
  EXPECT_NE(err.find("executed"), std::string::npos);
}

TEST(TraceValidate, CatchesUnknownJobAndNode) {
  const JobSet jobs = chain_jobset();
  Trace trace1;
  trace1.add(1.0, 2.0, 7, 0, 0);
  EXPECT_NE(trace1.validate(jobs, 1, 1.0).find("unknown"), std::string::npos);
  Trace trace2;
  trace2.add(1.0, 2.0, 0, 9, 0);
  EXPECT_NE(trace2.validate(jobs, 1, 1.0).find("no node"), std::string::npos);
}

TEST(TraceValidate, SpeedScalesExecutedWork) {
  const JobSet jobs = chain_jobset();
  Trace trace;
  trace.add(1.0, 1.5, 0, 0, 0);  // 0.5 time * speed 2 = work 1.0
  trace.add(1.5, 2.0, 0, 1, 0);
  EXPECT_EQ(trace.validate(jobs, 1, 2.0), "");
}

}  // namespace
}  // namespace dagsched
