// Proven-bound constants: formulas, monotonicity, and domination of
// measured ratios.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/deadline_scheduler.h"
#include "exp/runner.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

TEST(ProvenBoundsTest, HandComputedAtEpsHalf) {
  // eps = 0.5, delta = 0.125, c = 17 (+tiny), b = sqrt(1.25/1.5), a = 6.
  const Params p = Params::from_epsilon(0.5);
  const ProvenBounds bounds = proven_bounds(p);
  const double window_term =
      1.25 / (0.125 * p.b * (1.0 - p.b));
  EXPECT_NEAR(bounds.opt_vs_started, 1.0 + 6.0 * p.c * window_term, 1e-6);
  EXPECT_NEAR(bounds.throughput_ratio,
              bounds.opt_vs_started / p.completion_fraction(), 1e-6);
  EXPECT_NEAR(bounds.profit_opt_vs_scheduled,
              1.0 + 12.0 * p.c * window_term, 1e-6);
  EXPECT_GT(bounds.profit_ratio, bounds.throughput_ratio);
}

TEST(ProvenBoundsTest, AllPositiveAcrossEpsilon) {
  for (const double eps : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const ProvenBounds bounds = proven_bounds(Params::from_epsilon(eps));
    EXPECT_GT(bounds.completion_fraction, 0.0) << eps;
    EXPECT_GT(bounds.throughput_ratio, 1.0) << eps;
    EXPECT_GT(bounds.profit_ratio, bounds.throughput_ratio) << eps;
  }
}

TEST(ProvenBoundsTest, PolynomialBlowupAsEpsShrinks) {
  // The paper proves O(1/eps^6): halving eps should inflate the bound by
  // a large factor (at least 2^4 for the canonical parameterization).
  const double at_half = proven_bounds(Params::from_epsilon(0.5)).throughput_ratio;
  const double at_quarter =
      proven_bounds(Params::from_epsilon(0.25)).throughput_ratio;
  const double at_eighth =
      proven_bounds(Params::from_epsilon(0.125)).throughput_ratio;
  EXPECT_GT(at_quarter / at_half, 16.0);
  EXPECT_GT(at_eighth / at_quarter, 16.0);
  // ...and stays below the crude 1/eps^8 overshoot (sanity on the degree).
  EXPECT_LT(at_quarter / at_half, 300.0);
}

TEST(ProvenBoundsTest, DominatesMeasuredRatios) {
  // The measured (pessimistic, UB-based) ratio must sit far below the
  // proven worst case on benign random workloads.
  const double eps = 0.5;
  TrialConfig config;
  config.workload = scenario_thm2(eps, 1.0, 8);
  config.workload.horizon = 80.0;
  config.run.m = 8;
  config.trials = 3;
  config.with_opt = true;
  const TrialStats stats = run_trials(config, [eps] {
    return std::make_unique<DeadlineScheduler>(
        DeadlineSchedulerOptions{.params = Params::from_epsilon(eps)});
  });
  const ProvenBounds bounds = proven_bounds(Params::from_epsilon(eps));
  ASSERT_GT(stats.ratio_ub.count(), 0u);
  EXPECT_LT(stats.ratio_ub.max(), bounds.throughput_ratio);
}

}  // namespace
}  // namespace dagsched
