// FaultPlan generation: determinism, the min_procs floor, integral
// rounding, overrun multipliers, spec parsing, and generate-time metadata
// corruption.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dag/generators.h"
#include "fault/corruption.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "job/job.h"

namespace dagsched {
namespace {

FaultPlanConfig churn_config(double mtbf, double mttr, Time horizon,
                             ProcCount min_procs = 1) {
  FaultPlanConfig config;
  config.seed = 11;
  config.mtbf = mtbf;
  config.mttr = mttr;
  config.horizon = horizon;
  config.min_procs = min_procs;
  return config;
}

TEST(FaultPlan, SameConfigSamePlan) {
  const FaultPlanConfig config = churn_config(20.0, 4.0, 300.0);
  const FaultPlan a = build_fault_plan(config, 8);
  const FaultPlan b = build_fault_plan(config, 8);
  EXPECT_EQ(a.down_intervals(), b.down_intervals());
  EXPECT_FALSE(a.down_intervals().empty());
}

TEST(FaultPlan, DifferentSeedsDifferentPlans) {
  FaultPlanConfig config = churn_config(20.0, 4.0, 300.0);
  const FaultPlan a = build_fault_plan(config, 8);
  config.seed = 12;
  const FaultPlan b = build_fault_plan(config, 8);
  EXPECT_NE(a.down_intervals(), b.down_intervals());
}

TEST(FaultPlan, MinProcsFloorHolds) {
  // Heavy churn: failures every ~3 time units, slow repair.  Without the
  // floor the machine would regularly drain to zero.
  const FaultPlanConfig config = churn_config(3.0, 10.0, 200.0, 3);
  const FaultPlan plan = build_fault_plan(config, 8);
  for (Time t = 0.0; t <= 220.0; t += 0.25) {
    EXPECT_GE(plan.num_up(t), 3u) << "at t=" << t;
  }
}

TEST(FaultPlan, IntervalsSortedAndDisjointPerProc) {
  const FaultPlanConfig config = churn_config(5.0, 5.0, 200.0, 2);
  const FaultPlan plan = build_fault_plan(config, 4);
  ASSERT_FALSE(plan.down_intervals().empty());
  Time prev_begin = 0.0;
  for (const DownInterval& iv : plan.down_intervals()) {
    EXPECT_GE(iv.begin, prev_begin);  // globally sorted by begin
    EXPECT_GT(iv.end, iv.begin);
    prev_begin = iv.begin;
  }
  for (ProcCount p = 0; p < 4; ++p) {
    Time prev_end = 0.0;
    for (const DownInterval& iv : plan.down_intervals()) {
      if (iv.proc != p) continue;
      EXPECT_GE(iv.begin, prev_end) << "proc " << p;
      prev_end = iv.end;
    }
  }
}

TEST(FaultPlan, IntegralTimesRoundToWholeSlots) {
  FaultPlanConfig config = churn_config(10.0, 2.0, 150.0);
  config.integral_times = true;
  const FaultPlan plan = build_fault_plan(config, 6);
  ASSERT_FALSE(plan.down_intervals().empty());
  for (const DownInterval& iv : plan.down_intervals()) {
    EXPECT_EQ(iv.begin, std::floor(iv.begin));
    EXPECT_EQ(iv.end, std::floor(iv.end));
    EXPECT_GE(iv.end - iv.begin, 1.0);
  }
}

TEST(FaultPlan, WorkMultiplierDeterministicAndBounded) {
  FaultPlanConfig config;
  config.seed = 5;
  config.overrun_prob = 0.5;
  config.overrun_factor = 2.5;
  const FaultPlan plan = build_fault_plan(config, 4);
  bool any_scaled = false;
  for (JobId j = 0; j < 20; ++j) {
    for (NodeId v = 0; v < 10; ++v) {
      const double mult = plan.work_multiplier(j, v);
      EXPECT_GE(mult, 1.0);
      EXPECT_LE(mult, 2.5);
      EXPECT_EQ(mult, plan.work_multiplier(j, v));  // pure function
      if (mult > 1.0) any_scaled = true;
    }
  }
  EXPECT_TRUE(any_scaled);
}

TEST(FaultPlan, NoOverrunMeansUnitMultipliers) {
  FaultPlanConfig config;
  config.overrun_prob = 0.0;
  config.overrun_factor = 3.0;
  const FaultPlan plan = build_fault_plan(config, 4);
  for (JobId j = 0; j < 5; ++j) {
    EXPECT_EQ(plan.work_multiplier(j, 0), 1.0);
  }
}

TEST(FaultInjector, TransitionsMatchIntervalsAndOrder) {
  const FaultPlanConfig config = churn_config(10.0, 3.0, 200.0, 2);
  const FaultInjector injector(build_fault_plan(config, 6));
  const auto& plan = injector.plan();
  EXPECT_EQ(injector.transitions().size(),
            2 * plan.down_intervals().size());
  const auto& trs = injector.transitions();
  for (std::size_t i = 1; i < trs.size(); ++i) {
    EXPECT_GE(trs[i].time, trs[i - 1].time);
    if (trs[i].time == trs[i - 1].time && trs[i].up) {
      // Ties must order recoveries before failures.
      EXPECT_TRUE(trs[i - 1].up);
    }
  }
}

TEST(FaultSpec, ParsesFullSpec) {
  std::string error;
  const auto config = parse_fault_spec(
      "mtbf=50,mttr=5,seed=7,horizon=500,overrun-prob=0.2,overrun-factor=2,"
      "restart=zero,min-procs=2,integral=1",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->seed, 7u);
  EXPECT_EQ(config->mtbf, 50.0);
  EXPECT_EQ(config->mttr, 5.0);
  EXPECT_EQ(config->horizon, 500.0);
  EXPECT_EQ(config->min_procs, 2u);
  EXPECT_TRUE(config->integral_times);
  EXPECT_EQ(config->overrun_prob, 0.2);
  EXPECT_EQ(config->overrun_factor, 2.0);
  EXPECT_EQ(config->restart, RestartPolicy::kRestartFromZero);
  EXPECT_TRUE(config->churn_enabled());
  EXPECT_TRUE(config->overrun_enabled());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "mtbf",                    // not key=value
      "mtbf=abc",                // not a number
      "bogus-key=1",             // unknown key
      "restart=maybe",           // bad enum
      "mtbf=-1",                 // validate(): negative mtbf
      "mtbf=10",                 // validate(): churn without horizon
      "mtbf=10,horizon=50,mttr=0",  // validate(): mttr must be positive
      "overrun-prob=1.5",        // validate(): out of range
      "overrun-factor=0.5",      // validate(): below 1
      "min-procs=0",             // below 1
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(parse_fault_spec(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

JobSet small_step_jobs() {
  JobSet jobs;
  auto dag = std::make_shared<const Dag>(make_parallel_block(4, 1.0));
  for (int i = 0; i < 12; ++i) {
    jobs.add(Job::with_deadline(dag, static_cast<Time>(i), 10.0, 2.0));
  }
  jobs.finalize();
  return jobs;
}

TEST(Corruption, DeterministicAndDisabledIsIdentity) {
  const JobSet jobs = small_step_jobs();
  CorruptionConfig config;
  config.seed = 3;
  config.prob = 0.0;
  const JobSet same = corrupt_metadata(jobs, config);
  ASSERT_EQ(same.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(same[i].release(), jobs[i].release());
    EXPECT_EQ(same[i].peak_profit(), jobs[i].peak_profit());
  }

  config.prob = 1.0;
  config.severity = 0.3;
  const JobSet a = corrupt_metadata(jobs, config);
  const JobSet b = corrupt_metadata(jobs, config);
  ASSERT_EQ(a.size(), b.size());
  bool any_changed = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].peak_profit(), b[i].peak_profit());
    EXPECT_EQ(a[i].profit().plateau_end(), b[i].profit().plateau_end());
    EXPECT_GT(a[i].peak_profit(), 0.0);
    if (a[i].peak_profit() != jobs[i].peak_profit() ||
        a[i].profit().plateau_end() != jobs[i].profit().plateau_end()) {
      any_changed = true;
    }
  }
  EXPECT_TRUE(any_changed);
}

}  // namespace
}  // namespace dagsched
