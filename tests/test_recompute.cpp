// The recompute-on-admission extension: a job that waited in P and is no
// longer delta-fresh under its arrival-time allocation gets a re-derived
// (larger n, smaller x) allocation and completes, where the paper's static
// allocation lets it expire.
#include <gtest/gtest.h>

#include <memory>

#include "core/deadline_scheduler.h"
#include "dag/generators.h"
#include "job/job.h"
#include "sim/event_engine.h"
#include "workload/scenarios.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

/// Two 30-work parallel blocks arrive together on m=16.  The first (tight
/// deadline ~4.22) is admitted with n=13; the second (deadline 7) lands in
/// the same density window (13 + 7 > b*m) and waits in P.  When the first
/// completes at t=3, the waiter's arrival-time allocation (n=7, x~5.14)
/// needs 1.125*x ~ 5.8 of remaining window but only has 4 -- not
/// delta-fresh, so static S drops it even though the job is perfectly
/// completable: the recomputed allocation (n=14, x~3.07) fits the window.
JobSet contention_pair(ProcCount m, double eps) {
  Dag d1 = make_parallel_block(30, 1.0);
  Dag d2 = make_parallel_block(30, 1.0);
  const Time tight =
      (1.0 + eps) *
      ((d1.total_work() - d1.span()) / static_cast<double>(m) + d1.span());
  JobSet jobs;
  jobs.add(Job::with_deadline(share(std::move(d1)), 0.0, tight, 1.0));
  jobs.add(Job::with_deadline(share(std::move(d2)), 0.0, 7.0, 1.0));
  jobs.finalize();
  return jobs;
}

SimResult run(const JobSet& jobs, bool recompute, ProcCount m) {
  DeadlineScheduler scheduler(
      {.params = Params::from_epsilon(0.5),
       .recompute_on_admission = recompute});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = m;
  return simulate(jobs, scheduler, *selector, options);
}

TEST(Recompute, RescuesStaleWaiter) {
  const JobSet jobs = contention_pair(16, 0.5);
  const SimResult without = run(jobs, false, 16);
  const SimResult with = run(jobs, true, 16);
  // Static S completes exactly one (the waiter expires un-fresh).
  EXPECT_EQ(without.jobs_completed, 1u);
  // Recompute re-sizes the waiter to the remaining window and finishes it.
  EXPECT_EQ(with.jobs_completed, 2u);
  EXPECT_GT(with.total_profit, without.total_profit);
}

TEST(Recompute, RescuedJobStillMeetsDeadline) {
  const JobSet jobs = contention_pair(16, 0.5);
  const SimResult result = run(jobs, true, 16);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(result.outcomes[i].completed);
    EXPECT_LE(result.outcomes[i].completion_time,
              jobs[i].absolute_deadline() + 1e-6);
  }
}

TEST(Recompute, NeverWorseOnRandomWorkloads) {
  // Not a theorem -- but on these benign workloads the extension should
  // never lose more than noise relative to static S.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    WorkloadConfig config = scenario_thm2(0.5, 1.2, 8);
    config.horizon = 120.0;
    const JobSet jobs = generate_workload(rng, config);
    const SimResult without = run(jobs, false, 8);
    const SimResult with = run(jobs, true, 8);
    EXPECT_GE(with.total_profit, 0.9 * without.total_profit) << seed;
  }
}

TEST(Recompute, NameReflectsOption) {
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5),
                               .recompute_on_admission = true});
  EXPECT_NE(scheduler.name().find("recompute"), std::string::npos);
}

}  // namespace
}  // namespace dagsched
