// ScheduleMetrics and the utilization profile.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/list_scheduler.h"
#include "dag/generators.h"
#include "sim/event_engine.h"
#include "sim/metrics.h"

namespace dagsched {
namespace {

std::shared_ptr<const Dag> share(Dag dag) {
  return std::make_shared<const Dag>(std::move(dag));
}

TEST(MetricsTest, FlowAndLatenessFromSimpleRun) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_single_node(2.0)), 1.0, 5.0, 1.0));
  jobs.add(Job::with_deadline(share(make_single_node(3.0)), 0.0, 20.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kFcfs, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 1;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  // FCFS: job 1 (release 0) runs [0,3), job 0 runs [3,5).
  const ScheduleMetrics metrics = compute_metrics(result, jobs, 1);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.missed, 0u);
  EXPECT_DOUBLE_EQ(metrics.profit_fraction, 1.0);
  // Flow times: job1 = 3, job0 = 5 - 1 = 4.
  EXPECT_DOUBLE_EQ(metrics.flow_time.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(metrics.flow_time.quantile(1.0), 4.0);
  // Lateness: job1 = 3 - 20 = -17, job0 = 5 - 6 = -1.
  EXPECT_DOUBLE_EQ(metrics.lateness.quantile(0.0), -17.0);
  EXPECT_DOUBLE_EQ(metrics.lateness.quantile(1.0), -1.0);
  // Stretch: sequential jobs on one machine: flow / W.
  EXPECT_DOUBLE_EQ(metrics.stretch.quantile(0.0), 1.0);   // job 1: 3/3
  EXPECT_DOUBLE_EQ(metrics.stretch.quantile(1.0), 2.0);   // job 0: 4/2
}

TEST(MetricsTest, MissedCountsIncompleteDeadlineJobs) {
  JobSet jobs;
  jobs.add(Job::with_deadline(share(make_chain(10, 1.0)), 0.0, 2.0, 1.0));
  jobs.finalize();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  EngineOptions options;
  options.num_procs = 1;
  const SimResult result = simulate(jobs, scheduler, *selector, options);
  const ScheduleMetrics metrics = compute_metrics(result, jobs, 1);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.missed, 1u);
  EXPECT_DOUBLE_EQ(metrics.profit_fraction, 0.0);
}

TEST(UtilizationProfile, FullyBusyThenIdle) {
  // One node of work 4 on 1 processor, horizon 8, 4 buckets: busy busy
  // idle idle.
  Trace trace;
  trace.add(0.0, 4.0, 0, 0, 0);
  const std::vector<double> profile = utilization_profile(trace, 1, 8.0, 4);
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_DOUBLE_EQ(profile[0], 1.0);
  EXPECT_DOUBLE_EQ(profile[1], 1.0);
  EXPECT_DOUBLE_EQ(profile[2], 0.0);
  EXPECT_DOUBLE_EQ(profile[3], 0.0);
}

TEST(UtilizationProfile, PartialOverlapAndMultiProc) {
  Trace trace;
  trace.add(1.0, 3.0, 0, 0, 0);  // spans buckets [0,2) and [2,4)
  trace.add(0.0, 4.0, 1, 0, 1);
  const std::vector<double> profile = utilization_profile(trace, 2, 4.0, 2);
  ASSERT_EQ(profile.size(), 2u);
  // Bucket 0: proc0 busy 1 of 2, proc1 busy 2 of 2 -> 3/4.
  EXPECT_DOUBLE_EQ(profile[0], 0.75);
  EXPECT_DOUBLE_EQ(profile[1], 0.75);
}

TEST(UtilizationProfile, ClampsBeyondHorizon) {
  Trace trace;
  trace.add(0.0, 100.0, 0, 0, 0);
  const std::vector<double> profile = utilization_profile(trace, 1, 10.0, 5);
  for (const double value : profile) EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(UtilizationProfile, NonPositiveHorizonYieldsEmptyProfile) {
  // A run that executed nothing has end_time 0; callers hand that straight
  // in as the horizon, so it must degrade to an empty profile, not abort.
  Trace trace;
  EXPECT_TRUE(utilization_profile(trace, 4, 0.0, 60).empty());
  EXPECT_TRUE(utilization_profile(trace, 4, -1.0, 60).empty());
  trace.add(0.0, 1.0, 0, 0, 0);
  EXPECT_TRUE(utilization_profile(trace, 4, 0.0, 60).empty());
}

}  // namespace
}  // namespace dagsched
