// Steady-state zero-allocation contract (docs/PERFORMANCE.md).
//
// After a warmup run has grown every capacity -- the JobStateTable columns,
// the unfolding BumpArena's coalesced chunk, the scheduler queue node pools,
// the d-ary heaps, and the engines' member scratch -- a second run of the
// same instance must perform ZERO heap allocations between its first and
// last decision.  The global operator new below counts every allocation in
// the process; the test compares the counter at the first and last observer
// callback of the second run, a window that covers all arrivals, decisions,
// node completions, and deadline expiries but excludes setup (begin()'s
// arena coalesce, result vector) and teardown (finish()'s outcome build).
//
// This binary owns the replaced global operator new, so it is its own test
// target (tests/CMakeLists.txt).  The malloc-backed implementation keeps
// ASan interception intact, so the sanitizer CI job runs it unchanged.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "job/job.h"
#include "sim/event_engine.h"
#include "sim/slot_engine.h"
#include "util/rng.h"
#include "workload/scenarios.h"

namespace {
// Total operator-new calls in this process.  Single-threaded test binary;
// no atomicity needed.
std::size_t g_new_calls = 0;

void* counted_alloc(std::size_t size) {
  ++g_new_calls;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_new_calls;
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_new_calls;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_new_calls;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dagsched {
namespace {

// The bench_scale regime: thm2 arrivals at 4x capacity, the load under
// which scheduler queues actually grow.  Scale 2500 generates a ~20k-job
// instance (the same shape as tests/test_scale_smoke.cpp exercises).
JobSet workload() {
  Rng rng(42);
  WorkloadConfig config = scenario_thm2(0.5, 4.0, 16);
  config.horizon = 2500.0 * 4.0;
  JobSet jobs = generate_workload(rng, config);
  EXPECT_GE(jobs.size(), 10000u);
  return jobs;
}

/// Runs `engine` twice; asserts the allocation counter does not move
/// between the first and last decision of the second (warm) run.
template <typename Engine>
void expect_zero_steady_state_allocs(Engine& engine, std::size_t& first,
                                     std::size_t& last, bool& armed) {
  const SimResult warmup = engine.run();
  ASSERT_EQ(warmup.failure, SimFailureKind::kNone);
  ASSERT_GT(warmup.decisions, 0u);

  armed = false;
  const SimResult warm = engine.run();
  ASSERT_EQ(warm.failure, SimFailureKind::kNone);
  ASSERT_TRUE(armed);
  EXPECT_EQ(last - first, 0u)
      << (last - first) << " heap allocations in the post-warmup decide "
      << "loop (" << warm.decisions << " decisions)";
  // Warm determinism: both runs simulate the identical instance.
  EXPECT_EQ(warm.decisions, warmup.decisions);
  EXPECT_DOUBLE_EQ(warm.total_profit, warmup.total_profit);
}

template <typename Options>
Options make_options(std::size_t& first, std::size_t& last, bool& armed) {
  Options options;
  options.num_procs = 16;
  options.observer = [&first, &last, &armed](const EngineContext&,
                                             const Assignment&) {
    last = g_new_calls;
    if (!armed) {
      first = last;
      armed = true;
    }
  };
  return options;
}

TEST(ZeroAlloc, EventEnginePaperS) {
  const JobSet jobs = workload();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  std::size_t first = 0, last = 0;
  bool armed = false;
  EventEngine engine(jobs, scheduler, *selector,
                     make_options<EngineOptions>(first, last, armed));
  expect_zero_steady_state_allocs(engine, first, last, armed);
}

TEST(ZeroAlloc, EventEngineEdf) {
  const JobSet jobs = workload();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  std::size_t first = 0, last = 0;
  bool armed = false;
  EventEngine engine(jobs, scheduler, *selector,
                     make_options<EngineOptions>(first, last, armed));
  expect_zero_steady_state_allocs(engine, first, last, armed);
}

TEST(ZeroAlloc, SlotEnginePaperS) {
  const JobSet jobs = workload();
  DeadlineScheduler scheduler({.params = Params::from_epsilon(0.5)});
  auto selector = make_selector(SelectorKind::kFifo);
  std::size_t first = 0, last = 0;
  bool armed = false;
  SlotEngine engine(jobs, scheduler, *selector,
                    make_options<SlotEngineOptions>(first, last, armed));
  expect_zero_steady_state_allocs(engine, first, last, armed);
}

TEST(ZeroAlloc, SlotEngineEdf) {
  const JobSet jobs = workload();
  ListScheduler scheduler({ListPolicy::kEdf, false, true});
  auto selector = make_selector(SelectorKind::kFifo);
  std::size_t first = 0, last = 0;
  bool armed = false;
  SlotEngine engine(jobs, scheduler, *selector,
                    make_options<SlotEngineOptions>(first, last, armed));
  expect_zero_steady_state_allocs(engine, first, last, armed);
}

}  // namespace
}  // namespace dagsched
