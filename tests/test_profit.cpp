// ProfitFn shapes: evaluation, plateau/support metadata, validation.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "job/profit.h"
#include "util/types.h"

namespace dagsched {
namespace {

TEST(ProfitStep, EvaluatesAsIndicator) {
  const ProfitFn fn = ProfitFn::step(5.0, 10.0);
  EXPECT_DOUBLE_EQ(fn.at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(fn.at(10.0), 5.0);  // completing exactly at D earns p
  EXPECT_DOUBLE_EQ(fn.at(10.0 + 1e-6), 0.0);
  EXPECT_TRUE(fn.is_step());
  EXPECT_DOUBLE_EQ(fn.deadline(), 10.0);
  EXPECT_DOUBLE_EQ(fn.peak(), 5.0);
  EXPECT_DOUBLE_EQ(fn.plateau_end(), 10.0);
  EXPECT_DOUBLE_EQ(fn.support_end(), 10.0);
}

TEST(ProfitStep, RejectsInvalid) {
  EXPECT_THROW(ProfitFn::step(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ProfitFn::step(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ProfitFn::step(-1.0, 1.0), std::invalid_argument);
}

TEST(ProfitPlateauLinear, ShapeAndBoundaries) {
  const ProfitFn fn = ProfitFn::plateau_linear(4.0, 10.0, 20.0);
  EXPECT_FALSE(fn.is_step());
  EXPECT_DOUBLE_EQ(fn.at(5.0), 4.0);
  EXPECT_DOUBLE_EQ(fn.at(10.0), 4.0);
  EXPECT_DOUBLE_EQ(fn.at(15.0), 2.0);  // halfway down
  EXPECT_DOUBLE_EQ(fn.at(20.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.at(25.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.plateau_end(), 10.0);
  EXPECT_DOUBLE_EQ(fn.support_end(), 20.0);
}

TEST(ProfitPlateauLinear, RejectsBadOrdering) {
  EXPECT_THROW(ProfitFn::plateau_linear(1.0, 10.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(ProfitFn::plateau_linear(1.0, 10.0, 5.0),
               std::invalid_argument);
}

TEST(ProfitPlateauExp, DecaysButNeverZero) {
  const ProfitFn fn = ProfitFn::plateau_exponential(2.0, 5.0, 0.5);
  EXPECT_DOUBLE_EQ(fn.at(5.0), 2.0);
  EXPECT_NEAR(fn.at(5.0 + 2.0), 2.0 * std::exp(-1.0), 1e-12);
  EXPECT_GT(fn.at(100.0), 0.0);
  EXPECT_EQ(fn.support_end(), kTimeInfinity);
}

TEST(ProfitPiecewise, StaircaseEvaluation) {
  const ProfitFn fn = ProfitFn::piecewise({{5.0, 10.0}, {8.0, 6.0}, {12.0, 1.0}});
  EXPECT_DOUBLE_EQ(fn.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(fn.at(5.0), 10.0);
  EXPECT_DOUBLE_EQ(fn.at(6.0), 6.0);
  EXPECT_DOUBLE_EQ(fn.at(8.0), 6.0);
  EXPECT_DOUBLE_EQ(fn.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.at(12.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.at(13.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.peak(), 10.0);
  EXPECT_DOUBLE_EQ(fn.plateau_end(), 5.0);
  EXPECT_DOUBLE_EQ(fn.support_end(), 12.0);
}

TEST(ProfitPiecewise, RejectsNonMonotone) {
  EXPECT_THROW(ProfitFn::piecewise({}), std::invalid_argument);
  EXPECT_THROW(ProfitFn::piecewise({{5.0, 1.0}, {3.0, 0.5}}),
               std::invalid_argument);  // times must increase
  EXPECT_THROW(ProfitFn::piecewise({{3.0, 1.0}, {5.0, 2.0}}),
               std::invalid_argument);  // values must not increase
}

// Property: every shape is non-increasing on a dense grid.
class ProfitMonotone : public ::testing::TestWithParam<int> {};

TEST_P(ProfitMonotone, NonIncreasing) {
  ProfitFn fn = ProfitFn::step(1.0, 1.0);
  switch (GetParam()) {
    case 0: fn = ProfitFn::step(3.0, 7.0); break;
    case 1: fn = ProfitFn::plateau_linear(3.0, 7.0, 15.0); break;
    case 2: fn = ProfitFn::plateau_exponential(3.0, 7.0, 0.3); break;
    case 3:
      fn = ProfitFn::piecewise({{2.0, 3.0}, {4.0, 2.5}, {9.0, 0.25}});
      break;
  }
  double prev = fn.at(0.0);
  EXPECT_DOUBLE_EQ(prev, fn.peak());
  for (double t = 0.05; t < 20.0; t += 0.05) {
    const double cur = fn.at(t);
    EXPECT_LE(cur, prev + 1e-12) << "at t=" << t;
    EXPECT_GE(cur, 0.0);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ProfitMonotone, ::testing::Range(0, 4));

}  // namespace
}  // namespace dagsched
