// Non-increasing profit functions p_i(t).
//
// The paper's throughput problem uses a step function (profit p until the
// relative deadline D, then 0).  The general profit problem (Section 5)
// allows any non-increasing p_i(t); Theorem 3 assumes a *plateau*: p_i is
// constant on (0, x*] for some x* >= (1+eps)((W-L)/m + L).  We provide the
// shapes used by the paper and the benchmarks:
//
//   step(p, D)                      -- throughput/deadline jobs
//   plateau_linear(p, x*, t0)       -- p until x*, linear to 0 at t0
//   plateau_exponential(p, x*, r)   -- p until x*, p*exp(-r(t-x*)) after
//   piecewise(steps)                -- right-continuous decreasing staircase
//
// All shapes are closed under evaluation at arbitrary t >= 0 and report
// their plateau end x* and support end sup{t : p(t) > 0}.
#pragma once

#include <utility>
#include <vector>

#include "util/types.h"

namespace dagsched {

class ProfitFn {
 public:
  /// Step: p for t <= relative_deadline, 0 after.
  static ProfitFn step(Profit p, Time relative_deadline);

  /// Plateau then linear decay: p on (0, plateau_end], linearly decreasing
  /// to 0 at zero_at (> plateau_end), 0 afterwards.
  static ProfitFn plateau_linear(Profit p, Time plateau_end, Time zero_at);

  /// Plateau then exponential decay with rate `rate` (> 0).  Support is
  /// unbounded (profit never reaches exactly zero).
  static ProfitFn plateau_exponential(Profit p, Time plateau_end, double rate);

  /// Decreasing staircase: value levels[k].second for
  /// t in (levels[k-1].first, levels[k].first] (levels[-1].first == 0),
  /// 0 after the last breakpoint.  Breakpoint times must be strictly
  /// increasing and values strictly positive and non-increasing.
  static ProfitFn piecewise(std::vector<std::pair<Time, Profit>> levels);

  /// Profit for completing the job `t` time units after its release.
  Profit at(Time t) const;

  /// Maximum achievable profit (== at(t) for any t in the plateau).
  Profit peak() const { return peak_; }

  /// Largest t with at(t) == peak() -- the paper's x*.
  Time plateau_end() const { return plateau_end_; }

  /// sup{t : at(t) > 0}; kTimeInfinity for exponential decay.
  Time support_end() const { return support_end_; }

  /// True for step functions (the throughput special case).
  bool is_step() const { return kind_ == Kind::kStep; }

  /// For step functions only: the relative deadline D.
  Time deadline() const;

 private:
  enum class Kind { kStep, kPlateauLinear, kPlateauExp, kPiecewise };

  ProfitFn() = default;

  Kind kind_ = Kind::kStep;
  Profit peak_ = 0.0;
  Time plateau_end_ = 0.0;
  Time support_end_ = 0.0;
  double rate_ = 0.0;                              // kPlateauExp
  std::vector<std::pair<Time, Profit>> levels_;    // kPiecewise
};

}  // namespace dagsched
