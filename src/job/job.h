// Job = DAG program + release time + profit function, plus the JobSet
// container an engine consumes.
#pragma once

#include <memory>
#include <vector>

#include "dag/dag.h"
#include "job/profit.h"
#include "util/types.h"

namespace dagsched {

class Job {
 public:
  /// The DAG is shared so workloads can reuse one program for many jobs.
  Job(std::shared_ptr<const Dag> dag, Time release, ProfitFn profit);

  /// Convenience: deadline job (step profit).
  static Job with_deadline(std::shared_ptr<const Dag> dag, Time release,
                           Time relative_deadline, Profit profit);

  const Dag& dag() const { return *dag_; }
  const std::shared_ptr<const Dag>& dag_ptr() const { return dag_; }

  Time release() const { return release_; }
  const ProfitFn& profit() const { return profit_; }

  /// Total work W_i.
  Work work() const { return dag_->total_work(); }
  /// Span (critical-path length) L_i.
  Work span() const { return dag_->span(); }

  /// True iff this is a deadline (step-profit) job.
  bool has_deadline() const { return profit_.is_step(); }
  /// Relative deadline D_i; requires has_deadline().
  Time relative_deadline() const { return profit_.deadline(); }
  /// Absolute deadline r_i + D_i; requires has_deadline().
  Time absolute_deadline() const { return release_ + profit_.deadline(); }
  /// Peak profit p_i.
  Profit peak_profit() const { return profit_.peak(); }

  /// The paper's execution-time lower bound max{L, W/m}: no 1-speed
  /// schedule can complete the job faster on m processors.
  Work min_execution_time(ProcCount m) const;

  /// The semi-non-clairvoyant lower bound (W - L)/m + L used in the paper's
  /// deadline assumption.
  Work greedy_execution_time(ProcCount m) const;

 private:
  std::shared_ptr<const Dag> dag_;
  Time release_;
  ProfitFn profit_;
};

/// An ordered-by-release collection of jobs (an online instance).
class JobSet {
 public:
  JobSet() = default;
  explicit JobSet(std::vector<Job> jobs);

  /// Appends a job; releases need not arrive sorted, finalize() sorts.
  void add(Job job);

  /// Sorts by release time (stable). Must be called before simulation;
  /// engines assert sortedness.
  void finalize();

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const Job& operator[](std::size_t i) const { return jobs_[i]; }
  const std::vector<Job>& jobs() const { return jobs_; }

  bool sorted_by_release() const;

  /// Sum of peak profits (the trivial upper bound on any schedule).
  Profit total_peak_profit() const;

  /// Sum of W_i / (m * horizon): average offered load.
  double utilization(ProcCount m, Time horizon) const;

  /// Latest release + that job's profit support end; simulations cannot earn
  /// profit after this time.
  Time profit_horizon() const;

 private:
  std::vector<Job> jobs_;
};

}  // namespace dagsched
