#include "job/profit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

ProfitFn ProfitFn::step(Profit p, Time relative_deadline) {
  if (!(p > 0.0)) throw std::invalid_argument("step profit must be > 0");
  if (!(relative_deadline > 0.0)) {
    throw std::invalid_argument("relative deadline must be > 0");
  }
  ProfitFn fn;
  fn.kind_ = Kind::kStep;
  fn.peak_ = p;
  fn.plateau_end_ = relative_deadline;
  fn.support_end_ = relative_deadline;
  return fn;
}

ProfitFn ProfitFn::plateau_linear(Profit p, Time plateau_end, Time zero_at) {
  if (!(p > 0.0)) throw std::invalid_argument("profit must be > 0");
  if (!(0.0 < plateau_end && plateau_end < zero_at)) {
    throw std::invalid_argument("need 0 < plateau_end < zero_at");
  }
  ProfitFn fn;
  fn.kind_ = Kind::kPlateauLinear;
  fn.peak_ = p;
  fn.plateau_end_ = plateau_end;
  fn.support_end_ = zero_at;
  return fn;
}

ProfitFn ProfitFn::plateau_exponential(Profit p, Time plateau_end,
                                       double rate) {
  if (!(p > 0.0)) throw std::invalid_argument("profit must be > 0");
  if (!(plateau_end > 0.0)) throw std::invalid_argument("plateau_end <= 0");
  if (!(rate > 0.0)) throw std::invalid_argument("rate must be > 0");
  ProfitFn fn;
  fn.kind_ = Kind::kPlateauExp;
  fn.peak_ = p;
  fn.plateau_end_ = plateau_end;
  fn.support_end_ = kTimeInfinity;
  fn.rate_ = rate;
  return fn;
}

ProfitFn ProfitFn::piecewise(std::vector<std::pair<Time, Profit>> levels) {
  if (levels.empty()) throw std::invalid_argument("piecewise: empty levels");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (!(levels[i].first > 0.0) || !(levels[i].second > 0.0)) {
      throw std::invalid_argument("piecewise: times and values must be > 0");
    }
    if (i > 0) {
      if (!(levels[i].first > levels[i - 1].first)) {
        throw std::invalid_argument("piecewise: times must increase");
      }
      if (levels[i].second > levels[i - 1].second) {
        throw std::invalid_argument("piecewise: values must not increase");
      }
    }
  }
  ProfitFn fn;
  fn.kind_ = Kind::kPiecewise;
  fn.peak_ = levels.front().second;
  fn.plateau_end_ = levels.front().first;
  fn.support_end_ = levels.back().first;
  fn.levels_ = std::move(levels);
  return fn;
}

Profit ProfitFn::at(Time t) const {
  DS_CHECK_MSG(t >= 0.0, "profit evaluated at negative t=" << t);
  switch (kind_) {
    case Kind::kStep:
      return approx_le(t, plateau_end_) ? peak_ : 0.0;
    case Kind::kPlateauLinear: {
      if (approx_le(t, plateau_end_)) return peak_;
      if (approx_ge(t, support_end_)) return 0.0;
      return peak_ * (support_end_ - t) / (support_end_ - plateau_end_);
    }
    case Kind::kPlateauExp: {
      if (approx_le(t, plateau_end_)) return peak_;
      return peak_ * std::exp(-rate_ * (t - plateau_end_));
    }
    case Kind::kPiecewise: {
      for (const auto& [end, value] : levels_) {
        if (approx_le(t, end)) return value;
      }
      return 0.0;
    }
  }
  return 0.0;
}

Time ProfitFn::deadline() const {
  DS_CHECK_MSG(kind_ == Kind::kStep, "deadline() on a non-step profit");
  return plateau_end_;
}

}  // namespace dagsched
