#include "job/job.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace dagsched {

Job::Job(std::shared_ptr<const Dag> dag, Time release, ProfitFn profit)
    : dag_(std::move(dag)), release_(release), profit_(std::move(profit)) {
  if (dag_ == nullptr) throw std::invalid_argument("Job: null DAG");
  if (release_ < 0.0) throw std::invalid_argument("Job: negative release");
}

Job Job::with_deadline(std::shared_ptr<const Dag> dag, Time release,
                       Time relative_deadline, Profit profit) {
  return Job(std::move(dag), release, ProfitFn::step(profit, relative_deadline));
}

Work Job::min_execution_time(ProcCount m) const {
  DS_CHECK(m >= 1);
  return std::max(span(), work() / static_cast<double>(m));
}

Work Job::greedy_execution_time(ProcCount m) const {
  DS_CHECK(m >= 1);
  return (work() - span()) / static_cast<double>(m) + span();
}

JobSet::JobSet(std::vector<Job> jobs) : jobs_(std::move(jobs)) { finalize(); }

void JobSet::add(Job job) { jobs_.push_back(std::move(job)); }

void JobSet::finalize() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     return a.release() < b.release();
                   });
}

bool JobSet::sorted_by_release() const {
  return std::is_sorted(jobs_.begin(), jobs_.end(),
                        [](const Job& a, const Job& b) {
                          return a.release() < b.release();
                        });
}

Profit JobSet::total_peak_profit() const {
  Profit total = 0.0;
  for (const Job& job : jobs_) total += job.peak_profit();
  return total;
}

double JobSet::utilization(ProcCount m, Time horizon) const {
  DS_CHECK(m >= 1 && horizon > 0.0);
  Work total = 0.0;
  for (const Job& job : jobs_) total += job.work();
  return total / (static_cast<double>(m) * horizon);
}

Time JobSet::profit_horizon() const {
  Time horizon = 0.0;
  for (const Job& job : jobs_) {
    horizon = std::max(horizon, job.release() + job.profit().support_end());
  }
  return horizon;
}

}  // namespace dagsched
