#include "obs/counters.h"

#include <algorithm>
#include <cmath>

namespace dagsched {

void Histogram::observe(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;

  std::size_t bucket = 0;
  if (value > 0.0) {
    const int exponent = static_cast<int>(std::floor(std::log2(value)));
    const int index = exponent + kBucketBias;
    if (index > 0) {
      bucket = std::min<std::size_t>(static_cast<std::size_t>(index),
                                     kNumBuckets - 1);
    }
  }
  ++buckets_[bucket];
}

double Histogram::bucket_lower_bound(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) - kBucketBias);
}

void Histogram::reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

Counter* MetricRegistry::counter(std::string_view name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  counters_.emplace_back();
  Counter* instrument = &counters_.back();
  counter_index_.emplace(std::string(name), instrument);
  return instrument;
}

Gauge* MetricRegistry::gauge(std::string_view name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return it->second;
  gauges_.emplace_back();
  Gauge* instrument = &gauges_.back();
  gauge_index_.emplace(std::string(name), instrument);
  return instrument;
}

Histogram* MetricRegistry::histogram(std::string_view name) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return it->second;
  histograms_.emplace_back();
  Histogram* instrument = &histograms_.back();
  histogram_index_.emplace(std::string(name), instrument);
  return instrument;
}

std::vector<std::pair<std::string, double>> MetricRegistry::counter_values()
    const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counter_index_.size());
  for (const auto& [name, instrument] : counter_index_) {
    out.emplace_back(name, instrument->value());
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::pair<std::string, double>> MetricRegistry::gauge_values()
    const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauge_index_.size());
  for (const auto& [name, instrument] : gauge_index_) {
    out.emplace_back(name, instrument->value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricRegistry::histogram_values() const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histogram_index_.size());
  for (const auto& [name, instrument] : histogram_index_) {
    out.emplace_back(name, instrument);
  }
  return out;
}

void MetricRegistry::reset() {
  for (Counter& instrument : counters_) instrument.reset();
  for (Gauge& instrument : gauges_) instrument.reset();
  for (Histogram& instrument : histograms_) instrument.reset();
}

}  // namespace dagsched
