// Causal trace export: fuse the execution trace (SimResult::trace), the
// decision EventLog and the span-timer aggregates of one run into a single
// Chrome trace_event JSON document loadable in Perfetto / chrome://tracing.
//
// Track layout:
//   * pid 1 "machine": one thread track per processor, complete ("X")
//     slices for every executed interval (named "J<job>/N<node>", adjacent
//     same-node slices coalesced), plus instant events for proc-down /
//     proc-up fault transitions on the affected processor's track;
//   * pid 2 "jobs": one async ("b"/"e", id = job) track per job spanning
//     arrival -> complete/expire, plus thread-scoped instant events for
//     every job-attributed decision (admit/defer/drop/schedule/preempt,
//     node-restart, work-overrun, readmit-fail) on a per-job thread track;
//   * engine-abort becomes a global instant.
//
// Span-timer aggregates are wall-clock (not simulation-time) totals, so
// they ride along in "otherData" rather than on the timeline.  One
// simulated time unit maps to kTraceMicrosPerTimeUnit trace microseconds.
//
// The same header hosts diff_event_logs(), the aligned comparison of two
// decision event logs behind `dagsched trace diff` and the cross-engine
// equivalence tests: it reports the first diverging event plus per-kind
// count deltas.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "job/job.h"
#include "obs/event_log.h"
#include "obs/span_timer.h"
#include "sim/outcome.h"
#include "util/json.h"
#include "util/types.h"

namespace dagsched {

/// Trace timestamps are microseconds; one simulated time unit becomes 1 ms
/// so slot-scale structure is visible at Perfetto's default zoom.
inline constexpr double kTraceMicrosPerTimeUnit = 1000.0;

struct TraceExportInputs {
  const JobSet* jobs = nullptr;       // required
  const SimResult* result = nullptr;  // required (trace + outcomes)
  /// Optional: decision/fault instants and exact expiry times for the job
  /// tracks.  Without it only the machine tracks and outcome-derived job
  /// spans are emitted.
  const EventLog* events = nullptr;
  /// Optional: wall-clock span aggregates, recorded into "otherData".
  const SpanRegistry* spans = nullptr;
  ProcCount m = 1;
  /// Free-form run label recorded in "otherData" (workload path, engine).
  std::string label;
};

/// Builds the Chrome trace_event document: an object with "traceEvents"
/// (chronologically sorted after the metadata prelude), "displayTimeUnit"
/// and "otherData".
JsonValue export_chrome_trace(const TraceExportInputs& inputs);

// ---------------------------------------------------------------------------
// Event-log diff
// ---------------------------------------------------------------------------

struct EventLogDiffOptions {
  /// Compare only the scheduler-policy subsequence (admit/defer/drop/
  /// schedule) by (kind, job, reason), ignoring engine lifecycle timing.
  /// This is the cross-engine comparison mode: on integral workloads the
  /// two engines must agree on every policy decision even though their
  /// event timestamps and lifecycle interleavings differ.
  bool decisions_only = false;
  /// In decisions_only mode, tolerate a trailing run of end-of-run drops in
  /// the longer log (the event engine drains deadline expiries after the
  /// slot engine has already halted).
  bool ignore_tail_drops = true;
};

struct EventLogDiff {
  static constexpr std::size_t kNoDivergence =
      static_cast<std::size_t>(-1);

  /// Index (into the compared sequences) of the first diverging event;
  /// kNoDivergence when one sequence is a clean prefix of the other or
  /// they are identical.
  std::size_t first_divergence = kNoDivergence;
  /// Human-readable description of the divergence (empty when none).
  std::string description;
  /// Lengths of the compared (possibly filtered) sequences.
  std::size_t lhs_events = 0;
  std::size_t rhs_events = 0;
  /// Per-kind event counts over the compared sequences: (kind name, lhs
  /// count, rhs count), sorted by kind name, only kinds present in either.
  struct KindDelta {
    std::string kind;
    std::size_t lhs = 0;
    std::size_t rhs = 0;
  };
  std::vector<KindDelta> kind_deltas;
  /// Events in the longer log past the common prefix that the options
  /// forgave (tail drops); 0 otherwise.  An unforgiven length mismatch is
  /// reported as a divergence at the shorter log's end.
  std::size_t forgiven_tail = 0;

  bool diverged() const { return first_divergence != kNoDivergence; }
  /// Equivalent under the options: no divergence (forgiven tail events are
  /// allowed).
  bool identical() const { return !diverged(); }
};

EventLogDiff diff_event_logs(const std::vector<DecisionEvent>& lhs,
                             const std::vector<DecisionEvent>& rhs,
                             const EventLogDiffOptions& options = {});

/// Multi-line human-readable rendering (the `dagsched trace diff` output).
std::string format_event_log_diff(const EventLogDiff& diff,
                                  std::string_view lhs_name,
                                  std::string_view rhs_name);

}  // namespace dagsched
