#include "obs/sweep_report.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <sstream>

namespace dagsched {

namespace {

double num_at(const JsonValue& object, std::string_view key,
              double fallback = 0.0) {
  const JsonValue* value = object.find(key);
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

double nested_num(const JsonValue& object, std::string_view section,
                  std::string_view key, double fallback = 0.0) {
  const JsonValue* group = object.find(section);
  return group != nullptr ? num_at(*group, key, fallback) : fallback;
}

std::string string_at(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string();
}

std::string fixed(double value, int digits) {
  std::ostringstream out;
  out.precision(digits);
  out << std::fixed << value;
  return out.str();
}

std::string percent(double delta) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << (delta >= 0 ? "+" : "") << delta * 100.0 << "%";
  return out.str();
}

}  // namespace

std::optional<SweepReportDoc> parse_sweep_report(std::istream& in,
                                                 std::string* error) {
  auto fail = [error](std::size_t line, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + message;
    }
    return std::nullopt;
  };

  SweepReportDoc doc;
  std::string line;
  std::size_t line_number = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    JsonParseResult parsed = json_parse(line);
    if (!parsed.ok) return fail(line_number, parsed.error);
    if (!parsed.value.is_object()) {
      return fail(line_number, "expected a JSON object");
    }
    if (!have_header) {
      const std::string schema = string_at(parsed.value, "schema");
      if (schema != kSweepReportSchema) {
        return fail(line_number, "expected schema '" +
                                     std::string(kSweepReportSchema) +
                                     "', got '" + schema + "'");
      }
      if (string_at(parsed.value, "kind") != "header") {
        return fail(line_number, "first line must have kind 'header'");
      }
      doc.header = std::move(parsed.value);
      have_header = true;
      continue;
    }
    const std::string kind = string_at(parsed.value, "kind");
    if (kind == "cell") {
      doc.cells.push_back(std::move(parsed.value));
    } else if (kind == "summary") {
      doc.summary = std::move(parsed.value);
    }
    // Unknown kinds: skipped so newer writers render on older binaries.
  }
  if (!have_header) return fail(1, "empty stream (no header line)");
  return doc;
}

namespace {

std::string histogram_line(const JsonValue& owner, std::string_view key) {
  const JsonValue* histogram = owner.find(key);
  if (histogram == nullptr || num_at(*histogram, "count") == 0.0) return {};
  std::ostringstream out;
  out << key << ": count "
      << static_cast<std::uint64_t>(num_at(*histogram, "count")) << "  p50 "
      << static_cast<std::uint64_t>(num_at(*histogram, "p50")) << "  p90 "
      << static_cast<std::uint64_t>(num_at(*histogram, "p90")) << "  p99 "
      << static_cast<std::uint64_t>(num_at(*histogram, "p99")) << "  p999 "
      << static_cast<std::uint64_t>(num_at(*histogram, "p999")) << "  max "
      << static_cast<std::uint64_t>(num_at(*histogram, "max"));
  return out.str();
}

}  // namespace

std::string format_sweep_report(const SweepReportDoc& doc) {
  std::ostringstream out;
  out << "sweep report: "
      << static_cast<std::uint64_t>(num_at(doc.header, "cells")) << " cells on "
      << static_cast<std::uint64_t>(num_at(doc.header, "threads"))
      << " threads\n";
  if (doc.has_summary()) {
    const JsonValue& s = doc.summary;
    out << "  wall " << fixed(num_at(s, "wall_ms"), 1) << " ms, serial "
        << fixed(num_at(s, "serial_wall_ms"), 1) << " ms, speedup "
        << fixed(num_at(s, "speedup"), 2) << "x, "
        << fixed(num_at(s, "cells_per_sec"), 1) << " cells/s\n"
        << "  cells: "
        << static_cast<std::uint64_t>(num_at(s, "ok_cells")) << " ok, "
        << static_cast<std::uint64_t>(num_at(s, "failed_cells"))
        << " failed\n";
    for (const char* key : {"decide_ns", "transition_ns", "admission_ns"}) {
      const std::string line = histogram_line(s, key);
      if (!line.empty()) out << "  merged " << line << "\n";
    }
    const JsonValue* rollups = s.find("rollups");
    if (rollups != nullptr) {
      out << "  rollups: jobs "
          << static_cast<std::uint64_t>(num_at(*rollups, "jobs"))
          << ", completed "
          << static_cast<std::uint64_t>(num_at(*rollups, "jobs_completed"))
          << ", profit " << fixed(num_at(*rollups, "profit"), 2)
          << ", lost work " << fixed(num_at(*rollups, "lost_work"), 2) << "\n"
          << "  overload: "
          << static_cast<std::uint64_t>(num_at(*rollups, "overload_breaches"))
          << " breaches, "
          << static_cast<std::uint64_t>(num_at(*rollups, "overload_sheds"))
          << " sheds, "
          << static_cast<std::uint64_t>(
                 num_at(*rollups, "overload_recoveries"))
          << " recoveries\n";
      const JsonValue* failures = rollups->find("sim_failures");
      if (failures != nullptr && failures->is_object() &&
          !failures->members().empty()) {
        out << "  sim failures:";
        for (const auto& [kind, count] : failures->members()) {
          out << " " << kind << "="
              << static_cast<std::uint64_t>(
                     count.is_number() ? count.as_number() : 0.0);
        }
        out << "\n";
      }
    }
    const JsonValue* slowest = s.find("slowest_cells");
    if (slowest != nullptr && slowest->is_array() && slowest->size() > 0) {
      out << "  slowest cells:\n";
      for (const JsonValue& cell : slowest->items()) {
        out << "    " << string_at(cell, "id") << "  "
            << fixed(num_at(cell, "wall_ms"), 1) << " ms\n";
      }
    }
  } else {
    out << "  (no summary line -- sweep did not finish)\n";
  }

  if (!doc.cells.empty()) {
    out << "  cells:\n";
    std::size_t width = 4;
    for (const JsonValue& cell : doc.cells) {
      width = std::max(width, string_at(cell, "id").size());
    }
    for (const JsonValue& cell : doc.cells) {
      std::string id = string_at(cell, "id");
      id.resize(width, ' ');
      out << "    " << id;
      const std::string error = string_at(cell, "error");
      if (!error.empty()) {
        out << "  CONFIG ERROR: " << error << "\n";
        continue;
      }
      const std::string failure = string_at(cell, "failure");
      out << "  profit " << fixed(nested_num(cell, "metrics", "profit"), 2)
          << "  completed "
          << static_cast<std::uint64_t>(
                 nested_num(cell, "metrics", "completed"))
          << "/"
          << static_cast<std::uint64_t>(nested_num(cell, "metrics", "jobs"))
          << "  decisions "
          << static_cast<std::uint64_t>(
                 nested_num(cell, "metrics", "decisions"))
          << "  wall " << fixed(num_at(cell, "wall_ms"), 1) << " ms"
          << "  p99 "
          << static_cast<std::uint64_t>(nested_num(cell, "decide_ns", "p99"))
          << " ns";
      if (!failure.empty() && failure != "none") {
        out << "  FAILED: " << failure;
      }
      out << "\n";
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

const char* sweep_diff_class_name(SweepDiffClass klass) {
  switch (klass) {
    case SweepDiffClass::kOk: return "ok";
    case SweepDiffClass::kImproved: return "improved";
    case SweepDiffClass::kPerfRegression: return "regression";
    case SweepDiffClass::kSemanticChange: return "semantic-change";
    case SweepDiffClass::kNew: return "new";
    case SweepDiffClass::kGone: return "gone";
  }
  return "?";
}

namespace {

void tally(SweepDiff& diff, SweepDiffRow row) {
  switch (row.klass) {
    case SweepDiffClass::kPerfRegression: ++diff.regressions; break;
    case SweepDiffClass::kSemanticChange: ++diff.semantic_changes; break;
    case SweepDiffClass::kImproved: ++diff.improved; break;
    default: break;
  }
  diff.rows.push_back(std::move(row));
}

/// Compares one scalar time-like measurement; appends a detail fragment
/// and upgrades `klass` when the delta crosses the threshold.
void classify_time(double base, double current, double floor,
                   double threshold, std::string_view label,
                   std::string_view unit, SweepDiffClass& klass,
                   std::string& detail) {
  if (base < floor || current < 0.0) return;
  if (base <= 0.0) return;
  const double delta = (current - base) / base;
  if (delta > threshold) {
    // A regression on either measurement outranks an improvement on the
    // other (classify_time only ever sees kOk/kImproved/kPerfRegression).
    klass = SweepDiffClass::kPerfRegression;
    if (!detail.empty()) detail += "; ";
    detail += std::string(label) + " " + fixed(base, 1) + unit.data() +
              " -> " + fixed(current, 1) + unit.data() + " (" +
              percent(delta) + ")";
  } else if (delta < -threshold) {
    if (klass == SweepDiffClass::kOk) klass = SweepDiffClass::kImproved;
    if (!detail.empty()) detail += "; ";
    detail += std::string(label) + " " + fixed(base, 1) + unit.data() +
              " -> " + fixed(current, 1) + unit.data() + " (" +
              percent(delta) + ")";
  }
}

}  // namespace

SweepDiff diff_sweep_reports(const SweepReportDoc& baseline,
                             const SweepReportDoc& current,
                             const SweepDiffOptions& options) {
  SweepDiff diff;
  std::map<std::string, const JsonValue*> current_by_id;
  for (const JsonValue& cell : current.cells) {
    current_by_id[string_at(cell, "id")] = &cell;
  }

  std::map<std::string, bool> seen;
  for (const JsonValue& base_cell : baseline.cells) {
    const std::string id = string_at(base_cell, "id");
    seen[id] = true;
    const auto found = current_by_id.find(id);
    if (found == current_by_id.end()) {
      tally(diff, {id, SweepDiffClass::kGone, "only in baseline"});
      continue;
    }
    const JsonValue& cur_cell = *found->second;

    SweepDiffRow row;
    row.id = id;

    // Semantic identity first: deterministic cells must agree exactly on
    // what happened; any drift outranks a perf delta.
    std::string semantic;
    for (const char* key : {"decisions", "completed", "jobs"}) {
      const double base_value = nested_num(base_cell, "metrics", key, -1.0);
      const double cur_value = nested_num(cur_cell, "metrics", key, -1.0);
      if (base_value != cur_value) {
        if (!semantic.empty()) semantic += "; ";
        semantic += std::string(key) + " " +
                    std::to_string(static_cast<long long>(base_value)) +
                    " -> " +
                    std::to_string(static_cast<long long>(cur_value));
      }
    }
    const double base_profit = nested_num(base_cell, "metrics", "profit");
    const double cur_profit = nested_num(cur_cell, "metrics", "profit");
    if (base_profit != cur_profit) {
      if (!semantic.empty()) semantic += "; ";
      semantic += "profit " + fixed(base_profit, 4) + " -> " +
                  fixed(cur_profit, 4);
    }
    const std::string base_failure = string_at(base_cell, "failure");
    const std::string cur_failure = string_at(cur_cell, "failure");
    if (base_failure != cur_failure) {
      if (!semantic.empty()) semantic += "; ";
      semantic += "failure '" + base_failure + "' -> '" + cur_failure + "'";
    }
    if (!semantic.empty()) {
      row.klass = SweepDiffClass::kSemanticChange;
      row.detail = semantic;
      tally(diff, std::move(row));
      continue;
    }

    classify_time(num_at(base_cell, "wall_ms"), num_at(cur_cell, "wall_ms"),
                  options.wall_floor_ms, options.threshold, "wall", " ms",
                  row.klass, row.detail);
    classify_time(nested_num(base_cell, "decide_ns", "p99"),
                  nested_num(cur_cell, "decide_ns", "p99"),
                  options.p99_floor_ns, options.threshold, "decide p99",
                  " ns", row.klass, row.detail);
    tally(diff, std::move(row));
  }
  for (const JsonValue& cell : current.cells) {
    const std::string id = string_at(cell, "id");
    if (!seen.count(id)) {
      tally(diff, {id, SweepDiffClass::kNew, "only in current"});
    }
  }
  return diff;
}

namespace {

/// bench_regress.py's measurement extraction: {name: real_time_ns} for
/// non-aggregate rows plus "name:counter" for counters ending in _ns.
std::vector<std::pair<std::string, double>> bench_measurements(
    const JsonValue& doc) {
  std::vector<std::pair<std::string, double>> out;
  const JsonValue* measurements = doc.find("measurements");
  if (measurements == nullptr || !measurements->is_array()) return out;
  for (const JsonValue& row : measurements->items()) {
    const JsonValue* aggregate = row.find("aggregate");
    if (aggregate != nullptr && aggregate->is_bool() && aggregate->as_bool()) {
      continue;
    }
    const std::string name = string_at(row, "name");
    const JsonValue* real = row.find("real_time_ns");
    if (name.empty() || real == nullptr || !real->is_number()) continue;
    out.emplace_back(name, real->as_number());
    const JsonValue* counters = row.find("counters");
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [counter, value] : counters->members()) {
        if (counter.size() > 3 &&
            counter.compare(counter.size() - 3, 3, "_ns") == 0 &&
            value.is_number()) {
          out.emplace_back(name + ":" + counter, value.as_number());
        }
      }
    }
  }
  return out;
}

}  // namespace

SweepDiff diff_bench_reports(const JsonValue& baseline,
                             const JsonValue& current,
                             const SweepDiffOptions& options) {
  SweepDiff diff;
  const auto base_rows = bench_measurements(baseline);
  const auto cur_rows = bench_measurements(current);
  std::map<std::string, double> cur_by_name(cur_rows.begin(), cur_rows.end());
  std::map<std::string, double> base_by_name(base_rows.begin(),
                                             base_rows.end());

  for (const auto& [name, base_value] : base_rows) {
    const auto found = cur_by_name.find(name);
    if (found == cur_by_name.end()) {
      tally(diff, {name, SweepDiffClass::kGone, "only in baseline"});
      continue;
    }
    SweepDiffRow row;
    row.id = name;
    classify_time(base_value, found->second, 0.0, options.threshold, "time",
                  " ns", row.klass, row.detail);
    tally(diff, std::move(row));
  }
  for (const auto& [name, value] : cur_rows) {
    (void)value;
    if (!base_by_name.count(name)) {
      tally(diff, {name, SweepDiffClass::kNew, "only in current"});
    }
  }
  return diff;
}

std::string format_sweep_diff(const SweepDiff& diff,
                              std::string_view baseline_label,
                              std::string_view current_label,
                              const SweepDiffOptions& options) {
  std::ostringstream out;
  out << "sweep diff: " << baseline_label << " -> " << current_label
      << " (threshold " << percent(options.threshold) << ")\n";
  std::size_t width = 4;
  for (const SweepDiffRow& row : diff.rows) {
    width = std::max(width, row.id.size());
  }
  std::size_t ok = 0;
  for (const SweepDiffRow& row : diff.rows) {
    if (row.klass == SweepDiffClass::kOk) {
      ++ok;
      continue;  // quiet rows keep 93-cell diffs readable
    }
    std::string id = row.id;
    id.resize(width, ' ');
    out << "  " << id << "  " << sweep_diff_class_name(row.klass);
    if (!row.detail.empty()) out << ": " << row.detail;
    out << "\n";
  }
  out << "  " << diff.rows.size() << " compared: " << ok << " ok, "
      << diff.improved << " improved, " << diff.regressions
      << " regressions, " << diff.semantic_changes << " semantic changes\n";
  return out.str();
}

}  // namespace dagsched
