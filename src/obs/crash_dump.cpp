#include "obs/crash_dump.h"

#include <fstream>

namespace dagsched {

CrashDumpGuard::CrashDumpGuard(EventLog* log, std::string path)
    : log_(log), path_(std::move(path)) {
  previous_ = set_check_failure_hook(
      [this](const std::string& message) { dump(message); });
}

CrashDumpGuard::~CrashDumpGuard() { set_check_failure_hook(previous_); }

void CrashDumpGuard::dump(const std::string& message) {
  if (log_ == nullptr) return;
  // Stamp the abort at the time of the last recorded decision: the engine's
  // clock is unreachable from here, and the final event's time is the best
  // available estimate of when the run died.
  const Time when = log_->empty() ? 0.0 : log_->events().back().time;
  (void)message;  // full text already on stderr; the log stays numeric-only
  log_->emit(when, kInvalidJob, ObsEventKind::kEngineAbort, "ds-check");
  std::ofstream out(path_);
  if (out) log_->write_jsonl(out);
}

}  // namespace dagsched
