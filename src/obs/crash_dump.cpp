#include "obs/crash_dump.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace dagsched {

namespace {

// Drops any partial trailing JSONL record so the file ends on a complete
// line ('\n'-terminated).  A streamed log can end mid-record when stdio
// flushed a full buffer that split a line; appending the abort event after
// such a tail would corrupt two records at once.  Fixed-size backward scan:
// the crash hook must not allocate unboundedly.
void truncate_to_last_complete_line(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return;
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  char buf[4096];
  std::uintmax_t end = size;
  while (end > 0) {
    const auto chunk = static_cast<std::size_t>(
        std::min<std::uintmax_t>(end, sizeof(buf)));
    in.seekg(static_cast<std::streamoff>(end - chunk));
    in.read(buf, static_cast<std::streamsize>(chunk));
    if (!in) return;
    for (std::size_t i = chunk; i-- > 0;) {
      if (buf[i] == '\n') {
        const std::uintmax_t keep = end - chunk + i + 1;
        if (keep < size) std::filesystem::resize_file(path, keep, ec);
        return;
      }
    }
    end -= chunk;
  }
  // No newline anywhere: the whole file is one partial record.
  std::filesystem::resize_file(path, 0, ec);
}

}  // namespace

CrashDumpGuard::CrashDumpGuard(EventLog* log, std::string path)
    : log_(log), path_(std::move(path)) {
  previous_ = set_check_failure_hook(
      [this](const std::string& message) { dump(message); });
}

CrashDumpGuard::~CrashDumpGuard() { set_check_failure_hook(previous_); }

void CrashDumpGuard::dump(const std::string& message) {
  if (log_ == nullptr) return;
  // Stamp the abort at the time of the last recorded decision: the engine's
  // clock is unreachable from here, and the final event's time is the best
  // available estimate of when the run died.
  const Time when = log_->empty() ? 0.0 : log_->events().back().time;
  (void)message;  // full text already on stderr; the log stays numeric-only
  if (std::ostream* stream = log_->stream(); stream != nullptr) {
    // Streaming mode: the file already holds (a possibly ragged prefix of)
    // the log.  Detach first so the emit below is not double-written, flush
    // buffered complete lines, truncate any partial tail, then append the
    // abort event so the dump ends on a complete record.
    log_->stream_to(nullptr);
    stream->flush();
    log_->emit(when, kInvalidJob, ObsEventKind::kEngineAbort, "ds-check");
    truncate_to_last_complete_line(path_);
    std::ofstream out(path_, std::ios::app);
    if (out) write_event_jsonl(out, log_->events().back());
    return;
  }
  log_->emit(when, kInvalidJob, ObsEventKind::kEngineAbort, "ds-check");
  std::ofstream out(path_);
  if (out) log_->write_jsonl(out);
}

}  // namespace dagsched
