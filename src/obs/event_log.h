// Structured decision event log: an audit trail of every scheduling
// decision a run makes, with the decision-maker's stated reason.
//
// Engines emit lifecycle events (arrival, complete, expire, preempt);
// schedulers emit policy events (admit, defer, drop, schedule) carrying a
// machine-checkable reason slug plus the numeric facts behind the decision
// (density v, requirement n, ...).  For the paper's Section-3 scheduler the
// admit/defer events carry exactly the quantities of admission condition
// (2), so a consumer can replay the density-window test against the log --
// tests/test_obs_events.cpp does precisely that.
//
// Serialization is JSONL (one compact JSON object per line), the format
// production schedulers such as DAGPS use for per-decision telemetry; the
// parser reuses util/json.h so emit -> parse round-trips exactly.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.h"

namespace dagsched {

enum class ObsEventKind {
  kArrival,   // engine: job released
  kAdmit,     // scheduler: job entered the served set
  kDefer,     // scheduler: job parked in a waiting queue
  kDrop,      // scheduler: job abandoned (reason says why)
  kSchedule,  // scheduler: job pinned to future slots (Section-5)
  kComplete,  // engine: all nodes of the job finished
  kExpire,    // engine: deadline passed without completion
  kPreempt,   // engine: job lost all processors while unfinished
  // Fault-injection events (src/fault/); job is kInvalidJob for the
  // processor-level ones.
  kProcDown,     // injector: a processor failed
  kProcUp,       // injector: a failed processor recovered
  kNodeRestart,  // engine: in-flight node lost its progress to a failure
  kWorkOverrun,  // engine: node's actual work exceeds its declared work
  kReadmitFail,  // scheduler: job lost admission after a capacity shrink
  kEngineAbort,  // engine/crash hook: run terminated abnormally
  kOverload,     // kernel: decide() latency budget breached / recovered
                 // (reason "overload.breach" or "overload.recovered"; the
                 // jobs shed in response are kDrop events with
                 // `overload.shed.*` slugs)
};

const char* obs_event_kind_name(ObsEventKind kind);
std::optional<ObsEventKind> obs_event_kind_from_name(std::string_view name);

struct DecisionEvent {
  Time time = 0.0;
  JobId job = kInvalidJob;
  ObsEventKind kind = ObsEventKind::kArrival;
  /// Machine-checkable slug ("window-full", "not-delta-good", "stale", ...);
  /// empty for plain lifecycle events.
  std::string reason;
  /// Numeric facts behind the decision, e.g. {{"v", 1.5}, {"n", 2}}.
  std::vector<std::pair<std::string, double>> detail;

  double detail_value(std::string_view key, double fallback = 0.0) const;

  friend bool operator==(const DecisionEvent& lhs, const DecisionEvent& rhs) {
    return lhs.time == rhs.time && lhs.job == rhs.job &&
           lhs.kind == rhs.kind && lhs.reason == rhs.reason &&
           lhs.detail == rhs.detail;
  }
};

/// Writes one event as a compact JSON object followed by '\n'.  Both
/// EventLog::write_jsonl and the streaming path below go through this, so
/// a streamed log is byte-identical to a write-at-end one.
void write_event_jsonl(std::ostream& out, const DecisionEvent& event);

class EventLog {
 public:
  void emit(Time time, JobId job, ObsEventKind kind, std::string reason = {},
            std::vector<std::pair<std::string, double>> detail = {}) {
    events_.push_back(
        {time, job, kind, std::move(reason), std::move(detail)});
    if (stream_ != nullptr) write_event_jsonl(*stream_, events_.back());
  }

  /// Streaming mode: every emit() additionally appends its JSONL line to
  /// `out` immediately, so a killed process loses at most the OS-buffered
  /// tail instead of the whole log.  Pass nullptr to detach.  The in-memory
  /// vector is still kept (reports and crash dumps read it).
  void stream_to(std::ostream* out) { stream_ = out; }
  std::ostream* stream() const { return stream_; }

  const std::vector<DecisionEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// One compact JSON object per line:
  ///   {"t":3,"job":17,"kind":"drop","reason":"stale","detail":{"v":1.5}}
  void write_jsonl(std::ostream& out) const;

  /// Parses a JSONL stream produced by write_jsonl.  Returns std::nullopt
  /// (with a message in `error` if non-null) on the first malformed line.
  static std::optional<std::vector<DecisionEvent>> parse_jsonl(
      std::istream& in, std::string* error = nullptr);

 private:
  std::vector<DecisionEvent> events_;
  std::ostream* stream_ = nullptr;
};

}  // namespace dagsched
