// Crash-time flushing of the decision-event log.
//
// DS_CHECK failures abort the process, which would normally lose the
// in-memory EventLog and with it the decision history that led to the
// violation.  CrashDumpGuard installs a check-failure hook (util/check.h)
// that, on the first DS_CHECK violation, appends a final `engine-abort`
// event (reason "ds-check", detail-free; the failure text goes in the
// event's reason slug's sibling file on stderr) and writes the whole log as
// JSONL to a path chosen at construction.  If the log is streaming
// (EventLog::stream_to) the guard instead flushes the stream, truncates any
// partial trailing record so the file ends on a complete line, and appends
// only the abort event.  The guard restores the previous hook on
// destruction, so scopes nest.
//
// The hook runs between the failure message being printed and std::abort;
// it must not allocate unboundedly or throw.  Writing a small JSONL file is
// acceptable: the process is dying anyway, and a partial dump beats none.
#pragma once

#include <string>

#include "obs/event_log.h"
#include "util/check.h"
#include "util/types.h"

namespace dagsched {

class CrashDumpGuard {
 public:
  /// On DS_CHECK failure, dumps `log` (plus a trailing `engine-abort`
  /// event) to `path`.  `log` must outlive the guard.
  CrashDumpGuard(EventLog* log, std::string path);
  ~CrashDumpGuard();

  CrashDumpGuard(const CrashDumpGuard&) = delete;
  CrashDumpGuard& operator=(const CrashDumpGuard&) = delete;

  const std::string& path() const { return path_; }

 private:
  void dump(const std::string& message);

  EventLog* log_;
  std::string path_;
  CheckFailureHook previous_;
};

}  // namespace dagsched
