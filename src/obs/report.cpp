#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "obs/telemetry/telemetry.h"
#include "util/check.h"

namespace dagsched {

namespace {

JsonValue sample_set_summary(const SampleSet& samples) {
  JsonValue out = JsonValue::object();
  out.set("count", JsonValue(samples.count()));
  if (samples.count() > 0) {
    out.set("mean", JsonValue(samples.mean()));
    out.set("p50", JsonValue(samples.median()));
    out.set("p99", JsonValue(samples.quantile(0.99)));
    out.set("max", JsonValue(samples.quantile(1.0)));
  }
  return out;
}

JsonValue histogram_to_json(const Histogram& histogram) {
  JsonValue out = JsonValue::object();
  out.set("count", JsonValue(histogram.count()));
  out.set("sum", JsonValue(histogram.sum()));
  out.set("min", JsonValue(histogram.min()));
  out.set("max", JsonValue(histogram.max()));
  // Sparse bucket encoding: only non-empty buckets, keyed by lower bound.
  JsonValue buckets = JsonValue::object();
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (histogram.buckets()[i] == 0) continue;
    buckets.set(json_number_to_string(Histogram::bucket_lower_bound(i)),
                JsonValue(histogram.buckets()[i]));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

/// Mean number of arrived-but-incomplete jobs per timeline bucket, sampled
/// at bucket midpoints (outcome times are exact, so midpoint sampling is a
/// faithful piecewise-constant summary at bucket resolution).
JsonValue active_jobs_timeline(const JobSet& jobs, const SimResult& result,
                               Time horizon, std::size_t buckets) {
  JsonValue out = JsonValue::array();
  if (!(horizon > 0.0) || buckets == 0) return out;
  const double width = horizon / static_cast<double>(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    const Time t = (static_cast<double>(b) + 0.5) * width;
    std::size_t active = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].release() > t) continue;
      const JobOutcome& outcome = result.outcomes[i];
      if (outcome.completed && outcome.completion_time <= t) continue;
      ++active;
    }
    out.push_back(JsonValue(active));
  }
  return out;
}

}  // namespace

JsonValue spans_to_json(const SpanRegistry& spans) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, stats] : spans.snapshot()) {
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue(stats.count));
    entry.set("total_ns", JsonValue(stats.total_ns));
    entry.set("min_ns", JsonValue(stats.min_ns));
    entry.set("max_ns", JsonValue(stats.max_ns));
    out.set(name, std::move(entry));
  }
  return out;
}

JsonValue build_run_report(const RunReportInputs& inputs) {
  DS_CHECK_MSG(inputs.jobs != nullptr && inputs.result != nullptr,
               "run report requires jobs and result");
  const JobSet& jobs = *inputs.jobs;
  const SimResult& result = *inputs.result;

  JsonValue report = JsonValue::object();
  report.set("schema", JsonValue(std::string(kRunReportSchema)));

  JsonValue run = JsonValue::object();
  run.set("scheduler", JsonValue(inputs.scheduler));
  run.set("engine", JsonValue(inputs.engine));
  run.set("workload", JsonValue(inputs.workload));
  run.set("m", JsonValue(static_cast<double>(inputs.m)));
  run.set("speed", JsonValue(inputs.speed));
  run.set("jobs", JsonValue(jobs.size()));
  report.set("run", std::move(run));

  JsonValue results = JsonValue::object();
  results.set("profit", JsonValue(result.total_profit));
  results.set("peak_profit", JsonValue(jobs.total_peak_profit()));
  results.set("profit_fraction", JsonValue(profit_fraction(result, jobs)));
  results.set("completed", JsonValue(result.jobs_completed));
  results.set("decisions", JsonValue(result.decisions));
  results.set("node_preemptions", JsonValue(result.node_preemptions));
  results.set("job_preemptions", JsonValue(result.job_preemptions));
  results.set("busy_proc_time", JsonValue(result.busy_proc_time));
  results.set("end_time", JsonValue(result.end_time));
  report.set("results", std::move(results));

  if (inputs.metrics != nullptr) {
    JsonValue metrics = JsonValue::object();
    metrics.set("missed", JsonValue(inputs.metrics->missed));
    metrics.set("flow_time", sample_set_summary(inputs.metrics->flow_time));
    metrics.set("stretch", sample_set_summary(inputs.metrics->stretch));
    metrics.set("lateness", sample_set_summary(inputs.metrics->lateness));
    report.set("metrics", std::move(metrics));
  }

  if (inputs.registry != nullptr) {
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : inputs.registry->counter_values()) {
      counters.set(name, JsonValue(value));
    }
    report.set("counters", std::move(counters));
    JsonValue gauges = JsonValue::object();
    for (const auto& [name, value] : inputs.registry->gauge_values()) {
      gauges.set(name, JsonValue(value));
    }
    report.set("gauges", std::move(gauges));
    JsonValue histograms = JsonValue::object();
    for (const auto& [name, histogram] : inputs.registry->histogram_values()) {
      histograms.set(name, histogram_to_json(*histogram));
    }
    report.set("histograms", std::move(histograms));
  }

  if (inputs.spans != nullptr) {
    report.set("spans", spans_to_json(*inputs.spans));
  }

  if (inputs.telemetry != nullptr) {
    report.set("telemetry", telemetry_to_json(*inputs.telemetry));
  }

  JsonValue timeline = JsonValue::object();
  const Time horizon = result.end_time;
  timeline.set("buckets", JsonValue(inputs.timeline_buckets));
  timeline.set("horizon", JsonValue(horizon));
  JsonValue utilization = JsonValue::array();
  if (!result.trace.empty() && horizon > 0.0 &&
      inputs.timeline_buckets > 0) {
    for (const double value :
         utilization_profile(result.trace, inputs.m, horizon,
                             inputs.timeline_buckets)) {
      utilization.push_back(JsonValue(value));
    }
  }
  timeline.set("utilization", std::move(utilization));
  timeline.set("active_jobs",
               active_jobs_timeline(jobs, result, horizon,
                                    inputs.timeline_buckets));
  report.set("timeline", std::move(timeline));

  if (inputs.events != nullptr) {
    JsonValue events = JsonValue::object();
    events.set("count", JsonValue(inputs.events->size()));
    if (!inputs.events_path.empty()) {
      events.set("path", JsonValue(inputs.events_path));
    }
    JsonValue by_kind = JsonValue::object();
    std::map<std::string, std::size_t> kind_counts;
    for (const DecisionEvent& event : inputs.events->events()) {
      ++kind_counts[obs_event_kind_name(event.kind)];
    }
    for (const auto& [kind, count] : kind_counts) {
      by_kind.set(kind, JsonValue(count));
    }
    events.set("by_kind", std::move(by_kind));
    report.set("events", std::move(events));
  }

  return report;
}

namespace {

std::string fixed(double value, int digits = 4) {
  std::ostringstream out;
  out.precision(digits);
  out << value;
  return out.str();
}

void format_number_object(std::ostream& out, const JsonValue& object,
                          const char* indent) {
  for (const auto& [key, value] : object.members()) {
    out << indent << key << ": ";
    if (value.is_number()) {
      out << fixed(value.as_number(), 6);
    } else {
      value.write(out);
    }
    out << '\n';
  }
}

std::string sparkline(const JsonValue& values, double scale) {
  static const char* kBars[] = {" ", ".", ":", "-", "=", "#", "%", "@"};
  std::string out;
  for (const JsonValue& value : values.items()) {
    const double v = value.is_number() ? value.as_number() : 0.0;
    const double unit = scale > 0.0 ? v / scale : 0.0;
    const auto level = static_cast<std::size_t>(
        std::min(7.0, std::max(0.0, unit * 7.999)));
    out += kBars[level];
  }
  return out;
}

}  // namespace

std::string format_run_report(const JsonValue& report) {
  std::ostringstream out;
  if (const JsonValue* schema = report.find("schema")) {
    out << "report (" << schema->as_string() << ")\n";
  }
  if (const JsonValue* run = report.find("run")) {
    out << "\n[run]\n";
    format_number_object(out, *run, "  ");
  }
  if (const JsonValue* results = report.find("results")) {
    out << "\n[results]\n";
    format_number_object(out, *results, "  ");
  }
  if (const JsonValue* metrics = report.find("metrics")) {
    out << "\n[metrics]\n";
    for (const auto& [key, value] : metrics->members()) {
      if (value.is_object()) {
        out << "  " << key << ":";
        for (const auto& [stat, stat_value] : value.members()) {
          out << ' ' << stat << '='
              << (stat_value.is_number() ? fixed(stat_value.as_number())
                                         : stat_value.dump());
        }
        out << '\n';
      } else {
        out << "  " << key << ": "
            << (value.is_number() ? fixed(value.as_number()) : value.dump())
            << '\n';
      }
    }
  }
  if (const JsonValue* counters = report.find("counters")) {
    if (counters->size() > 0) {
      out << "\n[counters]\n";
      format_number_object(out, *counters, "  ");
    }
  }
  if (const JsonValue* spans = report.find("spans")) {
    if (spans->size() > 0) {
      out << "\n[spans]\n";
      for (const auto& [name, stats] : spans->members()) {
        const JsonValue* count = stats.find("count");
        const JsonValue* total = stats.find("total_ns");
        out << "  " << name << ": count="
            << (count != nullptr ? json_number_to_string(count->as_number())
                                 : "?")
            << " total="
            << (total != nullptr ? fixed(total->as_number() / 1e6) : "?")
            << "ms\n";
      }
    }
  }
  if (const JsonValue* telemetry = report.find("telemetry")) {
    out << "\n[telemetry]\n";
    for (const char* key : {"decide_ns", "transition_ns", "admission_ns"}) {
      const JsonValue* histogram = telemetry->find(key);
      if (histogram == nullptr || !histogram->is_object()) continue;
      out << "  " << key << ":";
      for (const char* stat : {"count", "p50", "p90", "p99", "p999", "max"}) {
        if (const JsonValue* value = histogram->find(stat)) {
          out << ' ' << stat << '='
              << (value->is_number() ? json_number_to_string(value->as_number())
                                     : value->dump());
        }
      }
      out << '\n';
    }
    if (const JsonValue* gauges = telemetry->find("gauges")) {
      out << "  gauges:";
      for (const auto& [key, value] : gauges->members()) {
        out << ' ' << key << '='
            << (value.is_number() ? fixed(value.as_number(), 6)
                                  : value.dump());
      }
      out << '\n';
    }
  }
  if (const JsonValue* events = report.find("events")) {
    out << "\n[events]\n";
    format_number_object(out, *events, "  ");
  }
  if (const JsonValue* timeline = report.find("timeline")) {
    const JsonValue* utilization = timeline->find("utilization");
    const JsonValue* horizon = timeline->find("horizon");
    if (utilization != nullptr && utilization->size() > 0) {
      out << "\n[timeline]\n  utilization: ["
          << sparkline(*utilization, 1.0) << "] over [0, "
          << (horizon != nullptr ? json_number_to_string(horizon->as_number())
                                 : "?")
          << ")\n";
    }
    const JsonValue* active = timeline->find("active_jobs");
    if (active != nullptr && active->size() > 0) {
      double peak = 0.0;
      for (const JsonValue& value : active->items()) {
        peak = std::max(peak, value.as_number());
      }
      out << "  active jobs: [" << sparkline(*active, peak)
          << "] peak " << json_number_to_string(peak) << '\n';
    }
  }
  return out.str();
}

std::string format_bench_report(const JsonValue& report) {
  std::ostringstream out;
  if (const JsonValue* schema = report.find("schema")) {
    out << "bench report (" << schema->as_string() << ")";
  } else {
    out << "bench report";
  }
  if (const JsonValue* bench = report.find("bench")) {
    out << ": " << bench->as_string();
  }
  out << "\n";
  const JsonValue* measurements = report.find("measurements");
  if (measurements != nullptr && measurements->is_array()) {
    out << "\n[measurements]\n";
    for (const JsonValue& entry : measurements->items()) {
      const JsonValue* name = entry.find("name");
      const JsonValue* real = entry.find("real_time_ns");
      const JsonValue* iterations = entry.find("iterations");
      const JsonValue* aggregate = entry.find("aggregate");
      out << "  " << (name != nullptr ? name->as_string() : "?") << ": ";
      if (real != nullptr && real->is_number()) {
        const double ns = real->as_number();
        if (ns >= 1e6) {
          out << fixed(ns / 1e6) << " ms";
        } else if (ns >= 1e3) {
          out << fixed(ns / 1e3) << " us";
        } else {
          out << fixed(ns) << " ns";
        }
      } else {
        out << "?";
      }
      if (iterations != nullptr && iterations->is_number()) {
        out << " x" << json_number_to_string(iterations->as_number());
      }
      if (aggregate != nullptr && aggregate->is_bool() &&
          aggregate->as_bool()) {
        out << " (aggregate)";
      }
      if (const JsonValue* counters = entry.find("counters")) {
        for (const auto& [key, value] : counters->members()) {
          out << "  " << key << '='
              << (value.is_number() ? json_number_to_string(value.as_number())
                                    : value.dump());
        }
      }
      out << '\n';
    }
  }
  if (const JsonValue* spans = report.find("spans")) {
    if (spans->size() > 0) {
      out << "\n[spans]\n";
      for (const auto& [name, stats] : spans->members()) {
        const JsonValue* count = stats.find("count");
        const JsonValue* total = stats.find("total_ns");
        out << "  " << name << ": count="
            << (count != nullptr ? json_number_to_string(count->as_number())
                                 : "?")
            << " total="
            << (total != nullptr ? fixed(total->as_number() / 1e6) : "?")
            << "ms\n";
      }
    }
  }
  return out.str();
}

JsonValue build_bench_report(std::string_view bench_name,
                             const std::vector<BenchMeasurement>& runs,
                             const SpanRegistry* spans) {
  JsonValue report = JsonValue::object();
  report.set("schema", JsonValue(std::string(kBenchReportSchema)));
  report.set("bench", JsonValue(std::string(bench_name)));
  JsonValue measurements = JsonValue::array();
  for (const BenchMeasurement& run : runs) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue(run.name));
    entry.set("real_time_ns", JsonValue(run.real_time_ns));
    entry.set("cpu_time_ns", JsonValue(run.cpu_time_ns));
    entry.set("iterations", JsonValue(run.iterations));
    entry.set("aggregate", JsonValue(run.aggregate));
    if (!run.counters.empty()) {
      JsonValue counters = JsonValue::object();
      for (const auto& [name, value] : run.counters) {
        counters.set(name, JsonValue(value));
      }
      entry.set("counters", std::move(counters));
    }
    measurements.push_back(std::move(entry));
  }
  report.set("measurements", std::move(measurements));
  if (spans != nullptr) report.set("spans", spans_to_json(*spans));
  return report;
}

}  // namespace dagsched
