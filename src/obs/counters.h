// Low-overhead counter/gauge/histogram registry for run instrumentation.
//
// A MetricRegistry is owned by whoever drives a run (the CLI, a bench, a
// test) and handed to engines/schedulers through ObsSink (obs/sink.h).
// Instruments are registered on first use and live for the registry's
// lifetime, so hot paths resolve a name once and then touch a pointer:
//
//   Counter* decisions = registry.counter("engine.decisions");
//   ...
//   DS_OBS_ADD(decisions, 1.0);     // no-op when the pointer is null
//
// The registry is deliberately not thread-safe: the simulation engines are
// single-threaded per run, and parallel trial runners own one registry per
// trial.  All instrumentation macros compile to nothing when
// DAGSCHED_OBS_ENABLED is defined to 0, so a build can prove the layer has
// zero cost.  The counter catalog lives in docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dagsched {

/// Monotonically accumulating value (events, work, seconds).  Doubles so
/// time-like quantities (idle processor-time) share the type.
class Counter {
 public:
  void add(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-layout power-of-two histogram plus streaming count/sum/min/max.
/// Bucket i covers [2^(i-kBucketBias), 2^(i+1-kBucketBias)); values <= 0 or
/// below the smallest bound land in bucket 0, values beyond the largest in
/// the final bucket.  Good enough for dt distributions and queue depths
/// without per-observation allocation.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 40;
  static constexpr int kBucketBias = 20;  // bucket 0 starts at 2^-20

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  const std::uint64_t* buckets() const { return buckets_; }
  /// Lower bound of bucket `i` (2^(i-kBucketBias)).
  static double bucket_lower_bound(std::size_t i);

  void reset();

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kNumBuckets] = {};
};

/// Name -> instrument registry.  Instruments have stable addresses (deque
/// storage); reset() zeroes every instrument but keeps registrations so
/// resolved pointers stay valid across runs.
class MetricRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Snapshots, sorted by name (deterministic report output).
  std::vector<std::pair<std::string, double>> counter_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histogram_values()
      const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes all instruments; registrations (and pointers) survive.
  void reset();

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*, std::less<>> counter_index_;
  std::map<std::string, Gauge*, std::less<>> gauge_index_;
  std::map<std::string, Histogram*, std::less<>> histogram_index_;
};

#ifndef DAGSCHED_OBS_ENABLED
#define DAGSCHED_OBS_ENABLED 1
#endif

#if DAGSCHED_OBS_ENABLED
/// Adds `delta` to a possibly-null Counter*.
#define DS_OBS_ADD(counter_ptr, delta)                         \
  do {                                                         \
    if ((counter_ptr) != nullptr) (counter_ptr)->add(delta);   \
  } while (0)
/// Increments a possibly-null Counter* by one.
#define DS_OBS_INC(counter_ptr) DS_OBS_ADD(counter_ptr, 1.0)
/// Records `value` into a possibly-null Histogram*.
#define DS_OBS_OBSERVE(hist_ptr, value)                          \
  do {                                                           \
    if ((hist_ptr) != nullptr) (hist_ptr)->observe(value);       \
  } while (0)
#else
#define DS_OBS_ADD(counter_ptr, delta) \
  do {                                 \
  } while (0)
#define DS_OBS_INC(counter_ptr) \
  do {                          \
  } while (0)
#define DS_OBS_OBSERVE(hist_ptr, value) \
  do {                                  \
  } while (0)
#endif

}  // namespace dagsched
