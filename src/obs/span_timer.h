// Scoped wall-clock span timers for engine phases and bench hot loops.
//
// A SpanRegistry aggregates named spans (count, total, min, max wall time);
// ScopedSpan is the RAII recorder.  Passing a null registry makes the span
// free: no clock is read, so instrumented code paths cost two pointer
// compares when observability is off.  Like MetricRegistry, a SpanRegistry
// is single-threaded by design -- one per run.
//
//   SpanRegistry spans;
//   {
//     DS_OBS_SPAN(&spans, "engine.run");
//     ...
//   }
//   spans.snapshot();  // -> [{"engine.run", {count, total_ns, ...}}]
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dagsched {

struct SpanStats {
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;

  double mean_ns() const {
    return count > 0 ? total_ns / static_cast<double>(count) : 0.0;
  }

  void record(double ns) {
    if (count == 0) {
      min_ns = ns;
      max_ns = ns;
    } else {
      if (ns < min_ns) min_ns = ns;
      if (ns > max_ns) max_ns = ns;
    }
    ++count;
    total_ns += ns;
  }
};

class SpanRegistry {
 public:
  /// Stable pointer to the named span's stats (registered on first use).
  SpanStats* span(std::string_view name);

  /// Name-sorted snapshot for reports.
  std::vector<std::pair<std::string, SpanStats>> snapshot() const;

  std::size_t size() const { return index_.size(); }
  void reset();

 private:
  std::deque<SpanStats> stats_;
  std::map<std::string, SpanStats*, std::less<>> index_;
};

/// RAII span recorder.  Null-registry construction reads no clock.
class ScopedSpan {
 public:
  ScopedSpan(SpanRegistry* registry, std::string_view name)
      : stats_(registry != nullptr ? registry->span(name) : nullptr) {
    if (stats_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  /// Pre-resolved variant for hot loops (resolve once, time many).
  explicit ScopedSpan(SpanStats* stats) : stats_(stats) {
    if (stats_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (stats_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    stats_->record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  SpanStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

#ifndef DAGSCHED_OBS_ENABLED
#define DAGSCHED_OBS_ENABLED 1
#endif

#if DAGSCHED_OBS_ENABLED
#define DS_OBS_SPAN_CONCAT2(a, b) a##b
#define DS_OBS_SPAN_CONCAT(a, b) DS_OBS_SPAN_CONCAT2(a, b)
/// Times the enclosing scope under `name` in `registry` (null-safe).
#define DS_OBS_SPAN(registry, name)                 \
  ::dagsched::ScopedSpan DS_OBS_SPAN_CONCAT(        \
      ds_obs_span_, __LINE__)((registry), (name))
#else
#define DS_OBS_SPAN(registry, name) \
  do {                              \
  } while (0)
#endif

}  // namespace dagsched
