#include "obs/span_timer.h"

namespace dagsched {

SpanStats* SpanRegistry::span(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  stats_.emplace_back();
  SpanStats* stats = &stats_.back();
  index_.emplace(std::string(name), stats);
  return stats;
}

std::vector<std::pair<std::string, SpanStats>> SpanRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, SpanStats>> out;
  out.reserve(index_.size());
  for (const auto& [name, stats] : index_) out.emplace_back(name, *stats);
  return out;
}

void SpanRegistry::reset() {
  for (SpanStats& stats : stats_) stats = SpanStats{};
}

}  // namespace dagsched
