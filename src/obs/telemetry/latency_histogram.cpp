#include "obs/telemetry/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>

namespace dagsched {

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < kSubCount) return static_cast<std::size_t>(ns);
  // Octave = position of the most significant bit; keep the next kSubBits
  // bits as the linear sub-bucket.
  const int msb = static_cast<int>(std::bit_width(ns)) - 1;  // >= kSubBits
  const int shift = msb - kSubBits;                 // >= 0
  const auto sub = static_cast<std::size_t>((ns >> shift) & (kSubCount - 1));
  return (static_cast<std::size_t>(shift) + 1) * kSubCount + sub;
}

std::uint64_t LatencyHistogram::bucket_lower_bound(std::size_t i) {
  if (i < kSubCount) return i;
  const std::size_t shift = i / kSubCount - 1;
  const std::uint64_t sub = i % kSubCount;
  return (kSubCount + sub) << shift;
}

void LatencyHistogram::record(std::uint64_t ns) {
  if (count_ == 0) {
    min_ = ns;
    max_ = ns;
  } else {
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }
  ++count_;
  sum_ += static_cast<double>(ns);
  if (ns >= kMaxTrackedNs) {
    ++overflow_;
  } else {
    ++buckets_[bucket_index(ns)];
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

std::uint64_t LatencyHistogram::percentile_ns(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based: the smallest r with
  // r >= q * count (and at least 1), the standard nearest-rank definition
  // the exact-sample tests compare against.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper edge of the bucket (inclusive): never under-reports, and
      // over-reports by at most the bucket width <= value / 2^kSubBits.
      const std::uint64_t next = i + 1 < kNumBuckets
                                     ? bucket_lower_bound(i + 1)
                                     : kMaxTrackedNs;
      return std::min(next - 1, max_);
    }
  }
  return max_;  // rank falls in the overflow bucket
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

bool operator==(const LatencyHistogram& lhs, const LatencyHistogram& rhs) {
  if (lhs.count_ != rhs.count_ || lhs.overflow_ != rhs.overflow_ ||
      lhs.sum_ != rhs.sum_ || lhs.min_ != rhs.min_ || lhs.max_ != rhs.max_) {
    return false;
  }
  return std::equal(std::begin(lhs.buckets_), std::end(lhs.buckets_),
                    std::begin(rhs.buckets_));
}

}  // namespace dagsched
