// Runtime telemetry: scheduler-overhead histograms, periodic JSONL
// snapshots, and bytes/job memory accounting.
//
// The PR-1 obs stack records *what happened* (counters, decision events);
// this layer records *how fast and how big the scheduler itself is over
// time* -- the overhead distributions production DAG schedulers (DAGPS) and
// the simulator-survey literature treat as primary outputs, and the
// prerequisite for the ROADMAP's `dagsched serve` p99-decide gate and the
// million-job bytes/job budgets.
//
// A TelemetryRecorder is owned by whoever drives a run (CLI, bench, test)
// and handed to the SimKernel through KernelOptions::telemetry (nullptr =
// off, the default -- the kernel then takes exactly the seed code path and
// decision logs stay byte-identical; scripts/decision_parity.sh proves the
// enabled path changes nothing either).  The kernel feeds it:
//
//   * per-decide() wall cost        -> decide_histogram()
//   * per-transition-delivery cost  -> transition_histogram()
//   * per-arrival admission cost    -> admission_histogram()
//     (UnfoldingState construction + scheduler on_arrival)
//
// and, at every decision point, offers a snapshot opportunity.  When a
// snapshot is due (simulated-time or wall-clock interval) the kernel fills
// a TelemetrySample with its live gauges and the recorder appends one
// versioned "dagsched.telemetry/1" JSON object to the output stream -- a
// streaming time-series consumable mid-run (`dagsched top out.jsonl`).
// A final snapshot is always emitted at kernel finish().
//
// Timing uses std::chrono::steady_clock read pairs around the measured
// region; each record_*_since() reads the clock once and doubles as the
// wall-interval check, so an enabled run pays two clock reads per decision
// and one per arrival/transition batch.  Like the rest of the obs layer
// the recorder is single-threaded: one per run.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry/latency_histogram.h"
#include "util/json.h"

namespace dagsched {

inline constexpr std::string_view kTelemetrySchema = "dagsched.telemetry/1";

struct TelemetryOptions {
  /// Snapshot sink (JSONL, one object per line).  Null = histograms only:
  /// benches use this mode to extract decide_p99_ns without any I/O.
  std::ostream* out = nullptr;
  /// Emit a snapshot every `sim_interval` simulated time units (0 = off).
  double sim_interval = 0.0;
  /// Emit a snapshot every `wall_interval_ns` wall nanoseconds (0 = off).
  /// Both intervals 0 with `out` set = only the final snapshot.
  std::uint64_t wall_interval_ns = 0;
  /// Include the process RSS gauge (reads /proc/self/statm; 0 where
  /// unavailable).  Off for deterministic-output tests.
  bool include_rss = true;
};

/// Live gauges the kernel samples at a snapshot point.  All byte figures
/// are container *capacities* (allocated, not live) -- the quantity the
/// million-job memory budget constrains.
struct TelemetrySample {
  double sim_time = 0.0;
  bool final_snapshot = false;

  std::uint64_t decisions = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t expiries = 0;
  std::uint64_t transitions = 0;

  std::size_t jobs_in_flight = 0;  // arrived, not yet completed
  std::size_t jobs_total = 0;
  std::size_t queue_depth = 0;  // scheduler-reported queued jobs

  std::size_t kernel_bytes = 0;     // kernel bookkeeping containers
  std::size_t unfolding_bytes = 0;  // all live UnfoldingState arenas
  std::size_t scheduler_bytes = 0;  // scheduler-reported queue/state bytes
};

class TelemetryRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TelemetryRecorder(TelemetryOptions options = {});

  /// Called by the kernel at begin(): stamps the wall-clock origin and the
  /// rate/interval baselines.  Histograms are NOT reset -- a bench reusing
  /// one recorder across iterations accumulates; callers wanting a fresh
  /// distribution construct a fresh recorder (or call reset()).
  void begin_run(double sim_start);

  // -- Hot-path recording (one Clock::now() read each) ----------------------
  void record_decide_since(Clock::time_point start) {
    record_into(decide_, start);
  }
  void record_transition_since(Clock::time_point start) {
    record_into(transition_, start);
  }
  void record_admission_since(Clock::time_point start) {
    record_into(admission_, start);
  }

  /// Whether a periodic snapshot is due at simulated time `sim_now`.  Wall
  /// deadlines are evaluated against the timestamp of the latest
  /// record_*_since() call, so this reads no clock.
  bool snapshot_due(double sim_now) const {
    if (options_.out == nullptr) return false;
    if (options_.sim_interval > 0.0 && sim_now >= next_sim_emit_) return true;
    return options_.wall_interval_ns > 0 &&
           wall_ns(last_event_) >= next_wall_emit_ns_;
  }

  /// Appends one schema-versioned JSONL snapshot and advances the interval
  /// deadlines.  Also retained as last_sample() for the run-report section.
  void emit_snapshot(const TelemetrySample& sample);

  /// Emits the final snapshot (always, interval regardless) when a sink is
  /// attached; retains the sample either way.
  void finish_run(TelemetrySample sample);

  // -- Introspection ---------------------------------------------------------
  const LatencyHistogram& decide_histogram() const { return decide_; }
  const LatencyHistogram& transition_histogram() const { return transition_; }
  const LatencyHistogram& admission_histogram() const { return admission_; }
  std::size_t snapshots_emitted() const { return seq_; }
  bool has_sample() const { return last_sample_.has_value(); }
  const TelemetrySample& last_sample() const { return *last_sample_; }

  /// Zeroes histograms and snapshot bookkeeping (the sink stays attached).
  void reset();

 private:
  void record_into(LatencyHistogram& histogram, Clock::time_point start) {
    const Clock::time_point now = Clock::now();
    histogram.record(static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
               .count())));
    last_event_ = now;
  }
  std::uint64_t wall_ns(Clock::time_point t) const {
    return static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, std::chrono::duration_cast<std::chrono::nanoseconds>(t - run_start_)
               .count()));
  }
  JsonValue build_snapshot(const TelemetrySample& sample,
                           std::uint64_t now_ns);

  TelemetryOptions options_;
  LatencyHistogram decide_;
  LatencyHistogram transition_;
  LatencyHistogram admission_;

  Clock::time_point run_start_{};
  Clock::time_point last_event_{};
  double next_sim_emit_ = 0.0;
  std::uint64_t next_wall_emit_ns_ = 0;
  std::size_t seq_ = 0;
  // Rate baseline: the previous snapshot's event totals and wall time.
  std::uint64_t prev_events_ = 0;
  std::uint64_t prev_wall_ns_ = 0;
  std::optional<TelemetrySample> last_sample_;
};

/// Encodes one LatencyHistogram as the summary object used in snapshots
/// and run reports: count/overflow/min/mean/max plus p50/p90/p99/p999.
JsonValue latency_histogram_to_json(const LatencyHistogram& histogram);

/// The run-report "telemetry" section: the three overhead histograms plus
/// the final sample's gauges (bytes/job, queue depth, jobs in flight).
JsonValue telemetry_to_json(const TelemetryRecorder& recorder);

/// Parses a dagsched.telemetry/1 JSONL stream back into one JsonValue per
/// snapshot (`dagsched top`, tests).  Rejects the first malformed or
/// wrong-schema line with a `line N:` positioned message.
std::optional<std::vector<JsonValue>> parse_telemetry_jsonl(
    std::istream& in, std::string* error = nullptr);

/// Current process resident-set size in bytes (/proc/self/statm); 0 when
/// unavailable.
std::size_t read_rss_bytes();

}  // namespace dagsched
