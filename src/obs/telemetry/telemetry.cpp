#include "obs/telemetry/telemetry.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <unistd.h>

namespace dagsched {

TelemetryRecorder::TelemetryRecorder(TelemetryOptions options)
    : options_(options) {}

void TelemetryRecorder::begin_run(double sim_start) {
  run_start_ = Clock::now();
  last_event_ = run_start_;
  next_sim_emit_ = sim_start + options_.sim_interval;
  next_wall_emit_ns_ = options_.wall_interval_ns;
  prev_events_ = 0;
  prev_wall_ns_ = 0;
}

namespace {

std::uint64_t total_events(const TelemetrySample& s) {
  return s.decisions + s.arrivals + s.completions + s.expiries +
         s.transitions;
}

}  // namespace

JsonValue TelemetryRecorder::build_snapshot(const TelemetrySample& sample,
                                            std::uint64_t now_ns) {
  JsonValue snap = JsonValue::object();
  snap.set("schema", std::string(kTelemetrySchema));
  snap.set("seq", static_cast<std::uint64_t>(seq_));
  snap.set("final", sample.final_snapshot);
  snap.set("sim_time", sample.sim_time);
  snap.set("wall_ms", static_cast<double>(now_ns) / 1e6);

  JsonValue counters = JsonValue::object();
  counters.set("decisions", sample.decisions);
  counters.set("arrivals", sample.arrivals);
  counters.set("completions", sample.completions);
  counters.set("expiries", sample.expiries);
  counters.set("transitions", sample.transitions);
  snap.set("counters", std::move(counters));

  const std::size_t tracked_bytes =
      sample.kernel_bytes + sample.unfolding_bytes + sample.scheduler_bytes;
  JsonValue gauges = JsonValue::object();
  gauges.set("jobs_in_flight", static_cast<std::uint64_t>(sample.jobs_in_flight));
  gauges.set("jobs_total", static_cast<std::uint64_t>(sample.jobs_total));
  gauges.set("queue_depth", static_cast<std::uint64_t>(sample.queue_depth));
  gauges.set("kernel_bytes", static_cast<std::uint64_t>(sample.kernel_bytes));
  gauges.set("unfolding_bytes",
             static_cast<std::uint64_t>(sample.unfolding_bytes));
  gauges.set("scheduler_bytes",
             static_cast<std::uint64_t>(sample.scheduler_bytes));
  gauges.set("tracked_bytes", static_cast<std::uint64_t>(tracked_bytes));
  gauges.set("bytes_per_job",
             static_cast<double>(tracked_bytes) /
                 static_cast<double>(std::max<std::uint64_t>(1, sample.arrivals)));
  gauges.set("rss_bytes", static_cast<std::uint64_t>(
                              options_.include_rss ? read_rss_bytes() : 0));
  snap.set("gauges", std::move(gauges));

  // Rates over the window since the previous snapshot (whole run for the
  // first one).  Sub-microsecond windows are reported as 0 rather than as
  // astronomically extrapolated rates.
  const std::uint64_t events = total_events(sample);
  const std::uint64_t window_ns = now_ns - prev_wall_ns_;
  JsonValue rates = JsonValue::object();
  if (window_ns >= 1000) {
    const double secs = static_cast<double>(window_ns) / 1e9;
    rates.set("events_per_sec",
              static_cast<double>(events - prev_events_) / secs);
    rates.set("decisions_per_sec",
              static_cast<double>(decide_.count()) /
                  (static_cast<double>(now_ns) / 1e9));
  } else {
    rates.set("events_per_sec", 0.0);
    rates.set("decisions_per_sec", 0.0);
  }
  snap.set("rates", std::move(rates));

  snap.set("decide_ns", latency_histogram_to_json(decide_));
  snap.set("transition_ns", latency_histogram_to_json(transition_));
  snap.set("admission_ns", latency_histogram_to_json(admission_));

  prev_events_ = events;
  prev_wall_ns_ = now_ns;
  return snap;
}

void TelemetryRecorder::emit_snapshot(const TelemetrySample& sample) {
  last_sample_ = sample;
  if (options_.out == nullptr) return;
  const std::uint64_t now_ns = wall_ns(Clock::now());
  JsonValue snap = build_snapshot(sample, now_ns);
  snap.write(*options_.out);
  *options_.out << '\n';
  ++seq_;
  // Advance deadlines past `now` so a burst of due checks emits once.
  if (options_.sim_interval > 0.0) {
    while (next_sim_emit_ <= sample.sim_time) {
      next_sim_emit_ += options_.sim_interval;
    }
  }
  if (options_.wall_interval_ns > 0) {
    while (next_wall_emit_ns_ <= now_ns) {
      next_wall_emit_ns_ += options_.wall_interval_ns;
    }
  }
}

void TelemetryRecorder::finish_run(TelemetrySample sample) {
  sample.final_snapshot = true;
  emit_snapshot(sample);
  if (options_.out != nullptr) options_.out->flush();
}

void TelemetryRecorder::reset() {
  decide_.reset();
  transition_.reset();
  admission_.reset();
  seq_ = 0;
  prev_events_ = 0;
  prev_wall_ns_ = 0;
  last_sample_.reset();
}

JsonValue latency_histogram_to_json(const LatencyHistogram& histogram) {
  JsonValue out = JsonValue::object();
  out.set("count", histogram.count());
  out.set("overflow", histogram.overflow_count());
  out.set("min", histogram.min_ns());
  out.set("mean", histogram.mean_ns());
  out.set("max", histogram.max_ns());
  out.set("p50", histogram.percentile_ns(0.50));
  out.set("p90", histogram.percentile_ns(0.90));
  out.set("p99", histogram.percentile_ns(0.99));
  out.set("p999", histogram.percentile_ns(0.999));
  return out;
}

JsonValue telemetry_to_json(const TelemetryRecorder& recorder) {
  JsonValue out = JsonValue::object();
  out.set("decide_ns", latency_histogram_to_json(recorder.decide_histogram()));
  out.set("transition_ns",
          latency_histogram_to_json(recorder.transition_histogram()));
  out.set("admission_ns",
          latency_histogram_to_json(recorder.admission_histogram()));
  out.set("snapshots", static_cast<std::uint64_t>(recorder.snapshots_emitted()));
  if (recorder.has_sample()) {
    const TelemetrySample& s = recorder.last_sample();
    const std::size_t tracked =
        s.kernel_bytes + s.unfolding_bytes + s.scheduler_bytes;
    JsonValue gauges = JsonValue::object();
    gauges.set("jobs_in_flight", static_cast<std::uint64_t>(s.jobs_in_flight));
    gauges.set("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
    gauges.set("kernel_bytes", static_cast<std::uint64_t>(s.kernel_bytes));
    gauges.set("unfolding_bytes",
               static_cast<std::uint64_t>(s.unfolding_bytes));
    gauges.set("scheduler_bytes",
               static_cast<std::uint64_t>(s.scheduler_bytes));
    gauges.set("tracked_bytes", static_cast<std::uint64_t>(tracked));
    gauges.set("bytes_per_job",
               static_cast<double>(tracked) /
                   static_cast<double>(std::max<std::uint64_t>(1, s.arrivals)));
    out.set("gauges", std::move(gauges));
  }
  return out;
}

std::optional<std::vector<JsonValue>> parse_telemetry_jsonl(
    std::istream& in, std::string* error) {
  std::vector<JsonValue> snapshots;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonParseResult parsed = json_parse(line);
    if (!parsed.ok) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + parsed.error;
      }
      return std::nullopt;
    }
    const JsonValue* schema = parsed.value.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != kTelemetrySchema) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": missing or unsupported schema (want " +
                 std::string(kTelemetrySchema) + ")";
      }
      return std::nullopt;
    }
    snapshots.push_back(std::move(parsed.value));
  }
  return snapshots;
}

std::size_t read_rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::size_t total_pages = 0;
  std::size_t rss_pages = 0;
  if (!(statm >> total_pages >> rss_pages)) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<std::size_t>(page > 0 ? page : 4096);
}

}  // namespace dagsched
