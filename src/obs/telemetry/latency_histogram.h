// LatencyHistogram: fixed-memory, log-bucketed (HDR-style) latency recorder.
//
// The runtime-telemetry layer needs per-decide() / per-transition /
// per-arrival wall-cost distributions on runs with 10^5..10^6 observations,
// so per-sample storage (SampleSet) is out: this histogram is a fixed 8 KiB
// array of power-of-two octaves, each split into 2^kSubBits linear
// sub-buckets, the bucketing scheme of HdrHistogram and production DAG
// schedulers' overhead telemetry (DAGPS reports scheduler-latency
// distributions the same way).
//
// Guarantees, all covered by tests/test_telemetry.cpp:
//   * values below 2^kSubBits ns are recorded exactly;
//   * any reported percentile P satisfies
//       exact <= P <= exact * (1 + 2^-kSubBits) + 1
//     against the true (sorted-sample) percentile;
//   * merge() is exact bucket-wise addition, so merging is associative and
//     order-independent (shard-and-merge safe);
//   * values at or above kMaxTrackedNs land in a dedicated overflow bucket
//     (counted, included in percentile ranks; reported as max()).
//
// Single-threaded like the rest of the obs layer: one recorder per run.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dagsched {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave, i.e.
  /// a worst-case relative quantization error of 1/32 ~ 3.1%.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  /// Largest tracked value, exclusive: 2^36 ns ~ 69 s.  Anything slower is
  /// not a latency any gate cares about distinguishing; it lands in the
  /// overflow bucket.
  static constexpr int kMaxExponent = 36;
  /// Octave 0 covers [0, 2^kSubBits) exactly with kSubCount unit buckets;
  /// octaves 1..(kMaxExponent - kSubBits) each contribute kSubCount buckets
  /// (the top octave's last bucket ends exactly at kMaxTrackedNs).
  static constexpr std::size_t kNumBuckets =
      (kMaxExponent - kSubBits + 1) * kSubCount;

  void record(std::uint64_t ns);

  /// Exact bucket-wise addition (associative, commutative).
  void merge(const LatencyHistogram& other);

  /// Value at quantile q in [0, 1]: the upper edge of the bucket holding
  /// the rank-ceil(q*count) observation (see the error bound above).
  /// Returns 0 when empty; returns max() when the rank falls in the
  /// overflow bucket.
  std::uint64_t percentile_ns(double q) const;

  std::uint64_t count() const { return count_; }
  std::uint64_t overflow_count() const { return overflow_; }
  double sum_ns() const { return sum_; }
  double mean_ns() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::uint64_t min_ns() const { return count_ > 0 ? min_ : 0; }
  std::uint64_t max_ns() const { return count_ > 0 ? max_ : 0; }
  const std::uint64_t* buckets() const { return buckets_; }

  /// Inclusive lower bound of bucket `i`.
  static std::uint64_t bucket_lower_bound(std::size_t i);
  /// Index of the bucket covering `ns` (ns must be < kMaxTrackedNs).
  static std::size_t bucket_index(std::uint64_t ns);
  static constexpr std::uint64_t kMaxTrackedNs = 1ull << kMaxExponent;

  void reset();

  /// Exact state equality (count/overflow/min/max/sum and every bucket).
  /// Sample values are integral ns, so `sum_` is an exact integer sum below
  /// 2^53 and partition-and-merge equals single-recorder byte-for-byte --
  /// the invariance tests/test_sweep.cpp asserts.
  friend bool operator==(const LatencyHistogram& lhs,
                         const LatencyHistogram& rhs);

 private:
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kNumBuckets] = {};
};

}  // namespace dagsched
