#include "obs/trace_export.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "obs/report.h"
#include "util/check.h"

namespace dagsched {

namespace {

constexpr int kMachinePid = 1;
constexpr int kJobsPid = 2;

double to_micros(Time t) { return t * kTraceMicrosPerTimeUnit; }

JsonValue metadata_event(const char* name, int pid, int tid,
                         std::string value) {
  JsonValue event = JsonValue::object();
  event.set("name", JsonValue(name));
  event.set("ph", JsonValue("M"));
  event.set("pid", JsonValue(pid));
  event.set("tid", JsonValue(tid));
  JsonValue args = JsonValue::object();
  args.set("name", JsonValue(std::move(value)));
  event.set("args", std::move(args));
  return event;
}

struct TimelineEvent {
  double ts = 0.0;
  int order = 0;  // tie-break so begins precede instants precede ends
  JsonValue json;
};

void push_event(std::vector<TimelineEvent>& out, double ts, int order,
                JsonValue json) {
  out.push_back({ts, order, std::move(json)});
}

/// Complete ("X") slice on a machine processor track.
JsonValue exec_slice(const TraceInterval& interval) {
  JsonValue event = JsonValue::object();
  event.set("name", JsonValue("J" + std::to_string(interval.job) + "/N" +
                              std::to_string(interval.node)));
  event.set("cat", JsonValue("exec"));
  event.set("ph", JsonValue("X"));
  event.set("ts", JsonValue(to_micros(interval.start)));
  event.set("dur", JsonValue(to_micros(interval.end - interval.start)));
  event.set("pid", JsonValue(kMachinePid));
  event.set("tid", JsonValue(static_cast<double>(interval.proc)));
  JsonValue args = JsonValue::object();
  args.set("job", JsonValue(static_cast<double>(interval.job)));
  args.set("node", JsonValue(static_cast<double>(interval.node)));
  event.set("args", std::move(args));
  return event;
}

JsonValue async_event(const char* ph, JobId job, Time t, JsonValue args) {
  JsonValue event = JsonValue::object();
  event.set("name", JsonValue("J" + std::to_string(job)));
  event.set("cat", JsonValue("job"));
  event.set("ph", JsonValue(ph));
  event.set("id", JsonValue(static_cast<double>(job)));
  event.set("ts", JsonValue(to_micros(t)));
  event.set("pid", JsonValue(kJobsPid));
  event.set("tid", JsonValue(static_cast<double>(job)));
  if (!args.is_null()) event.set("args", std::move(args));
  return event;
}

/// Instant event; scope "t" (thread) for job/processor-attributed events,
/// "g" (global) for engine-level ones.
JsonValue instant_event(std::string name, const char* cat, const char* scope,
                        int pid, double tid, Time t, JsonValue args) {
  JsonValue event = JsonValue::object();
  event.set("name", JsonValue(std::move(name)));
  event.set("cat", JsonValue(cat));
  event.set("ph", JsonValue("i"));
  event.set("s", JsonValue(scope));
  event.set("ts", JsonValue(to_micros(t)));
  event.set("pid", JsonValue(pid));
  event.set("tid", JsonValue(tid));
  if (!args.is_null()) event.set("args", std::move(args));
  return event;
}

JsonValue detail_args(const DecisionEvent& event) {
  if (event.detail.empty()) return JsonValue();
  JsonValue args = JsonValue::object();
  for (const auto& [key, value] : event.detail) {
    args.set(key, JsonValue(value));
  }
  return args;
}

/// End-of-life per job: completion if completed, first expiry event if the
/// log recorded one, else the end of the run (clamped to the arrival so a
/// job released after an aborted run gets an empty span, not a negative
/// one).
std::vector<Time> job_track_ends(const TraceExportInputs& inputs) {
  const JobSet& jobs = *inputs.jobs;
  const SimResult& result = *inputs.result;
  std::vector<Time> ends(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ends[i] = result.outcomes[i].completed
                  ? result.outcomes[i].completion_time
                  : std::max(jobs[i].release(), result.end_time);
  }
  if (inputs.events != nullptr) {
    for (const DecisionEvent& event : inputs.events->events()) {
      if (event.kind == ObsEventKind::kExpire && event.job < jobs.size() &&
          !result.outcomes[event.job].completed) {
        ends[event.job] = std::min(ends[event.job], event.time);
      }
    }
  }
  return ends;
}

}  // namespace

JsonValue export_chrome_trace(const TraceExportInputs& inputs) {
  DS_CHECK_MSG(inputs.jobs != nullptr && inputs.result != nullptr,
               "trace export requires jobs and result");
  const JobSet& jobs = *inputs.jobs;
  const SimResult& result = *inputs.result;

  std::vector<TimelineEvent> timeline;
  timeline.reserve(result.trace.size() + 2 * jobs.size() +
                   (inputs.events != nullptr ? inputs.events->size() : 0));

  // Machine tracks: coalesce abutting intervals of the same node on the
  // same processor (the slot engine records one interval per slot) so the
  // exported slice count stays proportional to the schedule's structure.
  std::vector<TraceInterval> intervals(result.trace.intervals());
  std::stable_sort(intervals.begin(), intervals.end(),
                   [](const TraceInterval& a, const TraceInterval& b) {
                     if (a.proc != b.proc) return a.proc < b.proc;
                     return a.start < b.start;
                   });
  std::size_t exec_slices = 0;
  for (std::size_t i = 0; i < intervals.size();) {
    TraceInterval merged = intervals[i];
    std::size_t j = i + 1;
    while (j < intervals.size() && intervals[j].proc == merged.proc &&
           intervals[j].job == merged.job &&
           intervals[j].node == merged.node &&
           intervals[j].start <= merged.end + 1e-9) {
      merged.end = std::max(merged.end, intervals[j].end);
      ++j;
    }
    push_event(timeline, to_micros(merged.start), 1, exec_slice(merged));
    ++exec_slices;
    i = j;
  }

  // Job tracks: async begin at arrival, async end at complete/expire/run
  // end.
  const std::vector<Time> ends = job_track_ends(inputs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobId id = static_cast<JobId>(i);
    JsonValue begin_args = JsonValue::object();
    begin_args.set("work", JsonValue(jobs[i].work()));
    begin_args.set("span", JsonValue(jobs[i].span()));
    begin_args.set("peak_profit", JsonValue(jobs[i].peak_profit()));
    if (jobs[i].has_deadline()) {
      begin_args.set("deadline", JsonValue(jobs[i].absolute_deadline()));
    }
    push_event(timeline, to_micros(jobs[i].release()), 0,
               async_event("b", id, jobs[i].release(),
                           std::move(begin_args)));
    JsonValue end_args = JsonValue::object();
    end_args.set("completed", JsonValue(result.outcomes[i].completed));
    end_args.set("profit", JsonValue(result.outcomes[i].profit));
    push_event(timeline, to_micros(ends[i]), 3,
               async_event("e", id, ends[i], std::move(end_args)));
  }

  // Decision / fault instants from the event log.
  if (inputs.events != nullptr) {
    for (const DecisionEvent& event : inputs.events->events()) {
      const char* kind = obs_event_kind_name(event.kind);
      std::string name = event.reason.empty()
                             ? std::string(kind)
                             : std::string(kind) + ":" + event.reason;
      switch (event.kind) {
        case ObsEventKind::kArrival:
        case ObsEventKind::kComplete:
        case ObsEventKind::kExpire:
          // Already represented by the async job span boundaries.
          break;
        case ObsEventKind::kProcDown:
        case ObsEventKind::kProcUp:
          push_event(timeline, to_micros(event.time), 2,
                     instant_event(std::move(name), "fault", "t", kMachinePid,
                                   event.detail_value("proc"), event.time,
                                   detail_args(event)));
          break;
        case ObsEventKind::kEngineAbort:
          push_event(timeline, to_micros(event.time), 2,
                     instant_event(std::move(name), "engine", "g",
                                   kMachinePid, 0.0, event.time,
                                   detail_args(event)));
          break;
        default:
          // Job-attributed decision (admit/defer/drop/schedule/preempt,
          // node-restart, work-overrun, readmit-fail).
          push_event(timeline, to_micros(event.time), 2,
                     instant_event(std::move(name), "decision", "t",
                                   kJobsPid,
                                   static_cast<double>(event.job), event.time,
                                   detail_args(event)));
          break;
      }
    }
  }

  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.order < b.order;
                   });

  JsonValue trace_events = JsonValue::array();
  // Metadata prelude: process and thread names.
  trace_events.push_back(
      metadata_event("process_name", kMachinePid, 0, "machine"));
  trace_events.push_back(metadata_event("process_name", kJobsPid, 0, "jobs"));
  for (ProcCount p = 0; p < inputs.m; ++p) {
    trace_events.push_back(metadata_event("thread_name", kMachinePid,
                                          static_cast<int>(p),
                                          "proc " + std::to_string(p)));
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    trace_events.push_back(metadata_event("thread_name", kJobsPid,
                                          static_cast<int>(i),
                                          "J" + std::to_string(i)));
  }
  for (TimelineEvent& event : timeline) {
    trace_events.push_back(std::move(event.json));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", JsonValue("ms"));
  JsonValue other = JsonValue::object();
  other.set("schema", JsonValue("dagsched.trace_export/1"));
  if (!inputs.label.empty()) other.set("label", JsonValue(inputs.label));
  other.set("m", JsonValue(static_cast<double>(inputs.m)));
  other.set("jobs", JsonValue(jobs.size()));
  other.set("end_time", JsonValue(result.end_time));
  other.set("exec_slices", JsonValue(exec_slices));
  other.set("micros_per_time_unit", JsonValue(kTraceMicrosPerTimeUnit));
  if (inputs.spans != nullptr) {
    // Wall-clock aggregates, not simulation-time events.
    other.set("spans", spans_to_json(*inputs.spans));
  }
  doc.set("otherData", std::move(other));
  return doc;
}

// ---------------------------------------------------------------------------
// Event-log diff
// ---------------------------------------------------------------------------

namespace {

bool is_policy_decision(ObsEventKind kind) {
  switch (kind) {
    case ObsEventKind::kAdmit:
    case ObsEventKind::kDefer:
    case ObsEventKind::kDrop:
    case ObsEventKind::kSchedule:
      return true;
    default:
      return false;
  }
}

std::string describe_event(const DecisionEvent& event, bool with_time) {
  std::ostringstream out;
  if (with_time) out << "t=" << event.time << ' ';
  out << obs_event_kind_name(event.kind);
  if (event.job != kInvalidJob) out << " J" << event.job;
  if (!event.reason.empty()) out << " (" << event.reason << ')';
  return out.str();
}

/// Equality under the chosen mode: policy comparisons ignore timestamps and
/// numeric detail (engines agree on the decision, not on when their clocks
/// delivered it); full comparisons are exact.
bool events_equal(const DecisionEvent& lhs, const DecisionEvent& rhs,
                  bool decisions_only) {
  if (decisions_only) {
    return lhs.kind == rhs.kind && lhs.job == rhs.job &&
           lhs.reason == rhs.reason;
  }
  return lhs == rhs;
}

}  // namespace

EventLogDiff diff_event_logs(const std::vector<DecisionEvent>& lhs,
                             const std::vector<DecisionEvent>& rhs,
                             const EventLogDiffOptions& options) {
  std::vector<const DecisionEvent*> a, b;
  for (const DecisionEvent& event : lhs) {
    if (!options.decisions_only || is_policy_decision(event.kind)) {
      a.push_back(&event);
    }
  }
  for (const DecisionEvent& event : rhs) {
    if (!options.decisions_only || is_policy_decision(event.kind)) {
      b.push_back(&event);
    }
  }

  EventLogDiff diff;
  diff.lhs_events = a.size();
  diff.rhs_events = b.size();

  std::map<std::string, std::pair<std::size_t, std::size_t>> kinds;
  for (const DecisionEvent* event : a) {
    ++kinds[obs_event_kind_name(event->kind)].first;
  }
  for (const DecisionEvent* event : b) {
    ++kinds[obs_event_kind_name(event->kind)].second;
  }
  for (const auto& [kind, counts] : kinds) {
    diff.kind_deltas.push_back({kind, counts.first, counts.second});
  }

  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!events_equal(*a[i], *b[i], options.decisions_only)) {
      diff.first_divergence = i;
      diff.description = "event " + std::to_string(i) + ": " +
                         describe_event(*a[i], !options.decisions_only) +
                         " vs " +
                         describe_event(*b[i], !options.decisions_only);
      return diff;
    }
  }
  if (a.size() == b.size()) return diff;

  // Length mismatch: the longer log continues past the shorter one.
  const auto& longer = a.size() > b.size() ? a : b;
  bool tail_all_drops = true;
  for (std::size_t i = common; i < longer.size(); ++i) {
    if (longer[i]->kind != ObsEventKind::kDrop) {
      tail_all_drops = false;
      break;
    }
  }
  if (options.decisions_only && options.ignore_tail_drops && tail_all_drops) {
    diff.forgiven_tail = longer.size() - common;
    return diff;
  }
  diff.first_divergence = common;
  diff.description =
      (a.size() < b.size() ? "lhs" : "rhs") + std::string(" ends after ") +
      std::to_string(common) + " events; the other continues with " +
      describe_event(*longer[common], !options.decisions_only);
  return diff;
}

std::string format_event_log_diff(const EventLogDiff& diff,
                                  std::string_view lhs_name,
                                  std::string_view rhs_name) {
  std::ostringstream out;
  out << "comparing " << lhs_name << " (" << diff.lhs_events << " events) vs "
      << rhs_name << " (" << diff.rhs_events << " events)\n";
  if (!diff.diverged()) {
    out << "no divergence";
    if (diff.forgiven_tail > 0) {
      out << " (ignored " << diff.forgiven_tail << " trailing end-of-run "
          << "drop events)";
    }
    out << "\n";
  } else {
    out << "first divergence at " << diff.description << "\n";
  }
  out << "per-kind counts (lhs/rhs):\n";
  for (const EventLogDiff::KindDelta& delta : diff.kind_deltas) {
    out << "  " << delta.kind << ": " << delta.lhs << "/" << delta.rhs;
    if (delta.lhs != delta.rhs) out << "  <-- differs";
    out << "\n";
  }
  return out.str();
}

}  // namespace dagsched
