// Per-job latency attribution: decompose each job's response time into
// disjoint phases whose sum is exactly the response time.
//
// The paper's guarantees are statements about where time goes — condition
// (2) admits a job only if its density fits the remaining window, and the
// Theorem-2 profit loss is paid in deferral and eviction time — so the
// decomposition names those places.  Every instant of a job's life
// [arrival, end-of-life) lands in exactly one phase:
//
//   running       executing on >= 1 processor (union measure over the
//                 job's trace intervals whose progress survived)
//   restart_lost  executing, but every node running at that instant later
//                 lost the progress to a restart-from-zero fault recovery
//   pending       not yet admitted (the paper's pending queue P)
//   queued        admitted but not yet first executed
//   preempted     previously executed, admitted, idle
//   post_deadline time past the job's deadline expiry while incomplete
//
// End-of-life is the completion time for completed jobs and the end of the
// run for incomplete ones, so Σ phases == completion − arrival holds
// exactly for every completed job (and == end_time − arrival otherwise);
// attribute_latency() computes the decomposition and reports the maximum
// identity error so tests can assert it is numerically zero.
//
// Inputs are the run artifacts: the recorded Trace for execution intervals
// and the decision EventLog for admit / expiry / node-restart times.
// Without an event log, admission and fault context degrade gracefully
// (admission is assumed at arrival; expiry falls back to the declared
// deadline).
#pragma once

#include <string>
#include <vector>

#include "job/job.h"
#include "obs/event_log.h"
#include "sim/outcome.h"
#include "util/json.h"
#include "util/types.h"

namespace dagsched {

struct LatencyPhases {
  double pending = 0.0;
  double queued = 0.0;
  double running = 0.0;
  double preempted = 0.0;
  double restart_lost = 0.0;
  double post_deadline = 0.0;

  double sum() const {
    return pending + queued + running + preempted + restart_lost +
           post_deadline;
  }
};

struct JobAttribution {
  JobId job = kInvalidJob;
  Time arrival = 0.0;
  /// Completion time for completed jobs; end of run (clamped to arrival)
  /// otherwise.
  Time end_of_life = 0.0;
  bool completed = false;
  /// Whether an admit/schedule decision was observed (or assumed, for
  /// schedulers that emit none).
  bool admitted = false;
  LatencyPhases phases;

  Time response() const { return end_of_life - arrival; }
  /// |Σ phases − response|; zero up to floating-point accumulation.
  double identity_error() const {
    const double err = phases.sum() - response();
    return err < 0.0 ? -err : err;
  }
};

struct AttributionResult {
  std::vector<JobAttribution> jobs;
  /// Phase sums over all jobs.
  LatencyPhases totals;
  /// max_j |Σ phases_j − response_j|.
  double max_identity_error = 0.0;
};

/// Computes the decomposition.  `result.trace` must have been recorded;
/// `events` is optional (see file comment for the degraded semantics).
AttributionResult attribute_latency(const JobSet& jobs,
                                    const SimResult& result,
                                    const EventLog* events);

/// Human-readable per-job table plus totals (the `dagsched trace
/// attribution` output).
std::string format_attribution(const AttributionResult& attribution);

/// Machine-readable encoding ("dagsched.attribution/1").
JsonValue attribution_to_json(const AttributionResult& attribution);

}  // namespace dagsched
