#include "obs/attribution.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/check.h"
#include "util/table.h"

namespace dagsched {

namespace {

constexpr double kEps = 1e-9;

struct Span {
  Time start;
  Time end;
};

/// Sorts and merges overlapping/abutting spans in place; returns the total
/// measure.
double merge_measure(std::vector<Span>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.start < b.start; });
  std::size_t out = 0;
  double measure = 0.0;
  for (const Span& span : spans) {
    if (out > 0 && span.start <= spans[out - 1].end + kEps) {
      spans[out - 1].end = std::max(spans[out - 1].end, span.end);
    } else {
      spans[out++] = span;
    }
  }
  spans.resize(out);
  for (const Span& span : spans) measure += span.end - span.start;
  return measure;
}

/// Per-job context distilled from the event log.
struct JobEventContext {
  Time admit = kTimeInfinity;
  Time expire = kTimeInfinity;
  /// Last restart-from-zero time per node (execution strictly before it
  /// was lost).
  std::vector<std::pair<NodeId, Time>> restarts;

  Time last_restart(NodeId node) const {
    Time latest = -kTimeInfinity;
    for (const auto& [n, t] : restarts) {
      if (n == node) latest = std::max(latest, t);
    }
    return latest;
  }
};

}  // namespace

AttributionResult attribute_latency(const JobSet& jobs,
                                    const SimResult& result,
                                    const EventLog* events) {
  DS_CHECK_MSG(result.outcomes.size() == jobs.size(),
               "result does not match the job set");
  const std::size_t n = jobs.size();

  std::vector<JobEventContext> context(n);
  bool any_admission_events = false;
  if (events != nullptr) {
    for (const DecisionEvent& event : events->events()) {
      if (event.kind == ObsEventKind::kAdmit ||
          event.kind == ObsEventKind::kSchedule) {
        any_admission_events = true;
        if (event.job < n) {
          context[event.job].admit =
              std::min(context[event.job].admit, event.time);
        }
      } else if (event.kind == ObsEventKind::kExpire && event.job < n) {
        context[event.job].expire =
            std::min(context[event.job].expire, event.time);
      } else if (event.kind == ObsEventKind::kNodeRestart && event.job < n) {
        context[event.job].restarts.emplace_back(
            static_cast<NodeId>(event.detail_value("node")), event.time);
      }
    }
  }

  // Bucket the trace by job once instead of scanning it per job.
  std::vector<std::vector<const TraceInterval*>> by_job(n);
  for (const TraceInterval& interval : result.trace.intervals()) {
    if (interval.job < n) by_job[interval.job].push_back(&interval);
  }

  AttributionResult out;
  out.jobs.resize(n);
  std::vector<Span> all, useful;
  for (std::size_t i = 0; i < n; ++i) {
    JobAttribution& attribution = out.jobs[i];
    attribution.job = static_cast<JobId>(i);
    const JobOutcome& outcome = result.outcomes[i];
    const Time arrival = jobs[i].release();
    const Time eol = outcome.completed
                         ? outcome.completion_time
                         : std::max(arrival, result.end_time);
    attribution.arrival = arrival;
    attribution.end_of_life = eol;
    attribution.completed = outcome.completed;

    const JobEventContext& job_events = context[i];
    // Admission: logged time when available.  Schedulers that emit no
    // admission events at all (the list baselines) have no pending phase —
    // every job is implicitly admitted at arrival.  With admission events
    // present, a job that never got one stays pending its whole life.
    Time admit = job_events.admit;
    if (events == nullptr || !any_admission_events) admit = arrival;
    if (admit < arrival) admit = arrival;
    attribution.admitted = admit < kTimeInfinity;
    // Expiry: logged time, else the declared deadline when the job missed
    // it (events == nullptr fallback).
    Time expire = job_events.expire;
    if (events == nullptr && jobs[i].has_deadline()) {
      const Time deadline = jobs[i].absolute_deadline();
      if (!outcome.completed || outcome.completion_time > deadline + kEps) {
        expire = deadline;
      }
    }

    // Execution spans, split into all vs progress-surviving.
    all.clear();
    useful.clear();
    for (const TraceInterval* interval : by_job[i]) {
      const Time start = std::max(interval->start, arrival);
      const Time end = std::min(interval->end, eol);
      if (!(end > start)) continue;
      all.push_back({start, end});
      const Time lost_before = job_events.last_restart(interval->node);
      if (!(interval->start < lost_before - kEps)) {
        useful.push_back({start, end});
      }
    }
    const double executing = merge_measure(all);  // `all` is now the union
    const double surviving = merge_measure(useful);
    attribution.phases.running = surviving;
    attribution.phases.restart_lost = executing - surviving;

    // Complement of the execution union within [arrival, eol), classified
    // segment by segment at sub-boundaries.
    const Time first_start = outcome.first_start;
    auto classify_gap = [&](Time lo, Time hi) {
      if (!(hi > lo)) return;
      Time cuts[3] = {admit, expire, first_start};
      std::sort(std::begin(cuts), std::end(cuts));
      Time at = lo;
      for (int pass = 0; pass <= 3; ++pass) {
        const Time next = pass < 3 ? std::min(std::max(cuts[pass], at), hi)
                                   : hi;
        if (next > at) {
          const Time mid = at + (next - at) / 2.0;
          double& phase = mid >= expire ? attribution.phases.post_deadline
                          : mid < admit ? attribution.phases.pending
                          : mid >= first_start
                              ? attribution.phases.preempted
                              : attribution.phases.queued;
          phase += next - at;
          at = next;
        }
      }
    };
    Time cursor = arrival;
    for (const Span& span : all) {
      classify_gap(cursor, std::min(span.start, eol));
      cursor = std::max(cursor, span.end);
    }
    classify_gap(cursor, eol);

    out.totals.pending += attribution.phases.pending;
    out.totals.queued += attribution.phases.queued;
    out.totals.running += attribution.phases.running;
    out.totals.preempted += attribution.phases.preempted;
    out.totals.restart_lost += attribution.phases.restart_lost;
    out.totals.post_deadline += attribution.phases.post_deadline;
    out.max_identity_error =
        std::max(out.max_identity_error, attribution.identity_error());
  }
  return out;
}

std::string format_attribution(const AttributionResult& attribution) {
  std::ostringstream out;
  TextTable table({"job", "response", "pending", "queued", "running",
                   "preempted", "restart-lost", "post-deadline", "outcome"});
  auto row = [](const LatencyPhases& phases) {
    return std::vector<std::string>{
        TextTable::num(phases.pending, 5), TextTable::num(phases.queued, 5),
        TextTable::num(phases.running, 5),
        TextTable::num(phases.preempted, 5),
        TextTable::num(phases.restart_lost, 5),
        TextTable::num(phases.post_deadline, 5)};
  };
  double total_response = 0.0;
  for (const JobAttribution& job : attribution.jobs) {
    std::vector<std::string> cells{
        TextTable::num(static_cast<long long>(job.job)),
        TextTable::num(job.response(), 5)};
    for (std::string& cell : row(job.phases)) cells.push_back(std::move(cell));
    cells.push_back(job.completed ? "completed"
                    : job.admitted ? "incomplete"
                                   : "never-admitted");
    table.add_row(std::move(cells));
    total_response += job.response();
  }
  std::vector<std::string> totals{"total", TextTable::num(total_response, 5)};
  for (std::string& cell : row(attribution.totals)) {
    totals.push_back(std::move(cell));
  }
  totals.push_back("");
  table.add_row(std::move(totals));
  table.print(out);
  out << "identity max |sum(phases) - response| = "
      << attribution.max_identity_error << "\n";
  return out.str();
}

JsonValue attribution_to_json(const AttributionResult& attribution) {
  auto phases_json = [](const LatencyPhases& phases) {
    JsonValue out = JsonValue::object();
    out.set("pending", JsonValue(phases.pending));
    out.set("queued", JsonValue(phases.queued));
    out.set("running", JsonValue(phases.running));
    out.set("preempted", JsonValue(phases.preempted));
    out.set("restart_lost", JsonValue(phases.restart_lost));
    out.set("post_deadline", JsonValue(phases.post_deadline));
    return out;
  };
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue("dagsched.attribution/1"));
  JsonValue jobs = JsonValue::array();
  for (const JobAttribution& job : attribution.jobs) {
    JsonValue entry = JsonValue::object();
    entry.set("job", JsonValue(static_cast<double>(job.job)));
    entry.set("arrival", JsonValue(job.arrival));
    entry.set("end_of_life", JsonValue(job.end_of_life));
    entry.set("response", JsonValue(job.response()));
    entry.set("completed", JsonValue(job.completed));
    entry.set("admitted", JsonValue(job.admitted));
    entry.set("phases", phases_json(job.phases));
    jobs.push_back(std::move(entry));
  }
  doc.set("jobs", std::move(jobs));
  doc.set("totals", phases_json(attribution.totals));
  doc.set("max_identity_error", JsonValue(attribution.max_identity_error));
  return doc;
}

}  // namespace dagsched
