#include "obs/event_log.h"

#include <istream>
#include <ostream>

#include "util/json.h"

namespace dagsched {

const char* obs_event_kind_name(ObsEventKind kind) {
  switch (kind) {
    case ObsEventKind::kArrival: return "arrival";
    case ObsEventKind::kAdmit: return "admit";
    case ObsEventKind::kDefer: return "defer";
    case ObsEventKind::kDrop: return "drop";
    case ObsEventKind::kSchedule: return "schedule";
    case ObsEventKind::kComplete: return "complete";
    case ObsEventKind::kExpire: return "expire";
    case ObsEventKind::kPreempt: return "preempt";
    case ObsEventKind::kProcDown: return "proc-down";
    case ObsEventKind::kProcUp: return "proc-up";
    case ObsEventKind::kNodeRestart: return "node-restart";
    case ObsEventKind::kWorkOverrun: return "work-overrun";
    case ObsEventKind::kReadmitFail: return "readmit-fail";
    case ObsEventKind::kEngineAbort: return "engine-abort";
    case ObsEventKind::kOverload: return "overload";
  }
  return "?";
}

std::optional<ObsEventKind> obs_event_kind_from_name(std::string_view name) {
  if (name == "arrival") return ObsEventKind::kArrival;
  if (name == "admit") return ObsEventKind::kAdmit;
  if (name == "defer") return ObsEventKind::kDefer;
  if (name == "drop") return ObsEventKind::kDrop;
  if (name == "schedule") return ObsEventKind::kSchedule;
  if (name == "complete") return ObsEventKind::kComplete;
  if (name == "expire") return ObsEventKind::kExpire;
  if (name == "preempt") return ObsEventKind::kPreempt;
  if (name == "proc-down") return ObsEventKind::kProcDown;
  if (name == "proc-up") return ObsEventKind::kProcUp;
  if (name == "node-restart") return ObsEventKind::kNodeRestart;
  if (name == "work-overrun") return ObsEventKind::kWorkOverrun;
  if (name == "readmit-fail") return ObsEventKind::kReadmitFail;
  if (name == "engine-abort") return ObsEventKind::kEngineAbort;
  if (name == "overload") return ObsEventKind::kOverload;
  return std::nullopt;
}

double DecisionEvent::detail_value(std::string_view key,
                                   double fallback) const {
  for (const auto& [name, value] : detail) {
    if (name == key) return value;
  }
  return fallback;
}

void write_event_jsonl(std::ostream& out, const DecisionEvent& event) {
  JsonValue line = JsonValue::object();
  line.set("t", JsonValue(event.time));
  line.set("job", JsonValue(static_cast<double>(event.job)));
  line.set("kind", JsonValue(obs_event_kind_name(event.kind)));
  if (!event.reason.empty()) line.set("reason", JsonValue(event.reason));
  if (!event.detail.empty()) {
    JsonValue detail = JsonValue::object();
    for (const auto& [key, value] : event.detail) {
      detail.set(key, JsonValue(value));
    }
    line.set("detail", std::move(detail));
  }
  line.write(out);
  out << '\n';
}

void EventLog::write_jsonl(std::ostream& out) const {
  for (const DecisionEvent& event : events_) write_event_jsonl(out, event);
}

std::optional<std::vector<DecisionEvent>> EventLog::parse_jsonl(
    std::istream& in, std::string* error) {
  std::vector<DecisionEvent> events;
  std::string line;
  std::size_t line_number = 0;
  auto fail = [error, &line_number](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + message;
    }
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const JsonParseResult parsed = json_parse(line);
    if (!parsed.ok) return fail(parsed.error);
    const JsonValue& doc = parsed.value;
    if (!doc.is_object()) return fail("event is not a JSON object");
    const JsonValue* t = doc.find("t");
    const JsonValue* job = doc.find("job");
    const JsonValue* kind = doc.find("kind");
    if (t == nullptr || !t->is_number() || job == nullptr ||
        !job->is_number() || kind == nullptr || !kind->is_string()) {
      return fail("missing or mistyped t/job/kind");
    }
    const auto parsed_kind = obs_event_kind_from_name(kind->as_string());
    if (!parsed_kind) return fail("unknown kind '" + kind->as_string() + "'");

    DecisionEvent event;
    event.time = t->as_number();
    event.job = static_cast<JobId>(job->as_number());
    event.kind = *parsed_kind;
    if (const JsonValue* reason = doc.find("reason")) {
      if (!reason->is_string()) return fail("reason is not a string");
      event.reason = reason->as_string();
    }
    if (const JsonValue* detail = doc.find("detail")) {
      if (!detail->is_object()) return fail("detail is not an object");
      for (const auto& [key, value] : detail->members()) {
        if (!value.is_number()) return fail("detail value is not a number");
        event.detail.emplace_back(key, value.as_number());
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace dagsched
