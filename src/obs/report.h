// Structured run reports: one JSON document per run merging the run
// configuration, SimResult aggregates, ScheduleMetrics, the counter/span
// registries, and a time-sliced utilization / active-jobs timeline.
//
// The document is the machine-readable artifact of a run (the
// simulator-comparison literature's prerequisite for auditable cross-engine
// results); `dagsched run --obs out.json` writes it and `dagsched report
// out.json` pretty-prints it.  The schema is versioned ("dagsched.run_report/1")
// and its top-level key set is locked by tests/test_obs_report.cpp --
// extend by adding keys, never by repurposing existing ones.
//
// The same writer backs bench reports ("dagsched.bench_report/1") so perf
// measurements land in mechanically trackable files instead of ad-hoc
// stdout (bench/bench_engine_perf.cpp --out).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "job/job.h"
#include "obs/counters.h"
#include "obs/event_log.h"
#include "obs/span_timer.h"
#include "sim/metrics.h"
#include "sim/outcome.h"
#include "util/json.h"

namespace dagsched {

class TelemetryRecorder;

inline constexpr std::string_view kRunReportSchema = "dagsched.run_report/1";
inline constexpr std::string_view kBenchReportSchema =
    "dagsched.bench_report/1";

struct RunReportInputs {
  std::string scheduler;
  std::string engine;   // "event" or "slot"
  std::string workload; // instance label/path; may be empty
  ProcCount m = 1;
  double speed = 1.0;

  const JobSet* jobs = nullptr;     // required
  const SimResult* result = nullptr;  // required

  // Optional sections; omitted from the document when null.
  const ScheduleMetrics* metrics = nullptr;
  const MetricRegistry* registry = nullptr;
  const SpanRegistry* spans = nullptr;
  const EventLog* events = nullptr;
  /// Runtime-telemetry recorder: adds a "telemetry" section with the
  /// decide/transition/admission latency histograms and byte gauges.
  const TelemetryRecorder* telemetry = nullptr;
  std::string events_path;  // recorded in the document when non-empty

  /// Timeline resolution; utilization requires result->trace (recorded
  /// runs), active-jobs only needs outcomes.
  std::size_t timeline_buckets = 60;
};

/// Builds the versioned run-report document.
JsonValue build_run_report(const RunReportInputs& inputs);

/// Human-readable rendering of a run report (the `dagsched report`
/// subcommand).  Accepts any document conforming to the run-report schema;
/// DS_CHECKs on schema mismatch are avoided -- unknown/missing sections are
/// skipped so newer documents render on older binaries.
std::string format_run_report(const JsonValue& report);

// ---------------------------------------------------------------------------
// Bench reports
// ---------------------------------------------------------------------------

struct BenchMeasurement {
  std::string name;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  std::uint64_t iterations = 0;
  bool aggregate = false;  // e.g. google-benchmark mean/median/stddev rows
  std::vector<std::pair<std::string, double>> counters;
};

/// Builds the versioned bench-report document (optionally with span
/// timings from the bench's own hot loops).
JsonValue build_bench_report(std::string_view bench_name,
                             const std::vector<BenchMeasurement>& runs,
                             const SpanRegistry* spans = nullptr);

/// Human-readable rendering of a bench report (`dagsched report` on a
/// "dagsched.bench_report/1" document, e.g. BENCH_engine.json).
std::string format_bench_report(const JsonValue& report);

/// Shared span-section encoding (used by both report flavors).
JsonValue spans_to_json(const SpanRegistry& spans);

}  // namespace dagsched
