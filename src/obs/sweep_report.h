// The "dagsched.sweep/1" merged sweep report: schema, parser, renderer,
// and the cross-run diff/regression classifier.
//
// A sweep report is JSONL -- streaming-friendly like the telemetry and
// decision-event formats, so a killed sweep still leaves every completed
// cell line on disk:
//
//   line 1:  {"schema":"dagsched.sweep/1","kind":"header","cells":N,...}
//   lines:   {"kind":"cell","id":...,"metrics":{...},"decide_ns":{...},...}
//   last:    {"kind":"summary","wall_ms":...,"speedup":...,"decide_ns":...}
//
// The summary's decide/transition/admission histograms are the exact
// bucket-wise merge (LatencyHistogram::merge) of the per-cell histograms,
// and its rollups aggregate per-cell metrics and failure kinds -- the
// fleet-level view production DAG schedulers (DAGPS) and workflow-benchmark
// suites treat as the primary artifact.  The writer lives with the sweep
// executor (exp/sweep/report_writer.h); this layer only needs util/json.
//
// `diff_sweep_reports` compares two reports cell-by-cell with the
// bench_regress.py threshold policy: new/gone cells are informational,
// wall-clock or decide-p99 past the threshold is a perf regression, and a
// *semantic* change (decisions/completions/profit/failure differ on the
// same cell -- simulated runs are deterministic, so any drift is a
// correctness signal) is flagged regardless of threshold.
// `diff_bench_reports` applies the identical policy to two
// dagsched.bench_report/1 documents (BENCH_engine.json snapshots), porting
// scripts/bench_regress.py into the CLI.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace dagsched {

inline constexpr std::string_view kSweepReportSchema = "dagsched.sweep/1";

struct SweepReportDoc {
  JsonValue header;               // the schema-bearing first line
  std::vector<JsonValue> cells;   // every "kind":"cell" line, in file order
  JsonValue summary;              // null when the sweep died before finish
  bool has_summary() const { return summary.is_object(); }
};

/// Parses a dagsched.sweep/1 JSONL stream.  Returns nullopt (with a
/// "line N: ..." message in `error`) on malformed JSON, a wrong schema, or
/// a missing header; unknown "kind" lines are skipped for forward
/// compatibility.
std::optional<SweepReportDoc> parse_sweep_report(std::istream& in,
                                                 std::string* error = nullptr);

/// Human-readable rendering (`dagsched report SWEEP.jsonl`).
std::string format_sweep_report(const SweepReportDoc& doc);

// ---------------------------------------------------------------------------
// Cross-run regression diff
// ---------------------------------------------------------------------------

enum class SweepDiffClass {
  kOk,              // within threshold, semantics identical
  kImproved,        // faster than baseline past the threshold
  kPerfRegression,  // wall/p99 slower than baseline past the threshold
  kSemanticChange,  // decisions/completions/profit/failure differ
  kNew,             // only in the current report (informational)
  kGone,            // only in the baseline report (informational)
};

const char* sweep_diff_class_name(SweepDiffClass klass);

struct SweepDiffRow {
  std::string id;  // cell id, or bench measurement name
  SweepDiffClass klass = SweepDiffClass::kOk;
  /// What moved, e.g. "wall 12.1 ms -> 18.9 ms (+56%)"; empty for kOk.
  std::string detail;
};

struct SweepDiff {
  std::vector<SweepDiffRow> rows;  // baseline order, then new cells
  std::size_t regressions = 0;     // kPerfRegression rows
  std::size_t semantic_changes = 0;
  std::size_t improved = 0;

  /// True when the diff should fail a gate.
  bool regressed() const { return regressions > 0 || semantic_changes > 0; }
};

/// Threshold policy shared with scripts/bench_regress.py plus absolute
/// noise floors: a measurement only classifies as regressed/improved when
/// the baseline side exceeds the floor (sub-floor cells are too noisy to
/// gate on wall time).
struct SweepDiffOptions {
  double threshold = 0.25;      // allowed fractional slowdown
  double wall_floor_ms = 1.0;   // ignore wall deltas below this baseline
  double p99_floor_ns = 1000.0; // ignore p99 deltas below this baseline
};

SweepDiff diff_sweep_reports(const SweepReportDoc& baseline,
                             const SweepReportDoc& current,
                             const SweepDiffOptions& options = {});

/// Same classification over two dagsched.bench_report/1 documents:
/// real_time_ns per non-aggregate measurement plus any counters ending in
/// `_ns` (keyed "name:counter"), exactly scripts/bench_regress.py.
SweepDiff diff_bench_reports(const JsonValue& baseline,
                             const JsonValue& current,
                             const SweepDiffOptions& options = {});

std::string format_sweep_diff(const SweepDiff& diff,
                              std::string_view baseline_label,
                              std::string_view current_label,
                              const SweepDiffOptions& options = {});

}  // namespace dagsched
