// ObsSink: the bundle of observability outputs a run may be wired to.
//
// Engines and schedulers receive a `const ObsSink*` (nullptr = off, the
// default) and null-check before every emission, so an uninstrumented run
// takes exactly the seed code path.  The struct is plain pointers; the
// caller owns the registries and decides which of the three channels are
// active (e.g. `--events` without `--obs` enables the event log only).
#pragma once

#include <string_view>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/event_log.h"
#include "obs/span_timer.h"
#include "util/types.h"

namespace dagsched {

struct ObsSink {
  MetricRegistry* metrics = nullptr;
  EventLog* events = nullptr;
  SpanRegistry* spans = nullptr;

  bool enabled() const {
    return metrics != nullptr || events != nullptr || spans != nullptr;
  }

  /// Convenience: bump a named counter if metrics are attached.  Hot paths
  /// should resolve Counter* once instead; this is for event-frequency call
  /// sites (arrivals, admissions) where a map lookup is irrelevant.
  void count(std::string_view name, double delta = 1.0) const {
    if (metrics != nullptr) metrics->counter(name)->add(delta);
  }

  /// Convenience: append a decision event if the log is attached.
  void event(Time time, JobId job, ObsEventKind kind,
             std::string reason = {},
             std::vector<std::pair<std::string, double>> detail = {}) const {
    if (events != nullptr) {
      events->emit(time, job, kind, std::move(reason), std::move(detail));
    }
  }
};

}  // namespace dagsched
