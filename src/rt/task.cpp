#include "rt/task.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"
#include "workload/workload.h"

namespace dagsched {

void SporadicTask::validate() const {
  if (dag == nullptr) throw std::invalid_argument("task: null DAG");
  if (!(period > 0.0)) throw std::invalid_argument("task: period <= 0");
  if (!(relative_deadline > 0.0) || relative_deadline > period + 1e-12) {
    throw std::invalid_argument("task: need 0 < D <= T (constrained)");
  }
  if (span() > relative_deadline + 1e-12) {
    throw std::invalid_argument("task: span exceeds deadline (infeasible)");
  }
  if (!(profit > 0.0)) throw std::invalid_argument("task: profit <= 0");
}

void TaskSet::add(SporadicTask task) {
  task.validate();
  tasks_.push_back(std::move(task));
}

double TaskSet::total_utilization() const {
  double total = 0.0;
  for (const SporadicTask& task : tasks_) total += task.utilization();
  return total;
}

JobSet release_jobs(const TaskSet& tasks, Time horizon, Rng& rng,
                    double jitter) {
  DS_CHECK(horizon > 0.0);
  DS_CHECK(jitter >= 0.0 && jitter < 1.0);
  JobSet jobs;
  for (const SporadicTask& task : tasks.tasks()) {
    Time t = rng.uniform(0.0, task.period);  // staggered first release
    while (t < horizon) {
      jobs.add(Job::with_deadline(task.dag, t, task.relative_deadline,
                                  task.profit));
      Time gap = task.period;
      if (jitter > 0.0) gap *= 1.0 + rng.uniform(0.0, jitter);
      t += gap;
    }
  }
  jobs.finalize();
  return jobs;
}

TaskSet generate_task_set(Rng& rng, const TaskGenConfig& config) {
  DS_CHECK(config.num_tasks >= 1);
  DS_CHECK(config.total_utilization > 0.0);
  DS_CHECK(config.deadline_fraction > 0.0 && config.deadline_fraction <= 1.0);

  // UUniFast utilization split (Bini & Buttazzo): uniform over the simplex.
  const std::size_t n = config.num_tasks;
  std::vector<double> utils(n);
  double remaining = config.total_utilization;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        remaining * std::pow(rng.uniform01(),
                             1.0 / static_cast<double>(n - 1 - i));
    utils[i] = remaining - next;
    remaining = next;
  }
  utils[n - 1] = remaining;

  TaskSet tasks;
  for (std::size_t i = 0; i < n; ++i) {
    auto dag = std::make_shared<const Dag>(
        sample_dag(rng, DagFamily::kMixed, config.dag_size_scale));
    const Work work = dag->total_work();
    const Work span = dag->span();
    // A task's utilization cannot exceed its parallelism without violating
    // D >= L: u = W/T and D = f*T >= L force u <= f*W/L.  Cap with margin.
    const double u_cap = 0.85 * config.deadline_fraction * work / span;
    const double u = std::min(std::max(utils[i], 1e-3), u_cap);
    SporadicTask task;
    task.dag = std::move(dag);
    task.period = work / u;
    task.relative_deadline = config.deadline_fraction * task.period;
    task.profit = work;  // throughput view: profit ~ computation delivered
    tasks.add(std::move(task));
  }
  return tasks;
}

}  // namespace dagsched
