#include "rt/schedulability.h"

#include <cmath>

#include "core/allocation.h"
#include "core/density_index.h"
#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

FederatedResult federated_schedulable(const TaskSet& tasks, ProcCount m) {
  FederatedResult result;
  result.clusters.reserve(tasks.size());
  for (const SporadicTask& task : tasks.tasks()) {
    const Work work = task.work();
    const Work span = task.span();
    const Time deadline = task.relative_deadline;
    if (!(deadline > span) && !approx_eq(deadline, span)) {
      return {};  // span exceeds deadline: no cluster size works
    }
    ProcCount cluster = 1;
    const Work parallel_work = work - span;
    if (parallel_work > 1e-12) {
      if (approx_eq(deadline, span)) return {};  // needs infinite cluster
      cluster = static_cast<ProcCount>(
          std::ceil(parallel_work / (deadline - span)));
      cluster = std::max<ProcCount>(cluster, 1);
    }
    result.clusters.push_back(cluster);
    result.total += cluster;
  }
  result.schedulable = result.total <= m;
  return result;
}

bool gedf_capacity_schedulable(const TaskSet& tasks, ProcCount m,
                               double bound) {
  DS_CHECK(bound >= 1.0);
  if (tasks.total_utilization() > static_cast<double>(m) / bound + 1e-12) {
    return false;
  }
  for (const SporadicTask& task : tasks.tasks()) {
    if (task.span() > task.relative_deadline / bound + 1e-12) return false;
  }
  return true;
}

Work demand_bound(const TaskSet& tasks, Time t) {
  Work demand = 0.0;
  for (const SporadicTask& task : tasks.tasks()) {
    const double jobs_inside =
        std::floor((t - task.relative_deadline) / task.period + 1e-12) + 1.0;
    if (jobs_inside > 0.0) demand += jobs_inside * task.work();
  }
  return demand;
}

bool dbf_feasible(const TaskSet& tasks, ProcCount m, Time horizon) {
  DS_CHECK(m >= 1 && horizon > 0.0);
  // dbf only steps at t = D_i + k*T_i; checking those points suffices.
  for (const SporadicTask& task : tasks.tasks()) {
    for (Time t = task.relative_deadline; t <= horizon; t += task.period) {
      if (demand_bound(tasks, t) > static_cast<double>(m) * t + 1e-9) {
        return false;
      }
    }
  }
  return true;
}

PaperAdmissionResult paper_admission_snapshot(const TaskSet& tasks,
                                              ProcCount m,
                                              const Params& params) {
  PaperAdmissionResult result;
  result.slack_ok = true;
  DensityWindowIndex index;
  const double cap = params.b * static_cast<double>(m);

  bool windows_ok = true;
  JobId pseudo_id = 0;
  for (const SporadicTask& task : tasks.tasks()) {
    const double md = static_cast<double>(m);
    const Work greedy = (task.work() - task.span()) / md + task.span();
    if (task.relative_deadline <
        (1.0 + params.epsilon) * greedy - 1e-12) {
      result.slack_ok = false;
    }
    const JobAllocation alloc = compute_deadline_allocation(
        task.work(), task.span(), task.relative_deadline, task.profit,
        params, 1.0);
    if (alloc.n == 0) {
      result.slack_ok = false;
      windows_ok = false;
      continue;
    }
    if (index.admits(alloc.v, alloc.n, params.c, cap)) {
      index.insert(pseudo_id++, alloc.v, alloc.n);
    } else {
      windows_ok = false;
    }
  }
  result.windows_ok = windows_ok;
  result.admissible = result.slack_ok && result.windows_ok;
  return result;
}

}  // namespace dagsched
