// Sporadic DAG task systems -- the recurrent-release model of the real-time
// literature the paper builds on (Saifullah et al., Li et al., Baruah; refs
// [17][18][25]-[31]).  A task releases a stream of jobs, consecutive
// releases at least `period` apart; each job is one instance of the task's
// DAG and must finish within `relative_deadline` of its release.
//
// This subsystem converts task systems into the paper's online JobSet form
// and provides the classic schedulability tests (rt/schedulability.h) so
// the throughput-oriented algorithms can be compared against the real-time
// admission viewpoint (bench_rt_schedulability).
#pragma once

#include <memory>
#include <vector>

#include "job/job.h"
#include "util/rng.h"
#include "util/types.h"

namespace dagsched {

struct SporadicTask {
  std::shared_ptr<const Dag> dag;
  /// Minimum inter-release separation T_i.
  Time period = 0.0;
  /// Relative deadline D_i; constrained: D_i <= T_i.
  Time relative_deadline = 0.0;
  /// Profit per completed job (the throughput view of a task instance).
  Profit profit = 1.0;

  Work work() const { return dag->total_work(); }
  Work span() const { return dag->span(); }
  /// Utilization u_i = W_i / T_i.
  double utilization() const { return work() / period; }

  /// Validates the structural constraints; throws std::invalid_argument.
  void validate() const;
};

class TaskSet {
 public:
  TaskSet() = default;

  void add(SporadicTask task);

  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  const SporadicTask& operator[](std::size_t i) const { return tasks_[i]; }
  const std::vector<SporadicTask>& tasks() const { return tasks_; }

  /// Total utilization sum_i W_i / T_i.
  double total_utilization() const;

 private:
  std::vector<SporadicTask> tasks_;
};

/// Expands a task system into a concrete job stream over [0, horizon).
///
/// `jitter` in [0, 1): each inter-release gap is period * (1 + U[0, jitter])
/// -- 0 gives strictly periodic releases; > 0 gives a sporadic stream.
/// First releases are staggered uniformly in [0, period).
JobSet release_jobs(const TaskSet& tasks, Time horizon, Rng& rng,
                    double jitter = 0.0);

/// Random task-set generator targeting a total utilization (UUniFast-style
/// utilization split, DAGs drawn from sample_dag families, periods chosen
/// so u_i = W_i/T_i; implicit deadlines D_i = T_i scaled by
/// `deadline_fraction`).
struct TaskGenConfig {
  std::size_t num_tasks = 8;
  double total_utilization = 4.0;
  /// D_i = deadline_fraction * T_i (1.0 = implicit deadlines).
  double deadline_fraction = 1.0;
  double dag_size_scale = 1.0;
};

TaskSet generate_task_set(Rng& rng, const TaskGenConfig& config);

}  // namespace dagsched
