// Classic schedulability tests for sporadic DAG task systems, from the
// real-time literature the paper cites -- the "can we guarantee *all*
// deadlines" viewpoint the paper contrasts with throughput maximization.
//
//  * Federated scheduling (Li et al., ECRTS'14; refs [18][26]): every task
//    receives a dedicated cluster of n_i = ceil((W_i - L_i)/(D_i - L_i))
//    processors; the system is schedulable if the clusters fit:
//    sum n_i <= m.  (The original analysis shares cores among light tasks;
//    we implement the pure dedicated-cluster variant, which is sufficient
//    -- each job meets its deadline by the Graham bound -- and matches the
//    FederatedScheduler baseline exactly.)
//  * Global EDF capacity augmentation (Li et al., ECRTS'13/'14; ref [30]):
//    if sum_i W_i/T_i <= m / b  and  L_i <= D_i / b  for the proven bound
//    b, GEDF meets all deadlines at unit speed.
//  * Paper-S admission snapshot: do all tasks satisfy Theorem 2's slack
//    assumption, and do their static allocations n_i fit every density
//    window (condition (2)) even if all tasks were active at once?  A
//    sufficient condition for S to behave like a hard-real-time scheduler.
#pragma once

#include "core/params.h"
#include "rt/task.h"

namespace dagsched {

struct FederatedResult {
  bool schedulable = false;
  /// Per-task dedicated cluster sizes (empty if any task is infeasible).
  std::vector<ProcCount> clusters;
  ProcCount total = 0;
};

FederatedResult federated_schedulable(const TaskSet& tasks, ProcCount m);

/// The proven GEDF capacity-augmentation bound for sporadic DAG tasks with
/// implicit deadlines (Li, Chen, Agrawal, Lu, Gill, Saifullah 2014).
inline constexpr double kGedfCapacityBound = 2.618;

/// Capacity-augmentation test: sum u_i <= m/bound and L_i <= D_i/bound.
bool gedf_capacity_schedulable(const TaskSet& tasks, ProcCount m,
                               double bound = kGedfCapacityBound);

struct PaperAdmissionResult {
  bool admissible = false;
  /// True iff every task satisfies D >= (1+eps)((W-L)/m + L).
  bool slack_ok = false;
  /// True iff the static allocations satisfy condition (2) jointly.
  bool windows_ok = false;
};

PaperAdmissionResult paper_admission_snapshot(const TaskSet& tasks,
                                              ProcCount m,
                                              const Params& params);

/// Demand bound function of the task system (Baruah-style): the maximum
/// cumulative work of jobs that both release and have deadlines inside any
/// window of length t, assuming worst-case (synchronous, minimally-spaced)
/// releases:
///     dbf(t) = sum_i max(0, floor((t - D_i)/T_i) + 1) * W_i.
Work demand_bound(const TaskSet& tasks, Time t);

/// Necessary condition for feasibility on m unit-speed processors:
/// dbf(t) <= m * t for every window length t up to `horizon` (checked at
/// the deadline breakpoints, where dbf changes).  A task set failing this
/// is infeasible for EVERY scheduler -- used to sanity-check that the
/// sufficient tests above only ever accept dbf-consistent systems.
bool dbf_feasible(const TaskSet& tasks, ProcCount m, Time horizon);

}  // namespace dagsched
