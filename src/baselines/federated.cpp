#include "baselines/federated.h"

#include <algorithm>
#include <cmath>

#include "obs/sink.h"
#include "util/check.h"
#include "util/float_cmp.h"
#include "util/wire.h"

namespace dagsched {

FederatedScheduler::FederatedScheduler(FederatedOptions options)
    : options_(options) {}

void FederatedScheduler::reset() {
  info_.clear();
  running_.clear();
  committed_ = 0;
  admitted_count_ = 0;
}

void FederatedScheduler::on_arrival(const EngineContext& ctx, JobId job) {
  if (info_.size() < ctx.num_jobs()) info_.resize(ctx.num_jobs());
  JobInfo& info = info_[job];

  const JobView view = ctx.view(job);
  const Time deadline = view.has_deadline() ? view.relative_deadline()
                                            : view.profit().plateau_end();
  const Work work_eff = view.work() / ctx.speed();
  const Work span_eff = view.span() / ctx.speed();
  if (!(deadline > span_eff)) {  // infeasible on any cluster
    if (ctx.obs() != nullptr) {
      ctx.obs()->count("sched.drops.infeasible");
      ctx.obs()->event(ctx.now(), job, ObsEventKind::kDrop, "infeasible");
    }
    return;
  }

  ProcCount cluster;
  const Work parallel_work = std::max(work_eff - span_eff, 0.0);
  if (approx_zero(parallel_work)) {
    cluster = 1;
  } else {
    cluster = static_cast<ProcCount>(
        std::ceil(parallel_work / (deadline - span_eff)));
    cluster = std::max<ProcCount>(cluster, 1);
  }

  if (committed_ + cluster > ctx.num_procs()) {  // reject permanently
    if (ctx.obs() != nullptr) {
      ctx.obs()->count("sched.drops.cluster_overflow");
      ctx.obs()->event(ctx.now(), job, ObsEventKind::kDrop, "cluster-overflow",
                       {{"cluster", static_cast<double>(cluster)},
                        {"committed", static_cast<double>(committed_)}});
    }
    return;
  }
  info.cluster = cluster;
  info.admitted = true;
  committed_ += cluster;
  ++admitted_count_;
  running_.push_back(job);
  if (ctx.obs() != nullptr) {
    ctx.obs()->count("sched.admissions");
    ctx.obs()->event(ctx.now(), job, ObsEventKind::kAdmit, "cluster-fit",
                     {{"cluster", static_cast<double>(cluster)}});
  }
}

void FederatedScheduler::on_completion(const EngineContext& ctx, JobId job) {
  (void)ctx;
  JobInfo& info = info_[job];
  if (!info.admitted) return;
  info.admitted = false;
  DS_CHECK(committed_ >= info.cluster);
  committed_ -= info.cluster;
  std::erase(running_, job);
}

void FederatedScheduler::on_deadline(const EngineContext& ctx, JobId job) {
  // Same release path: the cluster is wasted past the deadline.
  on_completion(ctx, job);
}

void FederatedScheduler::on_capacity_change(const EngineContext& ctx,
                                            ProcCount old_m, ProcCount new_m) {
  (void)old_m;
  while (committed_ > new_m && !running_.empty()) {
    const JobId job = running_.back();
    JobInfo& info = info_[job];
    running_.pop_back();
    DS_CHECK(committed_ >= info.cluster);
    committed_ -= info.cluster;
    info.admitted = false;
    if (ctx.obs() != nullptr) {
      ctx.obs()->count("sched.readmit_fails");
      ctx.obs()->event(ctx.now(), job, ObsEventKind::kReadmitFail,
                       "capacity-lost",
                       {{"cluster", static_cast<double>(info.cluster)},
                        {"m", static_cast<double>(new_m)}});
    }
  }
}

std::size_t FederatedScheduler::shed_load(const EngineContext& ctx,
                                          std::size_t max_jobs) {
  std::size_t shed = 0;
  const ObsSink* obs = ctx.obs();
  while (shed < max_jobs && !running_.empty()) {
    const JobId job = running_.back();
    JobInfo& info = info_[job];
    running_.pop_back();
    DS_CHECK(committed_ >= info.cluster);
    committed_ -= info.cluster;
    info.admitted = false;
    if (obs != nullptr) {
      obs->count("sched.drops.overload");
      obs->event(ctx.now(), job, ObsEventKind::kDrop, "overload.shed.cluster",
                 {{"cluster", static_cast<double>(info.cluster)}});
    }
    ++shed;
  }
  return shed;
}

void FederatedScheduler::save_state(CheckpointWriter& out) const {
  out.u64(info_.size());
  for (const JobInfo& info : info_) {
    out.u32(info.cluster);
    out.boolean(info.admitted);
  }
  // running_ order is the admission (LIFO-eviction) order; saved verbatim.
  out.u64(running_.size());
  for (const JobId job : running_) out.u32(job);
  out.u32(committed_);
  out.u64(admitted_count_);
}

void FederatedScheduler::load_state(CheckpointReader& in) {
  const std::uint64_t n = in.count(5);
  info_.resize(static_cast<std::size_t>(n));
  std::size_t flagged = 0;
  for (JobInfo& info : info_) {
    info.cluster = in.u32();
    info.admitted = in.boolean();
    if (info.admitted && info.cluster == 0) {
      in.fail("admitted job with empty cluster");
    }
    flagged += info.admitted ? 1 : 0;
  }
  const std::uint64_t running = in.count(4);
  if (running != flagged) in.fail("running list disagrees with flags");
  running_.resize(static_cast<std::size_t>(running));
  std::uint64_t total = 0;
  for (JobId& job : running_) {
    job = in.u32();
    if (job >= n || !info_[job].admitted) in.fail("invalid running entry");
    total += info_[job].cluster;
  }
  // Duplicate-free: flagged admitted jobs == list length and every entry is
  // admitted, so a duplicate would leave some admitted job unlisted; catch
  // it via the committed total instead of an O(n^2) scan.
  committed_ = in.u32();
  if (total != committed_) in.fail("committed total disagrees with clusters");
  admitted_count_ = static_cast<std::size_t>(in.u64());
}

void FederatedScheduler::decide(const EngineContext& ctx, Assignment& out) {
  (void)ctx;
  for (const JobId job : running_) {
    out.add(job, info_[job].cluster);
  }
}

}  // namespace dagsched
