#include "baselines/federated.h"

#include <algorithm>
#include <cmath>

#include "obs/sink.h"
#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

FederatedScheduler::FederatedScheduler(FederatedOptions options)
    : options_(options) {}

void FederatedScheduler::reset() {
  info_.clear();
  running_.clear();
  committed_ = 0;
  admitted_count_ = 0;
}

void FederatedScheduler::on_arrival(const EngineContext& ctx, JobId job) {
  if (info_.size() < ctx.num_jobs()) info_.resize(ctx.num_jobs());
  JobInfo& info = info_[job];

  const JobView view = ctx.view(job);
  const Time deadline = view.has_deadline() ? view.relative_deadline()
                                            : view.profit().plateau_end();
  const Work work_eff = view.work() / ctx.speed();
  const Work span_eff = view.span() / ctx.speed();
  if (!(deadline > span_eff)) {  // infeasible on any cluster
    if (ctx.obs() != nullptr) {
      ctx.obs()->count("sched.drops.infeasible");
      ctx.obs()->event(ctx.now(), job, ObsEventKind::kDrop, "infeasible");
    }
    return;
  }

  ProcCount cluster;
  const Work parallel_work = std::max(work_eff - span_eff, 0.0);
  if (approx_zero(parallel_work)) {
    cluster = 1;
  } else {
    cluster = static_cast<ProcCount>(
        std::ceil(parallel_work / (deadline - span_eff)));
    cluster = std::max<ProcCount>(cluster, 1);
  }

  if (committed_ + cluster > ctx.num_procs()) {  // reject permanently
    if (ctx.obs() != nullptr) {
      ctx.obs()->count("sched.drops.cluster_overflow");
      ctx.obs()->event(ctx.now(), job, ObsEventKind::kDrop, "cluster-overflow",
                       {{"cluster", static_cast<double>(cluster)},
                        {"committed", static_cast<double>(committed_)}});
    }
    return;
  }
  info.cluster = cluster;
  info.admitted = true;
  committed_ += cluster;
  ++admitted_count_;
  running_.push_back(job);
  if (ctx.obs() != nullptr) {
    ctx.obs()->count("sched.admissions");
    ctx.obs()->event(ctx.now(), job, ObsEventKind::kAdmit, "cluster-fit",
                     {{"cluster", static_cast<double>(cluster)}});
  }
}

void FederatedScheduler::on_completion(const EngineContext& ctx, JobId job) {
  (void)ctx;
  JobInfo& info = info_[job];
  if (!info.admitted) return;
  info.admitted = false;
  DS_CHECK(committed_ >= info.cluster);
  committed_ -= info.cluster;
  std::erase(running_, job);
}

void FederatedScheduler::on_deadline(const EngineContext& ctx, JobId job) {
  // Same release path: the cluster is wasted past the deadline.
  on_completion(ctx, job);
}

void FederatedScheduler::on_capacity_change(const EngineContext& ctx,
                                            ProcCount old_m, ProcCount new_m) {
  (void)old_m;
  while (committed_ > new_m && !running_.empty()) {
    const JobId job = running_.back();
    JobInfo& info = info_[job];
    running_.pop_back();
    DS_CHECK(committed_ >= info.cluster);
    committed_ -= info.cluster;
    info.admitted = false;
    if (ctx.obs() != nullptr) {
      ctx.obs()->count("sched.readmit_fails");
      ctx.obs()->event(ctx.now(), job, ObsEventKind::kReadmitFail,
                       "capacity-lost",
                       {{"cluster", static_cast<double>(info.cluster)},
                        {"m", static_cast<double>(new_m)}});
    }
  }
}

void FederatedScheduler::decide(const EngineContext& ctx, Assignment& out) {
  (void)ctx;
  for (const JobId job : running_) {
    out.add(job, info_[job].cluster);
  }
}

}  // namespace dagsched
