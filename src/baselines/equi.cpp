#include "baselines/equi.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/sink.h"
#include "util/check.h"
#include "util/wire.h"

namespace dagsched {

EquiScheduler::EquiScheduler(EquiOptions options) : options_(options) {}

void EquiScheduler::decide(const EngineContext& ctx, Assignment& out) {
  static thread_local std::vector<std::pair<JobId, double>> shares;
  shares.clear();
  double total_weight = 0.0;
  for (const JobId job : ctx.active_jobs()) {
    if (!overload_shed_.empty() && overload_shed_.count(job) != 0) continue;
    const JobView view = ctx.view(job);
    if (options_.drop_expired && view.deadline_unreachable(ctx.now())) {
      continue;
    }
    if (view.ready_count() == 0) continue;
    const double weight =
        options_.weight_by_profit ? view.peak_profit() : 1.0;
    DS_CHECK(weight > 0.0);
    shares.emplace_back(job, weight);
    total_weight += weight;
  }
  if (shares.empty()) return;

  // Largest-remainder apportionment of m processors to weights, with every
  // job guaranteed at least consideration for leftovers (jobs may round to
  // zero; leftovers go to the largest fractional parts, ties by id).
  const double m = static_cast<double>(ctx.num_procs());
  std::vector<double> fractional(shares.size());
  ProcCount assigned = 0;
  std::vector<ProcCount> grant(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double exact = m * shares[i].second / total_weight;
    grant[i] = static_cast<ProcCount>(std::floor(exact));
    fractional[i] = exact - std::floor(exact);
    assigned += grant[i];
  }
  std::vector<std::size_t> order(shares.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (fractional[a] != fractional[b]) return fractional[a] > fractional[b];
    return shares[a].first < shares[b].first;
  });
  for (std::size_t rank = 0;
       rank < order.size() && assigned < ctx.num_procs(); ++rank) {
    ++grant[order[rank]];
    ++assigned;
  }

  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (grant[i] >= 1) out.add(shares[i].first, grant[i]);
  }
}

std::size_t EquiScheduler::shed_load(const EngineContext& ctx,
                                     std::size_t max_jobs) {
  std::size_t shed = 0;
  const ObsSink* obs = ctx.obs();
  while (shed < max_jobs) {
    JobId victim = kInvalidJob;
    double victim_weight = 0.0;
    for (const JobId job : ctx.active_jobs()) {
      if (overload_shed_.count(job) != 0) continue;
      const JobView view = ctx.view(job);
      if (view.ready_count() == 0) continue;
      const double weight =
          options_.weight_by_profit ? view.peak_profit() : 1.0;
      // Lowest weight loses; ties shed the latest arrival (largest id).
      if (victim == kInvalidJob || weight < victim_weight ||
          (weight == victim_weight && job > victim)) {
        victim = job;
        victim_weight = weight;
      }
    }
    if (victim == kInvalidJob) break;
    overload_shed_.insert(victim);
    if (obs != nullptr) {
      obs->count("sched.drops.overload");
      obs->event(ctx.now(), victim, ObsEventKind::kDrop,
                 "overload.shed.share", {{"weight", victim_weight}});
    }
    ++shed;
  }
  return shed;
}

void EquiScheduler::save_state(CheckpointWriter& out) const {
  out.u64(overload_shed_.size());
  for (const JobId job : overload_shed_) out.u32(job);
}

void EquiScheduler::load_state(CheckpointReader& in) {
  const std::uint64_t n = in.count(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!overload_shed_.insert(in.u32()).second) {
      in.fail("duplicate shed-set entry");
    }
  }
}

}  // namespace dagsched
