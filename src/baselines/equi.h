// EQUI: fully non-clairvoyant equi-partitioning.
//
// The paper's conclusion asks whether *fully* non-clairvoyant algorithms
// (no knowledge of W_i or L_i at all -- not even the semi-non-clairvoyant
// hints) can be competitive.  EQUI is the canonical such policy: split the
// m processors evenly among active jobs (optionally weighting the split by
// profit, the one value a non-clairvoyant scheduler may still know).  This
// baseline probes the open question empirically: the gap between EQUI and
// S quantifies what knowing (W, L) buys.
//
// EQUI only reads release, profit, expiry and ready counts from JobView --
// never W, L or remaining work.
#pragma once

#include <set>
#include <string>

#include "sim/scheduler.h"

namespace dagsched {

struct EquiOptions {
  /// Weight each job's share by its peak profit instead of equally.
  bool weight_by_profit = false;
  bool drop_expired = true;
};

class EquiScheduler final : public SchedulerBase {
 public:
  explicit EquiScheduler(EquiOptions options = {});

  std::string name() const override {
    return options_.weight_by_profit ? "equi(profit-weighted)" : "equi";
  }
  void reset() override { overload_shed_.clear(); }
  void decide(const EngineContext& ctx, Assignment& out) override;
  /// Overload shedding: EQUI has no committed allocations to revoke, so it
  /// excludes the lowest-weight runnable job (latest arrival on ties) from
  /// future splits.  Emits kDrop events with the `overload.shed.share` slug.
  std::size_t shed_load(const EngineContext& ctx,
                        std::size_t max_jobs) override;
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;

 private:
  EquiOptions options_;
  /// Jobs excluded from the split by shed_load (empty unless the overload
  /// budget fired, so the default path is untouched).
  std::set<JobId> overload_shed_;
};

}  // namespace dagsched
