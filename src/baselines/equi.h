// EQUI: fully non-clairvoyant equi-partitioning.
//
// The paper's conclusion asks whether *fully* non-clairvoyant algorithms
// (no knowledge of W_i or L_i at all -- not even the semi-non-clairvoyant
// hints) can be competitive.  EQUI is the canonical such policy: split the
// m processors evenly among active jobs (optionally weighting the split by
// profit, the one value a non-clairvoyant scheduler may still know).  This
// baseline probes the open question empirically: the gap between EQUI and
// S quantifies what knowing (W, L) buys.
//
// EQUI only reads release, profit, expiry and ready counts from JobView --
// never W, L or remaining work.
#pragma once

#include <string>

#include "sim/scheduler.h"

namespace dagsched {

struct EquiOptions {
  /// Weight each job's share by its peak profit instead of equally.
  bool weight_by_profit = false;
  bool drop_expired = true;
};

class EquiScheduler final : public SchedulerBase {
 public:
  explicit EquiScheduler(EquiOptions options = {});

  std::string name() const override {
    return options_.weight_by_profit ? "equi(profit-weighted)" : "equi";
  }
  void decide(const EngineContext& ctx, Assignment& out) override;

 private:
  EquiOptions options_;
};

}  // namespace dagsched
