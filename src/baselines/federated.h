// Federated scheduling baseline (Li et al., ECRTS'14; Baruah, IPDPS'15 --
// the real-time-systems approach the paper's related work cites).
//
// Each admitted job receives a dedicated cluster of
//     n_i = ceil((W_i - L_i) / (D_i - L_i))
// processors, the minimum count whose Graham bound (W-L)/n + L fits the
// deadline.  A job is admitted iff its cluster fits into the processors not
// already dedicated to active jobs; otherwise it is rejected permanently
// (the classic federated admission test -- no waiting queue, no densities).
// Clusters are released on completion or deadline expiry.
//
// Differences from the paper's S that the benchmarks probe: admission is
// capacity-only (no density windows, so one fat cheap job can crowd out
// many profitable ones), there is no second chance for rejected jobs, and
// the full machine (not b*m) may be committed.
#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace dagsched {

struct FederatedOptions {
  /// Admit in profit-density order when several jobs arrive simultaneously?
  /// (Arrival order is already serialized by the engine; this is kept for
  /// interface symmetry and future batched variants.)
  bool reserve_full_machine = true;
};

class FederatedScheduler final : public SchedulerBase {
 public:
  explicit FederatedScheduler(FederatedOptions options = {});

  std::string name() const override { return "federated"; }
  void reset() override;
  void on_arrival(const EngineContext& ctx, JobId job) override;
  void on_completion(const EngineContext& ctx, JobId job) override;
  void on_deadline(const EngineContext& ctx, JobId job) override;
  /// Degradation under processor churn: clusters are dedicated capacity, so
  /// a shrink evicts the most recently admitted jobs (LIFO -- preserving the
  /// oldest commitments, the federated-admission analogue of not revoking
  /// already-guaranteed jobs) until the committed total fits.  Evicted jobs
  /// are rejected permanently, as `readmit-fail`/`capacity-lost` events.
  void on_capacity_change(const EngineContext& ctx, ProcCount old_m,
                          ProcCount new_m) override;
  void decide(const EngineContext& ctx, Assignment& out) override;
  /// Overload shedding: evicts the most recently admitted cluster (LIFO,
  /// like the capacity-shrink path -- oldest commitments survive).  Emits
  /// kDrop events with the `overload.shed.cluster` slug.
  std::size_t shed_load(const EngineContext& ctx,
                        std::size_t max_jobs) override;
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;

  std::size_t admitted_count() const { return admitted_count_; }

 private:
  struct JobInfo {
    ProcCount cluster = 0;
    bool admitted = false;
  };

  FederatedOptions options_;
  std::vector<JobInfo> info_;
  std::vector<JobId> running_;  // admitted, incomplete
  ProcCount committed_ = 0;
  std::size_t admitted_count_ = 0;
};

}  // namespace dagsched
