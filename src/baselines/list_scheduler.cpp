#include "baselines/list_scheduler.h"

#include <algorithm>
#include <limits>

#include "obs/sink.h"
#include "util/check.h"

namespace dagsched {

const char* list_policy_name(ListPolicy policy) {
  switch (policy) {
    case ListPolicy::kEdf: return "edf";
    case ListPolicy::kLlf: return "llf";
    case ListPolicy::kHdf: return "hdf";
    case ListPolicy::kFcfs: return "fcfs";
  }
  return "?";
}

ListScheduler::ListScheduler(ListSchedulerOptions options)
    : options_(options) {}

std::string ListScheduler::name() const {
  std::string n = list_policy_name(options_.policy);
  if (options_.clairvoyant_laxity) n += "(clairvoyant)";
  return n;
}

double ListScheduler::key(const EngineContext& ctx, JobId job) const {
  const JobView view = ctx.view(job);
  switch (options_.policy) {
    case ListPolicy::kEdf:
      return view.has_deadline() ? view.absolute_deadline()
                                 : view.release() + view.profit().plateau_end();
    case ListPolicy::kLlf: {
      const Time due = view.has_deadline()
                           ? view.absolute_deadline()
                           : view.release() + view.profit().plateau_end();
      Work remaining_estimate;
      if (options_.clairvoyant_laxity) {
        remaining_estimate = ctx.unfolding_of(job).remaining_span();
      } else {
        remaining_estimate = view.remaining_work() /
                             static_cast<double>(ctx.num_procs());
      }
      return (due - ctx.now()) - remaining_estimate / ctx.speed();
    }
    case ListPolicy::kHdf:
      // Negate so that smaller key = higher priority uniformly.
      return -(view.peak_profit() / view.work());
    case ListPolicy::kFcfs:
      return view.release();
  }
  return 0.0;
}

void ListScheduler::decide(const EngineContext& ctx, Assignment& out) {
  // Gather runnable jobs (drop expired ones if configured).
  static thread_local std::vector<std::pair<double, JobId>> order;
  order.clear();
  for (const JobId job : ctx.active_jobs()) {
    const JobView view = ctx.view(job);
    if (options_.drop_expired && view.deadline_unreachable(ctx.now())) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.expired");
      continue;
    }
    if (view.ready_count() == 0) {  // completed jobs are not active
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.not_ready");
      continue;
    }
    order.emplace_back(key(ctx, job), job);
  }
  std::sort(order.begin(), order.end());

  ProcCount free = ctx.num_procs();
  for (const auto& [key_value, job] : order) {
    (void)key_value;
    if (free == 0) break;
    const auto ready = ctx.view(job).ready_count();
    const ProcCount grant = static_cast<ProcCount>(std::min<std::size_t>(
        ready, free));
    if (grant == 0) continue;
    out.add(job, grant);
    free -= grant;
  }
}

}  // namespace dagsched
