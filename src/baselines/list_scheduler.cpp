#include "baselines/list_scheduler.h"

#include <algorithm>
#include <iterator>
#include <limits>

#include "obs/sink.h"
#include "util/check.h"
#include "util/wire.h"

namespace dagsched {

const char* list_policy_name(ListPolicy policy) {
  switch (policy) {
    case ListPolicy::kEdf: return "edf";
    case ListPolicy::kLlf: return "llf";
    case ListPolicy::kHdf: return "hdf";
    case ListPolicy::kFcfs: return "fcfs";
  }
  return "?";
}

ListScheduler::ListScheduler(ListSchedulerOptions options)
    : options_(options),
      order_pool_(std::make_unique<NodePool>()),
      order_index_(std::less<OrderKey>{},
                   PoolAllocator<OrderKey>(order_pool_.get())) {}

std::string ListScheduler::name() const {
  std::string n = list_policy_name(options_.policy);
  if (options_.clairvoyant_laxity) n += "(clairvoyant)";
  return n;
}

double ListScheduler::key(const EngineContext& ctx, JobId job) const {
  const JobView view = ctx.view(job);
  switch (options_.policy) {
    case ListPolicy::kEdf:
      return view.has_deadline() ? view.absolute_deadline()
                                 : view.release() + view.profit().plateau_end();
    case ListPolicy::kLlf: {
      const Time due = view.has_deadline()
                           ? view.absolute_deadline()
                           : view.release() + view.profit().plateau_end();
      Work remaining_estimate;
      if (options_.clairvoyant_laxity) {
        remaining_estimate = ctx.unfolding_of(job).remaining_span();
      } else {
        remaining_estimate = view.remaining_work() /
                             static_cast<double>(ctx.num_procs());
      }
      return (due - ctx.now()) - remaining_estimate / ctx.speed();
    }
    case ListPolicy::kHdf:
      // Negate so that smaller key = higher priority uniformly.
      return -(view.peak_profit() / view.work());
    case ListPolicy::kFcfs:
      return view.release();
  }
  return 0.0;
}

void ListScheduler::reset() {
  order_index_.clear();
  llf_candidates_.clear();
  llf_pos_.clear();
  overload_shed_.clear();
}

void ListScheduler::llf_add(JobId job) {
  if (job >= llf_pos_.size()) llf_pos_.resize(job + 1, kNoSlot);
  if (llf_pos_[job] != kNoSlot) return;
  llf_pos_[job] = static_cast<std::uint32_t>(llf_candidates_.size());
  llf_candidates_.push_back(job);
}

void ListScheduler::llf_remove(JobId job) {
  if (job >= llf_pos_.size() || llf_pos_[job] == kNoSlot) return;
  const std::uint32_t slot = llf_pos_[job];
  const JobId moved = llf_candidates_.back();
  llf_candidates_[slot] = moved;
  llf_pos_[moved] = slot;
  llf_candidates_.pop_back();
  llf_pos_[job] = kNoSlot;
}

std::size_t ListScheduler::shed_load(const EngineContext& ctx,
                                     std::size_t max_jobs) {
  std::size_t shed = 0;
  const ObsSink* obs = ctx.obs();
  auto emit = [&](JobId job) {
    if (obs == nullptr) return;
    obs->count("sched.drops.overload");
    obs->event(ctx.now(), job, ObsEventKind::kDrop,
               "overload.shed.lowest-priority");
  };
  if (indexed()) {
    while (shed < max_jobs && !order_index_.empty()) {
      const auto it = std::prev(order_index_.end());
      emit(it->second);
      order_index_.erase(it);
      ++shed;
    }
    return shed;
  }
  // kLlf: keys are time-dependent and no order is cached, so pick the
  // victim the way decide_sorted would rank it -- largest (key, id) among
  // runnable candidates -- drop it from the candidate set, and remember it
  // in the shed set (which checkpointing persists).
  while (shed < max_jobs) {
    JobId victim = kInvalidJob;
    double victim_key = 0.0;
    for (const JobId job : llf_candidates_) {
      if (ctx.view(job).ready_count() == 0) continue;
      const double k = key(ctx, job);
      if (victim == kInvalidJob ||
          std::pair<double, JobId>{k, job} >
              std::pair<double, JobId>{victim_key, victim}) {
        victim = job;
        victim_key = k;
      }
    }
    if (victim == kInvalidJob) break;
    llf_remove(victim);
    overload_shed_.insert(victim);
    emit(victim);
    ++shed;
  }
  return shed;
}

void ListScheduler::save_state(CheckpointWriter& out) const {
  if (indexed()) {
    out.u64(order_index_.size());
    for (const auto& [k, job] : order_index_) {
      out.f64(k);
      out.u32(job);
    }
  } else {
    // kLlf candidates reuse the index wire shape; the key slot is unused
    // (laxity is recomputed from now() every decision).  Sorted by id so
    // the bytes do not depend on swap-removal history.
    std::vector<JobId> sorted(llf_candidates_);
    std::sort(sorted.begin(), sorted.end());
    out.u64(sorted.size());
    for (const JobId job : sorted) {
      out.f64(0.0);
      out.u32(job);
    }
  }
  out.u64(overload_shed_.size());
  for (const JobId job : overload_shed_) out.u32(job);
}

void ListScheduler::load_state(CheckpointReader& in) {
  const std::uint64_t indexed_count = in.count(12);
  for (std::uint64_t i = 0; i < indexed_count; ++i) {
    const double k = in.f64();
    const JobId job = in.u32();
    if (indexed()) {
      if (!order_index_.emplace(k, job).second) {
        in.fail("duplicate order-index entry");
      }
    } else {
      if (job < llf_pos_.size() && llf_pos_[job] != kNoSlot) {
        in.fail("duplicate order-index entry");
      }
      llf_add(job);
    }
  }
  const std::uint64_t shed_count = in.count(4);
  for (std::uint64_t i = 0; i < shed_count; ++i) {
    if (!overload_shed_.insert(in.u32()).second) {
      in.fail("duplicate shed-set entry");
    }
  }
}

void ListScheduler::on_arrival(const EngineContext& ctx, JobId job) {
  if (indexed()) {
    order_index_.emplace(key(ctx, job), job);
  } else {
    llf_add(job);
  }
}

void ListScheduler::on_completion(const EngineContext& ctx, JobId job) {
  // Static keys recompute to the same value, so this finds the entry the
  // arrival inserted (if the expiry path has not removed it already).
  if (indexed()) {
    order_index_.erase({key(ctx, job), job});
  } else {
    llf_remove(job);
  }
}

void ListScheduler::decide(const EngineContext& ctx, Assignment& out) {
  if (indexed()) {
    decide_indexed(ctx, out);
  } else {
    decide_sorted(ctx, out);
  }
}

// Static-key path: walk the maintained (key, id) order, shedding expired
// jobs permanently as they are first seen.  Grants are identical to
// decide_sorted -- the index holds exactly the active jobs minus
// already-shed ones, in the order the sort would produce -- but a decision
// costs O(grants + newly expired), and each job is skip-counted once
// instead of on every decision (see docs/OBSERVABILITY.md).
void ListScheduler::decide_indexed(const EngineContext& ctx, Assignment& out) {
  static thread_local std::vector<std::pair<double, JobId>> expired;
  expired.clear();
  ProcCount free = ctx.num_procs();
  for (const auto& entry : order_index_) {
    const JobView view = ctx.view(entry.second);
    if (options_.drop_expired && view.deadline_unreachable(ctx.now())) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.expired");
      expired.push_back(entry);
      continue;
    }
    if (free == 0) break;
    const auto ready = view.ready_count();
    if (ready == 0) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.not_ready");
      continue;
    }
    const ProcCount grant =
        static_cast<ProcCount>(std::min<std::size_t>(ready, free));
    out.add(entry.second, grant);
    free -= grant;
  }
  for (const auto& entry : expired) order_index_.erase(entry);
}

// Dynamic-key path (kLlf): keys change with now(), so every decision sorts
// fresh -- but only over the incremental candidate set, and jobs observed
// expired leave it for good (mirroring decide_indexed's permanent removal;
// deadline_unreachable is monotone in time, so a skipped job can never
// become runnable again).
void ListScheduler::decide_sorted(const EngineContext& ctx, Assignment& out) {
  static thread_local std::vector<std::pair<double, JobId>> order;
  order.clear();
  for (std::size_t i = 0; i < llf_candidates_.size();) {
    const JobId job = llf_candidates_[i];
    const JobView view = ctx.view(job);
    if (options_.drop_expired && view.deadline_unreachable(ctx.now())) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.expired");
      llf_remove(job);  // swap-removal refills slot i; do not advance
      continue;
    }
    ++i;
    if (view.ready_count() == 0) {  // completed jobs leave via on_completion
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.not_ready");
      continue;
    }
    order.emplace_back(key(ctx, job), job);
  }
  std::sort(order.begin(), order.end());

  ProcCount free = ctx.num_procs();
  for (const auto& [key_value, job] : order) {
    (void)key_value;
    if (free == 0) break;
    const auto ready = ctx.view(job).ready_count();
    const ProcCount grant = static_cast<ProcCount>(std::min<std::size_t>(
        ready, free));
    if (grant == 0) continue;
    out.add(job, grant);
    free -= grant;
  }
}

}  // namespace dagsched
