#include "baselines/list_scheduler.h"

#include <algorithm>
#include <limits>

#include "obs/sink.h"
#include "util/check.h"

namespace dagsched {

const char* list_policy_name(ListPolicy policy) {
  switch (policy) {
    case ListPolicy::kEdf: return "edf";
    case ListPolicy::kLlf: return "llf";
    case ListPolicy::kHdf: return "hdf";
    case ListPolicy::kFcfs: return "fcfs";
  }
  return "?";
}

ListScheduler::ListScheduler(ListSchedulerOptions options)
    : options_(options) {}

std::string ListScheduler::name() const {
  std::string n = list_policy_name(options_.policy);
  if (options_.clairvoyant_laxity) n += "(clairvoyant)";
  return n;
}

double ListScheduler::key(const EngineContext& ctx, JobId job) const {
  const JobView view = ctx.view(job);
  switch (options_.policy) {
    case ListPolicy::kEdf:
      return view.has_deadline() ? view.absolute_deadline()
                                 : view.release() + view.profit().plateau_end();
    case ListPolicy::kLlf: {
      const Time due = view.has_deadline()
                           ? view.absolute_deadline()
                           : view.release() + view.profit().plateau_end();
      Work remaining_estimate;
      if (options_.clairvoyant_laxity) {
        remaining_estimate = ctx.unfolding_of(job).remaining_span();
      } else {
        remaining_estimate = view.remaining_work() /
                             static_cast<double>(ctx.num_procs());
      }
      return (due - ctx.now()) - remaining_estimate / ctx.speed();
    }
    case ListPolicy::kHdf:
      // Negate so that smaller key = higher priority uniformly.
      return -(view.peak_profit() / view.work());
    case ListPolicy::kFcfs:
      return view.release();
  }
  return 0.0;
}

void ListScheduler::reset() { order_index_.clear(); }

void ListScheduler::on_arrival(const EngineContext& ctx, JobId job) {
  if (indexed()) order_index_.emplace(key(ctx, job), job);
}

void ListScheduler::on_completion(const EngineContext& ctx, JobId job) {
  // Static keys recompute to the same value, so this finds the entry the
  // arrival inserted (if the expiry path has not removed it already).
  if (indexed()) order_index_.erase({key(ctx, job), job});
}

void ListScheduler::decide(const EngineContext& ctx, Assignment& out) {
  if (indexed()) {
    decide_indexed(ctx, out);
  } else {
    decide_sorted(ctx, out);
  }
}

// Static-key path: walk the maintained (key, id) order, shedding expired
// jobs permanently as they are first seen.  Grants are identical to
// decide_sorted -- the index holds exactly the active jobs minus
// already-shed ones, in the order the sort would produce -- but a decision
// costs O(grants + newly expired), and each job is skip-counted once
// instead of on every decision (see docs/OBSERVABILITY.md).
void ListScheduler::decide_indexed(const EngineContext& ctx, Assignment& out) {
  static thread_local std::vector<std::pair<double, JobId>> expired;
  expired.clear();
  ProcCount free = ctx.num_procs();
  for (const auto& entry : order_index_) {
    const JobView view = ctx.view(entry.second);
    if (options_.drop_expired && view.deadline_unreachable(ctx.now())) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.expired");
      expired.push_back(entry);
      continue;
    }
    if (free == 0) break;
    const auto ready = view.ready_count();
    if (ready == 0) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.not_ready");
      continue;
    }
    const ProcCount grant =
        static_cast<ProcCount>(std::min<std::size_t>(ready, free));
    out.add(entry.second, grant);
    free -= grant;
  }
  for (const auto& entry : expired) order_index_.erase(entry);
}

// Dynamic-key path (kLlf): keys change with now(), so every decision
// re-gathers and sorts the active set.
void ListScheduler::decide_sorted(const EngineContext& ctx, Assignment& out) {
  // Gather runnable jobs (drop expired ones if configured).
  static thread_local std::vector<std::pair<double, JobId>> order;
  order.clear();
  for (const JobId job : ctx.active_jobs()) {
    const JobView view = ctx.view(job);
    if (options_.drop_expired && view.deadline_unreachable(ctx.now())) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.expired");
      continue;
    }
    if (view.ready_count() == 0) {  // completed jobs are not active
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.skips.not_ready");
      continue;
    }
    order.emplace_back(key(ctx, job), job);
  }
  std::sort(order.begin(), order.end());

  ProcCount free = ctx.num_procs();
  for (const auto& [key_value, job] : order) {
    (void)key_value;
    if (free == 0) break;
    const auto ready = ctx.view(job).ready_count();
    const ProcCount grant = static_cast<ProcCount>(std::min<std::size_t>(
        ready, free));
    if (grant == 0) continue;
    out.add(job, grant);
    free -= grant;
  }
}

}  // namespace dagsched
