// Work-conserving list schedulers: the online baselines the paper's S is
// compared against (none existed for this model in OSS; built per the
// reproduction plan).
//
// At every decision point, active jobs are ordered by the policy key and
// each job in turn is granted up to its ready-node count while processors
// remain -- i.e. the classic greedy "global" scheduling of DAG jobs:
//
//   kEdf     -- earliest absolute deadline first
//   kLlf     -- least laxity first, laxity = (d - now) - remaining/(m)
//               (optimistic parallelism estimate; with clairvoyant_laxity
//               the true remaining span bound is used instead)
//   kHdf     -- highest classic density p/W first
//   kFcfs    -- first-come first-served
//
// All flavors drop expired deadline jobs (running them cannot earn profit).
// Unlike the paper's S they are work-conserving and admission-free, which
// is exactly what the E7 baseline shoot-out quantifies.
//
// The static-key policies (kEdf, kHdf, kFcfs -- keys fixed at arrival) keep
// an incremental key-ordered index maintained by arrival/completion
// callbacks, so decide() is O(grants + newly-expired) instead of the seed's
// gather-and-sort over every active job (quadratic once expired jobs pile
// up in the active set).
//
// kLlf's key is time-dependent (laxity shrinks as now() advances), so no
// cached *order* can be byte-parity-safe: re-deriving laxity from any
// stored form re-rounds the float arithmetic and can create or destroy
// near-ties the original computation did not.  What CAN be cached is
// *membership*: decide keeps an incremental candidate set (arrived, not
// completed / shed / observed-expired) and sorts exact original-arithmetic
// keys over just those k jobs -- O(k log k) per decision with k the live
// candidates, instead of a scan of the whole active set.  Expired jobs
// leave the set permanently (deadline_unreachable is monotone in time),
// mirroring the indexed path's permanent removal.  The
// BM_EventEngineLlfScale bench point pins this off the 100k hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "util/arena.h"

namespace dagsched {

enum class ListPolicy { kEdf, kLlf, kHdf, kFcfs };

const char* list_policy_name(ListPolicy policy);

struct ListSchedulerOptions {
  ListPolicy policy = ListPolicy::kEdf;
  /// Use the exact remaining critical path for laxity (requires DAG access,
  /// making the scheduler clairvoyant). kLlf only.
  bool clairvoyant_laxity = false;
  /// Skip jobs whose deadline already passed (default) -- running them is
  /// wasted capacity.
  bool drop_expired = true;
};

class ListScheduler final : public SchedulerBase {
 public:
  explicit ListScheduler(ListSchedulerOptions options = {});

  // order_index_'s tree nodes live in order_pool_; copying would alias the
  // pool and move-assignment would destroy it under the moved set.
  // Schedulers are constructed in place everywhere.
  ListScheduler(const ListScheduler&) = delete;
  ListScheduler& operator=(const ListScheduler&) = delete;
  ListScheduler(ListScheduler&&) = delete;
  ListScheduler& operator=(ListScheduler&&) = delete;

  std::string name() const override;
  bool clairvoyant() const override { return options_.clairvoyant_laxity; }
  void reset() override;
  void on_arrival(const EngineContext& ctx, JobId job) override;
  void on_completion(const EngineContext& ctx, JobId job) override;
  void decide(const EngineContext& ctx, Assignment& out) override;
  /// Overload shedding: removes the lowest-priority job (the back of the
  /// key order).  Indexed policies drop it from the index for good; kLlf
  /// records the victim in a shed set decide_sorted() skips.  Emits kDrop
  /// events with the `overload.shed.lowest-priority` slug.
  std::size_t shed_load(const EngineContext& ctx,
                        std::size_t max_jobs) override;
  /// Checkpoint the key-ordered index (its contents are history-dependent:
  /// expired jobs are removed for good) and the kLlf shed set.
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;
  std::size_t queue_depth() const override {
    return indexed() ? order_index_.size() : llf_candidates_.size();
  }
  std::size_t memory_bytes() const override {
    // Indexed policies: the node pool's chunk capacity (tree nodes are
    // pooled and recycled).  kLlf: the flat candidate set + position map.
    return order_pool_->capacity_bytes() +
           llf_candidates_.capacity() * sizeof(JobId) +
           llf_pos_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  double key(const EngineContext& ctx, JobId job) const;
  bool indexed() const { return options_.policy != ListPolicy::kLlf; }
  void decide_indexed(const EngineContext& ctx, Assignment& out);
  void decide_sorted(const EngineContext& ctx, Assignment& out);
  void llf_add(JobId job);
  void llf_remove(JobId job);

  using OrderKey = std::pair<double, JobId>;
  using OrderIndex =
      std::set<OrderKey, std::less<OrderKey>, PoolAllocator<OrderKey>>;

  ListSchedulerOptions options_;
  /// (key, id) ascending -- the same order decide_sorted's sort produces.
  /// Static-key policies only; jobs dropped as expired are removed for
  /// good (deadline_unreachable is monotone in time, so a skipped job can
  /// never become runnable again).  Tree nodes are recycled through
  /// order_pool_, so steady-state arrival/completion churn is heap-free.
  std::unique_ptr<NodePool> order_pool_;  // must precede order_index_
  OrderIndex order_index_;
  /// kLlf only: the candidate set decide_sorted ranks (see header comment).
  /// Unordered; swap-removal keeps membership updates O(1) and the
  /// per-decision sort restores the unique (key, id) total order anyway.
  std::vector<JobId> llf_candidates_;
  std::vector<std::uint32_t> llf_pos_;  // job id -> slot, kNoSlot if absent
  /// kLlf only: jobs abandoned by shed_load, persisted for checkpointing
  /// (the candidate set forgets victims immediately).  Empty unless the
  /// overload budget fired, so the hot path is unchanged by default.
  std::set<JobId> overload_shed_;
};

}  // namespace dagsched
