// Work-conserving list schedulers: the online baselines the paper's S is
// compared against (none existed for this model in OSS; built per the
// reproduction plan).
//
// At every decision point, active jobs are ordered by the policy key and
// each job in turn is granted up to its ready-node count while processors
// remain -- i.e. the classic greedy "global" scheduling of DAG jobs:
//
//   kEdf     -- earliest absolute deadline first
//   kLlf     -- least laxity first, laxity = (d - now) - remaining/(m)
//               (optimistic parallelism estimate; with clairvoyant_laxity
//               the true remaining span bound is used instead)
//   kHdf     -- highest classic density p/W first
//   kFcfs    -- first-come first-served
//
// All flavors drop expired deadline jobs (running them cannot earn profit).
// Unlike the paper's S they are work-conserving and admission-free, which
// is exactly what the E7 baseline shoot-out quantifies.
#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace dagsched {

enum class ListPolicy { kEdf, kLlf, kHdf, kFcfs };

const char* list_policy_name(ListPolicy policy);

struct ListSchedulerOptions {
  ListPolicy policy = ListPolicy::kEdf;
  /// Use the exact remaining critical path for laxity (requires DAG access,
  /// making the scheduler clairvoyant). kLlf only.
  bool clairvoyant_laxity = false;
  /// Skip jobs whose deadline already passed (default) -- running them is
  /// wasted capacity.
  bool drop_expired = true;
};

class ListScheduler final : public SchedulerBase {
 public:
  explicit ListScheduler(ListSchedulerOptions options = {});

  std::string name() const override;
  bool clairvoyant() const override { return options_.clairvoyant_laxity; }
  void decide(const EngineContext& ctx, Assignment& out) override;

 private:
  double key(const EngineContext& ctx, JobId job) const;

  ListSchedulerOptions options_;
};

}  // namespace dagsched
