// Work-conserving list schedulers: the online baselines the paper's S is
// compared against (none existed for this model in OSS; built per the
// reproduction plan).
//
// At every decision point, active jobs are ordered by the policy key and
// each job in turn is granted up to its ready-node count while processors
// remain -- i.e. the classic greedy "global" scheduling of DAG jobs:
//
//   kEdf     -- earliest absolute deadline first
//   kLlf     -- least laxity first, laxity = (d - now) - remaining/(m)
//               (optimistic parallelism estimate; with clairvoyant_laxity
//               the true remaining span bound is used instead)
//   kHdf     -- highest classic density p/W first
//   kFcfs    -- first-come first-served
//
// All flavors drop expired deadline jobs (running them cannot earn profit).
// Unlike the paper's S they are work-conserving and admission-free, which
// is exactly what the E7 baseline shoot-out quantifies.
//
// The static-key policies (kEdf, kHdf, kFcfs -- keys fixed at arrival) keep
// an incremental key-ordered index maintained by arrival/completion
// callbacks, so decide() is O(grants + newly-expired) instead of the seed's
// gather-and-sort over every active job (quadratic once expired jobs pile
// up in the active set).  kLlf's key is time-dependent and keeps the
// per-decision sort.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.h"

namespace dagsched {

enum class ListPolicy { kEdf, kLlf, kHdf, kFcfs };

const char* list_policy_name(ListPolicy policy);

struct ListSchedulerOptions {
  ListPolicy policy = ListPolicy::kEdf;
  /// Use the exact remaining critical path for laxity (requires DAG access,
  /// making the scheduler clairvoyant). kLlf only.
  bool clairvoyant_laxity = false;
  /// Skip jobs whose deadline already passed (default) -- running them is
  /// wasted capacity.
  bool drop_expired = true;
};

class ListScheduler final : public SchedulerBase {
 public:
  explicit ListScheduler(ListSchedulerOptions options = {});

  std::string name() const override;
  bool clairvoyant() const override { return options_.clairvoyant_laxity; }
  void reset() override;
  void on_arrival(const EngineContext& ctx, JobId job) override;
  void on_completion(const EngineContext& ctx, JobId job) override;
  void decide(const EngineContext& ctx, Assignment& out) override;
  /// Overload shedding: removes the lowest-priority job (the back of the
  /// key order).  Indexed policies drop it from the index for good; kLlf
  /// records the victim in a shed set decide_sorted() skips.  Emits kDrop
  /// events with the `overload.shed.lowest-priority` slug.
  std::size_t shed_load(const EngineContext& ctx,
                        std::size_t max_jobs) override;
  /// Checkpoint the key-ordered index (its contents are history-dependent:
  /// expired jobs are removed for good) and the kLlf shed set.
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;
  std::size_t queue_depth() const override { return order_index_.size(); }
  std::size_t memory_bytes() const override {
    // One red-black tree node per indexed job (kLlf keeps no index).
    return order_index_.size() *
           (sizeof(std::pair<double, JobId>) + 4 * sizeof(void*));
  }

 private:
  double key(const EngineContext& ctx, JobId job) const;
  bool indexed() const { return options_.policy != ListPolicy::kLlf; }
  void decide_indexed(const EngineContext& ctx, Assignment& out);
  void decide_sorted(const EngineContext& ctx, Assignment& out);

  ListSchedulerOptions options_;
  /// (key, id) ascending -- the same order decide_sorted's sort produces.
  /// Static-key policies only; jobs dropped as expired are removed for
  /// good (deadline_unreachable is monotone in time, so a skipped job can
  /// never become runnable again).
  std::set<std::pair<double, JobId>> order_index_;
  /// kLlf only: jobs abandoned by shed_load (kLlf keeps no index to erase
  /// from, so the shed decision is remembered here).  Empty unless the
  /// overload budget fired, so the hot path is unchanged by default.
  std::set<JobId> overload_shed_;
};

}  // namespace dagsched
