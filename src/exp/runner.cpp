#include "exp/runner.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "baselines/equi.h"
#include "baselines/federated.h"
#include "baselines/list_scheduler.h"
#include "core/deadline_scheduler.h"
#include "core/profit_scheduler.h"
#include "opt/upper_bound.h"
#include "util/check.h"

namespace dagsched {

std::unique_ptr<SchedulerBase> make_named_scheduler(const std::string& name,
                                                    double eps) {
  const Params params = Params::from_epsilon(eps);
  if (name == "s") {
    return std::make_unique<DeadlineScheduler>(
        DeadlineSchedulerOptions{.params = params});
  }
  if (name == "s-wc") {
    return std::make_unique<DeadlineScheduler>(DeadlineSchedulerOptions{
        .params = params, .work_conserving = true});
  }
  if (name == "s-noadm") {
    return std::make_unique<DeadlineScheduler>(DeadlineSchedulerOptions{
        .params = params, .enforce_admission = false});
  }
  if (name == "profit") {
    return std::make_unique<ProfitScheduler>(
        ProfitSchedulerOptions{.params = params});
  }
  if (name == "edf") {
    return std::make_unique<ListScheduler>(
        ListSchedulerOptions{ListPolicy::kEdf, false, true});
  }
  if (name == "llf") {
    return std::make_unique<ListScheduler>(
        ListSchedulerOptions{ListPolicy::kLlf, false, true});
  }
  if (name == "hdf") {
    return std::make_unique<ListScheduler>(
        ListSchedulerOptions{ListPolicy::kHdf, false, true});
  }
  if (name == "fcfs") {
    return std::make_unique<ListScheduler>(
        ListSchedulerOptions{ListPolicy::kFcfs, false, true});
  }
  if (name == "federated") return std::make_unique<FederatedScheduler>();
  if (name == "equi") return std::make_unique<EquiScheduler>();
  if (name == "equi-profit") {
    return std::make_unique<EquiScheduler>(EquiOptions{true, true});
  }
  throw std::invalid_argument("unknown scheduler '" + name + "'");
}

std::vector<std::string> named_scheduler_list() {
  return {"s",   "s-wc", "s-noadm", "profit",    "edf",        "llf",
          "hdf", "fcfs", "federated", "equi", "equi-profit"};
}

RunMetrics run_workload(const JobSet& jobs, SchedulerBase& scheduler,
                        const RunConfig& config) {
  auto selector = make_selector(config.selector, config.selector_seed);
  SimOptions options;
  options.num_procs = config.m;
  options.speed = config.speed;
  options.record_trace = config.record_trace;
  options.obs = config.obs;
  options.faults = config.faults;
  options.telemetry = config.telemetry;
  options.shards = config.shards;
  const SimResult result =
      run_simulation(config.engine, jobs, scheduler, *selector, options);
  RunMetrics metrics;
  metrics.profit = result.total_profit;
  metrics.fraction = profit_fraction(result, jobs);
  metrics.completed = result.jobs_completed;
  metrics.num_jobs = jobs.size();
  metrics.decisions = result.decisions;
  metrics.busy_proc_time = result.busy_proc_time;
  metrics.end_time = result.end_time;
  metrics.lost_work = result.lost_work;
  metrics.node_preemptions = result.node_preemptions;
  metrics.job_preemptions = result.job_preemptions;
  metrics.overload_breaches = result.overload_breaches;
  metrics.overload_sheds = result.overload_sheds;
  metrics.overload_recoveries = result.overload_recoveries;
  metrics.failure = result.failure;
  metrics.failure_message = result.failure_message;
  return metrics;
}

Profit offline_greedy_lower_bound(const JobSet& jobs, ProcCount m,
                                  double opt_speed) {
  // Candidate order: classic density p/W, descending.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&jobs](std::size_t a, std::size_t b) {
    const double da = jobs[a].peak_profit() / jobs[a].work();
    const double db = jobs[b].peak_profit() / jobs[b].work();
    if (da != db) return da > db;
    return a < b;
  });

  // The bound is the *earned* profit of a concrete clairvoyant schedule on
  // an accepted subset -- sound for every profit shape (a job finishing
  // past its plateau contributes its decayed value, not its peak).  Hill
  // climb: keep a candidate only if the subset's simulated profit improves.
  auto earned_profit = [m, opt_speed](const JobSet& subset) {
    ListScheduler scheduler({ListPolicy::kEdf, true, true});
    auto selector = make_selector(SelectorKind::kCriticalPath);
    SimOptions options;
    options.num_procs = m;
    options.speed = opt_speed;
    return run_simulation(EngineKind::kEvent, subset, scheduler, *selector,
                          options)
        .total_profit;
  };

  std::vector<bool> accepted(jobs.size(), false);
  Profit best = 0.0;
  for (const std::size_t candidate : order) {
    // Skip jobs that cannot complete in isolation.
    if (!clairvoyantly_feasible(jobs[candidate], m, opt_speed)) continue;
    accepted[candidate] = true;
    JobSet subset;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (accepted[i]) subset.add(jobs[i]);
    }
    subset.finalize();
    const Profit profit = earned_profit(subset);
    if (profit > best + 1e-12) {
      best = profit;
    } else {
      accepted[candidate] = false;
    }
  }
  return best;
}

OptBracket estimate_opt(const JobSet& jobs, ProcCount m, double opt_speed) {
  OptBracket bracket;

  // Lower bound: clairvoyant offline baselines with critical-path node
  // selection (the strongest executor the machine model allows).
  struct Candidate {
    ListSchedulerOptions options;
    const char* label;
  };
  const Candidate candidates[] = {
      {{ListPolicy::kEdf, false, true}, "edf/critical-path"},
      {{ListPolicy::kHdf, false, true}, "hdf/critical-path"},
      {{ListPolicy::kLlf, true, true}, "llf-clairvoyant/critical-path"},
  };
  RunConfig run;
  run.m = m;
  run.speed = opt_speed;
  run.selector = SelectorKind::kCriticalPath;
  for (const Candidate& candidate : candidates) {
    ListScheduler scheduler(candidate.options);
    const RunMetrics metrics = run_workload(jobs, scheduler, run);
    if (metrics.profit > bracket.lower) {
      bracket.lower = metrics.profit;
      bracket.lower_scheduler = candidate.label;
    }
  }
  // Offline planning witness: usually the strongest under overload.
  const Profit planned = offline_greedy_lower_bound(jobs, m, opt_speed);
  if (planned > bracket.lower) {
    bracket.lower = planned;
    bracket.lower_scheduler = "offline-greedy-plan";
  }

  // Upper bound: interval-capacity LP.
  OptBoundOptions bound_options;
  bound_options.opt_speed = opt_speed;
  const OptBound bound = compute_opt_upper_bound(jobs, m, bound_options);
  bracket.upper = bound.value();
  bracket.lp_used = bound.lp_used;
  DS_CHECK_MSG(bracket.upper + 1e-6 >= bracket.lower,
               "OPT upper bound " << bracket.upper
                                  << " below witnessed lower bound "
                                  << bracket.lower);
  return bracket;
}

TrialStats run_trials(const TrialConfig& config,
                      const SchedulerFactory& factory, ThreadPool* pool) {
  DS_CHECK(config.trials >= 1);
  TrialStats stats;
  stats.trials = config.trials;
  std::mutex merge_mutex;

  auto one_trial = [&config, &factory, &stats, &merge_mutex](std::size_t i) {
    Rng rng(config.base_seed);
    Rng trial_rng = rng.split(i);
    const JobSet jobs = generate_workload(trial_rng, config.workload);
    if (jobs.empty()) return;
    auto scheduler = factory();
    const RunMetrics metrics = run_workload(jobs, *scheduler, config.run);

    double ratio_ub = 0.0;
    double ratio_wit = 0.0;
    bool have_opt = false;
    if (config.with_opt) {
      const OptBracket bracket = estimate_opt(jobs, config.run.m);
      ratio_ub = bracket.ratio_upper(metrics.profit);
      ratio_wit = bracket.ratio_lower(metrics.profit);
      have_opt = true;
    }

    std::lock_guard lock(merge_mutex);
    stats.profit.add(metrics.profit);
    stats.fraction.add(metrics.fraction);
    stats.completed_frac.add(
        metrics.num_jobs > 0
            ? static_cast<double>(metrics.completed) /
                  static_cast<double>(metrics.num_jobs)
            : 0.0);
    if (have_opt && std::isfinite(ratio_ub)) {
      stats.ratio_ub.add(ratio_ub);
      stats.ratio_wit.add(ratio_wit);
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(config.trials, one_trial);
  } else {
    for (std::size_t i = 0; i < config.trials; ++i) one_trial(i);
  }
  return stats;
}

}  // namespace dagsched
