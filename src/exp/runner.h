// Experiment harness: run (workload x scheduler x machine) combinations,
// bracket OPT, aggregate repeated trials.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "job/job.h"
#include "sim/kernel/engine_factory.h"
#include "sim/node_selector.h"
#include "sim/scheduler.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "workload/workload.h"

namespace dagsched {

/// Factory so each trial gets a fresh scheduler instance (stateless reuse
/// also works via reset(); factories keep trials independent under
/// parallel execution).
using SchedulerFactory = std::function<std::unique_ptr<SchedulerBase>()>;

/// Scheduler registry by name -- "s" (the paper's Section-3 scheduler),
/// "s-wc" (work-conserving extension), "s-noadm" (admission off),
/// "profit" (Section-5 slot scheduler, SlotEngine only), "edf", "llf",
/// "hdf", "fcfs", "federated", "equi", "equi-profit".  `eps` parameterizes
/// the paper schedulers.  Throws std::invalid_argument on unknown names.
std::unique_ptr<SchedulerBase> make_named_scheduler(const std::string& name,
                                                    double eps = 0.5);

/// All names make_named_scheduler accepts.
std::vector<std::string> named_scheduler_list();

struct RunConfig {
  ProcCount m = 16;
  double speed = 1.0;
  SelectorKind selector = SelectorKind::kFifo;
  std::uint64_t selector_seed = 0;
  /// Stepping driver to lay over the shared simulation kernel
  /// (EngineKind::kSlot is required by ProfitScheduler).
  EngineKind engine = EngineKind::kEvent;
  /// Record a full execution trace (needed for utilization timelines).
  bool record_trace = false;
  /// Observability sink forwarded to the engine (null = off).
  const ObsSink* obs = nullptr;
  /// Fault injector forwarded to the engine (null = no faults).
  const FaultInjector* faults = nullptr;
  /// Runtime-telemetry recorder forwarded to the engine (null = off).
  TelemetryRecorder* telemetry = nullptr;
  /// Intra-run shard count forwarded to SimOptions::shards (0/1 = serial;
  /// decision logs are shard-count-invariant, see sim/kernel/shard.h).
  std::size_t shards = 1;
};

struct RunMetrics {
  Profit profit = 0.0;
  /// profit / sum of peaks.
  double fraction = 0.0;
  std::size_t completed = 0;
  std::size_t num_jobs = 0;
  std::size_t decisions = 0;
  double busy_proc_time = 0.0;
  Time end_time = 0.0;
  /// Work discarded by restart-from-zero fault recovery.
  Work lost_work = 0.0;
  std::size_t node_preemptions = 0;
  std::size_t job_preemptions = 0;
  /// Overload-degradation counters (decide-budget breaches and the jobs
  /// shed in response); all zero when the budget is off.
  std::size_t overload_breaches = 0;
  std::size_t overload_sheds = 0;
  std::size_t overload_recoveries = 0;
  /// kNone unless the run terminated abnormally (livelock guard, horizon).
  SimFailureKind failure = SimFailureKind::kNone;
  std::string failure_message;
};

/// One simulation with the given engine configuration.
RunMetrics run_workload(const JobSet& jobs, SchedulerBase& scheduler,
                        const RunConfig& config);

/// Bracket of the clairvoyant optimum:
///   lower = best profit achieved by the clairvoyant offline baselines
///           (EDF / HDF / clairvoyant-LLF with critical-path node choice),
///   upper = interval-capacity LP bound (opt/upper_bound.h).
struct OptBracket {
  Profit lower = 0.0;
  Profit upper = 0.0;
  std::string lower_scheduler;
  bool lp_used = false;

  /// Pessimistic (largest possible) competitive ratio of `alg_profit`.
  double ratio_upper(Profit alg_profit) const {
    return alg_profit > 0.0 ? upper / alg_profit
                            : std::numeric_limits<double>::infinity();
  }
  /// Optimistic ratio (how far the algorithm is from what we *witnessed*).
  double ratio_lower(Profit alg_profit) const {
    return alg_profit > 0.0 ? lower / alg_profit
                            : std::numeric_limits<double>::infinity();
  }
};

OptBracket estimate_opt(const JobSet& jobs, ProcCount m,
                        double opt_speed = 1.0);

/// Offline clairvoyant planning heuristic: consider jobs in density (p/W)
/// order; tentatively accept each and run clairvoyant EDF on the accepted
/// subset alone -- keep the job only if *every* accepted job still
/// completes on time.  The resulting all-deadlines-met profit is a valid
/// lower bound on OPT, usually far above any purely online witness under
/// overload (an online policy wastes capacity on jobs it must later
/// abandon).  O(n) simulations.
Profit offline_greedy_lower_bound(const JobSet& jobs, ProcCount m,
                                  double opt_speed = 1.0);

// ---------------------------------------------------------------------------
// Repeated trials
// ---------------------------------------------------------------------------

struct TrialConfig {
  WorkloadConfig workload;
  RunConfig run;
  std::size_t trials = 8;
  std::uint64_t base_seed = 42;
  /// Also compute the OPT bracket per trial (LP cost: only for modest n).
  bool with_opt = false;
};

struct TrialStats {
  RunningStats profit;
  RunningStats fraction;
  RunningStats completed_frac;
  RunningStats ratio_ub;     // upper/alg, only when with_opt
  RunningStats ratio_wit;    // lower/alg ("witnessed" ratio)
  std::size_t trials = 0;
};

/// Runs `config.trials` independent seeds; if `pool` is non-null, trials
/// run concurrently (each trial uses its own scheduler from the factory).
TrialStats run_trials(const TrialConfig& config,
                      const SchedulerFactory& factory,
                      ThreadPool* pool = nullptr);

}  // namespace dagsched
