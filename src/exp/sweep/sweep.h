// Parallel sweep executor: fan a list of independent simulation cells
// (workload x scheduler x engine x fault mode) out across hardware threads
// with a work-stealing scheduler, while keeping every run's observability
// state isolated per cell.
//
// The determinism contract (docs/SWEEP.md) is non-negotiable: a cell's
// event log is byte-identical to the same cell run serially, regardless of
// thread count or completion order.  It holds because
//   * every input that shapes a cell's decision sequence (workload,
//     scheduler, eps, engine, m, speed, selector seed, fault spec) is baked
//     into the SweepCellSpec *before* execution starts -- nothing is derived
//     from worker identity or completion order;
//   * every mutable run object (scheduler, fault injector, node selector,
//     EventLog, MetricRegistry, TelemetryRecorder) is constructed fresh
//     inside the cell, never shared across cells;
//   * results land in a pre-sized slot vector indexed by cell id, and all
//     cross-cell merging (LatencyHistogram bucket addition, counter
//     rollups) is commutative + associative, so merge order is irrelevant.
//
// Telemetry is the headline: each worker records per-cell decide /
// transition / admission latency histograms through an isolated
// TelemetryRecorder, and the merged fleet-level distributions (exact
// bucket-wise LatencyHistogram::merge) plus failure/shed rollups land in a
// versioned "dagsched.sweep/1" report (sweep_report.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "obs/counters.h"
#include "obs/telemetry/latency_histogram.h"

namespace dagsched {

/// One independent simulation to run.  `jobs` is a borrowed pointer to an
/// immutable workload (simulations only read it, so many cells may share
/// one JobSet across threads); the caller keeps it alive for the sweep.
struct SweepCellSpec {
  std::string id;              // unique tag, e.g. "s_event_thm2_none"
  std::string workload_label;  // path or label recorded in the report
  const JobSet* jobs = nullptr;

  std::string scheduler;  // make_named_scheduler name
  double eps = 0.5;
  EngineKind engine = EngineKind::kEvent;
  ProcCount m = 16;
  double speed = 1.0;
  SelectorKind selector = SelectorKind::kFifo;
  std::uint64_t selector_seed = 1;  // matches `dagsched run`

  std::string fault_label = "none";  // report tag ("none", "churn-zero", ...)
  std::string fault_spec;            // parse_fault_spec string; empty = off
};

/// Outcome of one cell.  `error` is non-empty for configuration failures
/// (unknown scheduler, malformed fault spec, engine/scheduler mismatch);
/// simulation-level failures surface through metrics.failure instead.
struct SweepCellResult {
  RunMetrics metrics;
  double wall_ms = 0.0;  // wall time of this cell's simulation

  // Per-cell overhead distributions from the cell's isolated recorder.
  LatencyHistogram decide;
  LatencyHistogram transition;
  LatencyHistogram admission;

  /// Serialized decision-event log (JSONL) when SweepOptions::capture_events
  /// is set; byte-identical to `dagsched run --events` on the same cell.
  std::string events_jsonl;

  /// Cell-local counter snapshot (SweepOptions::counters), sorted by name.
  std::vector<std::pair<std::string, double>> counters;

  std::string error;

  bool config_failed() const { return !error.empty(); }
  bool sim_failed() const {
    return !config_failed() && metrics.failure != SimFailureKind::kNone;
  }
  bool ok() const { return !config_failed() && !sim_failed(); }
};

/// Live progress snapshot handed to SweepOptions::on_progress after every
/// cell completion (under the executor's merge lock -- keep callbacks
/// cheap).
struct SweepProgress {
  std::size_t total = 0;
  std::size_t completed = 0;  // includes failed
  std::size_t failed = 0;     // config or simulation failures so far
  std::size_t running = 0;
  double elapsed_sec = 0.0;
  double cells_per_sec = 0.0;
  /// Naive remaining/throughput estimate; 0 until the first completion.
  double eta_sec = 0.0;
  /// p99 of the decide-latency histogram merged over completed cells.
  std::uint64_t decide_p99_ns = 0;
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  std::size_t threads = 0;
  /// Keep each cell's event log (JSONL string) in its result slot.
  bool capture_events = false;
  /// Attach a per-cell TelemetryRecorder (decide/transition/admission
  /// histograms).  Off takes the exact seed kernel path (docs/SWEEP.md).
  bool telemetry = true;
  /// Attach a per-cell MetricRegistry and merge counters fleet-wide.
  bool counters = true;
  std::function<void(const SweepProgress&)> on_progress;
};

struct SweepResult {
  std::vector<SweepCellSpec> cells;
  std::vector<SweepCellResult> results;  // parallel to `cells`

  // Fleet-level merges, accumulated in cell-index order (bucket-wise
  // addition is order-independent; the fixed order keeps reports stable).
  LatencyHistogram decide;
  LatencyHistogram transition;
  LatencyHistogram admission;
  /// Counter rollup across cells (SweepOptions::counters); sorted by name.
  std::vector<std::pair<std::string, double>> counters;

  std::size_t threads = 0;
  double wall_ms = 0.0;         // whole-sweep wall time
  double serial_wall_ms = 0.0;  // sum of per-cell wall times
  std::size_t failed_cells = 0;

  /// Estimated parallel speedup: serial_wall_ms / wall_ms.
  double speedup() const {
    return wall_ms > 0.0 ? serial_wall_ms / wall_ms : 0.0;
  }
};

/// Runs one cell in isolation (also the executor's per-worker body, so the
/// serial path and the parallel path execute identical code).
SweepCellResult run_sweep_cell(const SweepCellSpec& spec,
                               const SweepOptions& options);

/// Runs every cell across `options.threads` workers with work stealing and
/// returns the merged result.  Cells must have non-null `jobs`.
SweepResult run_sweep(std::vector<SweepCellSpec> cells,
                      const SweepOptions& options);

}  // namespace dagsched
