#include "exp/sweep/report_writer.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/sweep_report.h"
#include "obs/telemetry/telemetry.h"
#include "sim/kernel/engine_factory.h"
#include "util/check.h"

namespace dagsched {

JsonValue sweep_header_json(const SweepResult& sweep) {
  JsonValue header = JsonValue::object();
  header.set("schema", std::string(kSweepReportSchema));
  header.set("kind", "header");
  header.set("cells", static_cast<std::uint64_t>(sweep.cells.size()));
  header.set("threads", static_cast<std::uint64_t>(sweep.threads));
  return header;
}

JsonValue sweep_cell_json(const SweepResult& sweep, std::size_t index) {
  DS_CHECK(index < sweep.cells.size());
  const SweepCellSpec& spec = sweep.cells[index];
  const SweepCellResult& result = sweep.results[index];

  JsonValue cell = JsonValue::object();
  cell.set("kind", "cell");
  cell.set("id", spec.id);
  cell.set("workload", spec.workload_label);
  cell.set("scheduler", spec.scheduler);
  cell.set("engine", engine_kind_name(spec.engine));
  cell.set("m", static_cast<std::uint64_t>(spec.m));
  cell.set("speed", spec.speed);
  cell.set("eps", spec.eps);
  cell.set("fault", spec.fault_label);
  if (!spec.fault_spec.empty()) cell.set("fault_spec", spec.fault_spec);
  cell.set("ok", result.ok());
  if (result.config_failed()) {
    cell.set("error", result.error);
    return cell;
  }
  cell.set("wall_ms", result.wall_ms);

  const RunMetrics& m = result.metrics;
  JsonValue metrics = JsonValue::object();
  metrics.set("profit", m.profit);
  metrics.set("fraction", m.fraction);
  metrics.set("completed", static_cast<std::uint64_t>(m.completed));
  metrics.set("jobs", static_cast<std::uint64_t>(m.num_jobs));
  metrics.set("decisions", static_cast<std::uint64_t>(m.decisions));
  metrics.set("busy_proc_time", m.busy_proc_time);
  metrics.set("end_time", m.end_time);
  metrics.set("lost_work", m.lost_work);
  metrics.set("node_preemptions",
              static_cast<std::uint64_t>(m.node_preemptions));
  metrics.set("job_preemptions",
              static_cast<std::uint64_t>(m.job_preemptions));
  metrics.set("overload_breaches",
              static_cast<std::uint64_t>(m.overload_breaches));
  metrics.set("overload_sheds", static_cast<std::uint64_t>(m.overload_sheds));
  metrics.set("overload_recoveries",
              static_cast<std::uint64_t>(m.overload_recoveries));
  cell.set("metrics", std::move(metrics));
  cell.set("failure", sim_failure_kind_name(m.failure));
  if (!m.failure_message.empty()) {
    cell.set("failure_message", m.failure_message);
  }
  cell.set("decide_ns", latency_histogram_to_json(result.decide));
  cell.set("transition_ns", latency_histogram_to_json(result.transition));
  cell.set("admission_ns", latency_histogram_to_json(result.admission));
  return cell;
}

JsonValue sweep_summary_json(const SweepResult& sweep) {
  JsonValue summary = JsonValue::object();
  summary.set("kind", "summary");
  summary.set("cells", static_cast<std::uint64_t>(sweep.cells.size()));
  summary.set("ok_cells", static_cast<std::uint64_t>(sweep.cells.size() -
                                                     sweep.failed_cells));
  summary.set("failed_cells", static_cast<std::uint64_t>(sweep.failed_cells));
  summary.set("threads", static_cast<std::uint64_t>(sweep.threads));
  summary.set("wall_ms", sweep.wall_ms);
  summary.set("serial_wall_ms", sweep.serial_wall_ms);
  summary.set("speedup", sweep.speedup());
  summary.set("cells_per_sec",
              sweep.wall_ms > 0.0
                  ? static_cast<double>(sweep.cells.size()) /
                        (sweep.wall_ms / 1e3)
                  : 0.0);
  summary.set("decide_ns", latency_histogram_to_json(sweep.decide));
  summary.set("transition_ns", latency_histogram_to_json(sweep.transition));
  summary.set("admission_ns", latency_histogram_to_json(sweep.admission));

  JsonValue rollups = JsonValue::object();
  std::uint64_t jobs = 0, completed = 0, decisions = 0;
  std::uint64_t node_preemptions = 0, job_preemptions = 0;
  std::uint64_t breaches = 0, sheds = 0, recoveries = 0;
  double profit = 0.0, lost_work = 0.0;
  std::map<std::string, std::uint64_t> failures;
  std::uint64_t config_errors = 0;
  for (const SweepCellResult& result : sweep.results) {
    if (result.config_failed()) {
      ++config_errors;
      continue;
    }
    const RunMetrics& m = result.metrics;
    jobs += m.num_jobs;
    completed += m.completed;
    decisions += m.decisions;
    node_preemptions += m.node_preemptions;
    job_preemptions += m.job_preemptions;
    breaches += m.overload_breaches;
    sheds += m.overload_sheds;
    recoveries += m.overload_recoveries;
    profit += m.profit;
    lost_work += m.lost_work;
    if (m.failure != SimFailureKind::kNone) {
      ++failures[sim_failure_kind_name(m.failure)];
    }
  }
  rollups.set("jobs", jobs);
  rollups.set("jobs_completed", completed);
  rollups.set("decisions", decisions);
  rollups.set("profit", profit);
  rollups.set("lost_work", lost_work);
  rollups.set("node_preemptions", node_preemptions);
  rollups.set("job_preemptions", job_preemptions);
  rollups.set("overload_breaches", breaches);
  rollups.set("overload_sheds", sheds);
  rollups.set("overload_recoveries", recoveries);
  rollups.set("config_errors", config_errors);
  JsonValue failure_counts = JsonValue::object();
  for (const auto& [kind, count] : failures) {
    failure_counts.set(kind, count);
  }
  rollups.set("sim_failures", std::move(failure_counts));
  summary.set("rollups", std::move(rollups));

  if (!sweep.counters.empty()) {
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : sweep.counters) {
      counters.set(name, value);
    }
    summary.set("counters", std::move(counters));
  }

  // Slowest-cell attribution: where did the sweep's serial time go?
  std::vector<std::size_t> order(sweep.results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&sweep](std::size_t a, std::size_t b) {
    if (sweep.results[a].wall_ms != sweep.results[b].wall_ms) {
      return sweep.results[a].wall_ms > sweep.results[b].wall_ms;
    }
    return a < b;
  });
  JsonValue slowest = JsonValue::array();
  for (std::size_t rank = 0; rank < std::min<std::size_t>(5, order.size());
       ++rank) {
    JsonValue entry = JsonValue::object();
    entry.set("id", sweep.cells[order[rank]].id);
    entry.set("wall_ms", sweep.results[order[rank]].wall_ms);
    slowest.push_back(std::move(entry));
  }
  summary.set("slowest_cells", std::move(slowest));
  return summary;
}

void write_sweep_report(std::ostream& out, const SweepResult& sweep) {
  sweep_header_json(sweep).write(out);
  out << '\n';
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    sweep_cell_json(sweep, i).write(out);
    out << '\n';
  }
  sweep_summary_json(sweep).write(out);
  out << '\n';
}

}  // namespace dagsched
