#include "exp/sweep/sweep.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exp/sweep/work_pool.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "obs/event_log.h"
#include "obs/sink.h"
#include "obs/telemetry/telemetry.h"
#include "util/check.h"

namespace dagsched {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

SweepCellResult run_sweep_cell(const SweepCellSpec& spec,
                               const SweepOptions& options) {
  SweepCellResult result;
  DS_CHECK_MSG(spec.jobs != nullptr,
               "sweep cell '" << spec.id << "' has no workload attached");

  // Configuration errors are per-cell data, never aborts: one bad cell must
  // not take down a 93-cell fleet.
  std::unique_ptr<SchedulerBase> scheduler;
  try {
    scheduler = make_named_scheduler(spec.scheduler, spec.eps);
  } catch (const std::invalid_argument& error) {
    result.error = error.what();
    return result;
  }
  if (spec.scheduler == "profit" && spec.engine != EngineKind::kSlot) {
    result.error = "scheduler 'profit' requires the slot engine";
    return result;
  }

  std::optional<FaultInjector> injector;
  if (!spec.fault_spec.empty()) {
    std::string error;
    const auto config = parse_fault_spec(spec.fault_spec, &error);
    if (!config) {
      result.error = "bad fault spec: " + error;
      return result;
    }
    if (config->min_procs > spec.m) {
      result.error = "bad fault spec: min-procs exceeds m=" +
                     std::to_string(spec.m);
      return result;
    }
    injector.emplace(build_fault_plan(*config, spec.m));
  }

  // Isolated observability state: one recorder + registry + log per cell,
  // constructed here and torn down before the result is published, so no
  // two cells ever share a mutable instrument (the registry-isolation half
  // of the determinism contract).
  std::optional<TelemetryRecorder> telemetry;
  if (options.telemetry) {
    TelemetryOptions telemetry_options;
    telemetry_options.include_rss = false;  // process-global, meaningless
                                            // per concurrent cell
    telemetry.emplace(telemetry_options);
  }
  MetricRegistry registry;
  EventLog events;
  ObsSink sink;
  if (options.counters) sink.metrics = &registry;
  if (options.capture_events) sink.events = &events;

  RunConfig run;
  run.m = spec.m;
  run.speed = spec.speed;
  run.selector = spec.selector;
  run.selector_seed = spec.selector_seed;
  run.engine = spec.engine;
  run.obs = sink.enabled() ? &sink : nullptr;
  run.faults = injector ? &*injector : nullptr;
  run.telemetry = telemetry ? &*telemetry : nullptr;

  const Clock::time_point start = Clock::now();
  result.metrics = run_workload(*spec.jobs, *scheduler, run);

  if (telemetry) {
    result.decide = telemetry->decide_histogram();
    result.transition = telemetry->transition_histogram();
    result.admission = telemetry->admission_histogram();
  }
  if (options.capture_events) {
    std::ostringstream out;
    events.write_jsonl(out);
    result.events_jsonl = std::move(out).str();
  }
  if (options.counters) {
    result.counters = registry.counter_values();
  }
  // Wall time covers the simulation *and* result extraction (histogram
  // copies, event serialization): the full unit of work the executor
  // parallelizes, so serial_wall_ms / wall_ms is an honest speedup.
  result.wall_ms = ms_since(start);
  return result;
}

SweepResult run_sweep(std::vector<SweepCellSpec> cells,
                      const SweepOptions& options) {
  SweepResult sweep;
  sweep.cells = std::move(cells);
  sweep.results.resize(sweep.cells.size());
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::max<std::size_t>(1, std::min(threads, sweep.cells.size()));
  sweep.threads = threads;
  if (sweep.cells.empty()) return sweep;

  const Clock::time_point start = Clock::now();
  WorkStealingPool pool(threads);

  // Progress state, guarded by one mutex; the live merged decide histogram
  // backs the p99 readout (merge order is completion order here, which is
  // fine: bucket addition commutes -- the *report* merge below re-runs in
  // cell-index order anyway).
  std::mutex progress_mutex;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t running = 0;
  LatencyHistogram live_decide;

  auto worker_body = [&](std::size_t worker) {
    while (true) {
      const std::optional<std::size_t> cell = pool.next(worker);
      if (!cell) return;
      if (options.on_progress) {
        std::lock_guard lock(progress_mutex);
        ++running;
      }
      // Results land in pre-sized distinct slots: no lock, no reordering.
      sweep.results[*cell] = run_sweep_cell(sweep.cells[*cell], options);

      std::lock_guard lock(progress_mutex);
      if (options.on_progress) --running;
      ++completed;
      const SweepCellResult& done = sweep.results[*cell];
      if (!done.ok()) ++failed;
      if (options.on_progress) {
        live_decide.merge(done.decide);
        SweepProgress progress;
        progress.total = sweep.cells.size();
        progress.completed = completed;
        progress.failed = failed;
        progress.running = running;
        progress.elapsed_sec = ms_since(start) / 1e3;
        if (progress.elapsed_sec > 0.0) {
          progress.cells_per_sec =
              static_cast<double>(completed) / progress.elapsed_sec;
        }
        if (progress.cells_per_sec > 0.0) {
          progress.eta_sec =
              static_cast<double>(progress.total - completed) /
              progress.cells_per_sec;
        }
        progress.decide_p99_ns = live_decide.percentile_ns(0.99);
        options.on_progress(progress);
      }
    }
  };

  // Streaming producer: workers start first and drain while the cells are
  // still being enqueued (the push/close protocol is what work_pool.h's
  // no-lost-wakeup guarantee covers); close() releases anyone parked once
  // the backlog runs dry.
  if (threads == 1) {
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) pool.push(i);
    pool.close();
    worker_body(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers.emplace_back(worker_body, i);
    }
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) pool.push(i);
    pool.close();
    for (std::thread& worker : workers) worker.join();
  }
  sweep.wall_ms = ms_since(start);

  // Deterministic fleet merge in cell-index order.
  MetricRegistry rollup;
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const SweepCellResult& result = sweep.results[i];
    sweep.serial_wall_ms += result.wall_ms;
    if (!result.ok()) ++sweep.failed_cells;
    sweep.decide.merge(result.decide);
    sweep.transition.merge(result.transition);
    sweep.admission.merge(result.admission);
    for (const auto& [name, value] : result.counters) {
      rollup.counter(name)->add(value);
    }
  }
  sweep.counters = rollup.counter_values();
  return sweep;
}

}  // namespace dagsched
