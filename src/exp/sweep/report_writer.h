// Serializes a SweepResult as a versioned "dagsched.sweep/1" JSONL report
// (schema + parser + diff: obs/sweep_report.h).  Split from the executor so
// tests can round-trip reports without running sweeps, and from the obs
// layer so obs never depends on exp types.
#pragma once

#include <iosfwd>

#include "exp/sweep/sweep.h"
#include "util/json.h"

namespace dagsched {

/// The header line (carries the schema marker).
JsonValue sweep_header_json(const SweepResult& sweep);

/// One "kind":"cell" line for cell `index`.
JsonValue sweep_cell_json(const SweepResult& sweep, std::size_t index);

/// The trailing "kind":"summary" line: wall/serial/speedup, merged
/// histograms, failure/shed/overload rollups, slowest-cell attribution.
JsonValue sweep_summary_json(const SweepResult& sweep);

/// Writes header, one line per cell, then the summary.
void write_sweep_report(std::ostream& out, const SweepResult& sweep);

}  // namespace dagsched
