// Work-stealing cell queue for the sweep executor (exp/sweep/sweep.cpp).
//
// Owners pop from the front of their own deque, thieves steal from the
// back of the longest other deque -- the classic discipline, so an owner
// works through cache-warm consecutive cells while idle workers drain the
// far end of the biggest backlog.  One *global* mutex guards every deque:
// contention is one lock per cell (milliseconds of simulation), not per
// task-step, and a single lock makes the steal scan race-free (the old
// per-deque-mutex version read victim sizes unlocked, a data race under
// ThreadSanitizer).
//
// The queue is streaming: the producer push()es cells while workers are
// already draining, then close()s.  An idle worker in next() spins a
// bounded number of iterations on the atomic availability counter (the
// producer usually publishes the next cell within microseconds) and then
// parks on a condition variable -- never a busy-wait.  Wakeups cannot be
// lost: push()/close() mutate under the mutex before notifying, and a
// parked worker re-checks the state under that same mutex
// (tests/test_sweep.cpp asserts the last-cell handoff).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace dagsched {

class WorkStealingPool {
 public:
  /// `num_workers` >= 1 fixes the deque count; worker ids passed to next()
  /// must be < num_workers.
  explicit WorkStealingPool(std::size_t num_workers);

  /// Enqueues one cell index (producer side; round-robin across deques so
  /// neighbouring, often similar-cost, cells spread over workers).  Must
  /// not be called after close().
  void push(std::size_t cell);

  /// No more pushes: blocked workers with nothing left to take return
  /// nullopt instead of waiting.
  void close();

  /// Next cell for `worker`: own queue first, then steal from the victim
  /// with the most remaining work.  Blocks (bounded spin, then condvar
  /// park) while the pool is open but momentarily empty; returns nullopt
  /// only once the pool is closed and drained.
  std::optional<std::size_t> next(std::size_t worker);

 private:
  /// Own-front / longest-victim-back pop; requires mutex_ held.
  std::optional<std::size_t> pop_locked(std::size_t worker);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::deque<std::size_t>> queues_;  // under mutex_
  std::size_t push_cursor_ = 0;                  // under mutex_
  /// Cells currently queued; read lock-free by the next() spin loop.
  std::atomic<std::size_t> available_{0};
  std::atomic<bool> open_{true};
};

}  // namespace dagsched
