#include "exp/sweep/work_pool.h"

#include "util/check.h"

namespace dagsched {

namespace {
/// Spin budget before an idle next() parks.  Matches the shard runtime's
/// discipline (sim/kernel/shard.cpp): long enough to bridge the gap to a
/// producer that is mid-push, short enough that a genuinely idle worker
/// reaches the condvar in microseconds.
constexpr int kSpinLimit = 4096;
}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t num_workers)
    : queues_(num_workers) {
  DS_CHECK(num_workers >= 1);
}

void WorkStealingPool::push(std::size_t cell) {
  {
    std::lock_guard lock(mutex_);
    DS_CHECK_MSG(open_.load(std::memory_order_relaxed),
                 "push() after close()");
    queues_[push_cursor_].push_back(cell);
    push_cursor_ = (push_cursor_ + 1) % queues_.size();
    // Published under the mutex, before the notify: a worker that parked
    // after seeing 0 re-checks under the same mutex and cannot miss this.
    available_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
}

void WorkStealingPool::close() {
  {
    std::lock_guard lock(mutex_);
    open_.store(false, std::memory_order_release);
  }
  cv_.notify_all();
}

std::optional<std::size_t> WorkStealingPool::pop_locked(std::size_t worker) {
  std::deque<std::size_t>& own = queues_[worker];
  if (!own.empty()) {
    const std::size_t cell = own.front();
    own.pop_front();
    available_.fetch_sub(1, std::memory_order_relaxed);
    return cell;
  }
  std::size_t victim = queues_.size();
  std::size_t best = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i == worker) continue;
    if (queues_[i].size() > best) {
      best = queues_[i].size();
      victim = i;
    }
  }
  if (victim == queues_.size()) return std::nullopt;
  const std::size_t cell = queues_[victim].back();
  queues_[victim].pop_back();
  available_.fetch_sub(1, std::memory_order_relaxed);
  return cell;
}

std::optional<std::size_t> WorkStealingPool::next(std::size_t worker) {
  // Bounded spin on the lock-free signals: the common case is a producer
  // publishing the next cell within microseconds of this call.
  for (int spin = 0; spin < kSpinLimit; ++spin) {
    if (available_.load(std::memory_order_acquire) > 0 ||
        !open_.load(std::memory_order_acquire)) {
      break;
    }
  }
  std::unique_lock lock(mutex_);
  while (true) {
    if (auto cell = pop_locked(worker)) return cell;
    if (!open_.load(std::memory_order_relaxed)) return std::nullopt;
    cv_.wait(lock);
  }
}

}  // namespace dagsched
