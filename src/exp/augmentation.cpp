#include "exp/augmentation.h"

#include "util/check.h"

namespace dagsched {

AugmentationResult find_min_speed(const JobSet& jobs,
                                  const SchedulerFactory& factory,
                                  const AugmentationQuery& query) {
  DS_CHECK(query.target_fraction > 0.0 && query.target_fraction <= 1.0);
  DS_CHECK(query.speed_lo > 0.0 && query.speed_lo <= query.speed_hi);
  DS_CHECK(query.tolerance > 0.0);

  AugmentationResult result;
  auto fraction_at = [&](double speed) {
    RunConfig run = query.run;
    run.speed = speed;
    auto scheduler = factory();
    ++result.evaluations;
    return run_workload(jobs, *scheduler, run).fraction;
  };

  // Does the upper endpoint even reach the target?
  const double at_hi = fraction_at(query.speed_hi);
  if (at_hi < query.target_fraction) {
    result.min_speed = query.speed_hi + 1.0;
    result.achieved = at_hi;
    return result;
  }
  // Maybe no augmentation is needed.
  const double at_lo = fraction_at(query.speed_lo);
  if (at_lo >= query.target_fraction) {
    result.min_speed = query.speed_lo;
    result.achieved = at_lo;
    return result;
  }

  double lo = query.speed_lo, hi = query.speed_hi;
  double hi_fraction = at_hi;
  while (hi - lo > query.tolerance) {
    const double mid = 0.5 * (lo + hi);
    const double fraction = fraction_at(mid);
    if (fraction >= query.target_fraction) {
      hi = mid;
      hi_fraction = fraction;
    } else {
      lo = mid;
    }
  }
  result.min_speed = hi;
  result.achieved = hi_fraction;
  return result;
}

}  // namespace dagsched
