// Resource-augmentation search: the empirical counterpart of the paper's
// "s-speed c-competitive" statements.  Finds, by bisection, the minimum
// speed at which a scheduler reaches a target profit fraction (or a target
// fraction of the 1-speed OPT upper bound) on a given instance.
//
// Profit is monotone in speed for work-conserving policies and empirically
// near-monotone for S (admission is myopic); the search returns the
// smallest bisection endpoint whose run met the target, which is exact up
// to `tolerance` whenever monotonicity holds.
#pragma once

#include "exp/runner.h"

namespace dagsched {

struct AugmentationQuery {
  /// Target: fraction of total peak profit to reach (in (0, 1]).
  double target_fraction = 0.95;
  double speed_lo = 1.0;
  double speed_hi = 4.0;
  double tolerance = 0.01;
  RunConfig run;  // speed is overwritten during the search
};

struct AugmentationResult {
  /// Smallest speed (within tolerance) reaching the target; speed_hi + 1
  /// if even speed_hi fails.
  double min_speed = 0.0;
  /// Fraction achieved at min_speed.
  double achieved = 0.0;
  std::size_t evaluations = 0;
};

AugmentationResult find_min_speed(const JobSet& jobs,
                                  const SchedulerFactory& factory,
                                  const AugmentationQuery& query);

}  // namespace dagsched
