// Mutable construction interface for Dag.
//
// Usage:
//   DagBuilder b;
//   NodeId a = b.add_node(2.0);
//   NodeId c = b.add_node(1.5);
//   b.add_edge(a, c);
//   Dag dag = std::move(b).build();   // validates: acyclic, positive work
//
// build() throws std::invalid_argument on cycles, self-edges, duplicate
// edges, out-of-range endpoints, or non-positive node work.  Disconnected
// DAGs are allowed (the paper's Figure-1 construction is a chain next to an
// independent block).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "dag/dag.h"
#include "util/types.h"

namespace dagsched {

class DagBuilder {
 public:
  DagBuilder() = default;

  /// Reserve capacity for `nodes` nodes (optional optimization).
  void reserve(std::size_t nodes, std::size_t edges = 0);

  /// Adds a node with the given processing time (> 0); returns its id.
  NodeId add_node(Work processing_time);

  /// Adds a precedence edge: `to` cannot start until `from` completes.
  void add_edge(NodeId from, NodeId to);

  /// Convenience: adds a chain of `count` nodes with `node_work` each,
  /// connected consecutively; returns (first, last) ids.
  std::pair<NodeId, NodeId> add_chain(std::size_t count, Work node_work);

  std::size_t num_nodes() const { return work_.size(); }

  /// Validates and produces the immutable Dag. Consumes the builder.
  Dag build() &&;

 private:
  std::vector<Work> work_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace dagsched
