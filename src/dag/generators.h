// DAG generators: deterministic shapes (including the paper's Figure 1 and
// Figure 2 adversarial constructions) and randomized families used by the
// synthetic workloads.
#pragma once

#include <cstddef>

#include "dag/dag.h"
#include "util/rng.h"
#include "util/types.h"

namespace dagsched {

/// Distribution over node processing times.
struct WorkDist {
  enum class Kind { kConstant, kUniform, kLognormal, kPareto };

  Kind kind = Kind::kConstant;
  // kConstant: a = value.          kUniform: [a, b).
  // kLognormal: mu = a, sigma = b. kPareto: scale = a, shape = b.
  double a = 1.0;
  double b = 1.0;

  static WorkDist constant(double value) {
    return {Kind::kConstant, value, 0.0};
  }
  static WorkDist uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi};
  }
  static WorkDist lognormal(double mu, double sigma) {
    return {Kind::kLognormal, mu, sigma};
  }
  static WorkDist pareto(double scale, double shape) {
    return {Kind::kPareto, scale, shape};
  }

  /// Draw one processing time; result is clamped to be strictly positive.
  Work sample(Rng& rng) const;
};

// ---------------------------------------------------------------------------
// Deterministic shapes
// ---------------------------------------------------------------------------

/// A single node of the given weight (the smallest valid job).
Dag make_single_node(Work w);

/// A sequential chain: work = nodes * node_work = span.
Dag make_chain(std::size_t nodes, Work node_work);

/// Fully parallel block of independent nodes: span = node_work.
Dag make_parallel_block(std::size_t nodes, Work node_work);

/// The paper's Figure-1 adversarial DAG for Theorem 1.
///
/// A chain of `chain_nodes` nodes (span L = chain_nodes * node_work) next to
/// an *independent* block of (m-1) * chain_nodes parallel nodes, so that
/// total work W = m * L exactly.  A clairvoyant scheduler on m processors
/// finishes in W/m = L (run the chain on one processor, the block on the
/// rest); a semi-non-clairvoyant scheduler that is fed block nodes first
/// needs (W-L)/m + L = (2 - 1/m) * L.  Requires m >= 2.
Dag make_fig1_dag(ProcCount m, std::size_t chain_nodes, Work node_work);

/// The paper's Figure-2 DAG: a chain of `chain_nodes` nodes followed by a
/// block of `block_nodes` parallel nodes, every node of size `node_size`
/// (the paper's epsilon).  Span L = (chain_nodes + 1) * node_size; even a
/// clairvoyant scheduler needs chain_nodes*node_size + block_nodes*node_size/m
/// >= (W - L)/m + L - node_size(1 - 1/m).
Dag make_fig2_dag(std::size_t chain_nodes, std::size_t block_nodes,
                  Work node_size);

/// `segments` sequential segments, each a fork of `width` parallel nodes of
/// `node_work` between a fork node and a join node (fork/join nodes have
/// weight `sync_work`).
Dag make_fork_join(std::size_t segments, std::size_t width, Work node_work,
                   Work sync_work = 1e-3);

/// 2D wavefront (Smith-Waterman / LU-style): an rows x cols grid where cell
/// (i, j) depends on (i-1, j) and (i, j-1).  Work W = rows*cols*node_work,
/// span L = (rows + cols - 1)*node_work; parallelism grows and shrinks
/// along anti-diagonals.
Dag make_wavefront(std::size_t rows, std::size_t cols, Work node_work);

/// 1D iterated stencil: `iterations` rows of `width` cells; cell (t, i)
/// depends on (t-1, i-1), (t-1, i), (t-1, i+1) (halo exchange).  Constant
/// parallelism `width` with tight cross-iteration coupling.
Dag make_stencil_1d(std::size_t iterations, std::size_t width,
                    Work node_work);

/// Map-reduce: `mappers` parallel map nodes, each feeding all of
/// `reducers` reduce nodes (a complete bipartite shuffle), then a single
/// output node.  Map work and reduce work can differ.
Dag make_map_reduce(std::size_t mappers, std::size_t reducers, Work map_work,
                    Work reduce_work, Work output_work = 1e-3);

// ---------------------------------------------------------------------------
// Randomized families
// ---------------------------------------------------------------------------

struct LayeredParams {
  std::size_t layers = 4;
  std::size_t min_width = 1;
  std::size_t max_width = 8;
  /// Probability of each extra cross-layer edge (every node gets at least
  /// one predecessor in the previous layer so depth is respected).
  double edge_prob = 0.3;
  WorkDist work = WorkDist::uniform(0.5, 1.5);
};

/// Layered ("level") random DAG: edges only between consecutive layers.
Dag make_layered_random(Rng& rng, const LayeredParams& params);

struct SeriesParallelParams {
  std::size_t max_depth = 4;
  /// At each internal level, probability of a parallel (fork-join)
  /// composition; otherwise a series composition.
  double parallel_prob = 0.6;
  std::size_t min_branch = 2;
  std::size_t max_branch = 4;
  WorkDist leaf_work = WorkDist::uniform(0.5, 1.5);
  Work sync_work = 1e-3;
};

/// Recursive series-parallel DAG (single source, single sink) -- the shape of
/// nested-fork-join programs in Cilk/TBB, the languages the paper cites.
Dag make_series_parallel(Rng& rng, const SeriesParallelParams& params);

struct RandomDagParams {
  std::size_t nodes = 32;
  /// Probability of edge (i, j) for i < j in a random topological order.
  double edge_prob = 0.1;
  WorkDist work = WorkDist::uniform(0.5, 1.5);
};

/// Erdos-Renyi-style random DAG over a fixed topological order.
Dag make_random_dag(Rng& rng, const RandomDagParams& params);

}  // namespace dagsched
