// Runtime execution state of one DAG job: which nodes are ready, how much
// work remains on each.  This is the object the simulation engines mutate;
// the Dag itself stays immutable.
//
// Semi-non-clairvoyance boundary: schedulers never see this class directly --
// they see only the ready *count* through JobView (sim/views.h).  Engines and
// clairvoyant baselines may inspect everything.
//
// Layout: one construction per job arrival sits on the kernel's event-
// delivery path, so the per-node state lives in two fused arenas (a Work
// buffer for initial|remaining, a NodeId buffer for
// pending-preds|ready-list|ready-pos|status) instead of six separate
// vectors -- two allocations per arrival instead of six.
#pragma once

#include <span>
#include <vector>

#include "dag/dag.h"
#include "util/types.h"

namespace dagsched {

class CheckpointReader;
class CheckpointWriter;

class UnfoldingState {
 public:
  explicit UnfoldingState(const Dag& dag);

  /// Fault-injection variant: per-node *actual* work overrides the DAG's
  /// declared work (modeling misestimated W_i).  `works` must have one entry
  /// per node, each strictly positive.  Schedulers keep seeing the declared
  /// values through JobView; only execution consumes the actual ones.
  UnfoldingState(const Dag& dag, std::vector<Work> works);

  const Dag& dag() const { return *dag_; }

  /// Nodes whose predecessors have all completed and which are not yet done.
  /// Order is deterministic: nodes become ready in completion order, sources
  /// in id order (this is the "arbitrary" order a FIFO selector uses).
  std::span<const NodeId> ready() const {
    return {idx_buf_.data() + ready_off(), ready_size_};
  }

  std::size_t ready_count() const { return ready_size_; }

  bool is_ready(NodeId node) const {
    return status(node) == Status::kReady;
  }

  bool is_done(NodeId node) const { return status(node) == Status::kDone; }

  /// Remaining processing time of `node` at unit speed.
  Work remaining_work(NodeId node) const { return work_buf_[n_ + node]; }

  /// The work `node` started with: the DAG's declared work, or the actual
  /// (possibly overrun) work when constructed with explicit works.
  Work initial_work(NodeId node) const { return work_buf_[node]; }

  /// Discards all progress on an unfinished node (restart-from-zero failure
  /// semantics): remaining work snaps back to initial_work.  Returns the
  /// amount of work lost, which the engine accounts as `lost_work`.
  Work reset_progress(NodeId node);

  /// Total remaining work across all unfinished nodes.
  Work total_remaining_work() const { return total_remaining_; }

  /// Number of nodes not yet completed.
  NodeId nodes_remaining() const { return nodes_remaining_; }

  bool complete() const { return nodes_remaining_ == 0; }

  /// Apply `amount` of processing to a ready node.  If the node's remaining
  /// work reaches zero (within tolerance) the node completes, successors
  /// whose last predecessor finished become ready, and those newly ready
  /// nodes are appended to `newly_ready` (may be null if the caller doesn't
  /// care).  Returns true iff the node completed.
  bool advance(NodeId node, Work amount,
               std::vector<NodeId>* newly_ready = nullptr);

  /// Remaining span: weight of the heaviest path through unfinished nodes,
  /// counting each unfinished node's *remaining* work.  O(V+E) with no
  /// allocation after the first call (clairvoyant baselines call this per
  /// decision); used by diagnostics and Observation-1 tests.
  Work remaining_span() const;

  /// Allocated bytes of the two fused arenas plus the span scratch
  /// (telemetry gauge; capacities, not live counts).
  std::size_t memory_bytes() const {
    return work_buf_.capacity() * sizeof(Work) +
           idx_buf_.capacity() * sizeof(NodeId) +
           span_depth_.capacity() * sizeof(Work);
  }

  /// Serializes both fused arenas plus the derived aggregates verbatim.
  /// The ready list order is part of engine determinism (FIFO selectors
  /// read it), so it is saved, not rebuilt.
  void save_state(CheckpointWriter& out) const;

  /// Restores state saved by save_state into an instance constructed from
  /// the same DAG.  Throws CheckpointError when the node count disagrees
  /// or any restored invariant (status codes, ready-list bounds) is broken.
  void load_state(CheckpointReader& in);

 private:
  enum class Status : NodeId { kWaiting = 0, kReady = 1, kDone = 2 };

  // Segments of idx_buf_ (all NodeId-typed, n_ entries each).
  std::size_t pending_off() const { return 0; }
  std::size_t ready_off() const { return n_; }
  std::size_t ready_pos_off() const { return 2 * n_; }
  std::size_t status_off() const { return 3 * n_; }

  Status status(NodeId node) const {
    return static_cast<Status>(idx_buf_[status_off() + node]);
  }
  void set_status(NodeId node, Status s) {
    idx_buf_[status_off() + node] = static_cast<NodeId>(s);
  }

  void init_structure(const Dag& dag);
  void mark_done(NodeId node, std::vector<NodeId>* newly_ready);

  const Dag* dag_;
  std::size_t n_ = 0;  // == dag_->num_nodes()
  /// [0, n): initial work per node; [n, 2n): remaining work per node.
  std::vector<Work> work_buf_;
  /// [0, n): pending predecessor counts; [n, n + ready_size_): the ready
  /// list; [2n, 3n): node -> ready-list index (kNpos when absent);
  /// [3n, 4n): Status per node.
  std::vector<NodeId> idx_buf_;
  std::size_t ready_size_ = 0;
  /// Scratch for remaining_span(): per-node path depth.  Stale entries need
  /// no clearing -- the topological sweep writes every non-done node before
  /// any successor reads it.
  mutable std::vector<Work> span_depth_;
  Work total_remaining_ = 0.0;
  NodeId nodes_remaining_ = 0;

  static constexpr NodeId kNpos = static_cast<NodeId>(-1);
};

}  // namespace dagsched
