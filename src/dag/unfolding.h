// Runtime execution state of one DAG job: which nodes are ready, how much
// work remains on each.  This is the object the simulation engines mutate;
// the Dag itself stays immutable.
//
// Semi-non-clairvoyance boundary: schedulers never see this class directly --
// they see only the ready *count* through JobView (sim/views.h).  Engines and
// clairvoyant baselines may inspect everything.
//
// Layout: one construction per job arrival sits on the kernel's event-
// delivery path, so the per-node state is a single fused block
// [remaining-work | pending-preds|ready-list|ready-pos|status] carved from a
// caller-provided BumpArena (the kernel's job-state arena: zero heap traffic
// per arrival after warmup) or, absent an arena, one owned heap block.  The
// object itself is a handful of raw pointers plus aggregates -- it lives by
// value in the kernel's structure-of-arrays JobStateTable column.
//
// The initial-work column is elided in the common case: unless fault
// injection scaled this job's node works (or a checkpoint restored scaled
// values), initial_work(v) reads the immutable Dag directly and the block
// stores only *remaining* work -- 24 bytes/node instead of 32.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dag/dag.h"
#include "util/types.h"

namespace dagsched {

class BumpArena;
class CheckpointReader;
class CheckpointWriter;

class UnfoldingState {
 public:
  /// Disengaged state (no job arrived yet): `engaged()` is false and every
  /// other member function is off-limits.  Exists so UnfoldingState can be
  /// a plain column in a SoA table.
  UnfoldingState() = default;

  /// When `arena` is non-null the per-node block is bump-allocated from it
  /// and the arena must outlive this object (and reset only after it dies);
  /// otherwise the block is heap-owned.
  explicit UnfoldingState(const Dag& dag, BumpArena* arena = nullptr);

  /// Fault-injection variant: per-node *actual* work overrides the DAG's
  /// declared work (modeling misestimated W_i).  `works` must have one entry
  /// per node, each strictly positive.  Schedulers keep seeing the declared
  /// values through JobView; only execution consumes the actual ones.
  UnfoldingState(const Dag& dag, const std::vector<Work>& works,
                 BumpArena* arena = nullptr);

  UnfoldingState(UnfoldingState&& other) noexcept { *this = std::move(other); }
  UnfoldingState& operator=(UnfoldingState&& other) noexcept {
    dag_ = other.dag_;
    arena_ = other.arena_;
    owned_ = std::move(other.owned_);
    rem_ = other.rem_;
    init_ = other.init_;
    idx_ = other.idx_;
    n_ = other.n_;
    ready_size_ = other.ready_size_;
    nodes_remaining_ = other.nodes_remaining_;
    total_remaining_ = other.total_remaining_;
    other.dag_ = nullptr;
    other.rem_ = other.init_ = nullptr;
    other.idx_ = nullptr;
    return *this;
  }
  UnfoldingState(const UnfoldingState&) = delete;
  UnfoldingState& operator=(const UnfoldingState&) = delete;

  /// True once constructed from a Dag (the job has arrived).
  bool engaged() const { return dag_ != nullptr; }

  const Dag& dag() const { return *dag_; }

  /// Nodes whose predecessors have all completed and which are not yet done.
  /// Order is deterministic: nodes become ready in completion order, sources
  /// in id order (this is the "arbitrary" order a FIFO selector uses).
  std::span<const NodeId> ready() const { return {idx_ + n_, ready_size_}; }

  std::size_t ready_count() const { return ready_size_; }

  bool is_ready(NodeId node) const { return status(node) == Status::kReady; }

  bool is_done(NodeId node) const { return status(node) == Status::kDone; }

  /// Remaining processing time of `node` at unit speed.
  Work remaining_work(NodeId node) const { return rem_[node]; }

  /// The work `node` started with: the DAG's declared work, or the actual
  /// (possibly overrun) work when constructed with explicit works.
  Work initial_work(NodeId node) const {
    return init_ != nullptr ? init_[node] : dag_->node_work(node);
  }

  /// Discards all progress on an unfinished node (restart-from-zero failure
  /// semantics): remaining work snaps back to initial_work.  Returns the
  /// amount of work lost, which the engine accounts as `lost_work`.
  Work reset_progress(NodeId node);

  /// Total remaining work across all unfinished nodes.
  Work total_remaining_work() const { return total_remaining_; }

  /// Number of nodes not yet completed.
  NodeId nodes_remaining() const { return nodes_remaining_; }

  bool complete() const { return nodes_remaining_ == 0; }

  /// Apply `amount` of processing to a ready node.  If the node's remaining
  /// work reaches zero (within tolerance) the node completes, successors
  /// whose last predecessor finished become ready, and those newly ready
  /// nodes are appended to `newly_ready` (may be null if the caller doesn't
  /// care).  Returns true iff the node completed.
  bool advance(NodeId node, Work amount,
               std::vector<NodeId>* newly_ready = nullptr);

  /// Remaining span: weight of the heaviest path through unfinished nodes,
  /// counting each unfinished node's *remaining* work.  O(V+E) using a
  /// thread-local scratch shared across instances (clairvoyant baselines
  /// call this per decision); allocation-free once the scratch has grown to
  /// the largest DAG's node count.
  Work remaining_span() const;

  /// Bytes of the fused per-node block (telemetry gauge).  The remaining-
  /// span scratch is thread-global and excluded.
  std::size_t memory_bytes() const {
    return sizeof(Work) * n_ * (init_ != nullptr ? 2 : 1) +
           sizeof(NodeId) * 4 * n_;
  }

  /// Serializes the per-node state plus the derived aggregates verbatim, in
  /// the fixed dagsched.checkpoint/1 field order (initial works, remaining
  /// works, index block).  The ready list order is part of engine
  /// determinism (FIFO selectors read it), so it is saved, not rebuilt.
  void save_state(CheckpointWriter& out) const;

  /// Restores state saved by save_state into an instance constructed from
  /// the same DAG.  Throws CheckpointError when the node count disagrees
  /// or any restored invariant (status codes, ready-list bounds) is broken.
  void load_state(CheckpointReader& in);

 private:
  enum class Status : NodeId { kWaiting = 0, kReady = 1, kDone = 2 };

  // Segments of idx_ (all NodeId-typed, n_ entries each).
  std::size_t pending_off() const { return 0; }
  std::size_t ready_off() const { return n_; }
  std::size_t ready_pos_off() const { return 2 * static_cast<std::size_t>(n_); }
  std::size_t status_off() const { return 3 * static_cast<std::size_t>(n_); }

  Status status(NodeId node) const {
    return static_cast<Status>(idx_[status_off() + node]);
  }
  void set_status(NodeId node, Status s) {
    idx_[status_off() + node] = static_cast<NodeId>(s);
  }

  void allocate_block();
  /// Materializes the initial-work column (copying the DAG's declared works)
  /// so individual entries can diverge from the Dag.
  Work* ensure_init();
  void init_structure(const Dag& dag, bool fill_rem);
  void mark_done(NodeId node, std::vector<NodeId>* newly_ready);

  const Dag* dag_ = nullptr;
  BumpArena* arena_ = nullptr;
  /// Engaged iff arena_ == nullptr: the self-owned block (with space
  /// reserved for a late-materialized initial-work column).
  std::unique_ptr<std::byte[]> owned_;
  /// Remaining work per node (n_ entries).
  Work* rem_ = nullptr;
  /// Initial work per node; null while initial == the Dag's declared works.
  Work* init_ = nullptr;
  /// [0, n): pending predecessor counts; [n, n + ready_size_): the ready
  /// list; [2n, 3n): node -> ready-list index (kNpos when absent);
  /// [3n, 4n): Status per node.
  NodeId* idx_ = nullptr;
  NodeId n_ = 0;  // == dag_->num_nodes()
  NodeId ready_size_ = 0;
  NodeId nodes_remaining_ = 0;
  Work total_remaining_ = 0.0;

  static constexpr NodeId kNpos = static_cast<NodeId>(-1);
};

}  // namespace dagsched
