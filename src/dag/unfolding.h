// Runtime execution state of one DAG job: which nodes are ready, how much
// work remains on each.  This is the object the simulation engines mutate;
// the Dag itself stays immutable.
//
// Semi-non-clairvoyance boundary: schedulers never see this class directly --
// they see only the ready *count* through JobView (sim/views.h).  Engines and
// clairvoyant baselines may inspect everything.
#pragma once

#include <span>
#include <vector>

#include "dag/dag.h"
#include "util/types.h"

namespace dagsched {

class UnfoldingState {
 public:
  explicit UnfoldingState(const Dag& dag);

  /// Fault-injection variant: per-node *actual* work overrides the DAG's
  /// declared work (modeling misestimated W_i).  `works` must have one entry
  /// per node, each strictly positive.  Schedulers keep seeing the declared
  /// values through JobView; only execution consumes the actual ones.
  UnfoldingState(const Dag& dag, std::vector<Work> works);

  const Dag& dag() const { return *dag_; }

  /// Nodes whose predecessors have all completed and which are not yet done.
  /// Order is deterministic: nodes become ready in completion order, sources
  /// in id order (this is the "arbitrary" order a FIFO selector uses).
  std::span<const NodeId> ready() const { return ready_; }

  std::size_t ready_count() const { return ready_.size(); }

  bool is_ready(NodeId node) const {
    return status_[node] == Status::kReady;
  }

  bool is_done(NodeId node) const { return status_[node] == Status::kDone; }

  /// Remaining processing time of `node` at unit speed.
  Work remaining_work(NodeId node) const { return remaining_[node]; }

  /// The work `node` started with: the DAG's declared work, or the actual
  /// (possibly overrun) work when constructed with explicit works.
  Work initial_work(NodeId node) const { return initial_[node]; }

  /// Discards all progress on an unfinished node (restart-from-zero failure
  /// semantics): remaining work snaps back to initial_work.  Returns the
  /// amount of work lost, which the engine accounts as `lost_work`.
  Work reset_progress(NodeId node);

  /// Total remaining work across all unfinished nodes.
  Work total_remaining_work() const { return total_remaining_; }

  /// Number of nodes not yet completed.
  NodeId nodes_remaining() const { return nodes_remaining_; }

  bool complete() const { return nodes_remaining_ == 0; }

  /// Apply `amount` of processing to a ready node.  If the node's remaining
  /// work reaches zero (within tolerance) the node completes, successors
  /// whose last predecessor finished become ready, and those newly ready
  /// nodes are appended to `newly_ready` (may be null if the caller doesn't
  /// care).  Returns true iff the node completed.
  bool advance(NodeId node, Work amount,
               std::vector<NodeId>* newly_ready = nullptr);

  /// Remaining span: weight of the heaviest path through unfinished nodes,
  /// counting each unfinished node's *remaining* work.  O(V+E); used by
  /// diagnostics and Observation-1 tests, not by the hot path.
  Work remaining_span() const;

 private:
  enum class Status : unsigned char { kWaiting, kReady, kDone };

  void mark_done(NodeId node, std::vector<NodeId>* newly_ready);

  const Dag* dag_;
  std::vector<Status> status_;
  std::vector<Work> initial_;
  std::vector<Work> remaining_;
  std::vector<NodeId> pending_preds_;  // # of uncompleted predecessors
  std::vector<NodeId> ready_;
  std::vector<std::size_t> ready_pos_;  // node -> index in ready_, or npos
  Work total_remaining_ = 0.0;
  NodeId nodes_remaining_ = 0;

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
};

}  // namespace dagsched
