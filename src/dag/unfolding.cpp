#include "dag/unfolding.h"

#include <algorithm>

#include "util/arena.h"
#include "util/check.h"
#include "util/float_cmp.h"
#include "util/wire.h"

namespace dagsched {

void UnfoldingState::allocate_block() {
  const std::size_t rem_bytes = sizeof(Work) * n_;
  const std::size_t idx_bytes = sizeof(NodeId) * 4 * static_cast<std::size_t>(n_);
  if (arena_ != nullptr) {
    auto* base = static_cast<std::byte*>(
        arena_->allocate(rem_bytes + idx_bytes, alignof(Work)));
    rem_ = reinterpret_cast<Work*>(base);
    idx_ = reinterpret_cast<NodeId*>(base + rem_bytes);
  } else {
    // Reserve the initial-work segment up front so ensure_init() never needs
    // to reallocate; only fault-scaled or fault-restored jobs touch it.
    // new[] not make_unique: every byte is written before it is read, so
    // skip the value-init memset.
    owned_.reset(new std::byte[rem_bytes * 2 + idx_bytes]);
    rem_ = reinterpret_cast<Work*>(owned_.get());
    idx_ = reinterpret_cast<NodeId*>(owned_.get() + rem_bytes);
  }
}

Work* UnfoldingState::ensure_init() {
  if (init_ != nullptr) return init_;
  if (arena_ != nullptr) {
    init_ = arena_->allocate_array<Work>(n_);
  } else {
    init_ = reinterpret_cast<Work*>(
        owned_.get() + sizeof(Work) * n_ +
        sizeof(NodeId) * 4 * static_cast<std::size_t>(n_));
  }
  for (NodeId v = 0; v < n_; ++v) init_[v] = dag_->node_work(v);
  return init_;
}

void UnfoldingState::init_structure(const Dag& dag, bool fill_rem) {
  // Pending-pred counts, the (empty) ready list, ready positions, statuses
  // -- and, for the plain constructor, the remaining-work column fused into
  // the same pass over the fresh block (one sweep instead of two; the
  // fault-scaled constructor fills rem_ itself).  Sources become ready in
  // id order.
  NodeId* pending = idx_ + pending_off();
  NodeId* ready_pos = idx_ + ready_pos_off();
  for (NodeId v = 0; v < n_; ++v) {
    if (fill_rem) rem_[v] = dag.node_work(v);
    pending[v] = dag.in_degree(v);
    ready_pos[v] = kNpos;
    set_status(v, Status::kWaiting);
  }
  NodeId* ready = idx_ + ready_off();
  for (NodeId v : dag.sources()) {
    set_status(v, Status::kReady);
    ready_pos[v] = ready_size_;
    ready[ready_size_++] = v;
  }
}

UnfoldingState::UnfoldingState(const Dag& dag, BumpArena* arena)
    : dag_(&dag),
      arena_(arena),
      n_(static_cast<NodeId>(dag.num_nodes())),
      nodes_remaining_(static_cast<NodeId>(dag.num_nodes())),
      total_remaining_(dag.total_work()) {
  allocate_block();
  init_structure(dag, /*fill_rem=*/true);
}

UnfoldingState::UnfoldingState(const Dag& dag, const std::vector<Work>& works,
                               BumpArena* arena)
    : dag_(&dag),
      arena_(arena),
      n_(static_cast<NodeId>(dag.num_nodes())),
      nodes_remaining_(static_cast<NodeId>(dag.num_nodes())) {
  DS_CHECK_MSG(works.size() == dag.num_nodes(),
               "works size " << works.size() << " != nodes "
                             << dag.num_nodes());
  allocate_block();
  Work* init = ensure_init();
  for (NodeId v = 0; v < n_; ++v) {
    DS_CHECK_MSG(works[v] > 0.0,
                 "node " << v << " has non-positive work " << works[v]);
    init[v] = works[v];
    rem_[v] = works[v];
    total_remaining_ += works[v];
  }
  init_structure(dag, /*fill_rem=*/false);
}

Work UnfoldingState::reset_progress(NodeId node) {
  DS_CHECK_MSG(status(node) != Status::kDone,
               "reset_progress on completed node " << node);
  const Work initial = initial_work(node);
  const Work lost = initial - rem_[node];
  rem_[node] = initial;
  total_remaining_ += lost;
  return lost;
}

bool UnfoldingState::advance(NodeId node, Work amount,
                             std::vector<NodeId>* newly_ready) {
  DS_CHECK_MSG(status(node) == Status::kReady,
               "advance on non-ready node " << node);
  DS_CHECK_MSG(amount >= 0.0, "negative work amount " << amount);
  Work& remaining = rem_[node];
  remaining = snap_nonnegative(remaining - amount);
  total_remaining_ = snap_nonnegative(total_remaining_ - amount);
  DS_CHECK_MSG(remaining >= 0.0,
               "node " << node << " overshot by " << -remaining);
  if (approx_zero(remaining)) {
    remaining = 0.0;
    mark_done(node, newly_ready);
    return true;
  }
  return false;
}

void UnfoldingState::mark_done(NodeId node, std::vector<NodeId>* newly_ready) {
  set_status(node, Status::kDone);
  --nodes_remaining_;
  if (nodes_remaining_ == 0) total_remaining_ = 0.0;  // clear float residue
  // Swap-remove from the ready list, keeping the position map consistent.
  NodeId* ready = idx_ + ready_off();
  NodeId* ready_pos = idx_ + ready_pos_off();
  const NodeId pos = ready_pos[node];
  DS_CHECK(pos != kNpos);
  const NodeId moved = ready[ready_size_ - 1];
  ready[pos] = moved;
  ready_pos[moved] = pos;
  --ready_size_;
  ready_pos[node] = kNpos;

  NodeId* pending = idx_ + pending_off();
  for (NodeId succ : dag_->successors(node)) {
    DS_CHECK(pending[succ] > 0);
    if (--pending[succ] == 0) {
      set_status(succ, Status::kReady);
      ready_pos[succ] = ready_size_;
      ready[ready_size_++] = succ;
      if (newly_ready != nullptr) newly_ready->push_back(succ);
    }
  }
}

void UnfoldingState::save_state(CheckpointWriter& out) const {
  out.u64(n_);
  // Fixed dagsched.checkpoint/1 order: the initial-work column is written
  // even when elided in memory (it then equals the Dag's declared works).
  for (NodeId v = 0; v < n_; ++v) out.f64(initial_work(v));
  for (NodeId v = 0; v < n_; ++v) out.f64(rem_[v]);
  const std::size_t idx_len = 4 * static_cast<std::size_t>(n_);
  for (std::size_t i = 0; i < idx_len; ++i) out.u32(idx_[i]);
  out.u64(ready_size_);
  out.f64(total_remaining_);
  out.u32(nodes_remaining_);
}

void UnfoldingState::load_state(CheckpointReader& in) {
  const std::uint64_t n = in.u64();
  if (n != n_) {
    in.fail("unfolding has " + std::to_string(n) + " nodes, DAG has " +
            std::to_string(n_));
  }
  for (NodeId v = 0; v < n_; ++v) {
    const Work w = in.f64();
    if (init_ != nullptr) {
      init_[v] = w;
    } else if (w != dag_->node_work(v)) {
      // Fault-scaled run: materialize the initial-work column on the first
      // value that diverges from the Dag (entries before it were equal).
      ensure_init()[v] = w;
    }
  }
  for (NodeId v = 0; v < n_; ++v) rem_[v] = in.f64();
  const std::size_t idx_len = 4 * static_cast<std::size_t>(n_);
  for (std::size_t i = 0; i < idx_len; ++i) idx_[i] = in.u32();
  const std::uint64_t ready = in.u64();
  if (ready > n_) in.fail("ready count exceeds node count");
  ready_size_ = static_cast<NodeId>(ready);
  total_remaining_ = in.f64();
  const NodeId remaining = in.u32();
  if (remaining > n_) in.fail("nodes-remaining exceeds node count");
  nodes_remaining_ = remaining;
  // Restored invariants the engines rely on: every status byte is a valid
  // Status, and the ready list / ready-pos maps are mutually consistent.
  const NodeId* ready_list = idx_ + ready_off();
  const NodeId* ready_pos = idx_ + ready_pos_off();
  for (NodeId v = 0; v < n_; ++v) {
    const NodeId s = idx_[status_off() + v];
    if (s > static_cast<NodeId>(Status::kDone)) {
      in.fail("node " + std::to_string(v) + " has invalid status " +
              std::to_string(s));
    }
    const bool node_ready = s == static_cast<NodeId>(Status::kReady);
    if (node_ready !=
        (ready_pos[v] != kNpos && ready_pos[v] < ready_size_ &&
         ready_list[ready_pos[v]] == v)) {
      in.fail("node " + std::to_string(v) +
              " ready status disagrees with the ready list");
    }
  }
}

Work UnfoldingState::remaining_span() const {
  // Longest path over unfinished nodes using remaining work, computed along
  // the static topological order (a superset of the unfinished subgraph's
  // topological order).  The scratch is thread-local and shared across
  // instances: stale entries need no clearing -- the only entries read are
  // those of non-done predecessors, and the topological sweep writes every
  // non-done node before any successor reads it.
  thread_local std::vector<Work> span_depth;
  if (span_depth.size() < n_) span_depth.resize(n_);
  Work best = 0.0;
  for (NodeId v : dag_->topological_order()) {
    if (status(v) == Status::kDone) continue;
    Work prefix = 0.0;
    for (NodeId u : dag_->predecessors(v)) {
      if (status(u) == Status::kDone) continue;
      prefix = std::max(prefix, span_depth[u]);
    }
    span_depth[v] = prefix + rem_[v];
    best = std::max(best, span_depth[v]);
  }
  return best;
}

}  // namespace dagsched
