#include "dag/unfolding.h"

#include <algorithm>

#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

UnfoldingState::UnfoldingState(const Dag& dag)
    : dag_(&dag),
      status_(dag.num_nodes(), Status::kWaiting),
      initial_(dag.num_nodes()),
      remaining_(dag.num_nodes()),
      pending_preds_(dag.num_nodes()),
      ready_pos_(dag.num_nodes(), kNpos),
      total_remaining_(dag.total_work()),
      nodes_remaining_(dag.num_nodes()) {
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    initial_[v] = dag.node_work(v);
    remaining_[v] = initial_[v];
    pending_preds_[v] = dag.in_degree(v);
  }
  for (NodeId v : dag.sources()) {
    status_[v] = Status::kReady;
    ready_pos_[v] = ready_.size();
    ready_.push_back(v);
  }
}

UnfoldingState::UnfoldingState(const Dag& dag, std::vector<Work> works)
    : dag_(&dag),
      status_(dag.num_nodes(), Status::kWaiting),
      initial_(std::move(works)),
      remaining_(dag.num_nodes()),
      pending_preds_(dag.num_nodes()),
      ready_pos_(dag.num_nodes(), kNpos),
      nodes_remaining_(dag.num_nodes()) {
  DS_CHECK_MSG(initial_.size() == dag.num_nodes(),
               "works size " << initial_.size() << " != nodes "
                             << dag.num_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    DS_CHECK_MSG(initial_[v] > 0.0,
                 "node " << v << " has non-positive work " << initial_[v]);
    remaining_[v] = initial_[v];
    total_remaining_ += initial_[v];
    pending_preds_[v] = dag.in_degree(v);
  }
  for (NodeId v : dag.sources()) {
    status_[v] = Status::kReady;
    ready_pos_[v] = ready_.size();
    ready_.push_back(v);
  }
}

Work UnfoldingState::reset_progress(NodeId node) {
  DS_CHECK_MSG(status_[node] != Status::kDone,
               "reset_progress on completed node " << node);
  const Work lost = initial_[node] - remaining_[node];
  remaining_[node] = initial_[node];
  total_remaining_ += lost;
  return lost;
}

bool UnfoldingState::advance(NodeId node, Work amount,
                             std::vector<NodeId>* newly_ready) {
  DS_CHECK_MSG(status_[node] == Status::kReady,
               "advance on non-ready node " << node);
  DS_CHECK_MSG(amount >= 0.0, "negative work amount " << amount);
  remaining_[node] = snap_nonnegative(remaining_[node] - amount);
  total_remaining_ = snap_nonnegative(total_remaining_ - amount);
  DS_CHECK_MSG(remaining_[node] >= 0.0,
               "node " << node << " overshot by " << -remaining_[node]);
  if (approx_zero(remaining_[node])) {
    remaining_[node] = 0.0;
    mark_done(node, newly_ready);
    return true;
  }
  return false;
}

void UnfoldingState::mark_done(NodeId node, std::vector<NodeId>* newly_ready) {
  status_[node] = Status::kDone;
  --nodes_remaining_;
  if (nodes_remaining_ == 0) total_remaining_ = 0.0;  // clear float residue
  // Swap-remove from the ready list, keeping ready_pos_ consistent.
  const std::size_t pos = ready_pos_[node];
  DS_CHECK(pos != kNpos);
  const NodeId moved = ready_.back();
  ready_[pos] = moved;
  ready_pos_[moved] = pos;
  ready_.pop_back();
  ready_pos_[node] = kNpos;

  for (NodeId succ : dag_->successors(node)) {
    DS_CHECK(pending_preds_[succ] > 0);
    if (--pending_preds_[succ] == 0) {
      status_[succ] = Status::kReady;
      ready_pos_[succ] = ready_.size();
      ready_.push_back(succ);
      if (newly_ready != nullptr) newly_ready->push_back(succ);
    }
  }
}

Work UnfoldingState::remaining_span() const {
  // Longest path over unfinished nodes using remaining work, computed along
  // the static topological order (a superset of the unfinished subgraph's
  // topological order).
  std::vector<Work> depth(dag_->num_nodes(), 0.0);
  Work best = 0.0;
  for (NodeId v : dag_->topological_order()) {
    if (status_[v] == Status::kDone) continue;
    Work prefix = 0.0;
    for (NodeId u : dag_->predecessors(v)) {
      if (status_[u] == Status::kDone) continue;
      prefix = std::max(prefix, depth[u]);
    }
    depth[v] = prefix + remaining_[v];
    best = std::max(best, depth[v]);
  }
  return best;
}

}  // namespace dagsched
