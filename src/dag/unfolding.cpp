#include "dag/unfolding.h"

#include <algorithm>

#include "util/check.h"
#include "util/float_cmp.h"
#include "util/wire.h"

namespace dagsched {

void UnfoldingState::init_structure(const Dag& dag) {
  // Everything except the work columns: pending-pred counts, the (empty)
  // ready list, ready positions, statuses.  Sources become ready in id
  // order.
  NodeId* pending = idx_buf_.data() + pending_off();
  NodeId* ready_pos = idx_buf_.data() + ready_pos_off();
  for (NodeId v = 0; v < n_; ++v) {
    pending[v] = dag.in_degree(v);
    ready_pos[v] = kNpos;
    set_status(v, Status::kWaiting);
  }
  NodeId* ready = idx_buf_.data() + ready_off();
  for (NodeId v : dag.sources()) {
    set_status(v, Status::kReady);
    ready_pos[v] = static_cast<NodeId>(ready_size_);
    ready[ready_size_++] = v;
  }
}

UnfoldingState::UnfoldingState(const Dag& dag)
    : dag_(&dag),
      n_(dag.num_nodes()),
      work_buf_(2 * dag.num_nodes()),
      idx_buf_(4 * dag.num_nodes()),
      total_remaining_(dag.total_work()),
      nodes_remaining_(dag.num_nodes()) {
  for (NodeId v = 0; v < n_; ++v) {
    work_buf_[v] = dag.node_work(v);
    work_buf_[n_ + v] = work_buf_[v];
  }
  init_structure(dag);
}

UnfoldingState::UnfoldingState(const Dag& dag, std::vector<Work> works)
    : dag_(&dag),
      n_(dag.num_nodes()),
      work_buf_(2 * dag.num_nodes()),
      idx_buf_(4 * dag.num_nodes()),
      nodes_remaining_(dag.num_nodes()) {
  DS_CHECK_MSG(works.size() == dag.num_nodes(),
               "works size " << works.size() << " != nodes "
                             << dag.num_nodes());
  for (NodeId v = 0; v < n_; ++v) {
    DS_CHECK_MSG(works[v] > 0.0,
                 "node " << v << " has non-positive work " << works[v]);
    work_buf_[v] = works[v];
    work_buf_[n_ + v] = works[v];
    total_remaining_ += works[v];
  }
  init_structure(dag);
}

Work UnfoldingState::reset_progress(NodeId node) {
  DS_CHECK_MSG(status(node) != Status::kDone,
               "reset_progress on completed node " << node);
  const Work lost = work_buf_[node] - work_buf_[n_ + node];
  work_buf_[n_ + node] = work_buf_[node];
  total_remaining_ += lost;
  return lost;
}

bool UnfoldingState::advance(NodeId node, Work amount,
                             std::vector<NodeId>* newly_ready) {
  DS_CHECK_MSG(status(node) == Status::kReady,
               "advance on non-ready node " << node);
  DS_CHECK_MSG(amount >= 0.0, "negative work amount " << amount);
  Work& remaining = work_buf_[n_ + node];
  remaining = snap_nonnegative(remaining - amount);
  total_remaining_ = snap_nonnegative(total_remaining_ - amount);
  DS_CHECK_MSG(remaining >= 0.0,
               "node " << node << " overshot by " << -remaining);
  if (approx_zero(remaining)) {
    remaining = 0.0;
    mark_done(node, newly_ready);
    return true;
  }
  return false;
}

void UnfoldingState::mark_done(NodeId node, std::vector<NodeId>* newly_ready) {
  set_status(node, Status::kDone);
  --nodes_remaining_;
  if (nodes_remaining_ == 0) total_remaining_ = 0.0;  // clear float residue
  // Swap-remove from the ready list, keeping the position map consistent.
  NodeId* ready = idx_buf_.data() + ready_off();
  NodeId* ready_pos = idx_buf_.data() + ready_pos_off();
  const NodeId pos = ready_pos[node];
  DS_CHECK(pos != kNpos);
  const NodeId moved = ready[ready_size_ - 1];
  ready[pos] = moved;
  ready_pos[moved] = pos;
  --ready_size_;
  ready_pos[node] = kNpos;

  NodeId* pending = idx_buf_.data() + pending_off();
  for (NodeId succ : dag_->successors(node)) {
    DS_CHECK(pending[succ] > 0);
    if (--pending[succ] == 0) {
      set_status(succ, Status::kReady);
      ready_pos[succ] = static_cast<NodeId>(ready_size_);
      ready[ready_size_++] = succ;
      if (newly_ready != nullptr) newly_ready->push_back(succ);
    }
  }
}

void UnfoldingState::save_state(CheckpointWriter& out) const {
  out.u64(n_);
  for (const Work w : work_buf_) out.f64(w);
  for (const NodeId v : idx_buf_) out.u32(v);
  out.u64(ready_size_);
  out.f64(total_remaining_);
  out.u32(nodes_remaining_);
}

void UnfoldingState::load_state(CheckpointReader& in) {
  const std::uint64_t n = in.u64();
  if (n != n_) {
    in.fail("unfolding has " + std::to_string(n) + " nodes, DAG has " +
            std::to_string(n_));
  }
  for (Work& w : work_buf_) w = in.f64();
  for (NodeId& v : idx_buf_) v = in.u32();
  const std::uint64_t ready = in.u64();
  if (ready > n_) in.fail("ready count exceeds node count");
  ready_size_ = static_cast<std::size_t>(ready);
  total_remaining_ = in.f64();
  const NodeId remaining = in.u32();
  if (remaining > n_) in.fail("nodes-remaining exceeds node count");
  nodes_remaining_ = remaining;
  // Restored invariants the engines rely on: every status byte is a valid
  // Status, and the ready list / ready-pos maps are mutually consistent.
  const NodeId* ready_list = idx_buf_.data() + ready_off();
  const NodeId* ready_pos = idx_buf_.data() + ready_pos_off();
  for (NodeId v = 0; v < n_; ++v) {
    const NodeId s = idx_buf_[status_off() + v];
    if (s > static_cast<NodeId>(Status::kDone)) {
      in.fail("node " + std::to_string(v) + " has invalid status " +
              std::to_string(s));
    }
    const bool node_ready = s == static_cast<NodeId>(Status::kReady);
    if (node_ready !=
        (ready_pos[v] != kNpos && ready_pos[v] < ready_size_ &&
         ready_list[ready_pos[v]] == v)) {
      in.fail("node " + std::to_string(v) +
              " ready status disagrees with the ready list");
    }
  }
}

Work UnfoldingState::remaining_span() const {
  // Longest path over unfinished nodes using remaining work, computed along
  // the static topological order (a superset of the unfinished subgraph's
  // topological order).  span_depth_ is not cleared between calls: the only
  // entries read are those of non-done predecessors, and the topological
  // sweep writes every non-done node before any successor reads it.
  span_depth_.resize(n_);
  Work best = 0.0;
  for (NodeId v : dag_->topological_order()) {
    if (status(v) == Status::kDone) continue;
    Work prefix = 0.0;
    for (NodeId u : dag_->predecessors(v)) {
      if (status(u) == Status::kDone) continue;
      prefix = std::max(prefix, span_depth_[u]);
    }
    span_depth_[v] = prefix + work_buf_[n_ + v];
    best = std::max(best, span_depth_[v]);
  }
  return best;
}

}  // namespace dagsched
