// Graphviz DOT export for visual inspection of generated DAGs.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/dag.h"

namespace dagsched {

/// Writes `dag` in DOT format.  Node labels show "id / work"; critical-path
/// nodes (those whose top+bottom level equals the span) are highlighted.
void write_dot(std::ostream& os, const Dag& dag,
               const std::string& graph_name = "dag");

/// Convenience overload returning the DOT text.
std::string to_dot(const Dag& dag, const std::string& graph_name = "dag");

}  // namespace dagsched
