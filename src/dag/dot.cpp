#include "dag/dot.h"

#include <ostream>
#include <sstream>

#include "util/float_cmp.h"

namespace dagsched {

void write_dot(std::ostream& os, const Dag& dag,
               const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=circle, fontsize=10];\n";
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    // A node is on a critical path iff the longest path through it has the
    // full span weight.
    const bool critical =
        approx_eq(dag.top_level(v) + dag.bottom_level(v) - dag.node_work(v),
                  dag.span());
    os << "  n" << v << " [label=\"" << v << "\\n" << dag.node_work(v) << "\"";
    if (critical) os << ", style=filled, fillcolor=lightcoral";
    os << "];\n";
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (NodeId succ : dag.successors(v)) {
      os << "  n" << v << " -> n" << succ << ";\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const Dag& dag, const std::string& graph_name) {
  std::ostringstream oss;
  write_dot(oss, dag, graph_name);
  return oss.str();
}

}  // namespace dagsched
