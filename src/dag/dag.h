// Immutable DAG program representation.
//
// A job's program is a directed acyclic graph whose nodes are sequential
// chunks of work and whose edges are precedence constraints (the model of
// Cilk/OpenMP-style parallel programs used by the paper).  The structure is
// stored in CSR form (flat edge arrays + offsets) for cache-friendly
// traversal; derived metrics (total work W, span L, per-node longest-path
// heights) are computed once at construction.
//
// Instances are created through DagBuilder (builder.h) or the generators
// (generators.h) and are immutable afterwards; runtime execution state lives
// in UnfoldingState (unfolding.h).
#pragma once

#include <span>
#include <vector>

#include "util/types.h"

namespace dagsched {

class DagBuilder;

class Dag {
 public:
  /// Number of nodes. DAGs are non-empty.
  NodeId num_nodes() const { return static_cast<NodeId>(work_.size()); }

  std::size_t num_edges() const { return succ_flat_.size(); }

  /// Processing time of `node` on a unit-speed processor. Always > 0.
  Work node_work(NodeId node) const { return work_[node]; }

  std::span<const NodeId> successors(NodeId node) const {
    return {succ_flat_.data() + succ_off_[node],
            succ_off_[node + 1] - succ_off_[node]};
  }

  std::span<const NodeId> predecessors(NodeId node) const {
    return {pred_flat_.data() + pred_off_[node],
            pred_off_[node + 1] - pred_off_[node]};
  }

  NodeId in_degree(NodeId node) const {
    return static_cast<NodeId>(pred_off_[node + 1] - pred_off_[node]);
  }

  NodeId out_degree(NodeId node) const {
    return static_cast<NodeId>(succ_off_[node + 1] - succ_off_[node]);
  }

  /// Total work W = sum of node processing times.
  Work total_work() const { return total_work_; }

  /// Span (critical-path length) L = weight of the heaviest directed path.
  Work span() const { return span_; }

  /// Nodes with no predecessors; non-empty for any valid DAG.
  std::span<const NodeId> sources() const { return sources_; }

  /// Nodes with no successors.
  std::span<const NodeId> sinks() const { return sinks_; }

  /// A topological order of all nodes (sources first).
  std::span<const NodeId> topological_order() const { return topo_; }

  /// Longest-path weight of any path *starting* at `node`, inclusive of the
  /// node's own work ("bottom level").  max over sources == span().
  /// Used by critical-path-aware node-selection policies: a clairvoyant
  /// executor runs high-bottom-level nodes first; the Theorem-1 adversary
  /// runs low-bottom-level nodes first.
  Work bottom_level(NodeId node) const { return bottom_level_[node]; }

  /// Longest-path weight of any path *ending* at `node`, inclusive.
  Work top_level(NodeId node) const { return top_level_[node]; }

 private:
  friend class DagBuilder;
  Dag() = default;

  std::vector<Work> work_;
  std::vector<std::size_t> succ_off_, pred_off_;
  std::vector<NodeId> succ_flat_, pred_flat_;
  std::vector<NodeId> sources_, sinks_, topo_;
  std::vector<Work> bottom_level_, top_level_;
  Work total_work_ = 0.0;
  Work span_ = 0.0;
};

}  // namespace dagsched
