#include "dag/builder.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace dagsched {

void DagBuilder::reserve(std::size_t nodes, std::size_t edges) {
  work_.reserve(nodes);
  edges_.reserve(edges);
}

NodeId DagBuilder::add_node(Work processing_time) {
  if (!(processing_time > 0.0)) {
    throw std::invalid_argument("node processing time must be > 0, got " +
                                std::to_string(processing_time));
  }
  if (work_.size() >= std::numeric_limits<NodeId>::max()) {
    throw std::invalid_argument("too many nodes");
  }
  work_.push_back(processing_time);
  return static_cast<NodeId>(work_.size() - 1);
}

void DagBuilder::add_edge(NodeId from, NodeId to) {
  if (from >= work_.size() || to >= work_.size()) {
    throw std::invalid_argument("edge endpoint out of range");
  }
  if (from == to) {
    throw std::invalid_argument("self-edge on node " + std::to_string(from));
  }
  edges_.emplace_back(from, to);
}

std::pair<NodeId, NodeId> DagBuilder::add_chain(std::size_t count,
                                                Work node_work) {
  if (count == 0) throw std::invalid_argument("add_chain: count must be > 0");
  const NodeId first = add_node(node_work);
  NodeId prev = first;
  for (std::size_t i = 1; i < count; ++i) {
    const NodeId next = add_node(node_work);
    add_edge(prev, next);
    prev = next;
  }
  return {first, prev};
}

Dag DagBuilder::build() && {
  if (work_.empty()) throw std::invalid_argument("DAG must be non-empty");

  // Sort and deduplicate edges; duplicates are rejected (they usually
  // indicate a generator bug and would skew in-degree bookkeeping).
  std::sort(edges_.begin(), edges_.end());
  const auto dup = std::adjacent_find(edges_.begin(), edges_.end());
  if (dup != edges_.end()) {
    throw std::invalid_argument("duplicate edge " + std::to_string(dup->first) +
                                "->" + std::to_string(dup->second));
  }

  Dag dag;
  const std::size_t n = work_.size();
  dag.work_ = std::move(work_);

  // Build CSR adjacency in both directions.
  dag.succ_off_.assign(n + 1, 0);
  dag.pred_off_.assign(n + 1, 0);
  for (const auto& [from, to] : edges_) {
    ++dag.succ_off_[from + 1];
    ++dag.pred_off_[to + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    dag.succ_off_[i + 1] += dag.succ_off_[i];
    dag.pred_off_[i + 1] += dag.pred_off_[i];
  }
  dag.succ_flat_.resize(edges_.size());
  dag.pred_flat_.resize(edges_.size());
  {
    std::vector<std::size_t> succ_cursor(dag.succ_off_.begin(),
                                         dag.succ_off_.end() - 1);
    std::vector<std::size_t> pred_cursor(dag.pred_off_.begin(),
                                         dag.pred_off_.end() - 1);
    for (const auto& [from, to] : edges_) {
      dag.succ_flat_[succ_cursor[from]++] = to;
      dag.pred_flat_[pred_cursor[to]++] = from;
    }
  }

  // Kahn topological sort; doubles as the acyclicity check.
  std::vector<NodeId> indegree(n);
  for (NodeId v = 0; v < n; ++v) indegree[v] = dag.in_degree(v);
  dag.topo_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[v] == 0) {
      dag.topo_.push_back(v);
      dag.sources_.push_back(v);
    }
  }
  for (std::size_t head = 0; head < dag.topo_.size(); ++head) {
    const NodeId u = dag.topo_[head];
    for (NodeId v : dag.successors(u)) {
      if (--indegree[v] == 0) dag.topo_.push_back(v);
    }
  }
  if (dag.topo_.size() != n) {
    throw std::invalid_argument("DAG contains a cycle");
  }

  for (NodeId v = 0; v < n; ++v) {
    if (dag.out_degree(v) == 0) dag.sinks_.push_back(v);
  }

  // Longest-path levels via one forward and one backward sweep of the
  // topological order; span and total work fall out of the same pass.
  dag.top_level_.assign(n, 0.0);
  dag.bottom_level_.assign(n, 0.0);
  dag.total_work_ = 0.0;
  for (NodeId v : dag.topo_) {
    Work longest_prefix = 0.0;
    for (NodeId u : dag.predecessors(v)) {
      longest_prefix = std::max(longest_prefix, dag.top_level_[u]);
    }
    dag.top_level_[v] = longest_prefix + dag.node_work(v);
    dag.total_work_ += dag.node_work(v);
  }
  for (auto it = dag.topo_.rbegin(); it != dag.topo_.rend(); ++it) {
    const NodeId v = *it;
    Work longest_suffix = 0.0;
    for (NodeId u : dag.successors(v)) {
      longest_suffix = std::max(longest_suffix, dag.bottom_level_[u]);
    }
    dag.bottom_level_[v] = longest_suffix + dag.node_work(v);
  }
  dag.span_ = 0.0;
  for (NodeId v : dag.sources_) {
    dag.span_ = std::max(dag.span_, dag.bottom_level_[v]);
  }
  DS_CHECK(dag.span_ > 0.0);
  DS_CHECK(dag.span_ <= dag.total_work_ + 1e-9);
  return dag;
}

}  // namespace dagsched
