#include "dag/dag.h"

// Dag is a passive data holder; all logic lives in DagBuilder (construction)
// and UnfoldingState (execution).  This translation unit exists so the class
// has a home for future out-of-line members and to anchor the vtable-free
// type in one object file.

namespace dagsched {}  // namespace dagsched
