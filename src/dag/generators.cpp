#include "dag/generators.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "dag/builder.h"
#include "util/check.h"

namespace dagsched {

Work WorkDist::sample(Rng& rng) const {
  double w = 0.0;
  switch (kind) {
    case Kind::kConstant: w = a; break;
    case Kind::kUniform: w = rng.uniform(a, b); break;
    case Kind::kLognormal: w = rng.lognormal(a, b); break;
    case Kind::kPareto: w = rng.pareto(a, b); break;
  }
  // Node weights must be strictly positive for a valid Dag.
  return std::max(w, 1e-9);
}

Dag make_single_node(Work w) {
  DagBuilder b;
  b.add_node(w);
  return std::move(b).build();
}

Dag make_chain(std::size_t nodes, Work node_work) {
  DagBuilder b;
  b.add_chain(nodes, node_work);
  return std::move(b).build();
}

Dag make_parallel_block(std::size_t nodes, Work node_work) {
  if (nodes == 0) throw std::invalid_argument("block needs >= 1 node");
  DagBuilder b;
  b.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) b.add_node(node_work);
  return std::move(b).build();
}

Dag make_fig1_dag(ProcCount m, std::size_t chain_nodes, Work node_work) {
  if (m < 2) throw std::invalid_argument("fig1 DAG requires m >= 2");
  if (chain_nodes == 0) throw std::invalid_argument("fig1 needs a chain");
  DagBuilder b;
  const std::size_t block_nodes = static_cast<std::size_t>(m - 1) * chain_nodes;
  b.reserve(chain_nodes + block_nodes, chain_nodes - 1);
  b.add_chain(chain_nodes, node_work);
  for (std::size_t i = 0; i < block_nodes; ++i) b.add_node(node_work);
  return std::move(b).build();
}

Dag make_fig2_dag(std::size_t chain_nodes, std::size_t block_nodes,
                  Work node_size) {
  if (chain_nodes == 0 || block_nodes == 0) {
    throw std::invalid_argument("fig2 needs chain and block nodes");
  }
  DagBuilder b;
  b.reserve(chain_nodes + block_nodes, chain_nodes - 1 + block_nodes);
  const auto [first, last] = b.add_chain(chain_nodes, node_size);
  (void)first;
  for (std::size_t i = 0; i < block_nodes; ++i) {
    const NodeId blk = b.add_node(node_size);
    b.add_edge(last, blk);
  }
  return std::move(b).build();
}

Dag make_fork_join(std::size_t segments, std::size_t width, Work node_work,
                   Work sync_work) {
  if (segments == 0 || width == 0) {
    throw std::invalid_argument("fork_join needs segments >= 1, width >= 1");
  }
  DagBuilder b;
  NodeId prev_join = kInvalidNode;
  for (std::size_t s = 0; s < segments; ++s) {
    const NodeId fork = b.add_node(sync_work);
    if (prev_join != kInvalidNode) b.add_edge(prev_join, fork);
    const NodeId join = b.add_node(sync_work);
    for (std::size_t i = 0; i < width; ++i) {
      const NodeId body = b.add_node(node_work);
      b.add_edge(fork, body);
      b.add_edge(body, join);
    }
    prev_join = join;
  }
  return std::move(b).build();
}

Dag make_wavefront(std::size_t rows, std::size_t cols, Work node_work) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("wavefront needs rows, cols >= 1");
  }
  DagBuilder b;
  b.reserve(rows * cols, 2 * rows * cols);
  // Row-major node ids.
  for (std::size_t i = 0; i < rows * cols; ++i) b.add_node(node_work);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (r > 0) b.add_edge(id(r - 1, c), id(r, c));
      if (c > 0) b.add_edge(id(r, c - 1), id(r, c));
    }
  }
  return std::move(b).build();
}

Dag make_stencil_1d(std::size_t iterations, std::size_t width,
                    Work node_work) {
  if (iterations == 0 || width == 0) {
    throw std::invalid_argument("stencil needs iterations, width >= 1");
  }
  DagBuilder b;
  b.reserve(iterations * width, 3 * iterations * width);
  for (std::size_t i = 0; i < iterations * width; ++i) b.add_node(node_work);
  auto id = [width](std::size_t t, std::size_t i) {
    return static_cast<NodeId>(t * width + i);
  };
  for (std::size_t t = 1; t < iterations; ++t) {
    for (std::size_t i = 0; i < width; ++i) {
      if (i > 0) b.add_edge(id(t - 1, i - 1), id(t, i));
      b.add_edge(id(t - 1, i), id(t, i));
      if (i + 1 < width) b.add_edge(id(t - 1, i + 1), id(t, i));
    }
  }
  return std::move(b).build();
}

Dag make_map_reduce(std::size_t mappers, std::size_t reducers, Work map_work,
                    Work reduce_work, Work output_work) {
  if (mappers == 0 || reducers == 0) {
    throw std::invalid_argument("map_reduce needs mappers, reducers >= 1");
  }
  DagBuilder b;
  b.reserve(mappers + reducers + 1, mappers * reducers + reducers);
  std::vector<NodeId> maps, reduces;
  for (std::size_t i = 0; i < mappers; ++i) maps.push_back(b.add_node(map_work));
  for (std::size_t i = 0; i < reducers; ++i) {
    reduces.push_back(b.add_node(reduce_work));
  }
  const NodeId output = b.add_node(output_work);
  for (const NodeId map : maps) {
    for (const NodeId reduce : reduces) b.add_edge(map, reduce);
  }
  for (const NodeId reduce : reduces) b.add_edge(reduce, output);
  return std::move(b).build();
}

Dag make_layered_random(Rng& rng, const LayeredParams& params) {
  DS_CHECK(params.layers >= 1);
  DS_CHECK(params.min_width >= 1 && params.min_width <= params.max_width);
  DagBuilder b;
  std::vector<NodeId> prev_layer;
  for (std::size_t layer = 0; layer < params.layers; ++layer) {
    const auto width = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(params.min_width),
        static_cast<std::int64_t>(params.max_width)));
    std::vector<NodeId> this_layer;
    this_layer.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      const NodeId v = b.add_node(params.work.sample(rng));
      if (!prev_layer.empty()) {
        // Guarantee one predecessor so every non-first layer respects depth.
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(prev_layer.size()) - 1));
        b.add_edge(prev_layer[pick], v);
        for (std::size_t j = 0; j < prev_layer.size(); ++j) {
          if (j != pick && rng.bernoulli(params.edge_prob)) {
            b.add_edge(prev_layer[j], v);
          }
        }
      }
      this_layer.push_back(v);
    }
    prev_layer = std::move(this_layer);
  }
  return std::move(b).build();
}

namespace {

/// Recursive helper for series-parallel construction; returns (source, sink)
/// node ids of the generated sub-DAG inside `b`.
std::pair<NodeId, NodeId> sp_generate(DagBuilder& b, Rng& rng,
                                      const SeriesParallelParams& params,
                                      std::size_t depth) {
  if (depth == 0) {
    const NodeId leaf = b.add_node(params.leaf_work.sample(rng));
    return {leaf, leaf};
  }
  if (rng.bernoulli(params.parallel_prob)) {
    // Parallel composition: fork -> branches -> join.
    const NodeId fork = b.add_node(params.sync_work);
    const NodeId join = b.add_node(params.sync_work);
    const auto branches = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(params.min_branch),
        static_cast<std::int64_t>(params.max_branch)));
    for (std::size_t i = 0; i < branches; ++i) {
      const auto [src, sink] = sp_generate(b, rng, params, depth - 1);
      b.add_edge(fork, src);
      b.add_edge(sink, join);
    }
    return {fork, join};
  }
  // Series composition of two halves.
  const auto [src1, sink1] = sp_generate(b, rng, params, depth - 1);
  const auto [src2, sink2] = sp_generate(b, rng, params, depth - 1);
  b.add_edge(sink1, src2);
  return {src1, sink2};
}

}  // namespace

Dag make_series_parallel(Rng& rng, const SeriesParallelParams& params) {
  DS_CHECK(params.min_branch >= 2 && params.min_branch <= params.max_branch);
  DagBuilder b;
  (void)sp_generate(b, rng, params, params.max_depth);
  return std::move(b).build();
}

Dag make_random_dag(Rng& rng, const RandomDagParams& params) {
  DS_CHECK(params.nodes >= 1);
  DagBuilder b;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    b.add_node(params.work.sample(rng));
  }
  for (std::size_t i = 0; i < params.nodes; ++i) {
    for (std::size_t j = i + 1; j < params.nodes; ++j) {
      if (rng.bernoulli(params.edge_prob)) {
        b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return std::move(b).build();
}

}  // namespace dagsched
