// Structured parse diagnostics for workload/trace ingestion.
//
// Every ingestion failure is reported as a ParseError carrying the source
// name (file path or "<stream>"), the 1-based line, and the 1-based column
// of the offending token, formatted GCC-style as "file:line:col: message".
// The CLI catches ParseError specifically and exits with code 2, so
// malformed input never surfaces as an uncaught exception or a crash.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dagsched {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string source, std::size_t line, std::size_t column,
             const std::string& message)
      : std::runtime_error(format(source, line, column, message)),
        source_(std::move(source)),
        line_(line),
        column_(column) {}

  const std::string& source() const { return source_; }
  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  static std::string format(const std::string& source, std::size_t line,
                            std::size_t column, const std::string& message) {
    return source + ":" + std::to_string(line) + ":" + std::to_string(column) +
           ": " + message;
  }

  std::string source_;
  std::size_t line_;
  std::size_t column_;
};

}  // namespace dagsched
