// Binary wire primitives for the checkpoint subsystem (sim/checkpoint/).
//
// CheckpointWriter appends fixed-width little-endian scalars and
// length-prefixed strings to a growable buffer; CheckpointReader replays
// them with bounds checking and throws CheckpointError -- a ParseError
// subclass, so the CLI's parse-failure handling (exit 2) covers corrupt
// checkpoints with no extra plumbing -- on any structural violation.
// Determinism matters more than speed here: every value has exactly one
// encoding (doubles as IEEE-754 bit patterns, never a text round-trip), so
// serializing the same state twice produces identical bytes and checkpoint
// files can be compared with cmp.
//
// The primitives live in util/ rather than sim/checkpoint/ because layers
// below sim (dag/unfolding arenas, core/baselines scheduler state) encode
// their own sections and must not depend upward on the engine library.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/parse_error.h"

namespace dagsched {

/// Structural failure while decoding a checkpoint: truncation, CRC
/// mismatch, bad magic, version skew, malformed header.  The ParseError
/// "column" carries the 1-based byte offset inside the named region, so
/// diagnostics read `run.ckpt:1:17: section 'kernel': ...`.
class CheckpointError : public ParseError {
 public:
  CheckpointError(std::string source, const std::string& region,
                  std::size_t byte_offset, const std::string& message)
      : ParseError(std::move(source), 1, byte_offset + 1,
                   region.empty() ? message
                                  : "section '" + region + "': " + message) {}
};

/// Append-only little-endian encoder.
class CheckpointWriter {
 public:
  void u8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  void boolean(bool value) { u8(value ? 1 : 0); }
  void str(std::string_view value) {
    u64(value.size());
    buf_.append(value);
  }
  /// Un-prefixed bytes; the reader side must know the length.
  void raw(std::string_view value) { buf_.append(value); }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed byte range; the underlying
/// storage must outlive the reader.  Every primitive throws
/// CheckpointError instead of reading past the end, and `count` guards
/// element counts against the remaining payload so a corrupt length can
/// never drive a multi-gigabyte allocation.
class CheckpointReader {
 public:
  CheckpointReader(std::string_view data, std::string source,
                   std::string region)
      : data_(data), source_(std::move(source)), region_(std::move(region)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean();
  std::string str();
  std::string_view bytes(std::size_t n);

  /// Reads a u64 element count and verifies the remaining bytes can hold
  /// `count * min_element_bytes`.
  std::uint64_t count(std::size_t min_element_bytes);

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Fails unless every byte has been consumed (catches reader/writer
  /// schema drift and appended garbage).
  void expect_done();

  [[noreturn]] void fail(const std::string& message) const;

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  std::string source_;
  std::string region_;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the variant zlib
/// uses; guards each checkpoint section against bit rot.
std::uint32_t crc32(std::string_view data);

/// FNV-1a 64-bit; used for the run-configuration fingerprint stored in the
/// checkpoint header.  `seed` chains multi-part hashes.
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 14695981039346656037ull);

}  // namespace dagsched
