// Minimal CSV writer for experiment output.
//
// Values are quoted only when needed (comma, quote, newline); numeric cells
// are written with enough precision to round-trip doubles.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace dagsched {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits `header` as the first row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one data row; must have the same arity as the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles/ints into cells.
  static std::string cell(double v);
  static std::string cell(long long v);
  static std::string cell(std::string_view s) { return std::string(s); }

  std::size_t columns() const { return columns_; }

 private:
  static std::string escape(const std::string& raw);

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace dagsched
