// Minimal CSV writer plus a column-tracking line splitter for ingestion.
//
// Values are quoted only when needed (comma, quote, newline); numeric cells
// are written with enough precision to round-trip doubles.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace dagsched {

/// One cell of a parsed CSV line.  `column` is the 1-based character offset
/// of the cell's first character in the original line, so parse diagnostics
/// can point at the offending field (see util/parse_error.h).
struct CsvCell {
  std::string text;
  std::size_t column = 1;
};

/// Splits one CSV line into cells, honoring double-quoted cells with ""
/// escapes and stripping a trailing CR (CRLF input).  Surrounding whitespace
/// of unquoted cells is preserved; callers trim as needed.  An unterminated
/// quote yields the remainder of the line as the final cell.
std::vector<CsvCell> split_csv_line(std::string_view line);

class CsvWriter {
 public:
  /// Opens `path` for writing and emits `header` as the first row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one data row; must have the same arity as the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles/ints into cells.
  static std::string cell(double v);
  static std::string cell(long long v);
  static std::string cell(std::string_view s) { return std::string(s); }

  std::size_t columns() const { return columns_; }

 private:
  static std::string escape(const std::string& raw);

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace dagsched
