// Aligned plain-text table printer used by benches to emit paper-style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dagsched {

/// Collects rows of string cells and prints them with aligned columns.
///
///   TextTable t({"m", "speed", "ratio"});
///   t.add_row({"4", "1.0", "2.31"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` significant digits.
  static std::string num(double v, int digits = 4);
  static std::string num(long long v);

  void print(std::ostream& os) const;

  /// Writes header + rows as CSV (for downstream plotting).
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dagsched
