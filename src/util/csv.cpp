#include "util/csv.h"

#include <charconv>
#include <stdexcept>

#include "util/check.h"

namespace dagsched {

std::vector<CsvCell> split_csv_line(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<CsvCell> cells;
  std::size_t i = 0;
  while (true) {
    CsvCell cell;
    cell.column = i + 1;
    if (i < line.size() && line[i] == '"') {
      ++i;
      while (i < line.size()) {
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            cell.text += '"';
            i += 2;
          } else {
            ++i;
            break;
          }
        } else {
          cell.text += line[i++];
        }
      }
      // Trailing garbage after the closing quote is kept verbatim so the
      // caller's field validation reports it rather than silently dropping it.
      while (i < line.size() && line[i] != ',') cell.text += line[i++];
    } else {
      while (i < line.size() && line[i] != ',') cell.text += line[i++];
    }
    cells.push_back(std::move(cell));
    if (i >= line.size()) break;
    ++i;  // skip ','
  }
  return cells;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  DS_CHECK_MSG(!header.empty(), "CSV header must be non-empty");
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  DS_CHECK_MSG(cells.size() == columns_,
               "CSV row arity " << cells.size() << " != header " << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::cell(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  DS_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

std::string CsvWriter::cell(long long v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  DS_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

std::string CsvWriter::escape(const std::string& raw) {
  const bool needs_quote =
      raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return raw;
  std::string quoted = "\"";
  for (char ch : raw) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace dagsched
