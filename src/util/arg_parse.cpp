#include "util/arg_parse.h"

#include <charconv>
#include <stdexcept>

namespace dagsched {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare flag
    }
    if (name.empty()) throw std::invalid_argument("empty flag name");
    values_[name] = value;
    consumed_[name] = false;
  }
}

std::optional<std::string> ArgParser::take(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& default_value) {
  return take(name).value_or(default_value);
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t default_value) {
  const auto raw = take(name);
  if (!raw) return default_value;
  std::int64_t value = 0;
  const char* begin = raw->data();
  const char* end = begin + raw->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("--" + name + ": not an integer: " + *raw);
  }
  return value;
}

double ArgParser::get_double(const std::string& name, double default_value) {
  const auto raw = take(name);
  if (!raw) return default_value;
  try {
    std::size_t used = 0;
    const double value = std::stod(*raw, &used);
    if (used != raw->size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not a number: " + *raw);
  }
}

bool ArgParser::get_flag(const std::string& name) {
  const auto raw = take(name);
  if (!raw) return false;
  if (*raw == "true" || *raw == "1") return true;
  if (*raw == "false" || *raw == "0") return false;
  throw std::invalid_argument("--" + name + ": not a boolean: " + *raw);
}

void ArgParser::finish() const {
  std::string unknown;
  for (const auto& [name, used] : consumed_) {
    if (!used) unknown += (unknown.empty() ? "--" : ", --") + name;
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("unknown flag(s): " + unknown);
  }
}

}  // namespace dagsched
