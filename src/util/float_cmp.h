// Tolerant floating-point comparisons for simulation time/work arithmetic.
//
// The event engine accumulates work as `remaining -= rate * dt`; tiny
// residues (~1e-12) must be treated as zero or completion events never fire.
// All engine and scheduler comparisons of times/works go through this header
// so that the tolerance lives in exactly one place.
#pragma once

#include <algorithm>
#include <cmath>

namespace dagsched {

/// Absolute tolerance used to snap nearly-equal times/works together.
inline constexpr double kEps = 1e-9;

/// True if a and b are equal within tolerance (absolute + relative).
inline bool approx_eq(double a, double b, double eps = kEps) {
  const double diff = std::fabs(a - b);
  if (diff <= eps) return true;
  return diff <= eps * std::max(std::fabs(a), std::fabs(b));
}

/// True if a < b and not approx_eq(a, b).
inline bool approx_lt(double a, double b, double eps = kEps) {
  return a < b && !approx_eq(a, b, eps);
}

/// True if a > b and not approx_eq(a, b).
inline bool approx_gt(double a, double b, double eps = kEps) {
  return a > b && !approx_eq(a, b, eps);
}

/// True if a <= b or approx_eq(a, b).
inline bool approx_le(double a, double b, double eps = kEps) {
  return a < b || approx_eq(a, b, eps);
}

/// True if a >= b or approx_eq(a, b).
inline bool approx_ge(double a, double b, double eps = kEps) {
  return a > b || approx_eq(a, b, eps);
}

/// True if x is within tolerance of zero.
inline bool approx_zero(double x, double eps = kEps) {
  return std::fabs(x) <= eps;
}

/// Clamp tiny negative residues (from floating subtraction) to exactly zero.
inline double snap_nonnegative(double x, double eps = kEps) {
  return (x < 0.0 && x > -eps) ? 0.0 : x;
}

}  // namespace dagsched
