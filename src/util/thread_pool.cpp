#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace dagsched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DS_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    DS_CHECK_MSG(!stop_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dagsched
