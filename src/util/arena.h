// Bump-arena and pooled-node allocation for the simulation hot path.
//
// Two allocators with one shared goal: after a warmup pass, steady-state
// simulation performs zero calls into the global heap (the contract tested
// by tests/test_zero_alloc.cpp).
//
//  - BumpArena: a chunked bump-pointer arena for flat buffers whose
//    lifetimes end together (per-job unfolding state, scratch batches).
//    Allocation is a pointer increment; reset() recycles the whole arena
//    without returning memory to the heap.  Once the arena has coalesced
//    into a single chunk large enough for the working set, reuse is
//    allocation-free.
//
//  - NodePool + PoolAllocator<T>: a fixed-size-node pool with an intrusive
//    free list, rebindable as a std::allocator replacement so node-based
//    containers (std::set in DensityOrderedQueue / ListScheduler) recycle
//    their tree nodes instead of hitting operator new per insert.
//
// Neither allocator is thread-safe; each simulation run owns its arenas.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dagsched {

/// Chunked bump-pointer arena.  `allocate` never fails (grows by doubling);
/// `reset` rewinds to empty, coalescing all chunks into one contiguous block
/// sized to the high-water mark so the next pass bump-allocates from a
/// single chunk with no heap traffic.
class BumpArena {
 public:
  BumpArena() = default;

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;
  BumpArena(BumpArena&&) = default;
  BumpArena& operator=(BumpArena&&) = default;

  /// Allocates `bytes` with alignment `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    DS_CHECK(align != 0 && (align & (align - 1)) == 0);
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (offset + bytes > chunk_size_) {
      grow(bytes + align);
      offset = (used_ + align - 1) & ~(align - 1);
    }
    void* p = chunks_.back().get() + offset;
    used_ = offset + bytes;
    total_used_ = retired_ + used_;
    if (total_used_ > high_water_) high_water_ = total_used_;
    return p;
  }

  /// Typed helper: allocates space for `n` objects of T (no construction).
  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds the arena to empty.  If allocation ever spilled into a second
  /// chunk, all chunks are replaced by one block sized to the high-water
  /// mark, so subsequent passes stay within a single chunk.
  void reset() {
    if (chunks_.size() > 1 || chunk_size_ < high_water_) {
      chunks_.clear();
      chunk_size_ = 0;
      grow(high_water_);
    }
    used_ = 0;
    retired_ = 0;
    total_used_ = 0;
  }

  /// Pre-sizes the arena so a working set of `bytes` fits in one chunk.
  /// Only valid while the arena is empty (nothing allocated since reset).
  /// Does not touch the high-water mark: that keeps tracking what was
  /// actually allocated (it is the telemetry unfolding_bytes gauge), not
  /// the caller's estimate.
  void reserve(std::size_t bytes) {
    DS_CHECK(total_used_ == 0);
    if (capacity() < bytes) {
      chunks_.clear();
      chunk_size_ = 0;
      used_ = 0;
      retired_ = 0;
      grow(bytes);
    }
  }

  /// Bytes currently handed out (including alignment padding).
  std::size_t used() const { return total_used_; }
  /// Largest `used()` ever observed — the steady-state working set.
  std::size_t high_water() const { return high_water_; }
  /// Bytes owned by the arena's chunks.
  std::size_t capacity() const { return retired_ + chunk_size_; }

 private:
  void grow(std::size_t need) {
    std::size_t next = chunk_size_ == 0 ? kInitialChunk : chunk_size_ * 2;
    while (next < need) next *= 2;
    retired_ += used_;
    // Plain new[]: default-initialization.  make_unique would value-init,
    // memsetting every chunk -- measurably slow at multi-MiB chunk sizes.
    chunks_.emplace_back(new std::byte[next]);
    chunk_size_ = next;
    used_ = 0;
  }

  static constexpr std::size_t kInitialChunk = 4096;

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t chunk_size_ = 0;   // bytes in chunks_.back()
  std::size_t used_ = 0;         // bytes used in chunks_.back()
  std::size_t retired_ = 0;      // bytes used in all earlier chunks
  std::size_t total_used_ = 0;
  std::size_t high_water_ = 0;
};

/// Fixed-node-size pool with an intrusive free list.  The node size is
/// pinned by the first allocation; all later allocations must match.  Freed
/// nodes are recycled LIFO; chunks are only returned to the heap on
/// destruction, so a clear()+refill cycle of any container backed by this
/// pool is heap-free once the pool has grown to the working-set size.
class NodePool {
 public:
  NodePool() = default;

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* allocate(std::size_t bytes) {
    if (node_size_ == 0) {
      node_size_ = bytes < sizeof(void*) ? sizeof(void*) : bytes;
    }
    DS_CHECK(bytes <= node_size_);
    if (free_list_ != nullptr) {
      void* p = free_list_;
      free_list_ = *static_cast<void**>(p);
      ++live_;
      return p;
    }
    if (next_ == chunk_end_) grow();
    void* p = next_;
    next_ += node_size_;
    ++live_;
    return p;
  }

  void deallocate(void* p) {
    *static_cast<void**>(p) = free_list_;
    free_list_ = p;
    --live_;
  }

  /// Nodes currently handed out.
  std::size_t live() const { return live_; }
  /// Bytes owned by the pool's chunks (capacity, not live bytes).
  std::size_t capacity_bytes() const { return capacity_nodes_ * node_size_; }

 private:
  void grow() {
    std::size_t count = chunk_nodes_ == 0 ? kInitialNodes : chunk_nodes_ * 2;
    // new[] not make_unique: skip the value-init memset of the whole chunk.
    chunks_.emplace_back(new std::byte[count * node_size_]);
    next_ = chunks_.back().get();
    chunk_end_ = next_ + count * node_size_;
    chunk_nodes_ = count;
    capacity_nodes_ += count;
  }

  static constexpr std::size_t kInitialNodes = 64;

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* next_ = nullptr;
  std::byte* chunk_end_ = nullptr;
  void* free_list_ = nullptr;
  std::size_t node_size_ = 0;
  std::size_t chunk_nodes_ = 0;
  std::size_t capacity_nodes_ = 0;
  std::size_t live_ = 0;
};

/// std::allocator-compatible adaptor over a NodePool.  Single-element
/// allocations (the only kind node-based containers make) come from the
/// pool; bulk allocations (rebound vector use, if any) fall back to the
/// heap.  The pool must outlive every container bound to it.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(NodePool* pool) : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(pool_->allocate(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    if (n == 1) {
      pool_->deallocate(p);
    } else {
      ::operator delete(p);
    }
  }

  NodePool* pool() const { return pool_; }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ == b.pool_;
  }
  friend bool operator!=(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ != b.pool_;
  }

 private:
  NodePool* pool_;
};

}  // namespace dagsched
