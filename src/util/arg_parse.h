// Minimal command-line flag parsing for the bench/example binaries.
//
//   ArgParser args(argc, argv);
//   const int m = args.get_int("m", 8);              // --m 16  or --m=16
//   const double load = args.get_double("load", 1.0);
//   const bool csv = args.get_flag("csv");           // --csv
//   args.finish();  // aborts on unknown/unconsumed flags (typo guard)
//
// Only long options (--name) are supported; values may be attached with
// '=' or follow as the next argument.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dagsched {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Typed getters with defaults; throw std::invalid_argument on malformed
  /// values.  Each call marks the flag as consumed.
  std::string get_string(const std::string& name,
                         const std::string& default_value);
  std::int64_t get_int(const std::string& name, std::int64_t default_value);
  double get_double(const std::string& name, double default_value);
  /// Presence flag: true if --name was given (with no value or "true"/"1").
  bool get_flag(const std::string& name);

  /// True if --name appeared at all (even as `--name=` with an empty
  /// value).  Does not consume: callers that need to distinguish "absent"
  /// from "present but empty" (strict value validation) pair this with a
  /// typed getter.
  bool has(const std::string& name) const {
    return values_.find(name) != values_.end();
  }

  /// Positional (non --flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Verifies every provided flag was consumed; throws
  /// std::invalid_argument listing unknown flags otherwise.
  void finish() const;

  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> take(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace dagsched
