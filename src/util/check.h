// Lightweight always-on invariant checking.
//
// DS_CHECK is used for programmer errors and simulator invariants; violations
// abort with a message.  It stays enabled in release builds: the simulator's
// correctness claims (work conservation, precedence safety) are part of the
// library's contract and benchmarks must not silently run a broken engine.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dagsched::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::cerr << "DS_CHECK failed: " << expr << "\n  at " << file << ":" << line;
  if (!msg.empty()) std::cerr << "\n  " << msg;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace dagsched::detail

#define DS_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dagsched::detail::check_failed(#cond, __FILE__, __LINE__, "");      \
    }                                                                       \
  } while (0)

#define DS_CHECK_MSG(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream ds_check_oss;                                      \
      ds_check_oss << __VA_ARGS__;                                          \
      ::dagsched::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                       ds_check_oss.str());                 \
    }                                                                       \
  } while (0)
