// Lightweight always-on invariant checking.
//
// DS_CHECK is used for programmer errors and simulator invariants; violations
// abort with a message.  It stays enabled in release builds: the simulator's
// correctness claims (work conservation, precedence safety) are part of the
// library's contract and benchmarks must not silently run a broken engine.
//
// Before aborting, check_failed invokes an optional process-wide failure
// hook.  The hook is how crash paths stay observable: obs/crash_dump.h uses
// it to flush the pending decision-event log and append a final
// `engine-abort` event, so a post-mortem retains the decision history that
// led to the violation.  The hook must not throw; a DS_CHECK failure inside
// the hook itself does not recurse (the second failure aborts directly).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dagsched {

/// Called with the fully formatted failure message ("DS_CHECK failed: ...")
/// before the process aborts.
using CheckFailureHook = std::function<void(const std::string& message)>;

/// Installs `hook` (empty = none) and returns the previously installed hook
/// so callers can restore it (see obs::CrashDumpGuard).
CheckFailureHook set_check_failure_hook(CheckFailureHook hook);

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace detail
}  // namespace dagsched

#define DS_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dagsched::detail::check_failed(#cond, __FILE__, __LINE__, "");      \
    }                                                                       \
  } while (0)

#define DS_CHECK_MSG(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream ds_check_oss;                                      \
      ds_check_oss << __VA_ARGS__;                                          \
      ::dagsched::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                       ds_check_oss.str());                 \
    }                                                                       \
  } while (0)
