// Minimal JSON document model used by the observability layer (run
// reports, decision event logs) and the bench report writers.
//
// Objects preserve insertion order so emitted documents are stable across
// runs (the report schema test relies on this), and numbers are written
// with enough precision to round-trip doubles.  The parser accepts strict
// JSON (RFC 8259) minus \u escapes beyond the BMP; it exists so the CLI can
// pretty-print saved reports and so tests can round-trip what we emit --
// it is not a general-purpose validating parser.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dagsched {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(unsigned value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::int64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::uint64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Typed accessors; DS_CHECK on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Array append (value must be an array).
  void push_back(JsonValue value);
  std::size_t size() const;

  /// Object insert-or-overwrite, preserving first-insertion order.
  void set(std::string key, JsonValue value);
  /// Object lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object lookup; DS_CHECK when absent.
  const JsonValue& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Compact single-line serialization.
  void write(std::ostream& out) const;
  /// Indented serialization (indent = spaces per level).
  void write_pretty(std::ostream& out, int indent = 2) const;
  std::string dump() const;

  friend bool operator==(const JsonValue& lhs, const JsonValue& rhs);

 private:
  void write_impl(std::ostream& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document from `text`.  On failure returns std::nullopt
/// semantics via the bool in the pair-style API below.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;  // message with character offset when !ok
};

JsonParseResult json_parse(std::string_view text);

/// Serializes a double the way the writer does (shortest round-trip form).
std::string json_number_to_string(double value);

}  // namespace dagsched
