#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dagsched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  DS_CHECK_MSG(n_ > 0, "min() of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  DS_CHECK_MSG(n_ > 0, "max() of empty RunningStats");
  return max_;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double x : samples_) total += x;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mu = mean();
  double m2 = 0.0;
  for (double x : samples_) m2 += (x - mu) * (x - mu);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

void SampleSet::ensure_sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double SampleSet::quantile(double q) const {
  DS_CHECK_MSG(!samples_.empty(), "quantile of empty SampleSet");
  DS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q=" << q);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace dagsched
