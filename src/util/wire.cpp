#include "util/wire.h"

#include <array>

namespace dagsched {

void CheckpointWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void CheckpointWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

std::uint8_t CheckpointReader::u8() {
  if (remaining() < 1) fail("truncated: expected 1 more byte");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t CheckpointReader::u32() {
  if (remaining() < 4) fail("truncated: expected a 4-byte integer");
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_++]))
             << shift;
  }
  return value;
}

std::uint64_t CheckpointReader::u64() {
  if (remaining() < 8) fail("truncated: expected an 8-byte integer");
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_++]))
             << shift;
  }
  return value;
}

bool CheckpointReader::boolean() {
  const std::uint8_t value = u8();
  if (value > 1) {
    fail("malformed boolean (byte " + std::to_string(value) + ")");
  }
  return value == 1;
}

std::string CheckpointReader::str() {
  const std::uint64_t length = u64();
  if (length > remaining()) {
    fail("truncated: string of length " + std::to_string(length) +
         " exceeds the " + std::to_string(remaining()) + " remaining bytes");
  }
  std::string value(data_.substr(pos_, static_cast<std::size_t>(length)));
  pos_ += static_cast<std::size_t>(length);
  return value;
}

std::string_view CheckpointReader::bytes(std::size_t n) {
  if (n > remaining()) {
    fail("truncated: expected " + std::to_string(n) + " more bytes, have " +
         std::to_string(remaining()));
  }
  const std::string_view view = data_.substr(pos_, n);
  pos_ += n;
  return view;
}

std::uint64_t CheckpointReader::count(std::size_t min_element_bytes) {
  const std::uint64_t n = u64();
  const std::uint64_t floor_bytes =
      min_element_bytes == 0 ? 0 : n * static_cast<std::uint64_t>(min_element_bytes);
  if (min_element_bytes != 0 &&
      (n > remaining() || floor_bytes / min_element_bytes != n ||
       floor_bytes > remaining())) {
    fail("malformed count " + std::to_string(n) + ": needs at least " +
         std::to_string(min_element_bytes) + " bytes per element but only " +
         std::to_string(remaining()) + " remain");
  }
  return n;
}

void CheckpointReader::expect_done() {
  if (!done()) {
    fail(std::to_string(remaining()) +
         " trailing bytes after the last expected field");
  }
}

void CheckpointReader::fail(const std::string& message) const {
  throw CheckpointError(source_, region_, pos_, message);
}

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char byte : data) {
    crc = table[(crc ^ static_cast<unsigned char>(byte)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char byte : data) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace dagsched
