// Cache-conscious 4-ary min-heap.
//
// Drop-in replacement for `std::priority_queue<T, std::vector<T>,
// std::greater<T>>` on the simulation hot path (kernel deadline heap,
// DeadlineScheduler P-expiry heap, fault-plan interval sweep).  A 4-ary
// layout halves the tree depth of a binary heap and keeps all four children
// of a node in one or two cache lines, which wins on the pop-heavy access
// pattern of an event heap.  Entries are kept compact ((Time, JobId) pairs);
// comparisons use `<` on T, so pair entries order lexicographically exactly
// as the std::greater priority_queue they replace.
//
// Parity note (docs/PERFORMANCE.md, "Decision-log parity"): for unique keys
// the pop sequence of any min-heap is the sorted order, so swapping heap
// arity cannot reorder decisions.  Lazy duplicate entries (same (time, job)
// pushed twice) are identical values and therefore inert.
//
// clear() retains capacity: a drained heap refills without heap traffic.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dagsched {

template <typename T>
class DaryHeap {
 public:
  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  const T& top() const {
    DS_CHECK(!data_.empty());
    return data_.front();
  }

  void push(T value) {
    data_.push_back(std::move(value));
    sift_up(data_.size() - 1);
  }

  template <typename... Args>
  void emplace(Args&&... args) {
    push(T(std::forward<Args>(args)...));
  }

  void pop() {
    DS_CHECK(!data_.empty());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
  }

  std::size_t memory_bytes() const { return data_.capacity() * sizeof(T); }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    while (i != 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!(data_[i] < data_[parent])) break;
      std::swap(data_[i], data_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (data_[c] < data_[best]) best = c;
      }
      if (!(data_[best] < data_[i])) break;
      std::swap(data_[i], data_[best]);
      i = best;
    }
  }

  std::vector<T> data_;
};

}  // namespace dagsched
