#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/check.h"
#include "util/csv.h"

namespace dagsched {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DS_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  DS_CHECK_MSG(cells.size() == header_.size(),
               "row arity " << cells.size() << " != header " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int digits) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string TextTable::num(long long v) { return std::to_string(v); }

void TextTable::write_csv(const std::string& path) const {
  CsvWriter csv(path, header_);
  for (const auto& row : rows_) csv.row(row);
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace dagsched
