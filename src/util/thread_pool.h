// Fixed-size worker pool for running independent simulation trials in
// parallel (one trial = one seed). Tasks must not throw; exceptions escaping
// a task terminate (simulation errors are bugs, reported via DS_CHECK).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dagsched {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe to call from multiple threads.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Convenience wrapper combining submit + wait_idle.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace dagsched
