// Deterministic pseudo-random number generation.
//
// We implement xoshiro256** (Blackman & Vigna) seeded via splitmix64 rather
// than using std::mt19937 so that (a) streams are cheap to split per-trial in
// parallel sweeps, and (b) sequences are reproducible across standard library
// implementations -- distribution results from libstdc++/libc++ differ, so we
// also implement the distributions we need ourselves.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dagsched {

/// splitmix64 step; used for seeding and for hashing seeds into streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Derive an independent stream for sub-experiment `index`.
  /// Equivalent to hashing (original seed, index); streams do not overlap in
  /// practice because each reseed decorrelates the full 256-bit state.
  Rng split(std::uint64_t index) const;

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double exponential(double rate);

  /// true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed work sizes).
  double pareto(double scale, double shape);

  /// Log-normal via Box-Muller: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
};

}  // namespace dagsched
