// Core scalar types shared across the library.
//
// Time and work are continuous quantities (the paper's "time steps" are unit
// intervals; the event engine generalizes to real-valued time).  Identifiers
// are strongly typed to prevent mixing job and node indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dagsched {

/// Simulation time, in abstract time units.
using Time = double;

/// Amount of computation, in abstract work units (1 processor * 1 time unit
/// at speed 1 completes 1 work unit).
using Work = double;

/// Profit (a.k.a. weight) of a job.
using Profit = double;

/// Job density as defined by the paper: v_i = p_i / (x_i * n_i).
using Density = double;

/// Index of a job within a JobSet.
using JobId = std::uint32_t;

/// Index of a node within one job's DAG.
using NodeId = std::uint32_t;

/// Number of processors.
using ProcCount = std::uint32_t;

inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// A time so far in the future it never occurs in a simulation.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

}  // namespace dagsched
