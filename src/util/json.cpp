#include "util/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace dagsched {

bool JsonValue::as_bool() const {
  DS_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  DS_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  DS_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  DS_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  DS_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return object_;
}

void JsonValue::push_back(JsonValue value) {
  DS_CHECK_MSG(kind_ == Kind::kArray, "push_back on non-array JSON value");
  array_.push_back(std::move(value));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

void JsonValue::set(std::string key, JsonValue value) {
  DS_CHECK_MSG(kind_ == Kind::kObject, "set on non-object JSON value");
  for (auto& [existing, existing_value] : object_) {
    if (existing == key) {
      existing_value = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [existing, value] : object_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  DS_CHECK_MSG(value != nullptr, "JSON object has no key '" << key << "'");
  return *value;
}

std::string json_number_to_string(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; encode as null-adjacent sentinel strings is
    // worse than clamping -- emit a very large magnitude instead.
    return value > 0 ? "1e308" : (value < 0 ? "-1e308" : "0");
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    // Integral: no exponent, no trailing ".0" -- keeps counters readable.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  // Shortest representation that round-trips.
  std::array<char, 32> buffer{};
  const auto result = std::to_chars(buffer.data(),
                                    buffer.data() + buffer.size(), value);
  return std::string(buffer.data(), result.ptr);
}

namespace {

void write_escaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out << buffer;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

void write_newline_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

void JsonValue::write_impl(std::ostream& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out << "null";
      return;
    case Kind::kBool:
      out << (bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      out << json_number_to_string(number_);
      return;
    case Kind::kString:
      write_escaped(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out << "[]";
        return;
      }
      out << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        array_[i].write_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out << "{}";
        return;
      }
      out << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        write_escaped(out, object_[i].first);
        out << ':';
        if (indent > 0) out << ' ';
        object_[i].second.write_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << '}';
      return;
    }
  }
}

void JsonValue::write(std::ostream& out) const { write_impl(out, 0, 0); }

void JsonValue::write_pretty(std::ostream& out, int indent) const {
  write_impl(out, indent, 0);
}

std::string JsonValue::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

bool operator==(const JsonValue& lhs, const JsonValue& rhs) {
  if (lhs.kind_ != rhs.kind_) return false;
  switch (lhs.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return lhs.bool_ == rhs.bool_;
    case JsonValue::Kind::kNumber: return lhs.number_ == rhs.number_;
    case JsonValue::Kind::kString: return lhs.string_ == rhs.string_;
    case JsonValue::Kind::kArray: return lhs.array_ == rhs.array_;
    case JsonValue::Kind::kObject: return lhs.object_ == rhs.object_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_ + " at offset " + std::to_string(pos_);
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing content at offset " + std::to_string(pos_);
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char ch = text_[pos_];
    switch (ch) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = JsonValue(true);
          return true;
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = JsonValue(false);
          return true;
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = JsonValue();
          return true;
        }
        return fail("invalid literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      return fail("malformed number");
    }
    out = JsonValue(value);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return true;
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') code |= static_cast<unsigned>(hex - '0');
            else if (hex >= 'a' && hex <= 'f') code |= static_cast<unsigned>(hex - 'a' + 10);
            else if (hex >= 'A' && hex <= 'F') code |= static_cast<unsigned>(hex - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(JsonValue& out) {
    std::string text;
    if (!parse_string(text)) return false;
    out = JsonValue(std::move(text));
    return true;
  }

  bool parse_array(JsonValue& out) {
    consume('[');
    out = JsonValue::array();
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    consume('{');
    out = JsonValue::object();
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace dagsched
