#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <iostream>
#include <mutex>
#include <string_view>
#include <thread>

namespace dagsched {

namespace {
constexpr int kUnsetLevel = -1;

/// kUnsetLevel until the first query resolves DAGSCHED_LOG (or a
/// set_log_level call pins it explicitly).
std::atomic<int> g_level{kUnsetLevel};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool parse_level(std::string_view name, LogLevel& out) {
  if (name == "debug") { out = LogLevel::kDebug; return true; }
  if (name == "info") { out = LogLevel::kInfo; return true; }
  if (name == "warn" || name == "warning") { out = LogLevel::kWarn; return true; }
  if (name == "error") { out = LogLevel::kError; return true; }
  if (name == "off" || name == "none") { out = LogLevel::kOff; return true; }
  return false;
}

/// Resolves the initial level from the DAGSCHED_LOG environment variable
/// (default kWarn; unrecognized values keep the default and warn once).
LogLevel level_from_env() {
  LogLevel level = LogLevel::kWarn;
  const char* env = std::getenv("DAGSCHED_LOG");
  if (env != nullptr && env[0] != '\0' && !parse_level(env, level)) {
    std::lock_guard lock(g_emit_mutex);
    std::cerr << "[WARN] DAGSCHED_LOG='" << env
              << "' not recognized (want debug|info|warn|error|off); "
                 "using warn\n";
  }
  return level;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUnsetLevel) {
    // Racing first queries may both read the env var; they resolve to the
    // same value, so the double store is benign.
    level = static_cast<int>(level_from_env());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // ISO-8601 UTC timestamp with millisecond resolution.
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));

  const std::size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000;

  std::lock_guard lock(g_emit_mutex);
  std::cerr << stamp << " [" << level_name(level) << "] (t" << tid << ") "
            << message << '\n';
}
}  // namespace detail

}  // namespace dagsched
