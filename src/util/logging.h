// Tiny severity-filtered logger. Default level is kWarn so simulations stay
// quiet; benches raise to kInfo for progress lines.
//
// The initial level honors the DAGSCHED_LOG environment variable
// (debug|info|warn|error|off), read lazily on the first level query;
// set_log_level() always overrides it.  Each emitted line carries an
// ISO-8601 UTC timestamp and an abbreviated thread id:
//   2026-08-05T12:00:00.123Z [WARN] (t42517) message
#pragma once

#include <sstream>
#include <string>

namespace dagsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

#define DS_LOG(level, ...)                                             \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::dagsched::log_level())) {                   \
      std::ostringstream ds_log_oss;                                   \
      ds_log_oss << __VA_ARGS__;                                       \
      ::dagsched::detail::log_emit(level, ds_log_oss.str());           \
    }                                                                  \
  } while (0)

#define DS_LOG_DEBUG(...) DS_LOG(::dagsched::LogLevel::kDebug, __VA_ARGS__)
#define DS_LOG_INFO(...) DS_LOG(::dagsched::LogLevel::kInfo, __VA_ARGS__)
#define DS_LOG_WARN(...) DS_LOG(::dagsched::LogLevel::kWarn, __VA_ARGS__)
#define DS_LOG_ERROR(...) DS_LOG(::dagsched::LogLevel::kError, __VA_ARGS__)

}  // namespace dagsched
