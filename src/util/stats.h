// Streaming statistics accumulators for experiment aggregation.
#pragma once

#include <cstddef>
#include <vector>

namespace dagsched {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Use for per-trial metrics
/// where sample counts are modest (<= millions).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  /// Linear-interpolated quantile, q in [0, 1]. Requires non-empty set.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> sorted_;  // lazily maintained cache
  std::vector<double> samples_;
  void ensure_sorted() const;
};

}  // namespace dagsched
