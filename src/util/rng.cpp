#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace dagsched {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; splitmix64 never
  // produces four zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t index) const {
  std::uint64_t mix = seed_;
  (void)splitmix64(mix);
  mix ^= 0xA3EC647659359ACDULL * (index + 1);
  return Rng(splitmix64(mix));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DS_CHECK_MSG(lo <= hi, "uniform(" << lo << "," << hi << ")");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DS_CHECK_MSG(lo <= hi, "uniform_int(" << lo << "," << hi << ")");
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
  if (range == 0) return static_cast<std::int64_t>((*this)());
  // Rejection sampling for unbiased results.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::exponential(double rate) {
  DS_CHECK_MSG(rate > 0.0, "exponential rate=" << rate);
  // 1 - uniform01() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::pareto(double scale, double shape) {
  DS_CHECK_MSG(scale > 0.0 && shape > 0.0,
               "pareto scale=" << scale << " shape=" << shape);
  return scale / std::pow(1.0 - uniform01(), 1.0 / shape);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; one sample per call keeps the generator stateless w.r.t.
  // distribution choice (simpler reproducibility story than caching pairs).
  const double u1 = 1.0 - uniform01();  // (0, 1]
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    DS_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  DS_CHECK_MSG(total > 0.0, "weighted_index: all weights zero");
  double draw = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // floating round-off fell past the end
}

}  // namespace dagsched
