#include "util/check.h"

#include <cstdlib>
#include <iostream>

namespace dagsched {

namespace {

CheckFailureHook& failure_hook() {
  static CheckFailureHook hook;
  return hook;
}

}  // namespace

CheckFailureHook set_check_failure_hook(CheckFailureHook hook) {
  CheckFailureHook previous = std::move(failure_hook());
  failure_hook() = std::move(hook);
  return previous;
}

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream out;
  out << "DS_CHECK failed: " << expr << "\n  at " << file << ":" << line;
  if (!msg.empty()) out << "\n  " << msg;
  const std::string message = out.str();
  std::cerr << message << std::endl;

  // Run the failure hook at most once; a DS_CHECK tripping inside the hook
  // must not recurse into it.
  static bool in_hook = false;
  if (!in_hook && failure_hook()) {
    in_hook = true;
    failure_hook()(message);
    in_hook = false;
  }
  std::abort();
}

}  // namespace detail
}  // namespace dagsched
