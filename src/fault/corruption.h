// Generate-time job-metadata corruption.
//
// Models noisy admission-control inputs: a fraction of jobs arrive with
// perturbed metadata (tighter-or-looser deadline, mis-stated profit, jittered
// release).  Unlike churn and overruns this happens when the workload is
// *written*, not while it runs: `dagsched generate --fault-corrupt` applies
// it once and the corrupted workload is then an ordinary .wl file, so every
// scheduler and both engines see identical (corrupted) inputs.
//
// Deterministic: corruption of job i depends only on (seed, i).
#pragma once

#include <cstdint>

#include "job/job.h"

namespace dagsched {

struct CorruptionConfig {
  std::uint64_t seed = 1;
  /// Probability a given job's metadata is corrupted.
  double prob = 0.0;
  /// Relative perturbation magnitude; fields are scaled by a factor drawn
  /// uniformly from [1 - severity, 1 + severity] (clamped to stay positive).
  double severity = 0.25;

  bool enabled() const { return prob > 0.0 && severity > 0.0; }
};

/// Returns a copy of `jobs` with a `prob` fraction corrupted: step-profit
/// jobs get scaled deadline and peak profit; other jobs get a scaled
/// release.  The result is finalized (sorted by release).
JobSet corrupt_metadata(const JobSet& jobs, const CorruptionConfig& config);

}  // namespace dagsched
