#include "fault/corruption.h"

#include <algorithm>

#include "util/float_cmp.h"
#include "util/rng.h"

namespace dagsched {

JobSet corrupt_metadata(const JobSet& jobs, const CorruptionConfig& config) {
  JobSet out;
  const Rng base(config.seed ^ 0x9E6D62D06F6F9FE7ULL);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    Rng rng = base.split(i);
    if (!config.enabled() || !rng.bernoulli(config.prob)) {
      out.add(job);
      continue;
    }
    const double lo = std::max(0.05, 1.0 - config.severity);
    const double hi = 1.0 + config.severity;
    if (job.has_deadline()) {
      const Time deadline =
          std::max(kEps, job.relative_deadline() * rng.uniform(lo, hi));
      const Profit profit =
          std::max(kEps, job.peak_profit() * rng.uniform(lo, hi));
      out.add(Job::with_deadline(job.dag_ptr(), job.release(), deadline,
                                 profit));
    } else {
      const Time release = job.release() * rng.uniform(lo, hi);
      out.add(Job(job.dag_ptr(), release, job.profit()));
    }
  }
  out.finalize();
  return out;
}

}  // namespace dagsched
