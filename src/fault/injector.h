// FaultInjector: the runtime-facing view of a FaultPlan.
//
// Engines receive a `const FaultInjector*` (nullptr = faults off, the
// default) in their options -- the same pattern as ObsSink -- and take the
// exact seed code path when it is null, so fault-free runs stay
// byte-identical to pre-fault builds.
//
// The injector pre-flattens the plan's down intervals into a sorted list of
// processor up/down *transitions*.  Engines apply delivered transitions to
// their own up-set rather than querying num_up(now); this makes the
// capacity trajectory exact (immune to float drift between the two engines)
// and gives each transition a well-defined delivery point in the engine
// loop.  Ties at one instant order recoveries before failures, matching the
// plan builder's min_procs sweep.
#pragma once

#include <vector>

#include "dag/dag.h"
#include "fault/fault_plan.h"
#include "util/types.h"

namespace dagsched {

struct ProcTransition {
  Time time = 0.0;
  ProcCount proc = 0;
  bool up = false;  // true = recovery, false = failure

  friend bool operator==(const ProcTransition&,
                         const ProcTransition&) = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// All processor transitions, sorted by (time, up-before-down, proc).
  const std::vector<ProcTransition>& transitions() const {
    return transitions_;
  }

  bool has_churn() const { return !transitions_.empty(); }
  bool scales_work() const { return plan_.config().overrun_enabled(); }
  bool restart_from_zero() const {
    return plan_.config().restart == RestartPolicy::kRestartFromZero;
  }

  /// Per-node actual works for `job`'s DAG (declared work x multiplier).
  /// Returns an empty vector when no node of this job overruns, so callers
  /// can cheaply keep the declared-work unfolding.
  std::vector<Work> scaled_works(JobId job, const Dag& dag) const;

 private:
  FaultPlan plan_;
  std::vector<ProcTransition> transitions_;
};

}  // namespace dagsched
