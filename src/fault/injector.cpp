#include "fault/injector.h"

#include <algorithm>

namespace dagsched {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  transitions_.reserve(plan_.down_intervals().size() * 2);
  for (const DownInterval& iv : plan_.down_intervals()) {
    transitions_.push_back({iv.begin, iv.proc, false});
    transitions_.push_back({iv.end, iv.proc, true});
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const ProcTransition& a, const ProcTransition& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.up != b.up) return a.up;  // recoveries first
              return a.proc < b.proc;
            });
}

std::vector<Work> FaultInjector::scaled_works(JobId job,
                                              const Dag& dag) const {
  if (!scales_work()) return {};
  std::vector<Work> works(dag.num_nodes());
  bool any_scaled = false;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    const double multiplier = plan_.work_multiplier(job, v);
    works[v] = dag.node_work(v) * multiplier;
    if (multiplier != 1.0) any_scaled = true;
  }
  if (!any_scaled) return {};
  return works;
}

}  // namespace dagsched
