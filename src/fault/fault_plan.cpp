#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/dary_heap.h"
#include "util/rng.h"

namespace dagsched {

std::string FaultPlanConfig::validate() const {
  if (mtbf < 0.0 || !std::isfinite(mtbf)) return "mtbf must be finite and >= 0";
  if (mtbf > 0.0 && (mttr <= 0.0 || !std::isfinite(mttr))) {
    return "mttr must be finite and > 0 when mtbf is set";
  }
  if (horizon < 0.0 || !std::isfinite(horizon)) {
    return "horizon must be finite and >= 0";
  }
  if (mtbf > 0.0 && horizon <= 0.0) {
    return "churn (mtbf > 0) requires a positive horizon";
  }
  if (min_procs < 1) return "min-procs must be >= 1";
  if (overrun_prob < 0.0 || overrun_prob > 1.0 ||
      !std::isfinite(overrun_prob)) {
    return "overrun-prob must be in [0, 1]";
  }
  if (overrun_factor < 1.0 || !std::isfinite(overrun_factor)) {
    return "overrun-factor must be finite and >= 1";
  }
  return {};
}

ProcCount FaultPlan::num_up(Time t) const {
  ProcCount down = 0;
  for (const DownInterval& iv : intervals_) {
    if (iv.begin > t) break;  // sorted by begin
    if (t < iv.end) ++down;
  }
  DS_CHECK(down <= num_procs_);
  return static_cast<ProcCount>(num_procs_ - down);
}

double FaultPlan::work_multiplier(JobId job, NodeId node) const {
  if (!config_.overrun_enabled()) return 1.0;
  // Tagged stream disjoint from the per-processor churn streams: churn uses
  // Rng(seed).split(proc), overruns use Rng(seed ^ tag).split(job).split(node).
  Rng rng = Rng(config_.seed ^ 0xC2B2AE3D27D4EB4FULL)
                .split(job)
                .split(node);
  if (!rng.bernoulli(config_.overrun_prob)) return 1.0;
  return rng.uniform(1.0, config_.overrun_factor);
}

FaultPlan build_fault_plan(const FaultPlanConfig& config, ProcCount num_procs) {
  const std::string problem = config.validate();
  DS_CHECK_MSG(problem.empty(), "invalid FaultPlanConfig: " << problem);
  DS_CHECK_MSG(config.min_procs <= num_procs,
               "min-procs " << config.min_procs << " > m=" << num_procs);

  std::vector<DownInterval> candidates;
  if (config.churn_enabled()) {
    const double fail_rate = 1.0 / config.mtbf;
    const double repair_rate = 1.0 / config.mttr;
    const Rng base(config.seed);
    for (ProcCount p = 0; p < num_procs; ++p) {
      Rng rng = base.split(p);
      Time t = 0.0;
      Time prev_end = 0.0;
      while (true) {
        t += rng.exponential(fail_rate);
        if (t >= config.horizon) break;
        const double repair = rng.exponential(repair_rate);
        Time begin = t;
        Time end = t + repair;
        if (config.integral_times) {
          begin = std::ceil(begin);
          end = std::max(begin + 1.0, std::ceil(end));
        }
        // Rounding can pull an interval back onto its predecessor; keep the
        // per-processor sequence disjoint and ordered.
        begin = std::max(begin, prev_end);
        if (end <= begin) end = begin + (config.integral_times ? 1.0 : 0.0);
        if (end > begin && begin < config.horizon) {
          candidates.push_back({begin, end, p});
          prev_end = end;
        }
        t = std::max(t + repair, end);
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const DownInterval& a, const DownInterval& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.proc < b.proc;
            });

  // Enforce the min_procs floor: sweep candidates in start order, tracking
  // the ends of accepted (still-active) down intervals; a failure that would
  // exceed m - min_procs concurrent downs is dropped (the processor simply
  // does not fail).  Intervals are closed-open, so an interval ending at the
  // candidate's begin has already recovered and is popped first.
  const std::size_t cap = static_cast<std::size_t>(num_procs) -
                          static_cast<std::size_t>(config.min_procs);
  std::vector<DownInterval> accepted;
  DaryHeap<Time> active_ends;
  for (const DownInterval& iv : candidates) {
    while (!active_ends.empty() && active_ends.top() <= iv.begin) {
      active_ends.pop();
    }
    if (active_ends.size() < cap) {
      accepted.push_back(iv);
      active_ends.push(iv.end);
    }
  }
  return FaultPlan(config, num_procs, std::move(accepted));
}

namespace {

bool parse_double(const std::string& text, double* out) {
  std::istringstream in(text);
  in >> *out;
  return static_cast<bool>(in) && in.eof() && std::isfinite(*out);
}

}  // namespace

std::optional<FaultPlanConfig> parse_fault_spec(const std::string& spec,
                                                std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  FaultPlanConfig config;
  std::istringstream in(spec);
  std::string pair;
  while (std::getline(in, pair, ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return fail("fault spec entry '" + pair + "' is not key=value");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    double num = 0.0;
    if (key == "restart") {
      if (value == "resume") {
        config.restart = RestartPolicy::kResume;
      } else if (value == "zero") {
        config.restart = RestartPolicy::kRestartFromZero;
      } else {
        return fail("restart must be 'resume' or 'zero', got '" + value + "'");
      }
      continue;
    }
    if (!parse_double(value, &num)) {
      return fail("fault spec value for '" + key + "' is not a number: '" +
                  value + "'");
    }
    if (key == "seed") {
      if (num < 0.0) return fail("seed must be >= 0");
      config.seed = static_cast<std::uint64_t>(num);
    } else if (key == "mtbf") {
      config.mtbf = num;
    } else if (key == "mttr") {
      config.mttr = num;
    } else if (key == "horizon") {
      config.horizon = num;
    } else if (key == "min-procs") {
      if (num < 1.0) return fail("min-procs must be >= 1");
      config.min_procs = static_cast<ProcCount>(num);
    } else if (key == "integral") {
      config.integral_times = num != 0.0;
    } else if (key == "overrun-prob") {
      config.overrun_prob = num;
    } else if (key == "overrun-factor") {
      config.overrun_factor = num;
    } else {
      return fail("unknown fault spec key '" + key + "'");
    }
  }
  const std::string problem = config.validate();
  if (!problem.empty()) return fail(problem);
  return config;
}

}  // namespace dagsched
