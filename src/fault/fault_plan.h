// Deterministic, seed-driven fault plans.
//
// A FaultPlan is generated *before* a run from a FaultPlanConfig and a
// machine count m; it is pure data (down-intervals per processor plus
// config), so the same (config, m) always yields the same plan and both
// engines consume identical fault schedules.  Three fault classes:
//
//   1. Processor churn: each processor alternates up/down phases drawn from
//      an alternating renewal process -- up durations ~ Exp(1/mtbf), repair
//      durations ~ Exp(1/mttr) -- truncated at `horizon`.  A `min_procs`
//      floor is enforced by dropping failures that would leave fewer than
//      min_procs processors up (real clusters similarly refuse to drain
//      below a quorum).
//   2. Work overrun: per-node multipliers >= 1 modeling misestimated W_i.
//      Schedulers keep seeing the declared work (they are
//      semi-non-clairvoyant and trust the estimate); only execution consumes
//      the actual, inflated amount.  Multipliers are a pure hash of
//      (seed, job, node) -- O(1), no per-node storage.
//   3. Metadata corruption is generate-time, not run-time: see
//      fault/corruption.h.
//
// `integral_times` rounds churn to whole slots so the continuous and
// discrete engines see the same transition instants (required by the
// cross-engine determinism test).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/types.h"

namespace dagsched {

/// What happens to a node that was executing on a processor that fails.
enum class RestartPolicy {
  kResume,           // progress survives; the node continues elsewhere/later
  kRestartFromZero,  // progress is lost; remaining work snaps back to initial
};

struct FaultPlanConfig {
  std::uint64_t seed = 1;
  /// Mean time between failures per processor; 0 disables churn.
  double mtbf = 0.0;
  /// Mean time to repair a failed processor.
  double mttr = 1.0;
  /// Churn is generated for [0, horizon); 0 disables churn.
  Time horizon = 0.0;
  /// Never let the up-processor count drop below this floor.
  ProcCount min_procs = 1;
  /// Round transitions to whole slots (cross-engine comparable plans).
  bool integral_times = false;
  /// Probability a node's actual work overruns its declared work.
  double overrun_prob = 0.0;
  /// Overrun multiplier is drawn uniformly from [1, overrun_factor].
  double overrun_factor = 1.0;
  RestartPolicy restart = RestartPolicy::kResume;

  bool churn_enabled() const { return mtbf > 0.0 && horizon > 0.0; }
  bool overrun_enabled() const {
    return overrun_prob > 0.0 && overrun_factor > 1.0;
  }

  /// Returns an error message, or empty if the config is usable.
  std::string validate() const;
};

/// A closed-open interval [begin, end) during which `proc` is down.
struct DownInterval {
  Time begin = 0.0;
  Time end = 0.0;
  ProcCount proc = 0;

  friend bool operator==(const DownInterval&, const DownInterval&) = default;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(FaultPlanConfig config, ProcCount num_procs,
            std::vector<DownInterval> intervals)
      : config_(config),
        num_procs_(num_procs),
        intervals_(std::move(intervals)) {}

  const FaultPlanConfig& config() const { return config_; }
  ProcCount num_procs() const { return num_procs_; }

  /// Down intervals sorted by begin time; per processor they are disjoint.
  const std::vector<DownInterval>& down_intervals() const {
    return intervals_;
  }

  /// Number of processors up at time t (intervals are closed-open, so a
  /// processor recovering at t counts as up at t).
  ProcCount num_up(Time t) const;

  /// Actual-work multiplier for (job, node): 1.0 unless the overrun draw
  /// for this node fires.  Pure function of (seed, job, node).
  double work_multiplier(JobId job, NodeId node) const;

 private:
  FaultPlanConfig config_;
  ProcCount num_procs_ = 0;
  std::vector<DownInterval> intervals_;
};

/// Generates the plan for `num_procs` processors.  DS_CHECKs that the
/// config validates and that min_procs <= num_procs.
FaultPlan build_fault_plan(const FaultPlanConfig& config, ProcCount num_procs);

/// Parses a `--faults` spec: comma-separated key=value pairs, e.g.
///   "mtbf=50,mttr=5,seed=7,horizon=500,overrun-prob=0.2,overrun-factor=2,
///    restart=zero,min-procs=1,integral=1".
/// Unknown keys, malformed numbers, and invalid combinations produce
/// std::nullopt with a message in `error` (if non-null).
std::optional<FaultPlanConfig> parse_fault_spec(const std::string& spec,
                                                std::string* error = nullptr);

}  // namespace dagsched
