#include "core/density_index.h"

#include <algorithm>

#include "util/check.h"

namespace dagsched {

void DensityWindowIndex::clear() {
  entries_.clear();
  prefix_valid_ = false;
}

void DensityWindowIndex::insert(JobId job, Density v, ProcCount n) {
  DS_CHECK_MSG(v > 0.0, "density must be > 0");
  DS_CHECK_MSG(n >= 1, "requirement must be >= 1");
  DS_CHECK_MSG(!contains(job), "job " << job << " already in index");
  const Entry entry{v, static_cast<double>(n), job};
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), entry, [](const Entry& a, const Entry& b) {
        if (a.v != b.v) return a.v < b.v;
        return a.job < b.job;
      });
  entries_.insert(it, entry);
  prefix_valid_ = false;
}

bool DensityWindowIndex::erase(JobId job) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [job](const Entry& e) { return e.job == job; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  prefix_valid_ = false;
  return true;
}

bool DensityWindowIndex::contains(JobId job) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [job](const Entry& e) { return e.job == job; });
}

void DensityWindowIndex::rebuild_prefix() const {
  prefix_.resize(entries_.size() + 1);
  prefix_[0] = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + entries_[i].n;
  }
  prefix_valid_ = true;
}

std::size_t DensityWindowIndex::lower_index(Density v) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const Entry& e, Density value) { return e.v < value; });
  return static_cast<std::size_t>(it - entries_.begin());
}

double DensityWindowIndex::window_load(Density lo, Density hi) const {
  if (!prefix_valid_) rebuild_prefix();
  const std::size_t first = lower_index(lo);
  const std::size_t last = lower_index(hi);
  return prefix_[last] - prefix_[first];
}

double DensityWindowIndex::load_at_least(Density v) const {
  if (!prefix_valid_) rebuild_prefix();
  const std::size_t first = lower_index(v);
  return prefix_.back() - prefix_[first];
}

bool DensityWindowIndex::admits(Density v, ProcCount n, double c,
                                double cap) const {
  DS_CHECK(c > 1.0 && v > 0.0 && n >= 1);
  const double n_new = static_cast<double>(n);
  // The new job's own window [v, c*v).
  if (window_load(v, c * v) + n_new > cap) return false;
  // Existing windows that gain the new member: starts v_j in (v/c, v].
  // (Their windows [v_j, c*v_j) contain v exactly when v_j > v/c and
  // v_j <= v.)
  const std::size_t begin = lower_index(v / c);
  for (std::size_t i = begin; i < entries_.size(); ++i) {
    const Density vj = entries_[i].v;
    if (vj > v) break;
    if (vj <= v / c) continue;  // boundary: window starts strictly above v/c
    if (window_load(vj, c * vj) + n_new > cap) return false;
  }
  return true;
}

double DensityWindowIndex::max_window_load(double c) const {
  double worst = 0.0;
  for (const Entry& e : entries_) {
    worst = std::max(worst, window_load(e.v, c * e.v));
  }
  return worst;
}

}  // namespace dagsched
