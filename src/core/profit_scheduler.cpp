#include "core/profit_scheduler.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "obs/sink.h"
#include "util/check.h"
#include "util/float_cmp.h"
#include "util/logging.h"
#include "util/wire.h"

namespace dagsched {

ProfitScheduler::ProfitScheduler(ProfitSchedulerOptions options)
    : options_(std::move(options)) {
  options_.params.validate();
}

std::string ProfitScheduler::name() const {
  std::string n =
      "paper-S-profit(eps=" + std::to_string(options_.params.epsilon);
  if (options_.work_conserving) n += ",work-conserving";
  n += ")";
  return n;
}

void ProfitScheduler::reset() {
  slots_.clear();
  info_.clear();
  work_order_.clear();
  cap_ = 0.0;
  scheduled_count_ = 0;
  scheduled_profit_ = 0.0;
}

void ProfitScheduler::insert_slot_job(SlotInfo& slot, JobId job) {
  const auto pos = std::lower_bound(
      slot.jobs.begin(), slot.jobs.end(), job, [this](JobId lhs, JobId rhs) {
        return DensityDescIdAsc{}({info_[lhs].v, lhs}, {info_[rhs].v, rhs});
      });
  slot.jobs.insert(pos, job);
}

bool ProfitScheduler::slot_admits(std::uint64_t t, Density v,
                                  ProcCount n) const {
  const auto it = slots_.find(t);
  if (it == slots_.end()) {
    // Empty slot: only the job's own window matters.
    return static_cast<double>(n) <= cap_;
  }
  return it->second.index.admits(v, n, options_.params.c, cap_);
}

void ProfitScheduler::on_arrival(const EngineContext& ctx, JobId job) {
  if (info_.size() < ctx.num_jobs()) info_.resize(ctx.num_jobs());
  JobInfo& info = info_[job];
  DS_CHECK(!info.arrived);
  info.arrived = true;
  cap_ = options_.params.b * static_cast<double>(ctx.num_procs());

  const JobView view = ctx.view(job);
  const ProfitFn& profit = view.profit();
  const double speed = ctx.speed();

  info.alloc = compute_profit_allocation(view.work(), view.span(),
                                         profit.plateau_end(),
                                         options_.params, speed);
  if (info.alloc.n == 0) {
    DS_LOG_DEBUG("profit scheduler: job " << job
                                          << " infeasible (x* too tight)");
    if (ctx.obs() != nullptr) {
      ctx.obs()->count("sched.drops.infeasible");
      ctx.obs()->event(ctx.now(), job, ObsEventKind::kDrop, "infeasible");
    }
    return;
  }
  const ProcCount n = info.alloc.n;
  const Work x = info.alloc.x;
  const Work span_eff = view.span() / speed;
  const double xn = x * static_cast<double>(n);

  // Number of assignable slots required for validity.
  const auto needed = static_cast<std::uint64_t>(
      std::ceil((1.0 + options_.params.delta) * x - kEps));

  // First usable absolute slot: the job exists from ceil(release); the
  // current slot is usable because arrivals are delivered before decide().
  const auto first_slot = static_cast<std::uint64_t>(
      std::max(std::ceil(view.release() - kEps), std::floor(ctx.now() + kEps)));

  // Candidate relative deadlines, in whole slots.  Potential deadlines must
  // exceed (1+eps) L (Section 5) and leave room for `needed` slots.
  const double d_min_time = (1.0 + options_.params.epsilon) * span_eff;
  std::uint64_t d_lo = static_cast<std::uint64_t>(std::floor(d_min_time)) + 1;
  d_lo = std::max(d_lo, needed);
  d_lo = std::max<std::uint64_t>(d_lo, 1);

  // Search cap: no profit beyond the support end; global safety cap.
  std::uint64_t d_hi = options_.max_search_slots;
  if (profit.support_end() < kTimeInfinity) {
    d_hi = std::min(d_hi, static_cast<std::uint64_t>(
                              std::floor(profit.support_end() + kEps)));
  }

  std::vector<std::uint64_t> assignable;
  Profit last_profit = -1.0;
  std::uint64_t scanned_until = first_slot;  // exclusive end of last scan
  for (std::uint64_t d = d_lo; d <= d_hi; ++d) {
    const Profit p_at_d = profit.at(static_cast<Time>(d));
    if (!(p_at_d > 0.0)) break;  // zero profit => zero density => stop
    const Density v = p_at_d / xn;
    // Absolute end (exclusive) of the window [r, r + d).
    const auto end_slot = static_cast<std::uint64_t>(
        std::floor(view.release() + static_cast<double>(d) + kEps));
    if (end_slot <= first_slot) continue;

    if (approx_eq(p_at_d, last_profit)) {
      // Density unchanged: the previous scan is still valid; only the newly
      // exposed slots need checking.
      for (std::uint64_t t = scanned_until; t < end_slot; ++t) {
        if (slot_admits(t, v, n)) assignable.push_back(t);
      }
    } else {
      // Density changed: rescan the whole window under the new density.
      assignable.clear();
      for (std::uint64_t t = first_slot; t < end_slot; ++t) {
        if (slot_admits(t, v, n)) assignable.push_back(t);
      }
    }
    last_profit = p_at_d;
    scanned_until = end_slot;

    if (assignable.size() >= needed) {
      // Minimal valid deadline found: pin the job.
      info.deadline = static_cast<Time>(d);
      info.v = v;
      info.assigned = assignable;
      info.scheduled = true;
      ++scheduled_count_;
      scheduled_profit_ += p_at_d;
      for (const std::uint64_t t : assignable) {
        SlotInfo& slot = slots_[t];
        slot.index.insert(job, v, n);
        insert_slot_job(slot, job);
      }
      work_order_.emplace(v, job);
      if (ctx.obs() != nullptr) {
        ctx.obs()->count("sched.admissions");
        ctx.obs()->event(ctx.now(), job, ObsEventKind::kSchedule,
                         "deadline-found",
                         {{"d", static_cast<double>(d)},
                          {"v", v},
                          {"n", static_cast<double>(n)},
                          {"slots", static_cast<double>(assignable.size())}});
      }
      return;
    }
  }
  DS_LOG_DEBUG("profit scheduler: no valid deadline for job "
               << job << " within " << d_hi << " slots");
  if (ctx.obs() != nullptr) {
    ctx.obs()->count("sched.drops.no_valid_deadline");
    ctx.obs()->event(ctx.now(), job, ObsEventKind::kDrop,
                     "no-valid-deadline",
                     {{"d_hi", static_cast<double>(d_hi)}});
  }
}

void ProfitScheduler::on_completion(const EngineContext& ctx, JobId job) {
  JobInfo& info = info_[job];
  info.completed = true;
  if (info.scheduled) work_order_.erase({info.v, job});
  if (!options_.release_slots_on_completion || !info.scheduled) return;
  const auto current = static_cast<std::uint64_t>(std::floor(ctx.now() - kEps));
  for (const std::uint64_t t : info.assigned) {
    if (t <= current) continue;
    const auto it = slots_.find(t);
    if (it == slots_.end()) continue;
    it->second.index.erase(job);
    std::erase(it->second.jobs, job);
  }
}

void ProfitScheduler::on_capacity_change(const EngineContext& ctx,
                                         ProcCount old_m, ProcCount new_m) {
  cap_ = options_.params.b * static_cast<double>(new_m);
  if (new_m >= old_m) return;  // growth: future admissions just got looser
  const ObsSink* obs = ctx.obs();
  auto unschedule = [&](JobId job, const char* slug) {
    JobInfo& info = info_[job];
    for (const std::uint64_t t : info.assigned) {
      const auto it = slots_.find(t);
      if (it == slots_.end()) continue;
      it->second.index.erase(job);
      std::erase(it->second.jobs, job);
    }
    info.scheduled = false;
    info.assigned.clear();
    work_order_.erase({info.v, job});
    if (obs != nullptr) {
      obs->count("sched.readmit_fails");
      obs->event(ctx.now(), job, ObsEventKind::kReadmitFail, slug,
                 {{"n", static_cast<double>(info.alloc.n)},
                  {"m", static_cast<double>(new_m)}});
    }
  };
  for (JobId job = 0; job < info_.size(); ++job) {
    const JobInfo& info = info_[job];
    if (info.scheduled && !info.completed && info.alloc.n > new_m) {
      unschedule(job, "too-wide");
    }
  }
  for (auto& [t, slot] : slots_) {
    while (!slot.jobs.empty() &&
           approx_gt(slot.index.max_window_load(options_.params.c), cap_)) {
      // Shed the lowest-density job (ties: the later arrival) -- the inverse
      // of the density order decide() serves in, i.e. the back of the
      // (density desc, id asc)-sorted slot list.
      unschedule(slot.jobs.back(), "window-over-cap");
    }
  }
}

void ProfitScheduler::decide(const EngineContext& ctx, Assignment& out) {
  // The slot-assignment algorithm is only meaningful on the SlotEngine
  // (decide() once per unit slot).  Fractional decision times mean an
  // event-driven engine is driving us; fail loudly instead of silently
  // mis-mapping events to slots.
  DS_CHECK_MSG(approx_eq(ctx.now(), std::floor(ctx.now() + kEps)),
               "ProfitScheduler requires the SlotEngine (decide at t="
                   << ctx.now() << ")");
  const auto slot = static_cast<std::uint64_t>(std::floor(ctx.now() + kEps));
  // Prune history so the map stays proportional to the lookahead.
  slots_.erase(slots_.begin(), slots_.lower_bound(slot));

  const auto it = slots_.find(slot);

  ProcCount free = ctx.num_procs();
  std::vector<JobId> granted;
  if (it != slots_.end()) {
    // Highest-density-first among jobs assigned to this slot: the slot list
    // is maintained in that order, so no per-decision sort.
    for (const JobId job : it->second.jobs) {
      if (free == 0) break;
      const JobInfo& info = info_[job];
      if (info.completed) continue;  // slots not yet released
      if (info.alloc.n <= free) {
        out.add(job, info.alloc.n);
        granted.push_back(job);
        free -= info.alloc.n;
      }
    }
  }

  if (options_.work_conserving && free > 0) {
    // Opportunistic fill: scheduled, unfinished jobs not served this slot,
    // by density.  They keep their fixed n_i footprint.  work_order_ holds
    // exactly the scheduled && !completed jobs in (density desc, id asc)
    // order, so the seed's scan-everything-and-sort is a plain walk.
    for (const auto& [v, job] : work_order_) {
      (void)v;
      if (free == 0) break;
      if (std::find(granted.begin(), granted.end(), job) != granted.end()) {
        continue;
      }
      const JobInfo& info = info_[job];
      if (info.alloc.n <= free) {
        out.add(job, info.alloc.n);
        free -= info.alloc.n;
      }
    }
  }
}

std::size_t ProfitScheduler::shed_load(const EngineContext& ctx,
                                       std::size_t max_jobs) {
  // Lowest density first: the back of work_order_ (scheduled, unfinished
  // jobs in density-descending order).  Shedding releases every assigned
  // slot, which only loosens Lemma-15 windows for future arrivals -- that
  // is the automatic-recovery path once the overload clears.
  std::size_t shed = 0;
  const ObsSink* obs = ctx.obs();
  while (shed < max_jobs && !work_order_.empty()) {
    const auto [v, job] = *std::prev(work_order_.end());
    JobInfo& info = info_[job];
    for (const std::uint64_t t : info.assigned) {
      const auto it = slots_.find(t);
      if (it == slots_.end()) continue;
      it->second.index.erase(job);
      std::erase(it->second.jobs, job);
    }
    info.scheduled = false;
    info.assigned.clear();
    work_order_.erase({v, job});
    if (obs != nullptr) {
      obs->count("sched.drops.overload");
      obs->event(ctx.now(), job, ObsEventKind::kDrop, "overload.shed.window",
                 {{"v", v}, {"n", static_cast<double>(info.alloc.n)}});
    }
    ++shed;
  }
  return shed;
}

void ProfitScheduler::save_state(CheckpointWriter& out) const {
  out.u64(info_.size());
  for (const JobInfo& info : info_) {
    out.u32(info.alloc.n);
    out.f64(info.alloc.x);
    out.f64(info.alloc.v);
    out.boolean(info.alloc.good);
    out.u64(info.assigned.size());
    for (const std::uint64_t t : info.assigned) out.u64(t);
    out.f64(info.deadline);
    out.f64(info.v);
    out.u8(static_cast<std::uint8_t>((info.arrived ? 1u : 0u) |
                                     (info.scheduled ? 2u : 0u) |
                                     (info.completed ? 4u : 0u)));
  }
  out.f64(cap_);
  out.u64(scheduled_count_);
  out.f64(scheduled_profit_);
  // Each slot's job list is saved in its maintained (density desc, id asc)
  // order; the per-slot window index and work_order_ are functions of the
  // saved state and are rebuilt on load.
  out.u64(slots_.size());
  for (const auto& [t, slot] : slots_) {
    out.u64(t);
    out.u64(slot.jobs.size());
    for (const JobId job : slot.jobs) out.u32(job);
  }
}

void ProfitScheduler::load_state(CheckpointReader& in) {
  const std::uint64_t n = in.count(46);
  info_.resize(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    JobInfo& info = info_[static_cast<std::size_t>(i)];
    info.alloc.n = in.u32();
    info.alloc.x = in.f64();
    info.alloc.v = in.f64();
    info.alloc.good = in.boolean();
    const std::uint64_t assigned = in.count(8);
    info.assigned.resize(static_cast<std::size_t>(assigned));
    for (std::uint64_t& t : info.assigned) t = in.u64();
    info.deadline = in.f64();
    info.v = in.f64();
    const std::uint8_t flags = in.u8();
    if ((flags & ~0x7u) != 0) {
      in.fail("job " + std::to_string(i) + " has invalid flags");
    }
    info.arrived = (flags & 1u) != 0;
    info.scheduled = (flags & 2u) != 0;
    info.completed = (flags & 4u) != 0;
    if (info.scheduled && !info.completed) {
      work_order_.emplace(info.v, static_cast<JobId>(i));
    }
  }
  cap_ = in.f64();
  scheduled_count_ = static_cast<std::size_t>(in.u64());
  scheduled_profit_ = in.f64();
  const std::uint64_t slot_count = in.count(16);
  std::uint64_t prev_t = 0;
  for (std::uint64_t s = 0; s < slot_count; ++s) {
    const std::uint64_t t = in.u64();
    if (s > 0 && t <= prev_t) in.fail("slot keys out of order");
    prev_t = t;
    SlotInfo& slot = slots_[t];
    const std::uint64_t members = in.count(4);
    slot.jobs.resize(static_cast<std::size_t>(members));
    for (JobId& job : slot.jobs) {
      job = in.u32();
      if (job >= n || !info_[job].arrived || info_[job].alloc.n == 0 ||
          !(info_[job].v > 0.0) || slot.index.contains(job)) {
        in.fail("slot " + std::to_string(t) + " references invalid job");
      }
      slot.index.insert(job, info_[job].v, info_[job].alloc.n);
    }
  }
}

Time ProfitScheduler::next_wakeup(const EngineContext& ctx) const {
  const auto slot = static_cast<std::uint64_t>(std::floor(ctx.now() + kEps));
  if (options_.work_conserving) {
    // Opportunistic mode can make progress in any slot while a scheduled
    // job remains unfinished.
    for (const JobInfo& info : info_) {
      if (info.scheduled && !info.completed) {
        return static_cast<Time>(slot + 1);
      }
    }
  }
  for (auto it = slots_.upper_bound(slot); it != slots_.end(); ++it) {
    for (const JobId job : it->second.jobs) {
      if (!info_[job].completed) return static_cast<Time>(it->first);
    }
  }
  return kTimeInfinity;
}

Time ProfitScheduler::chosen_deadline(JobId job) const {
  DS_CHECK(job < info_.size() && info_[job].arrived);
  return info_[job].deadline;
}

const std::vector<std::uint64_t>& ProfitScheduler::assigned_slots(
    JobId job) const {
  DS_CHECK(job < info_.size() && info_[job].arrived);
  return info_[job].assigned;
}

const JobAllocation* ProfitScheduler::allocation_of(JobId job) const {
  if (job >= info_.size() || !info_[job].arrived) return nullptr;
  return &info_[job].alloc;
}

Density ProfitScheduler::density_of(JobId job) const {
  DS_CHECK(job < info_.size() && info_[job].scheduled);
  return info_[job].v;
}

double ProfitScheduler::slot_window_load(std::uint64_t slot) const {
  const auto it = slots_.find(slot);
  if (it == slots_.end()) return 0.0;
  return it->second.index.max_window_load(options_.params.c);
}

std::size_t ProfitScheduler::memory_bytes() const {
  // Per-slot maps dominate: one tree node per slot (key + SlotInfo header)
  // plus each slot's job vector and window index; then the work-conserving
  // order set, per-job info, and assigned-slot lists.
  std::size_t bytes = 0;
  for (const auto& [slot, slot_info] : slots_) {
    bytes += sizeof(std::uint64_t) + sizeof(SlotInfo) + 4 * sizeof(void*) +
             slot_info.jobs.capacity() * sizeof(JobId) +
             slot_info.index.memory_bytes();
  }
  bytes += work_order_.size() *
           (sizeof(std::pair<Density, JobId>) + 4 * sizeof(void*));
  bytes += info_.capacity() * sizeof(JobInfo);
  for (const JobInfo& info : info_) {
    bytes += info.assigned.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace dagsched
