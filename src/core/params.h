// The paper's constants (Table 1):
//
//   epsilon  -- deadline-slack assumption: D_i >= (1+eps)((W_i-L_i)/m + L_i)
//   delta    -- < eps/2
//   c        -- >= 1 + 1/(delta*eps)
//   b        -- = sqrt((1+2*delta)/(1+eps)) < 1
//   a        -- = 1 + (1+2*delta)/(eps-2*delta)   (Lemma 3: x_i n_i <= a W_i)
//
// Params::from_epsilon picks delta = eps/4 and c = 1 + 1/(delta*eps), the
// smallest values satisfying the constraints; every constant is validated at
// construction so an invalid configuration cannot reach the schedulers.
#pragma once

namespace dagsched {

struct Params {
  double epsilon = 0.5;
  double delta = 0.125;
  double c = 17.0;
  double b = 0.9128709291752769;  // sqrt(1.25/1.5)

  /// Derived constant a = 1 + (1+2*delta)/(epsilon-2*delta).
  double a() const;

  /// Canonical parameterization used throughout the paper's proofs:
  /// delta = eps/4, c = 1 + 1/(delta*eps), b per definition.
  static Params from_epsilon(double epsilon);

  /// Fully explicit construction (used by parameter-sensitivity benches).
  /// Validates delta < eps/2, c >= 1 + 1/(delta*eps), recomputes b.
  static Params explicit_params(double epsilon, double delta, double c);

  /// Lemma 5's completion-fraction constant: eps - 1/((c-1)*delta).
  /// Positive for any valid parameterization with c > 1 + 1/(eps*delta).
  double completion_fraction() const;

  /// Verifies all paper constraints; throws std::invalid_argument otherwise.
  void validate() const;
};

}  // namespace dagsched
