// The Section-5 scheduler for general (non-increasing) profit functions.
//
// On arrival of J_i the scheduler fixes n_i = (W-L)/(x*/(1+2delta) - L)
// from the profit plateau end x*, then searches for the *minimum valid
// relative deadline* D: scanning candidate integer deadlines upward, a slot
// t in [r_i, r_i + D) is assignable if adding J_i (with density
// v = p_i(D)/(x_i n_i)) to the slot's set J(t) keeps every density window
// [v_j, c*v_j) within b*m processors (Lemma 15 -- the same condition (2) as
// Section 3, enforced per slot via DensityWindowIndex).  D is valid when at
// least ceil((1+delta) x_i) slots are assignable.  The job is then pinned to
// those slots: it may run only in its assigned slots I_i, competing there by
// density.
//
// Implementation notes (DESIGN.md section 2):
//  * Slots are the unit intervals of the SlotEngine; this scheduler requires
//    the SlotEngine (decide() is called once per slot).
//  * While p_i(D) is flat in D (the plateau, or a piecewise level) the scan
//    extends incrementally; when p_i(D) changes, the density changes and the
//    window is rescanned from scratch for that D.
//  * Jobs whose profit support is exhausted before any valid D exist are
//    left unscheduled (with an unbounded-support profit function this cannot
//    happen -- the paper's "a valid assignment always exists").
//  * On completion a job's unused future slots are released (flag below),
//    which only loosens condition (2) and preserves every lemma.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/allocation.h"
#include "core/density_index.h"
#include "core/job_queue.h"
#include "core/params.h"
#include "sim/scheduler.h"

namespace dagsched {

struct ProfitSchedulerOptions {
  Params params = Params::from_epsilon(0.5);

  /// Hard cap on the deadline search (relative, in slots), protecting
  /// against unbounded scans for slowly-decaying profit functions.
  std::uint64_t max_search_slots = 1 << 16;

  /// Release a completed job's remaining assigned slots so later arrivals
  /// can use them.  Only loosens the admission condition.
  bool release_slots_on_completion = true;

  /// Extension (the paper's "work-conserving" future work, applied to the
  /// Section-5 algorithm): after serving a slot's assigned jobs, spend any
  /// leftover processors on scheduled-but-unfinished jobs that are *not*
  /// assigned to this slot, in density order.  Off by default (the paper's
  /// algorithm runs jobs only in their assigned slots I_i).
  bool work_conserving = false;
};

class ProfitScheduler final : public SchedulerBase {
 public:
  explicit ProfitScheduler(ProfitSchedulerOptions options = {});

  std::string name() const override;
  void reset() override;
  void on_arrival(const EngineContext& ctx, JobId job) override;
  void on_completion(const EngineContext& ctx, JobId job) override;
  /// Degradation under processor churn.  Shrink: jobs whose fixed n_i
  /// exceeds the surviving machine count are unscheduled, then each future
  /// slot sheds its lowest-density jobs until every Lemma-15 window fits
  /// within the reduced b*m; displaced jobs are permanently unscheduled
  /// (their slot pinning cannot be re-derived mid-flight) and recorded as
  /// `readmit-fail` events.  scheduled_count()/scheduled_profit() keep
  /// counting ever-scheduled jobs.  Growth only loosens future admission.
  void on_capacity_change(const EngineContext& ctx, ProcCount old_m,
                          ProcCount new_m) override;
  void decide(const EngineContext& ctx, Assignment& out) override;
  /// Overload shedding: unschedules the lowest-density scheduled unfinished
  /// job (the back of work_order_), releasing all its assigned slots.
  /// Emits kDrop events with the `overload.shed.window` slug.
  std::size_t shed_load(const EngineContext& ctx,
                        std::size_t max_jobs) override;
  /// Checkpoint the per-job allocations/pinnings and each slot's job list.
  /// Slot window indexes and work_order_ are derived (rebuilt on load).
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;
  Time next_wakeup(const EngineContext& ctx) const override;
  std::size_t queue_depth() const override { return work_order_.size(); }
  std::size_t memory_bytes() const override;

  // ---- Introspection ----

  const Params& params() const { return options_.params; }
  /// Relative deadline D_i chosen at arrival (kTimeInfinity if the job
  /// could not be scheduled).
  Time chosen_deadline(JobId job) const;
  /// Assigned slots I_i (absolute slot indices), sorted.
  const std::vector<std::uint64_t>& assigned_slots(JobId job) const;
  const JobAllocation* allocation_of(JobId job) const;
  /// Density v_i = p_i(D_i)/(x_i n_i) of a scheduled job.
  Density density_of(JobId job) const;
  /// Max window load over a slot's J(t) -- Lemma 15 checks (test hook).
  double slot_window_load(std::uint64_t slot) const;
  std::size_t scheduled_count() const { return scheduled_count_; }
  /// Sum over scheduled jobs of p_i(D_i): the paper's ||J|| for Lemma 17.
  Profit scheduled_profit() const { return scheduled_profit_; }

 private:
  struct SlotInfo {
    DensityWindowIndex index;
    /// Kept sorted (density desc, id asc) at insert, so decide() serves the
    /// slot without re-sorting and capacity sheds pick the victim from the
    /// back.  Densities are fixed at scheduling time, so order never decays.
    std::vector<JobId> jobs;
  };

  struct JobInfo {
    JobAllocation alloc;
    std::vector<std::uint64_t> assigned;
    Time deadline = kTimeInfinity;  // relative, chosen by the search
    Density v = 0.0;
    bool arrived = false;
    bool scheduled = false;
    bool completed = false;
  };

  /// True if `job` (density v, requirement n) could be added to slot `t`.
  bool slot_admits(std::uint64_t t, Density v, ProcCount n) const;

  /// Insert into slot.jobs keeping the (density desc, id asc) order.
  void insert_slot_job(SlotInfo& slot, JobId job);

  ProfitSchedulerOptions options_;
  std::map<std::uint64_t, SlotInfo> slots_;
  /// Scheduled, unfinished jobs in (density desc, id asc) order -- the
  /// work-conserving fill order, maintained incrementally instead of
  /// re-scanning and sorting every job per decision.
  std::set<std::pair<Density, JobId>, DensityDescIdAsc> work_order_;
  std::vector<JobInfo> info_;
  double cap_ = 0.0;  // b*m, fixed at first arrival
  std::size_t scheduled_count_ = 0;
  Profit scheduled_profit_ = 0.0;
};

}  // namespace dagsched
