// Scheduler S from Section 3 -- the paper's algorithm for jobs with
// deadlines and fixed profits.
//
// On arrival, a job's allocation (n_i, x_i, v_i) is computed; the job enters
// the *started* queue Q if it is delta-good and admission condition (2)
// holds (every density window [v_j, c*v_j) over Q ∪ {J_i} requires <= b*m
// processors), otherwise it waits in queue P.  On every completion, P is
// drained in density order: expired jobs are dropped and delta-fresh jobs
// that now satisfy condition (2) move to Q.  At every decision point the
// highest-density jobs of Q that fit are granted exactly their n_i
// processors; leftover processors idle (S is deliberately not
// work-conserving -- that is one of the ablation toggles below).
//
// Jobs with general (non-step) profit functions are handled by treating the
// profit plateau end x* as the deadline and the peak as the profit: a job
// completed within its plateau earns exactly the peak, so this is a lossless
// reduction whenever S completes what it starts "on time".
//
// The options structure exposes the paper's parameters plus ablation
// switches used by bench/ablation_*: disabling condition (2), replacing the
// paper's density p/(x_i n_i) with classic alternatives, admitting from P
// on deadline expiries, and a work-conserving variant (both flagged as
// extensions; defaults reproduce the paper exactly).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/allocation.h"
#include "core/density_index.h"
#include "core/job_queue.h"
#include "core/params.h"
#include "sim/scheduler.h"
#include "util/dary_heap.h"

namespace dagsched {

struct DeadlineSchedulerOptions {
  Params params = Params::from_epsilon(0.5);

  /// Condition (2).  Off = admit every delta-good job directly to Q.
  bool enforce_admission = true;

  /// Require delta-freshness when moving jobs from P to Q (paper: yes).
  bool require_fresh = true;

  /// Extension: also drain P when a deadline expiry frees Q capacity.
  bool admit_on_deadline = false;

  /// Extension: hand leftover processors to the densest running job.
  bool work_conserving = false;

  /// Extension ("more practical schedulers", the paper's future work):
  /// when admitting a job from P, recompute (n_i, x_i, v_i) from the
  /// *remaining* window d_i - t instead of the original D_i.  A job that
  /// waited in P gets more processors and a tighter x_i, staying feasible
  /// where the paper's static allocation would no longer be delta-fresh.
  bool recompute_on_admission = false;

  /// Density definition ablation.
  enum class DensityDef {
    kPaper,      // p / (x_i * n_i)   -- profit per processor-step S spends
    kClassic,    // p / W             -- the sequential-scheduling density
    kSquashed,   // p / max(L, W/m)   -- profit per unit of minimal runtime
  };
  DensityDef density_def = DensityDef::kPaper;

  /// Record an audit trail of admission decisions (audit()); costs one
  /// vector entry per queue transition.
  bool record_audit = false;
};

/// One admission-path event for a job, in chronological order.
struct AuditEvent {
  enum class Action {
    kAdmitted,        // entered Q (started)
    kQueuedNotGood,   // to P: not delta-good (deadline below (1+2delta)x)
    kQueuedWindowFull,// to P: condition (2) window over b*m
    kPromoted,        // P -> Q at a completion
    kDroppedStale,    // left P: no longer delta-fresh / expired
    kExpiredInQ,      // removed from Q at its deadline
  };
  Time time = 0.0;
  JobId job = kInvalidJob;
  Action action = Action::kAdmitted;
};

const char* audit_action_name(AuditEvent::Action action);

class DeadlineScheduler final : public SchedulerBase {
 public:
  explicit DeadlineScheduler(DeadlineSchedulerOptions options = {});

  std::string name() const override;
  void reset() override;
  void on_arrival(const EngineContext& ctx, JobId job) override;
  void on_completion(const EngineContext& ctx, JobId job) override;
  void on_deadline(const EngineContext& ctx, JobId job) override;
  /// Degradation policy under processor churn.  Shrink: condition (2) is
  /// replayed over Q in density order against b*new_m; jobs that no longer
  /// fit are requeued to P (if still admissible later) or dropped, each
  /// recorded as a `readmit-fail` decision event.  Growth: P is drained,
  /// since recovered capacity may admit waiting jobs.
  void on_capacity_change(const EngineContext& ctx, ProcCount old_m,
                          ProcCount new_m) override;
  void decide(const EngineContext& ctx, Assignment& out) override;
  /// Sharded-run arrival staging (sim/scheduler.h): the (n_i, x_i, v_i)
  /// allocation math is a pure function of the immutable Job and the machine
  /// speed, so shard workers stage it ahead of delivery.  The m-dependent
  /// pieces -- the squashed-density ablation and condition (2) -- stay in
  /// on_arrival, which consumes the staged POD when ctx.arrival_prep() is
  /// set and recomputes identically when it is not.
  std::size_t arrival_precompute_size() const override;
  void precompute_arrival(const Job& job, JobId id, double speed,
                          void* out) const override;
  /// Overload shedding: abandons the lowest-density admissible jobs,
  /// waiting set P before started set Q (dropping a P job forfeits no
  /// committed profit).  Emits kDrop events with `overload.shed.waiting` /
  /// `overload.shed.started` slugs.
  std::size_t shed_load(const EngineContext& ctx,
                        std::size_t max_jobs) override;
  /// Checkpoint both queues, the per-job allocations, and the pending
  /// incremental-drain work.  q_index_ and p_expiry_ are derived (rebuilt
  /// on load); the audit trail is diagnostics and restarts empty on resume.
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;
  std::size_t queue_depth() const override { return q_.size() + p_.size(); }
  std::size_t memory_bytes() const override;

  // ---- Introspection (tests, benches, invariant observers) ----

  const Params& params() const { return options_.params; }
  /// Jobs ever admitted to Q (the paper's set R) and their total profit.
  std::size_t started_count() const { return started_count_; }
  Profit started_profit() const { return started_profit_; }
  /// The admission index over the current Q (Observation 3 checks).
  const DensityWindowIndex& queue_index() const { return q_index_; }
  bool in_queue_q(JobId job) const;
  bool in_queue_p(JobId job) const;
  /// Whether the job was ever admitted to Q (member of the paper's set R).
  bool was_started(JobId job) const;
  /// Allocation computed at arrival; nullptr if the job never arrived.
  const JobAllocation* allocation_of(JobId job) const;

  /// Admission audit trail (empty unless options.record_audit).
  const std::vector<AuditEvent>& audit() const { return audit_; }

 private:
  /// Arrival fields stageable off the main thread (trivially copyable; moved
  /// between threads as raw bytes).  Everything here is speed-dependent but
  /// m-independent -- see precompute_arrival above.
  struct ArrivalPrecompute {
    JobAllocation alloc;
    Profit peak = 0.0;
    Time plateau = 0.0;
    Time abs_plateau_deadline = 0.0;
  };

  struct JobInfo {
    JobAllocation alloc;
    Profit peak = 0.0;
    Time abs_plateau_deadline = 0.0;  // release + plateau end
    Time plateau = 0.0;               // relative "deadline" used by S
    bool arrived = false;
    bool started = false;  // ever admitted to Q
    bool dropped = false;
    bool in_q = false;  // currently a member of Q
    bool in_p = false;  // currently a member of P
  };

  Density density_for(const EngineContext& ctx, const JobInfo& info,
                      Work work, Work span) const;
  void admit_to_q(JobId job);
  void enqueue_p(JobId job);
  void remove_from_p(JobId job, Density v);
  /// A member with density u left Q: admission windows overlapping
  /// (u/c, u*c) may have loosened, so P jobs in that octave must be
  /// re-examined at the next drain.
  void mark_q_removal(Density v);
  void drain_p(const EngineContext& ctx);
  bool is_fresh(const JobInfo& info, Time now) const;

  DeadlineSchedulerOptions options_;
  std::vector<JobInfo> info_;
  DensityOrderedQueue q_;  // started jobs, (density desc, id asc)
  DensityOrderedQueue p_;  // waiting jobs, (density desc, id asc)
  DensityWindowIndex q_index_;
  std::vector<AuditEvent> audit_;
  std::size_t started_count_ = 0;
  Profit started_profit_ = 0.0;

  // ---- Incremental drain state (see drain_p) ----
  // A P job's admission outcome can change between drains only if (a) its
  // plateau deadline passed (expiry heap, lazy deletion), (b) it entered P
  // since the last drain (p_fresh_), (c) a Q removal loosened a window it
  // checks (p_dirty_ density octaves), or (d) capacity grew / options force
  // a full rescan (p_dirty_all_).  drain_p visits exactly the union of
  // those candidates in queue order, so the drop/promote sequence -- and
  // hence the decision log -- is identical to the seed's full rescan.
  DaryHeap<std::pair<Time, JobId>> p_expiry_;
  std::vector<JobId> p_fresh_;
  std::vector<std::pair<Density, Density>> p_dirty_;
  bool p_dirty_all_ = false;
  std::vector<std::pair<Density, JobId>> drain_scratch_;

  /// Appends to the audit trail (if recording) and mirrors the transition
  /// to the run's ObsSink as a decision event + policy counter (if wired).
  void record(const EngineContext& ctx, JobId job, AuditEvent::Action action);
};

}  // namespace dagsched
