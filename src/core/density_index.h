// DensityWindowIndex: the data structure behind admission condition (2).
//
// The paper admits a job J_i into queue Q only if for every job J_j in
// Q ∪ {J_i}, the total processors required by members with density in
// [v_j, c*v_j) stay within b*m:  N(Q ∪ {J_i}, v_j, c*v_j) <= b*m.
//
// The index keeps members sorted by density with prefix sums of processor
// requirements.  admits() exploits that inserting (v, n) only affects
// windows containing v: window starts v_j in (v/c, v], plus the new job's
// own window [v, c*v).  Given the inductive invariant that all windows were
// within cap before the insertion, checking those suffices.
//
// Used both for queue Q of the Section-3 scheduler and for each per-slot
// set J(t) of the Section-5 scheduler (Lemma 15 is the same condition).
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace dagsched {

class DensityWindowIndex {
 public:
  void clear();

  /// Inserts member `job` with density `v` (> 0) and requirement `n` (>= 1).
  /// A job may appear at most once.
  void insert(JobId job, Density v, ProcCount n);

  /// Removes `job` if present; returns whether it was present.
  bool erase(JobId job);

  bool contains(JobId job) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sum of requirements of members with density in [lo, hi).
  double window_load(Density lo, Density hi) const;

  /// Would inserting (v, n) keep every window [v_j, c*v_j) over
  /// members ∪ {new} within `cap`?  (Condition (2) with cap = b*m.)
  bool admits(Density v, ProcCount n, double c, double cap) const;

  /// Max over members J_j of window_load(v_j, c*v_j): the quantity
  /// Observation 3 / Lemma 15 bound by b*m.  O(k log k); for tests.
  double max_window_load(double c) const;

  /// Total requirement of members with density >= v (N(Q, v, infinity)).
  double load_at_least(Density v) const;

  /// Allocated bytes of the entry array and prefix-sum cache (telemetry
  /// gauge; capacities, not live counts).
  std::size_t memory_bytes() const {
    return entries_.capacity() * sizeof(Entry) +
           prefix_.capacity() * sizeof(double);
  }

 private:
  struct Entry {
    Density v;
    double n;
    JobId job;
  };

  void rebuild_prefix() const;
  std::size_t lower_index(Density v) const;

  std::vector<Entry> entries_;          // sorted by (v, job)
  mutable std::vector<double> prefix_;  // prefix_[i] = sum of n over [0, i)
  mutable bool prefix_valid_ = false;
};

}  // namespace dagsched
