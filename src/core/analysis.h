// The paper's proven worst-case constants, as computable functions of
// Params -- so benches can print "proven bound vs measured" side by side.
//
//   Lemma 5:  ||C||  >= (eps - 1/((c-1)delta)) ||R||
//   Lemma 9:  ||OPT|| <= (1 + a * c * (1+2delta)/(delta b (1-b))) ||R||
//   Lemma 10 / Theorem 2: ||OPT|| / ||C|| <= lemma9 / lemma5
//   Lemma 21: general-profit analogue with an extra factor 2
//   Lemma 22 / Theorem 3: lemma21 / lemma5
//
// These are worst-case guarantees; measured ratios on random workloads sit
// far below them (EXPERIMENTS.md E3/E13 quantify by how much).
#pragma once

#include "core/params.h"

namespace dagsched {

struct ProvenBounds {
  /// Lemma 5: fraction of started profit S certainly completes.
  double completion_fraction = 0.0;
  /// Lemma 9: OPT profit over started profit.
  double opt_vs_started = 0.0;
  /// Theorem 2 (Lemma 10): the end-to-end competitive ratio for throughput.
  double throughput_ratio = 0.0;
  /// Lemma 21: OPT profit over scheduled profit, general profit functions.
  double profit_opt_vs_scheduled = 0.0;
  /// Theorem 3 (Lemma 22): competitive ratio for general profit.
  double profit_ratio = 0.0;
};

/// Evaluates every proven constant; params must be valid.
ProvenBounds proven_bounds(const Params& params);

}  // namespace dagsched
