#include "core/analysis.h"

#include "util/check.h"

namespace dagsched {

ProvenBounds proven_bounds(const Params& params) {
  params.validate();
  const double eps = params.epsilon;
  const double delta = params.delta;
  const double c = params.c;
  const double b = params.b;
  const double a = params.a();

  ProvenBounds bounds;
  bounds.completion_fraction = params.completion_fraction();
  DS_CHECK_MSG(bounds.completion_fraction > 0.0,
               "parameters give a non-positive Lemma-5 constant");

  const double window_term = (1.0 + 2.0 * delta) / (delta * b * (1.0 - b));
  bounds.opt_vs_started = 1.0 + a * c * window_term;
  bounds.throughput_ratio =
      bounds.opt_vs_started / bounds.completion_fraction;

  bounds.profit_opt_vs_scheduled = 1.0 + a * c * 2.0 * window_term;
  bounds.profit_ratio =
      bounds.profit_opt_vs_scheduled / bounds.completion_fraction;
  (void)eps;
  return bounds;
}

}  // namespace dagsched
