#include "core/params.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace dagsched {

double Params::a() const { return 1.0 + (1.0 + 2.0 * delta) / (epsilon - 2.0 * delta); }

double Params::completion_fraction() const {
  return epsilon - 1.0 / ((c - 1.0) * delta);
}

Params Params::from_epsilon(double epsilon) {
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("epsilon must be > 0, got " +
                                std::to_string(epsilon));
  }
  Params p;
  p.epsilon = epsilon;
  p.delta = epsilon / 4.0;
  // Strictly exceed the bound so completion_fraction() is strictly positive.
  p.c = 1.0 + 1.0 / (p.delta * epsilon) + 1e-9;
  p.b = std::sqrt((1.0 + 2.0 * p.delta) / (1.0 + epsilon));
  p.validate();
  return p;
}

Params Params::explicit_params(double epsilon, double delta, double c) {
  Params p;
  p.epsilon = epsilon;
  p.delta = delta;
  p.c = c;
  p.b = std::sqrt((1.0 + 2.0 * delta) / (1.0 + epsilon));
  p.validate();
  return p;
}

void Params::validate() const {
  if (!(epsilon > 0.0)) throw std::invalid_argument("epsilon must be > 0");
  if (!(delta > 0.0 && delta < epsilon / 2.0)) {
    throw std::invalid_argument("need 0 < delta < epsilon/2");
  }
  if (!(c >= 1.0 + 1.0 / (delta * epsilon))) {
    throw std::invalid_argument("need c >= 1 + 1/(delta*epsilon)");
  }
  const double expected_b = std::sqrt((1.0 + 2.0 * delta) / (1.0 + epsilon));
  if (std::fabs(b - expected_b) > 1e-12) {
    throw std::invalid_argument("b must equal sqrt((1+2delta)/(1+epsilon))");
  }
  if (!(b < 1.0)) throw std::invalid_argument("b must be < 1");
}

}  // namespace dagsched
