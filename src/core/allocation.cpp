#include "core/allocation.h"

#include <cmath>

#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

namespace {

/// Shared tail: given effective work/span (speed folded in) and the time
/// budget `denom` = target/(1+2delta) - span_eff, produce {n, x}.
JobAllocation finish_allocation(Work work_eff, Work span_eff, double denom) {
  JobAllocation alloc;
  if (!(denom > 0.0)) return alloc;  // infeasible: even infinite n too slow
  const Work parallel_work = work_eff - span_eff;
  DS_CHECK_MSG(parallel_work >= -1e-9, "span exceeds work");
  double n_real = parallel_work > 0.0 ? parallel_work / denom : 0.0;
  // A pure chain (W == L) still needs one processor.
  ProcCount n = static_cast<ProcCount>(std::ceil(std::max(n_real, 0.0)));
  if (n == 0) n = 1;
  alloc.n = n;
  alloc.x = std::max(parallel_work, 0.0) / static_cast<double>(n) + span_eff;
  return alloc;
}

}  // namespace

JobAllocation compute_deadline_allocation(Work work, Work span,
                                          Time relative_deadline,
                                          Profit profit, const Params& params,
                                          double speed) {
  DS_CHECK(speed > 0.0);
  const Work work_eff = work / speed;
  const Work span_eff = span / speed;
  const double denom =
      relative_deadline / (1.0 + 2.0 * params.delta) - span_eff;
  JobAllocation alloc = finish_allocation(work_eff, span_eff, denom);
  if (alloc.n == 0) return alloc;
  alloc.v = profit / (alloc.x * static_cast<double>(alloc.n));
  // Lemma 2: rounding n up only shrinks x, so delta-goodness follows from
  // denom > 0; assert it rather than recheck with tolerance games.
  alloc.good =
      approx_le(alloc.x * (1.0 + 2.0 * params.delta), relative_deadline);
  DS_CHECK_MSG(alloc.good,
               "allocation lost delta-goodness: x=" << alloc.x << " D="
                                                    << relative_deadline);
  return alloc;
}

JobAllocation compute_profit_allocation(Work work, Work span, Time plateau_end,
                                        const Params& params, double speed) {
  DS_CHECK(speed > 0.0);
  const Work work_eff = work / speed;
  const Work span_eff = span / speed;
  const double denom = plateau_end / (1.0 + 2.0 * params.delta) - span_eff;
  JobAllocation alloc = finish_allocation(work_eff, span_eff, denom);
  if (alloc.n == 0) return alloc;
  // Lemma 14: x (1+2delta) <= x*.
  alloc.good = approx_le(alloc.x * (1.0 + 2.0 * params.delta), plateau_end);
  DS_CHECK(alloc.good);
  return alloc;
}

}  // namespace dagsched
