// Per-job allocation quantities (Section 3.1 / Table 2):
//
//   n_i = (W_i - L_i) / (D_i/(1+2delta) - L_i)   processors allocated
//   x_i = (W_i - L_i)/n_i + L_i                  max execution time on n_i
//   v_i = p_i / (x_i * n_i)                      density (profit per
//                                                 processor-step S spends)
//
// Two engineering deviations from the paper's real-valued n_i, both recorded
// in DESIGN.md:
//   * n_i is rounded up to an integer processor count (>= 1).  Rounding up
//     *shrinks* x_i, so delta-goodness (Lemma 2) is preserved; Lemma 1's
//     n_i <= b^2 m can be exceeded by strictly less than one processor.
//   * When the scheduler runs at speed s (resource augmentation), work and
//     span are scaled by 1/s before the formulas -- a speed-s machine
//     executes the same DAG with all node weights divided by s, which is
//     exactly the transformation in Corollary 1's proof.
#pragma once

#include "core/params.h"
#include "util/types.h"

namespace dagsched {

struct JobAllocation {
  /// Processors given to the job whenever it runs; 0 iff infeasible.
  ProcCount n = 0;
  /// Guaranteed completion bound on n dedicated processors (Observation 2),
  /// in wall-clock time units (speed already folded in).
  Work x = 0.0;
  /// Density v = p / (x * n).
  Density v = 0.0;
  /// Whether the allocation exists and the job is delta-good
  /// (D >= (1+2delta) x).
  bool good = false;
};

/// Computes the Section-3 allocation for a deadline job.
/// `speed` is the scheduler's resource augmentation (>= any positive value).
JobAllocation compute_deadline_allocation(Work work, Work span,
                                          Time relative_deadline,
                                          Profit profit, const Params& params,
                                          double speed);

/// Computes the Section-5 allocation: n_i from the plateau end x* of the
/// profit function instead of the deadline:
///   n_i = (W - L) / (x*/(1+2delta) - L).
/// The density is *not* filled in (it depends on the deadline the profit
/// scheduler later chooses); x is the same Graham bound as above.
JobAllocation compute_profit_allocation(Work work, Work span, Time plateau_end,
                                        const Params& params, double speed);

}  // namespace dagsched
