// DensityOrderedQueue: the indexed queue behind the scheduler hot path.
//
// Both queues of the Section-3 scheduler (started set Q, waiting set P) are
// served in (density descending, job id ascending) order.  The seed kept
// them as sorted vectors, paying O(|queue|) per sorted_insert / erase -- fine
// at n~100 jobs, quadratic on the 10^4..10^5-job workloads the ROADMAP
// targets.  This container keeps the same total order in a balanced tree:
// O(log n) insert/erase, in-order iteration, and density-range scans (used
// by the incremental drain to find the members whose admission outcome may
// have changed -- see DeadlineScheduler::drain_p).
//
// The key is the pair (density, id); the density under which a job was
// inserted must be passed to erase().  Membership is NOT tracked here --
// callers keep an O(1) membership flag on their per-job state (JobInfo) so
// the structure never scans.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <utility>

#include "util/arena.h"
#include "util/types.h"

namespace dagsched {

/// Strict weak order: density descending, ties broken by ascending job id
/// (the deterministic service order the paper's scheduler uses everywhere).
struct DensityDescIdAsc {
  bool operator()(const std::pair<Density, JobId>& a,
                  const std::pair<Density, JobId>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }
};

class DensityOrderedQueue {
 public:
  using Key = std::pair<Density, JobId>;

 private:
  using Set = std::set<Key, DensityDescIdAsc, PoolAllocator<Key>>;

 public:
  using const_iterator = Set::const_iterator;

  DensityOrderedQueue()
      : pool_(std::make_unique<NodePool>()),
        set_(DensityDescIdAsc{}, PoolAllocator<Key>(pool_.get())) {}

  // The set's tree nodes live in pool_; a copy would alias the source's
  // pool, and move-assignment would destroy the target's pool while its
  // set still holds nodes from it.  Schedulers construct queues in place.
  DensityOrderedQueue(const DensityOrderedQueue&) = delete;
  DensityOrderedQueue& operator=(const DensityOrderedQueue&) = delete;
  DensityOrderedQueue(DensityOrderedQueue&&) = delete;
  DensityOrderedQueue& operator=(DensityOrderedQueue&&) = delete;

  void clear() { set_.clear(); }
  bool empty() const { return set_.empty(); }
  std::size_t size() const { return set_.size(); }

  /// O(log n).  Returns false if (v, job) was already present.
  bool insert(JobId job, Density v) { return set_.emplace(v, job).second; }

  /// O(log n).  `v` must be the density the job was inserted under.
  bool erase(JobId job, Density v) { return set_.erase(Key{v, job}) > 0; }

  /// Iteration in (density desc, id asc) order.
  const_iterator begin() const { return set_.begin(); }
  const_iterator end() const { return set_.end(); }

  /// Calls `f(density, job)` for every member with density in [lo, hi],
  /// in queue order.  O(log n + matches).
  template <typename F>
  void for_each_in_density_range(Density lo, Density hi, F&& f) const {
    // Order is density-descending, so the range starts at the first key
    // with density <= hi (smallest id wins within equal density).
    for (auto it = set_.lower_bound(Key{hi, 0});
         it != set_.end() && it->first >= lo; ++it) {
      f(it->first, it->second);
    }
  }

  /// Allocated bytes: the node pool's chunk capacity (tree nodes are pooled
  /// and recycled, so this is the real footprint, not size × node-size).
  std::size_t memory_bytes() const { return pool_->capacity_bytes(); }

 private:
  std::unique_ptr<NodePool> pool_;  // must precede (and outlive) set_
  Set set_;
};

}  // namespace dagsched
