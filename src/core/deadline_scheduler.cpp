#include "core/deadline_scheduler.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "obs/sink.h"
#include "util/check.h"
#include "util/float_cmp.h"
#include "util/wire.h"

namespace dagsched {

DeadlineScheduler::DeadlineScheduler(DeadlineSchedulerOptions options)
    : options_(std::move(options)) {
  options_.params.validate();
}

std::string DeadlineScheduler::name() const {
  std::string n = "paper-S(eps=" + std::to_string(options_.params.epsilon);
  if (!options_.enforce_admission) n += ",no-admission";
  if (options_.work_conserving) n += ",work-conserving";
  if (options_.admit_on_deadline) n += ",admit-on-deadline";
  if (options_.recompute_on_admission) n += ",recompute";
  switch (options_.density_def) {
    case DeadlineSchedulerOptions::DensityDef::kPaper: break;
    case DeadlineSchedulerOptions::DensityDef::kClassic:
      n += ",density=p/W";
      break;
    case DeadlineSchedulerOptions::DensityDef::kSquashed:
      n += ",density=squashed";
      break;
  }
  n += ")";
  return n;
}

const char* audit_action_name(AuditEvent::Action action) {
  switch (action) {
    case AuditEvent::Action::kAdmitted: return "admitted";
    case AuditEvent::Action::kQueuedNotGood: return "queued:not-delta-good";
    case AuditEvent::Action::kQueuedWindowFull: return "queued:window-full";
    case AuditEvent::Action::kPromoted: return "promoted";
    case AuditEvent::Action::kDroppedStale: return "dropped:stale";
    case AuditEvent::Action::kExpiredInQ: return "expired-in-Q";
  }
  return "?";
}

void DeadlineScheduler::record(const EngineContext& ctx, JobId job,
                               AuditEvent::Action action) {
  if (options_.record_audit) audit_.push_back({ctx.now(), job, action});
  const ObsSink* obs = ctx.obs();
  if (obs == nullptr) return;
  // Every event carries the allocation the decision was made against, so a
  // consumer can replay condition (2) offline (see docs/OBSERVABILITY.md).
  std::vector<std::pair<std::string, double>> detail = {
      {"v", info_[job].alloc.v},
      {"n", static_cast<double>(info_[job].alloc.n)},
      {"good", info_[job].alloc.good ? 1.0 : 0.0}};
  switch (action) {
    case AuditEvent::Action::kAdmitted:
      obs->count("sched.admissions");
      obs->event(ctx.now(), job, ObsEventKind::kAdmit, "cond2-ok",
                 std::move(detail));
      break;
    case AuditEvent::Action::kQueuedNotGood:
      obs->count("sched.deferrals");
      obs->event(ctx.now(), job, ObsEventKind::kDefer, "not-delta-good",
                 std::move(detail));
      break;
    case AuditEvent::Action::kQueuedWindowFull:
      obs->count("sched.deferrals");
      obs->event(ctx.now(), job, ObsEventKind::kDefer, "window-full",
                 std::move(detail));
      break;
    case AuditEvent::Action::kPromoted:
      obs->count("sched.admissions");
      obs->count("sched.promotions");
      obs->event(ctx.now(), job, ObsEventKind::kAdmit, "promoted",
                 std::move(detail));
      break;
    case AuditEvent::Action::kDroppedStale:
      obs->count("sched.drops.stale");
      obs->event(ctx.now(), job, ObsEventKind::kDrop, "stale",
                 std::move(detail));
      break;
    case AuditEvent::Action::kExpiredInQ:
      obs->count("sched.drops.expired_in_q");
      obs->event(ctx.now(), job, ObsEventKind::kDrop, "expired-in-q",
                 std::move(detail));
      break;
  }
}

void DeadlineScheduler::reset() {
  info_.clear();
  audit_.clear();
  q_.clear();
  p_.clear();
  q_index_.clear();
  started_count_ = 0;
  started_profit_ = 0.0;
  p_expiry_.clear();
  p_fresh_.clear();
  p_dirty_.clear();
  p_dirty_all_ = false;
}

Density DeadlineScheduler::density_for(const EngineContext& ctx,
                                       const JobInfo& info, Work work,
                                       Work span) const {
  switch (options_.density_def) {
    case DeadlineSchedulerOptions::DensityDef::kPaper:
      return info.alloc.v;
    case DeadlineSchedulerOptions::DensityDef::kClassic:
      return info.peak / work;
    case DeadlineSchedulerOptions::DensityDef::kSquashed:
      return info.peak /
             std::max(span, work / static_cast<double>(ctx.num_procs()));
  }
  return info.alloc.v;
}

void DeadlineScheduler::admit_to_q(JobId job) {
  JobInfo& info = info_[job];
  // A job evicted by a capacity shrink and later re-admitted is already
  // started; it joins the paper's set R (and started_profit_) only once.
  if (!info.started) {
    info.started = true;
    ++started_count_;
    started_profit_ += info.peak;
  }
  q_index_.insert(job, info.alloc.v, info.alloc.n);
  q_.insert(job, info.alloc.v);
  info.in_q = true;
}

void DeadlineScheduler::enqueue_p(JobId job) {
  JobInfo& info = info_[job];
  p_.insert(job, info.alloc.v);
  info.in_p = true;
  // Expiry heap entries are lazy: a job that leaves P keeps its entry, and
  // re-entry pushes a fresh one; pops skip jobs no longer in P.
  p_expiry_.emplace(info.abs_plateau_deadline, job);
  p_fresh_.push_back(job);
}

void DeadlineScheduler::remove_from_p(JobId job, Density v) {
  p_.erase(job, v);
  info_[job].in_p = false;
}

void DeadlineScheduler::mark_q_removal(Density v) {
  // Removing density u from Q can loosen condition (2) exactly for waiting
  // densities in the open octave (u/c, u*c).  Pad the interval by a 1e-9
  // relative margin: admits() compares densities exactly, so the superset
  // absorbs any rounding in the division while staying O(octave)-sized.
  const double c = options_.params.c;
  p_dirty_.emplace_back((v / c) * (1.0 - 1e-9), (v * c) * (1.0 + 1e-9));
}

bool DeadlineScheduler::is_fresh(const JobInfo& info, Time now) const {
  // delta-fresh at t: d_i - t >= (1 + delta) x_i.
  return approx_ge(info.abs_plateau_deadline - now,
                   (1.0 + options_.params.delta) * info.alloc.x);
}

void DeadlineScheduler::on_arrival(const EngineContext& ctx, JobId job) {
  if (info_.size() < ctx.num_jobs()) info_.resize(ctx.num_jobs());
  JobInfo& info = info_[job];
  DS_CHECK(!info.arrived);
  info.arrived = true;

  const JobView view = ctx.view(job);
  if (ctx.arrival_prep() != nullptr) {
    // Sharded run: adopt the worker-staged allocation math.  The staging
    // path (precompute_arrival below) is the byte-for-byte computation of
    // the else branch, so both paths yield bit-identical JobInfo fields.
    ArrivalPrecompute prep;
    std::memcpy(&prep, ctx.arrival_prep(), sizeof(prep));
    info.plateau = prep.plateau;
    info.peak = prep.peak;
    info.abs_plateau_deadline = prep.abs_plateau_deadline;
    info.alloc = prep.alloc;
  } else {
    // General profit functions reduce to the plateau end (see header).
    info.plateau = view.profit().plateau_end();
    info.peak = view.profit().peak();
    info.abs_plateau_deadline = view.release() + info.plateau;

    info.alloc = compute_deadline_allocation(view.work(), view.span(),
                                             info.plateau, info.peak,
                                             options_.params, ctx.speed());
  }
  if (info.alloc.n == 0) {
    // Infeasible for any processor count: park in P; it will expire there.
    enqueue_p(job);
    record(ctx, job, AuditEvent::Action::kQueuedNotGood);
    return;
  }
  info.alloc.v = density_for(ctx, info, view.work(), view.span());

  const double cap =
      options_.params.b * static_cast<double>(ctx.num_procs());
  bool admissible = info.alloc.good;
  if (admissible && options_.enforce_admission) {
    if (ctx.obs() != nullptr) ctx.obs()->count("sched.admission_checks");
    admissible =
        q_index_.admits(info.alloc.v, info.alloc.n, options_.params.c, cap);
  }
  if (admissible) {
    admit_to_q(job);
    record(ctx, job, AuditEvent::Action::kAdmitted);
  } else {
    enqueue_p(job);
    record(ctx, job,
           info.alloc.good ? AuditEvent::Action::kQueuedWindowFull
                           : AuditEvent::Action::kQueuedNotGood);
  }
}

std::size_t DeadlineScheduler::arrival_precompute_size() const {
  return sizeof(ArrivalPrecompute);
}

void DeadlineScheduler::precompute_arrival(const Job& job, JobId id,
                                           double speed, void* out) const {
  (void)id;
  // Must stay the exact computation of on_arrival's recompute branch: reads
  // only the immutable Job and `speed` (== ctx.speed() at delivery), touches
  // no mutable members -- thread-safe per the sim/scheduler.h contract.
  ArrivalPrecompute prep;
  // The struct has interior padding (ProcCount/bool next to doubles); zero
  // it so staged bytes are a pure function of the inputs (tests memcmp
  // repeated evaluations).
  std::memset(static_cast<void*>(&prep), 0, sizeof(prep));
  prep.plateau = job.profit().plateau_end();
  prep.peak = job.profit().peak();
  prep.abs_plateau_deadline = job.release() + prep.plateau;
  // Field-wise copy: a whole-struct assignment would drag the temporary's
  // indeterminate padding bytes over the zeroed ones.
  const JobAllocation alloc = compute_deadline_allocation(
      job.work(), job.span(), prep.plateau, prep.peak, options_.params, speed);
  prep.alloc.n = alloc.n;
  prep.alloc.x = alloc.x;
  prep.alloc.v = alloc.v;
  prep.alloc.good = alloc.good;
  std::memcpy(out, &prep, sizeof(prep));
}

void DeadlineScheduler::drain_p(const EngineContext& ctx) {
  const double cap =
      options_.params.b * static_cast<double>(ctx.num_procs());
  // Candidate collection.  The seed rescanned all of P on every drain; here
  // we visit only the jobs whose outcome can have changed (see the member
  // comment in the header).  The per-candidate body below is the seed's
  // loop body verbatim, and candidates are processed in (density desc, id
  // asc) order against the same evolving q_index_, so drops, promotions and
  // their recorded order are byte-identical to a full rescan.
  auto& cand = drain_scratch_;
  cand.clear();
  const bool full_scan = p_dirty_all_ || options_.recompute_on_admission;
  if (full_scan) {
    // recompute_on_admission re-derives allocations from the shrinking
    // remaining window, so every P job's outcome is time-dependent; scan
    // all of P as the seed did.  Capacity growth also rescans (windows
    // loosened globally).
    cand.assign(p_.begin(), p_.end());
  } else {
    while (!p_expiry_.empty() &&
           approx_gt(ctx.now(), p_expiry_.top().first)) {
      const JobId job = p_expiry_.top().second;
      p_expiry_.pop();
      if (info_[job].in_p) cand.emplace_back(info_[job].alloc.v, job);
    }
    for (const JobId job : p_fresh_) {
      if (info_[job].in_p) cand.emplace_back(info_[job].alloc.v, job);
    }
    for (const auto& [lo, hi] : p_dirty_) {
      p_.for_each_in_density_range(lo, hi, [&cand](Density v, JobId job) {
        cand.emplace_back(v, job);
      });
    }
    std::sort(cand.begin(), cand.end(), DensityDescIdAsc{});
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  }
  p_fresh_.clear();
  p_dirty_.clear();
  p_dirty_all_ = false;

  for (const auto& [key_v, job] : cand) {
    JobInfo& info = info_[job];
    if (!info.in_p) continue;  // left P earlier in this very drain
    // Drop jobs whose plateau deadline has passed (they can earn nothing S
    // would count) and infeasible jobs.
    if (info.alloc.n == 0 ||
        approx_gt(ctx.now(), info.abs_plateau_deadline)) {
      info.dropped = true;
      remove_from_p(job, key_v);
      record(ctx, job, AuditEvent::Action::kDroppedStale);
      continue;
    }
    // Optional recomputation (future-work extension): re-derive the
    // allocation from the remaining window, making stale-but-still-viable
    // jobs admissible with a larger n_i.  Reverted if admission fails so
    // the stored allocation stays consistent with P's density order.
    const JobAllocation saved = info.alloc;
    if (options_.recompute_on_admission) {
      const JobView view = ctx.view(job);
      const Time remaining_window =
          info.abs_plateau_deadline - ctx.now();
      if (remaining_window > 0.0) {
        if (ctx.obs() != nullptr) ctx.obs()->count("sched.recomputes");
        JobAllocation fresh_alloc = compute_deadline_allocation(
            view.work(), view.span(), remaining_window, info.peak,
            options_.params, ctx.speed());
        if (fresh_alloc.n > 0) {
          info.alloc = fresh_alloc;
          info.alloc.v = density_for(ctx, info, view.work(), view.span());
        }
      }
    }
    const bool fresh = !options_.require_fresh || is_fresh(info, ctx.now());
    bool admissible = info.alloc.n > 0 && fresh;
    if (admissible && options_.enforce_admission) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.admission_checks");
      admissible = q_index_.admits(info.alloc.v, info.alloc.n,
                                   options_.params.c, cap);
    }
    if (admissible) {
      remove_from_p(job, key_v);
      admit_to_q(job);
      record(ctx, job, AuditEvent::Action::kPromoted);
      continue;
    }
    info.alloc = saved;
  }
}

void DeadlineScheduler::on_capacity_change(const EngineContext& ctx,
                                           ProcCount old_m, ProcCount new_m) {
  if (new_m >= old_m) {
    // Recovery: the wider windows may now admit jobs waiting in P -- every
    // admission window loosened, so the next drain rescans all of P.
    p_dirty_all_ = true;
    drain_p(ctx);
    return;
  }
  // Shrink: replay admission condition (2) over Q in density order against
  // the reduced capacity b*new_m, keeping the densest feasible prefix --
  // the same greedy order decide() serves, so the jobs shed are exactly the
  // ones that could no longer be served anyway.
  const double cap = options_.params.b * static_cast<double>(new_m);
  std::vector<std::pair<Density, JobId>> snapshot(q_.begin(), q_.end());
  std::vector<std::pair<Density, JobId>> evicted;
  q_index_.clear();
  q_.clear();
  for (const auto& [v, job] : snapshot) {
    const JobInfo& info = info_[job];
    bool ok = info.alloc.n <= new_m;
    if (ok && options_.enforce_admission) {
      ok = q_index_.admits(info.alloc.v, info.alloc.n, options_.params.c,
                           cap);
    }
    if (ok) {
      q_index_.insert(job, info.alloc.v, info.alloc.n);
      q_.insert(job, v);
    } else {
      info_[job].in_q = false;
      evicted.emplace_back(v, job);
    }
  }
  const ObsSink* obs = ctx.obs();
  for (const auto& [v, job] : evicted) {
    JobInfo& info = info_[job];
    mark_q_removal(v);  // eviction loosens windows for the jobs left behind
    const bool fresh = !options_.require_fresh || is_fresh(info, ctx.now());
    const char* slug = info.alloc.n > new_m ? "too-wide" : "window-full";
    if (fresh) {
      enqueue_p(job);  // may be re-admitted when capacity recovers
    } else {
      info.dropped = true;
      slug = "stale";
    }
    if (obs != nullptr) {
      obs->count("sched.readmit_fails");
      obs->event(ctx.now(), job, ObsEventKind::kReadmitFail, slug,
                 {{"v", info.alloc.v},
                  {"n", static_cast<double>(info.alloc.n)},
                  {"m", static_cast<double>(new_m)},
                  {"requeued", fresh ? 1.0 : 0.0}});
    }
  }
}

void DeadlineScheduler::on_completion(const EngineContext& ctx, JobId job) {
  JobInfo& info = info_[job];
  if (info.in_q) {
    q_.erase(job, info.alloc.v);
    info.in_q = false;
    q_index_.erase(job);
    mark_q_removal(info.alloc.v);
  }
  if (info.in_p) remove_from_p(job, info.alloc.v);
  drain_p(ctx);
}

void DeadlineScheduler::on_deadline(const EngineContext& ctx, JobId job) {
  JobInfo& info = info_[job];
  info.dropped = true;
  const bool was_in_q = info.in_q;
  if (was_in_q) {
    q_.erase(job, info.alloc.v);
    info.in_q = false;
    q_index_.erase(job);
    mark_q_removal(info.alloc.v);
  }
  const bool was_in_p = info.in_p;
  if (was_in_p) remove_from_p(job, info.alloc.v);
  if (was_in_q) record(ctx, job, AuditEvent::Action::kExpiredInQ);
  if (was_in_p) record(ctx, job, AuditEvent::Action::kDroppedStale);
  if (options_.admit_on_deadline && was_in_q) drain_p(ctx);
}

void DeadlineScheduler::decide(const EngineContext& ctx, Assignment& out) {
  ProcCount free = ctx.num_procs();
  for (const auto& [v, job] : q_) {
    if (free == 0) break;
    const JobInfo& info = info_[job];
    // Defensive: completed/expired jobs are removed eagerly in the event
    // handlers, so everything in Q is runnable.
    DS_CHECK(!info.dropped);
    if (info.alloc.n <= free) {
      out.add(job, info.alloc.n);
      free -= info.alloc.n;
    }
    // Jobs that do not fit are skipped, not truncated: S always grants
    // exactly n_i processors (Section 3.1, "Job Execution").
  }
  if (options_.work_conserving && free > 0 && !out.allocs.empty()) {
    // Extension: leftover processors go to the densest running job; the
    // engine caps actual use at the job's ready-node count.
    out.allocs.front().procs += free;
  }
}

std::size_t DeadlineScheduler::shed_load(const EngineContext& ctx,
                                         std::size_t max_jobs) {
  // Lowest density first: the back of each queue (they are kept density-
  // descending).  Waiting jobs go before started jobs -- abandoning a P job
  // forfeits no committed profit.  Shed jobs are marked dropped, so every
  // queue path skips them from here on; Q removals loosen admission
  // windows, which is what lets the scheduler recover on its own once the
  // overload clears.
  std::size_t shed = 0;
  const ObsSink* obs = ctx.obs();
  auto emit = [&](JobId job, const char* slug) {
    if (obs == nullptr) return;
    obs->count("sched.drops.overload");
    obs->event(ctx.now(), job, ObsEventKind::kDrop, slug,
               {{"v", info_[job].alloc.v},
                {"n", static_cast<double>(info_[job].alloc.n)}});
  };
  while (shed < max_jobs && !p_.empty()) {
    const auto [v, job] = *std::prev(p_.end());
    remove_from_p(job, v);
    info_[job].dropped = true;
    emit(job, "overload.shed.waiting");
    ++shed;
  }
  while (shed < max_jobs && !q_.empty()) {
    const auto [v, job] = *std::prev(q_.end());
    q_.erase(job, v);
    info_[job].in_q = false;
    q_index_.erase(job);
    mark_q_removal(v);
    info_[job].dropped = true;
    emit(job, "overload.shed.started");
    ++shed;
  }
  return shed;
}

void DeadlineScheduler::save_state(CheckpointWriter& out) const {
  out.u64(info_.size());
  for (const JobInfo& info : info_) {
    out.u32(info.alloc.n);
    out.f64(info.alloc.x);
    out.f64(info.alloc.v);
    out.boolean(info.alloc.good);
    out.f64(info.peak);
    out.f64(info.abs_plateau_deadline);
    out.f64(info.plateau);
    out.u8(static_cast<std::uint8_t>(
        (info.arrived ? 1u : 0u) | (info.started ? 2u : 0u) |
        (info.dropped ? 4u : 0u) | (info.in_q ? 8u : 0u) |
        (info.in_p ? 16u : 0u)));
  }
  out.u64(started_count_);
  out.f64(started_profit_);
  auto write_queue = [&out](const DensityOrderedQueue& queue) {
    out.u64(queue.size());
    for (const auto& [v, job] : queue) {
      out.f64(v);
      out.u32(job);
    }
  };
  write_queue(q_);
  write_queue(p_);
  out.u64(p_fresh_.size());
  for (const JobId job : p_fresh_) out.u32(job);
  out.u64(p_dirty_.size());
  for (const auto& [lo, hi] : p_dirty_) {
    out.f64(lo);
    out.f64(hi);
  }
  out.boolean(p_dirty_all_);
}

void DeadlineScheduler::load_state(CheckpointReader& in) {
  const std::uint64_t n = in.count(46);
  info_.resize(static_cast<std::size_t>(n));
  std::size_t flagged_q = 0;
  std::size_t flagged_p = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    JobInfo& info = info_[static_cast<std::size_t>(i)];
    info.alloc.n = in.u32();
    info.alloc.x = in.f64();
    info.alloc.v = in.f64();
    info.alloc.good = in.boolean();
    info.peak = in.f64();
    info.abs_plateau_deadline = in.f64();
    info.plateau = in.f64();
    const std::uint8_t flags = in.u8();
    if ((flags & ~0x1Fu) != 0) {
      in.fail("job " + std::to_string(i) + " has invalid flags");
    }
    info.arrived = (flags & 1u) != 0;
    info.started = (flags & 2u) != 0;
    info.dropped = (flags & 4u) != 0;
    info.in_q = (flags & 8u) != 0;
    info.in_p = (flags & 16u) != 0;
    if ((info.in_q && info.in_p) ||
        ((info.in_q || info.in_p) && (!info.arrived || info.dropped)) ||
        (info.in_q && (!info.started || info.alloc.n == 0 ||
                       !(info.alloc.v > 0.0)))) {
      in.fail("job " + std::to_string(i) + " has inconsistent queue flags");
    }
    flagged_q += info.in_q ? 1 : 0;
    flagged_p += info.in_p ? 1 : 0;
  }
  started_count_ = static_cast<std::size_t>(in.u64());
  started_profit_ = in.f64();
  // Q: the admission index is derived state, rebuilt entry by entry (its
  // contents are a function of the member set, not of insertion history).
  const std::uint64_t q_size = in.count(12);
  for (std::uint64_t i = 0; i < q_size; ++i) {
    const Density v = in.f64();
    const JobId job = in.u32();
    if (job >= n || !info_[job].in_q || info_[job].alloc.v != v) {
      in.fail("Q entry " + std::to_string(i) + " does not match job state");
    }
    if (!q_.insert(job, v)) in.fail("duplicate Q member");
    q_index_.insert(job, v, info_[job].alloc.n);
  }
  if (q_.size() != flagged_q) in.fail("Q size disagrees with in_q flags");
  // P: the expiry heap is derived too -- its live entries are exactly one
  // (plateau deadline, job) pair per current member; the lazily deleted
  // entries the running process still carried are skipped on pop anyway.
  const std::uint64_t p_size = in.count(12);
  for (std::uint64_t i = 0; i < p_size; ++i) {
    const Density v = in.f64();
    const JobId job = in.u32();
    if (job >= n || !info_[job].in_p || info_[job].alloc.v != v) {
      in.fail("P entry " + std::to_string(i) + " does not match job state");
    }
    if (!p_.insert(job, v)) in.fail("duplicate P member");
    p_expiry_.emplace(info_[job].abs_plateau_deadline, job);
  }
  if (p_.size() != flagged_p) in.fail("P size disagrees with in_p flags");
  const std::uint64_t fresh = in.count(4);
  p_fresh_.resize(static_cast<std::size_t>(fresh));
  for (JobId& job : p_fresh_) {
    job = in.u32();
    if (job >= n) in.fail("p_fresh entry out of range");
  }
  const std::uint64_t dirty = in.count(16);
  p_dirty_.resize(static_cast<std::size_t>(dirty));
  for (auto& [lo, hi] : p_dirty_) {
    lo = in.f64();
    hi = in.f64();
  }
  p_dirty_all_ = in.boolean();
}

bool DeadlineScheduler::in_queue_q(JobId job) const {
  return job < info_.size() && info_[job].in_q;
}

bool DeadlineScheduler::in_queue_p(JobId job) const {
  return job < info_.size() && info_[job].in_p;
}

bool DeadlineScheduler::was_started(JobId job) const {
  return job < info_.size() && info_[job].started;
}

const JobAllocation* DeadlineScheduler::allocation_of(JobId job) const {
  if (job >= info_.size() || !info_[job].arrived) return nullptr;
  return &info_[job].alloc;
}

std::size_t DeadlineScheduler::memory_bytes() const {
  // Queues, admission index, per-job info, and the incremental-drain state;
  // capacity-based like every other telemetry byte gauge.
  return q_.memory_bytes() + p_.memory_bytes() + q_index_.memory_bytes() +
         info_.capacity() * sizeof(JobInfo) +
         audit_.capacity() * sizeof(AuditEvent) +
         p_expiry_.memory_bytes() + p_fresh_.capacity() * sizeof(JobId) +
         p_dirty_.capacity() * sizeof(std::pair<Density, Density>) +
         drain_scratch_.capacity() * sizeof(std::pair<Density, JobId>);
}

}  // namespace dagsched
