#include "core/deadline_scheduler.h"

#include <algorithm>

#include "obs/sink.h"
#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

DeadlineScheduler::DeadlineScheduler(DeadlineSchedulerOptions options)
    : options_(std::move(options)) {
  options_.params.validate();
}

std::string DeadlineScheduler::name() const {
  std::string n = "paper-S(eps=" + std::to_string(options_.params.epsilon);
  if (!options_.enforce_admission) n += ",no-admission";
  if (options_.work_conserving) n += ",work-conserving";
  if (options_.admit_on_deadline) n += ",admit-on-deadline";
  if (options_.recompute_on_admission) n += ",recompute";
  switch (options_.density_def) {
    case DeadlineSchedulerOptions::DensityDef::kPaper: break;
    case DeadlineSchedulerOptions::DensityDef::kClassic:
      n += ",density=p/W";
      break;
    case DeadlineSchedulerOptions::DensityDef::kSquashed:
      n += ",density=squashed";
      break;
  }
  n += ")";
  return n;
}

const char* audit_action_name(AuditEvent::Action action) {
  switch (action) {
    case AuditEvent::Action::kAdmitted: return "admitted";
    case AuditEvent::Action::kQueuedNotGood: return "queued:not-delta-good";
    case AuditEvent::Action::kQueuedWindowFull: return "queued:window-full";
    case AuditEvent::Action::kPromoted: return "promoted";
    case AuditEvent::Action::kDroppedStale: return "dropped:stale";
    case AuditEvent::Action::kExpiredInQ: return "expired-in-Q";
  }
  return "?";
}

void DeadlineScheduler::record(const EngineContext& ctx, JobId job,
                               AuditEvent::Action action) {
  if (options_.record_audit) audit_.push_back({ctx.now(), job, action});
  const ObsSink* obs = ctx.obs();
  if (obs == nullptr) return;
  // Every event carries the allocation the decision was made against, so a
  // consumer can replay condition (2) offline (see docs/OBSERVABILITY.md).
  std::vector<std::pair<std::string, double>> detail = {
      {"v", info_[job].alloc.v},
      {"n", static_cast<double>(info_[job].alloc.n)},
      {"good", info_[job].alloc.good ? 1.0 : 0.0}};
  switch (action) {
    case AuditEvent::Action::kAdmitted:
      obs->count("sched.admissions");
      obs->event(ctx.now(), job, ObsEventKind::kAdmit, "cond2-ok",
                 std::move(detail));
      break;
    case AuditEvent::Action::kQueuedNotGood:
      obs->count("sched.deferrals");
      obs->event(ctx.now(), job, ObsEventKind::kDefer, "not-delta-good",
                 std::move(detail));
      break;
    case AuditEvent::Action::kQueuedWindowFull:
      obs->count("sched.deferrals");
      obs->event(ctx.now(), job, ObsEventKind::kDefer, "window-full",
                 std::move(detail));
      break;
    case AuditEvent::Action::kPromoted:
      obs->count("sched.admissions");
      obs->count("sched.promotions");
      obs->event(ctx.now(), job, ObsEventKind::kAdmit, "promoted",
                 std::move(detail));
      break;
    case AuditEvent::Action::kDroppedStale:
      obs->count("sched.drops.stale");
      obs->event(ctx.now(), job, ObsEventKind::kDrop, "stale",
                 std::move(detail));
      break;
    case AuditEvent::Action::kExpiredInQ:
      obs->count("sched.drops.expired_in_q");
      obs->event(ctx.now(), job, ObsEventKind::kDrop, "expired-in-q",
                 std::move(detail));
      break;
  }
}

void DeadlineScheduler::reset() {
  info_.clear();
  audit_.clear();
  q_.clear();
  p_.clear();
  q_index_.clear();
  started_count_ = 0;
  started_profit_ = 0.0;
}

Density DeadlineScheduler::density_for(const EngineContext& ctx,
                                       const JobInfo& info, Work work,
                                       Work span) const {
  switch (options_.density_def) {
    case DeadlineSchedulerOptions::DensityDef::kPaper:
      return info.alloc.v;
    case DeadlineSchedulerOptions::DensityDef::kClassic:
      return info.peak / work;
    case DeadlineSchedulerOptions::DensityDef::kSquashed:
      return info.peak /
             std::max(span, work / static_cast<double>(ctx.num_procs()));
  }
  return info.alloc.v;
}

void DeadlineScheduler::sorted_insert(std::vector<JobId>& queue,
                                      JobId job) const {
  const auto pos = std::lower_bound(
      queue.begin(), queue.end(), job, [this](JobId lhs, JobId rhs) {
        const Density lv = info_[lhs].alloc.v;
        const Density rv = info_[rhs].alloc.v;
        if (lv != rv) return lv > rv;  // descending density
        return lhs < rhs;              // ties: ascending id (deterministic)
      });
  queue.insert(pos, job);
}

void DeadlineScheduler::admit_to_q(JobId job) {
  JobInfo& info = info_[job];
  // A job evicted by a capacity shrink and later re-admitted is already
  // started; it joins the paper's set R (and started_profit_) only once.
  if (!info.started) {
    info.started = true;
    ++started_count_;
    started_profit_ += info.peak;
  }
  q_index_.insert(job, info.alloc.v, info.alloc.n);
  sorted_insert(q_, job);
}

bool DeadlineScheduler::is_fresh(const JobInfo& info, Time now) const {
  // delta-fresh at t: d_i - t >= (1 + delta) x_i.
  return approx_ge(info.abs_plateau_deadline - now,
                   (1.0 + options_.params.delta) * info.alloc.x);
}

void DeadlineScheduler::on_arrival(const EngineContext& ctx, JobId job) {
  if (info_.size() < ctx.num_jobs()) info_.resize(ctx.num_jobs());
  JobInfo& info = info_[job];
  DS_CHECK(!info.arrived);
  info.arrived = true;

  const JobView view = ctx.view(job);
  // General profit functions reduce to the plateau end (see header).
  info.plateau = view.profit().plateau_end();
  info.peak = view.profit().peak();
  info.abs_plateau_deadline = view.release() + info.plateau;

  info.alloc = compute_deadline_allocation(view.work(), view.span(),
                                           info.plateau, info.peak,
                                           options_.params, ctx.speed());
  if (info.alloc.n == 0) {
    // Infeasible for any processor count: park in P; it will expire there.
    sorted_insert(p_, job);
    record(ctx, job, AuditEvent::Action::kQueuedNotGood);
    return;
  }
  info.alloc.v = density_for(ctx, info, view.work(), view.span());

  const double cap =
      options_.params.b * static_cast<double>(ctx.num_procs());
  bool admissible = info.alloc.good;
  if (admissible && options_.enforce_admission) {
    if (ctx.obs() != nullptr) ctx.obs()->count("sched.admission_checks");
    admissible =
        q_index_.admits(info.alloc.v, info.alloc.n, options_.params.c, cap);
  }
  if (admissible) {
    admit_to_q(job);
    record(ctx, job, AuditEvent::Action::kAdmitted);
  } else {
    sorted_insert(p_, job);
    record(ctx, job,
           info.alloc.good ? AuditEvent::Action::kQueuedWindowFull
                           : AuditEvent::Action::kQueuedNotGood);
  }
}

void DeadlineScheduler::drain_p(const EngineContext& ctx) {
  const double cap =
      options_.params.b * static_cast<double>(ctx.num_procs());
  std::size_t i = 0;
  while (i < p_.size()) {
    const JobId job = p_[i];
    JobInfo& info = info_[job];
    // Drop jobs whose plateau deadline has passed (they can earn nothing S
    // would count) and infeasible jobs.
    if (info.alloc.n == 0 ||
        approx_gt(ctx.now(), info.abs_plateau_deadline)) {
      info.dropped = true;
      p_.erase(p_.begin() + static_cast<std::ptrdiff_t>(i));
      record(ctx, job, AuditEvent::Action::kDroppedStale);
      continue;
    }
    // Optional recomputation (future-work extension): re-derive the
    // allocation from the remaining window, making stale-but-still-viable
    // jobs admissible with a larger n_i.  Reverted if admission fails so
    // the stored allocation stays consistent with P's density order.
    const JobAllocation saved = info.alloc;
    if (options_.recompute_on_admission) {
      const JobView view = ctx.view(job);
      const Time remaining_window =
          info.abs_plateau_deadline - ctx.now();
      if (remaining_window > 0.0) {
        if (ctx.obs() != nullptr) ctx.obs()->count("sched.recomputes");
        JobAllocation fresh_alloc = compute_deadline_allocation(
            view.work(), view.span(), remaining_window, info.peak,
            options_.params, ctx.speed());
        if (fresh_alloc.n > 0) {
          info.alloc = fresh_alloc;
          info.alloc.v = density_for(ctx, info, view.work(), view.span());
        }
      }
    }
    const bool fresh = !options_.require_fresh || is_fresh(info, ctx.now());
    bool admissible = info.alloc.n > 0 && fresh;
    if (admissible && options_.enforce_admission) {
      if (ctx.obs() != nullptr) ctx.obs()->count("sched.admission_checks");
      admissible = q_index_.admits(info.alloc.v, info.alloc.n,
                                   options_.params.c, cap);
    }
    if (admissible) {
      p_.erase(p_.begin() + static_cast<std::ptrdiff_t>(i));
      admit_to_q(job);
      record(ctx, job, AuditEvent::Action::kPromoted);
      continue;
    }
    info.alloc = saved;
    ++i;
  }
}

void DeadlineScheduler::on_capacity_change(const EngineContext& ctx,
                                           ProcCount old_m, ProcCount new_m) {
  if (new_m >= old_m) {
    // Recovery: the wider windows may now admit jobs waiting in P.
    drain_p(ctx);
    return;
  }
  // Shrink: replay admission condition (2) over Q in density order against
  // the reduced capacity b*new_m, keeping the densest feasible prefix --
  // the same greedy order decide() serves, so the jobs shed are exactly the
  // ones that could no longer be served anyway.
  const double cap = options_.params.b * static_cast<double>(new_m);
  std::vector<JobId> keep;
  std::vector<JobId> evicted;
  keep.reserve(q_.size());
  q_index_.clear();
  for (const JobId job : q_) {
    const JobInfo& info = info_[job];
    bool ok = info.alloc.n <= new_m;
    if (ok && options_.enforce_admission) {
      ok = q_index_.admits(info.alloc.v, info.alloc.n, options_.params.c,
                           cap);
    }
    if (ok) {
      q_index_.insert(job, info.alloc.v, info.alloc.n);
      keep.push_back(job);
    } else {
      evicted.push_back(job);
    }
  }
  q_ = std::move(keep);
  const ObsSink* obs = ctx.obs();
  for (const JobId job : evicted) {
    JobInfo& info = info_[job];
    const bool fresh = !options_.require_fresh || is_fresh(info, ctx.now());
    const char* slug = info.alloc.n > new_m ? "too-wide" : "window-full";
    if (fresh) {
      sorted_insert(p_, job);  // may be re-admitted when capacity recovers
    } else {
      info.dropped = true;
      slug = "stale";
    }
    if (obs != nullptr) {
      obs->count("sched.readmit_fails");
      obs->event(ctx.now(), job, ObsEventKind::kReadmitFail, slug,
                 {{"v", info.alloc.v},
                  {"n", static_cast<double>(info.alloc.n)},
                  {"m", static_cast<double>(new_m)},
                  {"requeued", fresh ? 1.0 : 0.0}});
    }
  }
}

void DeadlineScheduler::on_completion(const EngineContext& ctx, JobId job) {
  if (std::erase(q_, job) > 0) q_index_.erase(job);
  std::erase(p_, job);
  drain_p(ctx);
}

void DeadlineScheduler::on_deadline(const EngineContext& ctx, JobId job) {
  JobInfo& info = info_[job];
  info.dropped = true;
  const bool was_in_q = std::erase(q_, job) > 0;
  if (was_in_q) q_index_.erase(job);
  const bool was_in_p = std::erase(p_, job) > 0;
  if (was_in_q) record(ctx, job, AuditEvent::Action::kExpiredInQ);
  if (was_in_p) record(ctx, job, AuditEvent::Action::kDroppedStale);
  if (options_.admit_on_deadline && was_in_q) drain_p(ctx);
}

void DeadlineScheduler::decide(const EngineContext& ctx, Assignment& out) {
  ProcCount free = ctx.num_procs();
  for (const JobId job : q_) {
    if (free == 0) break;
    const JobInfo& info = info_[job];
    // Defensive: completed/expired jobs are removed eagerly in the event
    // handlers, so everything in Q is runnable.
    DS_CHECK(!info.dropped);
    if (info.alloc.n <= free) {
      out.add(job, info.alloc.n);
      free -= info.alloc.n;
    }
    // Jobs that do not fit are skipped, not truncated: S always grants
    // exactly n_i processors (Section 3.1, "Job Execution").
  }
  if (options_.work_conserving && free > 0 && !out.allocs.empty()) {
    // Extension: leftover processors go to the densest running job; the
    // engine caps actual use at the job's ready-node count.
    out.allocs.front().procs += free;
  }
}

bool DeadlineScheduler::in_queue_q(JobId job) const {
  return std::find(q_.begin(), q_.end(), job) != q_.end();
}

bool DeadlineScheduler::in_queue_p(JobId job) const {
  return std::find(p_.begin(), p_.end(), job) != p_.end();
}

bool DeadlineScheduler::was_started(JobId job) const {
  return job < info_.size() && info_[job].started;
}

const JobAllocation* DeadlineScheduler::allocation_of(JobId job) const {
  if (job >= info_.size() || !info_[job].arrived) return nullptr;
  return &info_[job].alloc;
}

}  // namespace dagsched
