#include "workload/trace_import.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "dag/builder.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/float_cmp.h"
#include "util/parse_error.h"

namespace dagsched {

namespace {

/// Trims surrounding spaces/tabs, adjusting the recorded column so
/// diagnostics still point at the first retained character.
CsvCell trimmed(const CsvCell& cell) {
  const auto first = cell.text.find_first_not_of(" \t");
  if (first == std::string::npos) return {std::string{}, cell.column};
  const auto last = cell.text.find_last_not_of(" \t");
  return {cell.text.substr(first, last - first + 1), cell.column + first};
}

double parse_number(const std::string& source, std::size_t line,
                    const CsvCell& cell, const char* what) {
  double value = 0.0;
  std::size_t used = 0;
  try {
    value = std::stod(cell.text, &used);
  } catch (const std::exception&) {
    throw ParseError(source, line, cell.column,
                     std::string("bad ") + what + " '" + cell.text + "'");
  }
  if (used != cell.text.size()) {
    throw ParseError(source, line, cell.column,
                     std::string("trailing junk in ") + what + " '" +
                         cell.text + "'");
  }
  if (!std::isfinite(value)) {
    throw ParseError(source, line, cell.column,
                     std::string(what) + " must be finite, got '" + cell.text +
                         "'");
  }
  return value;
}

/// A Figure-1-style DAG with total work ~W and span ~L (exact up to node
/// rounding): a chain realizing the span beside an independent block.
std::shared_ptr<const Dag> synthesize_dag(Work work, Work span,
                                          double granularity) {
  const auto chain_nodes =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(span / granularity)));
  const double node = span / static_cast<double>(chain_nodes);
  DagBuilder b;
  b.add_chain(chain_nodes, node);
  Work remaining = work - span;
  while (remaining > 1e-9) {
    const Work chunk = std::min(remaining, node);
    b.add_node(chunk);
    remaining -= chunk;
  }
  return std::make_shared<const Dag>(std::move(b).build());
}

}  // namespace

JobSet import_trace_csv(std::istream& is, const TraceImportOptions& options,
                        const std::string& source) {
  DS_CHECK(options.granularity > 0.0);
  std::string line;
  std::size_t lineno = 0;

  // Header.
  if (!std::getline(is, line)) throw ParseError(source, 1, 1, "empty input");
  ++lineno;
  {
    const auto header = split_csv_line(line);
    const std::vector<std::string> expected = {"release", "work", "span",
                                               "deadline", "profit"};
    bool ok = header.size() == expected.size();
    std::size_t bad_column = 1;
    for (std::size_t i = 0; ok && i < expected.size(); ++i) {
      if (trimmed(header[i]).text != expected[i]) {
        ok = false;
        bad_column = header[i].column;
      }
    }
    if (!ok) {
      throw ParseError(
          source, lineno, bad_column,
          "bad header (expected 'release,work,span,deadline,profit')");
    }
  }

  JobSet jobs;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line[0] == '#') continue;
    const auto raw_cells = split_csv_line(line);
    if (raw_cells.size() != 5) {
      throw ParseError(source, lineno, 1,
                       "expected 5 fields, got " +
                           std::to_string(raw_cells.size()));
    }
    CsvCell cells[5];
    for (std::size_t i = 0; i < 5; ++i) cells[i] = trimmed(raw_cells[i]);
    const double release = parse_number(source, lineno, cells[0], "release");
    const double work = parse_number(source, lineno, cells[1], "work");
    const double span = parse_number(source, lineno, cells[2], "span");
    const double deadline = parse_number(source, lineno, cells[3], "deadline");
    const double profit = parse_number(source, lineno, cells[4], "profit");
    if (release < 0.0) {
      throw ParseError(source, lineno, cells[0].column, "negative release");
    }
    if (!(work > 0.0)) {
      throw ParseError(source, lineno, cells[1].column, "non-positive work");
    }
    if (!(span > 0.0)) {
      throw ParseError(source, lineno, cells[2].column, "non-positive span");
    }
    if (span > work + 1e-9) {
      throw ParseError(source, lineno, cells[2].column,
                       "span " + cells[2].text + " exceeds work " +
                           cells[1].text);
    }
    if (!(deadline > 0.0)) {
      throw ParseError(source, lineno, cells[3].column,
                       "non-positive deadline");
    }
    if (!(profit > 0.0)) {
      throw ParseError(source, lineno, cells[4].column, "non-positive profit");
    }
    jobs.add(Job::with_deadline(
        synthesize_dag(work, span, options.granularity), release, deadline,
        profit));
  }
  jobs.finalize();
  return jobs;
}

JobSet load_trace_csv(const std::string& path,
                      const TraceImportOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return import_trace_csv(in, options, path);
}

void export_trace_csv(std::ostream& os, const JobSet& jobs) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "release,work,span,deadline,profit\n";
  for (const Job& job : jobs.jobs()) {
    os << job.release() << ',' << job.work() << ',' << job.span() << ','
       << job.profit().plateau_end() << ',' << job.peak_profit() << '\n';
  }
}

void save_trace_csv(const std::string& path, const JobSet& jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  export_trace_csv(out, jobs);
}

}  // namespace dagsched
