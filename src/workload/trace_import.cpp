#include "workload/trace_import.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "dag/builder.h"
#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace CSV error at line " + std::to_string(line) +
                           ": " + what);
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) {
    // Trim spaces and CR.
    const auto first = cell.find_first_not_of(" \t\r");
    const auto last = cell.find_last_not_of(" \t\r");
    cells.push_back(first == std::string::npos
                        ? std::string{}
                        : cell.substr(first, last - first + 1));
  }
  return cells;
}

double parse_number(const std::string& cell, std::size_t line,
                    const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(cell, &used);
    if (used != cell.size()) fail(line, std::string("trailing junk in ") + what);
    return value;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail(line, std::string("bad ") + what + " '" + cell + "'");
  }
}

/// A Figure-1-style DAG with total work ~W and span ~L (exact up to node
/// rounding): a chain realizing the span beside an independent block.
std::shared_ptr<const Dag> synthesize_dag(Work work, Work span,
                                          double granularity) {
  const auto chain_nodes =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(span / granularity)));
  const double node = span / static_cast<double>(chain_nodes);
  DagBuilder b;
  b.add_chain(chain_nodes, node);
  Work remaining = work - span;
  while (remaining > 1e-9) {
    const Work chunk = std::min(remaining, node);
    b.add_node(chunk);
    remaining -= chunk;
  }
  return std::make_shared<const Dag>(std::move(b).build());
}

}  // namespace

JobSet import_trace_csv(std::istream& is, const TraceImportOptions& options) {
  DS_CHECK(options.granularity > 0.0);
  std::string line;
  std::size_t lineno = 0;

  // Header.
  if (!std::getline(is, line)) fail(lineno, "empty input");
  ++lineno;
  {
    const auto header = split_csv(line);
    const std::vector<std::string> expected = {"release", "work", "span",
                                               "deadline", "profit"};
    if (header != expected) {
      fail(lineno,
           "bad header (expected 'release,work,span,deadline,profit')");
    }
  }

  JobSet jobs;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line[0] == '#') continue;
    const auto cells = split_csv(line);
    if (cells.size() != 5) fail(lineno, "expected 5 fields");
    const double release = parse_number(cells[0], lineno, "release");
    const double work = parse_number(cells[1], lineno, "work");
    const double span = parse_number(cells[2], lineno, "span");
    const double deadline = parse_number(cells[3], lineno, "deadline");
    const double profit = parse_number(cells[4], lineno, "profit");
    if (release < 0.0) fail(lineno, "negative release");
    if (!(work > 0.0) || !(span > 0.0)) fail(lineno, "non-positive size");
    if (span > work + 1e-9) fail(lineno, "span exceeds work");
    if (!(deadline > 0.0) || !(profit > 0.0)) {
      fail(lineno, "non-positive deadline/profit");
    }
    jobs.add(Job::with_deadline(
        synthesize_dag(work, span, options.granularity), release, deadline,
        profit));
  }
  jobs.finalize();
  return jobs;
}

JobSet load_trace_csv(const std::string& path,
                      const TraceImportOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return import_trace_csv(in, options);
}

void export_trace_csv(std::ostream& os, const JobSet& jobs) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "release,work,span,deadline,profit\n";
  for (const Job& job : jobs.jobs()) {
    os << job.release() << ',' << job.work() << ',' << job.span() << ','
       << job.profit().plateau_end() << ',' << job.peak_profit() << '\n';
  }
}

void save_trace_csv(const std::string& path, const JobSet& jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  export_trace_csv(out, jobs);
}

}  // namespace dagsched
