#include "workload/scenarios.h"

namespace dagsched {

namespace {

WorkloadConfig base_config(double load, ProcCount m) {
  WorkloadConfig config;
  config.m = m;
  config.target_load = load;
  config.horizon = 600.0;
  config.family = DagFamily::kMixed;
  config.profit.magnitude = ProfitPolicy::Magnitude::kProportionalWork;
  config.profit.lo = 0.5;
  config.profit.hi = 2.0;
  return config;
}

}  // namespace

WorkloadConfig scenario_thm2(double eps, double load, ProcCount m) {
  WorkloadConfig config = base_config(load, m);
  config.deadline.kind = DeadlinePolicy::Kind::kProportionalSlack;
  config.deadline.eps = eps;
  return config;
}

WorkloadConfig scenario_tight(double load, ProcCount m) {
  WorkloadConfig config = base_config(load, m);
  config.deadline.kind = DeadlinePolicy::Kind::kTight;
  config.deadline.tight_margin = 1e-3;
  return config;
}

WorkloadConfig scenario_reasonable(double load, ProcCount m) {
  WorkloadConfig config = base_config(load, m);
  config.deadline.kind = DeadlinePolicy::Kind::kReasonable;
  config.deadline.extra = 1.0;
  return config;
}

WorkloadConfig scenario_profit(double eps, double load, ProcCount m,
                               ProfitPolicy::Shape shape) {
  WorkloadConfig config = base_config(load, m);
  config.deadline.kind = DeadlinePolicy::Kind::kProportionalSlack;
  config.deadline.eps = eps;
  config.profit.shape = shape;
  config.profit.decay = 1.0;
  config.integral_releases = true;
  // The paper's time-step model has unit-work nodes: fractional node sizes
  // would waste slot capacity the x_i budget does not account for.
  config.node_work = WorkDist::constant(1.0);
  // Keep jobs big enough that slot quantization is mild relative to x*.
  config.size_scale = 1.5;
  return config;
}

WorkloadConfig scenario_shootout(double load, ProcCount m, double slack_lo,
                                 double slack_hi) {
  WorkloadConfig config = base_config(load, m);
  config.deadline.kind = DeadlinePolicy::Kind::kUniformSlack;
  config.deadline.eps_lo = slack_lo;
  config.deadline.eps_hi = slack_hi;
  config.profit.magnitude = ProfitPolicy::Magnitude::kPareto;
  config.profit.lo = 1.0;   // scale
  config.profit.hi = 1.5;   // shape (heavy tail)
  return config;
}

}  // namespace dagsched
