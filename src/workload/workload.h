// Synthetic online workloads.
//
// The paper has no empirical section, so the evaluation workloads are
// synthetic by design (see DESIGN.md): a stream of DAG jobs with a
// controllable arrival process, DAG-shape mix, deadline-slack policy (the
// knob Theorem 2's assumption is about) and profit policy (the knob the
// density-based admission is about).
#pragma once

#include <vector>

#include "dag/generators.h"
#include "job/job.h"
#include "util/rng.h"
#include "util/types.h"

namespace dagsched {

// ---------------------------------------------------------------------------
// Knobs
// ---------------------------------------------------------------------------

enum class ArrivalKind {
  kPoisson,        // exponential inter-arrival gaps
  kPeriodicBurst,  // `burst_size` jobs every `burst_period`
  kUniform,        // i.i.d. uniform arrival times over the horizon
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// kPeriodicBurst only.
  double burst_period = 50.0;
  std::size_t burst_size = 8;
};

enum class DagFamily {
  kChain,
  kParallelBlock,
  kForkJoin,
  kLayered,
  kSeriesParallel,
  kRandom,
  kMixed,  // uniform draw among the families above
  // HPC task-graph shapes; selectable explicitly (not part of kMixed so
  // recorded experiment outputs stay stable).
  kWavefront,
  kStencil,
  kMapReduce,
};

struct DeadlinePolicy {
  enum class Kind {
    /// D = (1 + eps) * ((W-L)/m + L): exactly Theorem 2's assumption.
    kProportionalSlack,
    /// D = max(L, W/m) * (1 + tight_margin): the regime of Theorem 1 /
    /// Corollary 1 where only speed augmentation helps.
    kTight,
    /// D = ((W-L)/m + L) * (1 + U[0, extra]): Corollary 2's "reasonable"
    /// jobs.
    kReasonable,
    /// eps ~ U[eps_lo, eps_hi] per job, then as kProportionalSlack.
    kUniformSlack,
  };
  Kind kind = Kind::kProportionalSlack;
  double eps = 0.5;           // kProportionalSlack
  double tight_margin = 1e-3; // kTight
  double extra = 1.0;         // kReasonable
  double eps_lo = 0.1;        // kUniformSlack
  double eps_hi = 1.0;
};

struct ProfitPolicy {
  enum class Magnitude {
    kUniform,           // p ~ U[lo, hi]
    kProportionalWork,  // p = W * U[lo, hi]  (bounded density spread)
    kPareto,            // p ~ Pareto(lo, shape=hi)  (heavy-tailed)
  };
  Magnitude magnitude = Magnitude::kProportionalWork;
  double lo = 0.5;
  double hi = 2.0;

  /// Shape of p_i(t) for general-profit experiments.  For non-step shapes
  /// the plateau end x* is set to the job's deadline from DeadlinePolicy
  /// (so Theorem 3's assumption x* >= (1+eps)((W-L)/m+L) holds whenever the
  /// deadline policy provides that slack).
  enum class Shape { kStep, kPlateauLinear, kPlateauExp };
  Shape shape = Shape::kStep;
  /// kPlateauLinear: profit reaches 0 at x* * (1 + decay).
  /// kPlateauExp: decay rate = `decay` / x*.
  double decay = 1.0;
};

struct WorkloadConfig {
  ProcCount m = 16;
  /// Average offered load sum(W) / (m * horizon); arrival rate is derived
  /// from an empirical estimate of E[W] for the configured DAG family.
  double target_load = 0.7;
  Time horizon = 1000.0;
  ArrivalConfig arrivals;
  DagFamily family = DagFamily::kMixed;
  /// Scales the node counts of generated DAGs (1.0 = family defaults).
  double size_scale = 1.0;
  /// Node processing-time distribution.  SlotEngine experiments should use
  /// constant(1.0): the paper's time-step model has unit-work nodes, and
  /// fractional nodes waste slot capacity the x_i budget does not account
  /// for.
  WorkDist node_work = WorkDist::uniform(0.5, 1.5);
  DeadlinePolicy deadline;
  ProfitPolicy profit;
  /// Round release times down to integers (SlotEngine experiments).
  bool integral_releases = false;
};

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// Draws one DAG of the given family (kMixed draws the family too).
Dag sample_dag(Rng& rng, DagFamily family, double size_scale,
               const WorkDist& node_work = WorkDist::uniform(0.5, 1.5));

/// Builds a full online instance per `config`; deterministic in `rng`.
JobSet generate_workload(Rng& rng, const WorkloadConfig& config);

/// The relative deadline the policy assigns to a job with the given shape
/// parameters on m processors (exposed for tests).
Time assign_deadline(Rng& rng, const DeadlinePolicy& policy, Work work,
                     Work span, ProcCount m);

/// The profit function the policy assigns (exposed for tests).
ProfitFn assign_profit(Rng& rng, const ProfitPolicy& policy, Work work,
                       Time deadline);

}  // namespace dagsched
