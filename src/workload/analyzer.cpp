#include "workload/analyzer.h"

#include <algorithm>
#include <limits>
#include <ostream>

#include "util/check.h"
#include "util/float_cmp.h"

namespace dagsched {

InstanceProfile analyze_instance(const JobSet& jobs, ProcCount m) {
  DS_CHECK(m >= 1);
  InstanceProfile profile;
  profile.jobs = jobs.size();
  if (jobs.empty()) return profile;

  const double md = static_cast<double>(m);
  Work total_work = 0.0;
  Time first_release = std::numeric_limits<double>::infinity();
  Time last_due = 0.0;
  double min_density = std::numeric_limits<double>::infinity();
  double max_density = 0.0;
  std::size_t sequential = 0;
  std::size_t feasible = 0;

  for (const Job& job : jobs.jobs()) {
    const Work work = job.work();
    const Work span = job.span();
    total_work += work;
    first_release = std::min(first_release, job.release());
    const Time due = job.release() + job.profit().plateau_end();
    last_due = std::max(last_due, due);

    profile.parallelism.add(work / span);
    const double greedy = (work - span) / md + span;
    profile.slack.add(job.profit().plateau_end() / greedy);
    const double density = job.peak_profit() / work;
    min_density = std::min(min_density, density);
    max_density = std::max(max_density, density);
    if (approx_eq(work, span)) ++sequential;
    if (approx_le(std::max(span, work / md), job.profit().plateau_end())) {
      ++feasible;
    }
  }
  const double window = std::max(last_due - first_release, 1e-9);
  profile.offered_load = total_work / (md * window);
  profile.density_spread =
      min_density > 0.0 ? max_density / min_density : 0.0;
  profile.sequential_fraction =
      static_cast<double>(sequential) / static_cast<double>(jobs.size());
  profile.feasible_fraction =
      static_cast<double>(feasible) / static_cast<double>(jobs.size());
  return profile;
}

void print_profile(std::ostream& os, const InstanceProfile& profile) {
  os << "jobs:                 " << profile.jobs << "\n";
  if (profile.jobs == 0) return;
  os << "offered load:         " << profile.offered_load << "\n"
     << "parallelism W/L:      p50 " << profile.parallelism.median()
     << ", max " << profile.parallelism.quantile(1.0) << "\n"
     << "deadline slack:       p50 " << profile.slack.median() << ", min "
     << profile.slack.quantile(0.0)
     << "  (Theorem 2 needs >= 1+eps everywhere)\n"
     << "density spread p/W:   " << profile.density_spread << "x\n"
     << "sequential jobs:      " << 100.0 * profile.sequential_fraction
     << "% (exact OPT available if 100%)\n"
     << "clairvoyantly feasible: " << 100.0 * profile.feasible_fraction
     << "%\n";
}

}  // namespace dagsched
