// Plain-text (de)serialization of workloads, so experiment instances can be
// saved, diffed and shared.  Format (line-oriented, '#' comments):
//
//   dagsched-workload 1
//   job <release>
//   profit step <p> <D>
//        | plateau_linear <p> <plateau_end> <zero_at>
//        | plateau_exp <p> <plateau_end> <rate>
//        | piecewise <k> <t1> <p1> ... <tk> <pk>
//   nodes <n>
//   <w0> <w1> ... <w_{n-1}>
//   edges <e>
//   <u> <v>            (e lines)
//   end
//
// Numbers round-trip exactly (printed with max precision).  read_workload
// throws ParseError (util/parse_error.h, a std::runtime_error) with
// "source:line:column" positioning on malformed input; values are
// validated (finite, positive work, in-range edge endpoints, acyclic).
#pragma once

#include <iosfwd>
#include <string>

#include "job/job.h"

namespace dagsched {

void write_workload(std::ostream& os, const JobSet& jobs);
/// `source` names the input in diagnostics (file path or "<stream>").
JobSet read_workload(std::istream& is,
                     const std::string& source = "<stream>");

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_workload(const std::string& path, const JobSet& jobs);
JobSet load_workload(const std::string& path);

}  // namespace dagsched
