// Import parameterized job traces from CSV -- the substitution hook for
// production cluster traces (which record per-job work, critical path and
// deadlines, not DAG structure).
//
// Expected columns (header required, extra columns rejected):
//     release,work,span,deadline,profit
//
// Because traces carry no DAG structure, each row is synthesized into a
// Figure-1-style program with exactly the recorded totals: a chain of
// span `L` next to an independent parallel block of `W - L`, in nodes of
// ~`granularity` work.  That shape is the *least favorable* DAG with the
// given (W, L) for a semi-non-clairvoyant scheduler (Theorem 1), so
// results on imported traces are conservative for the paper's algorithms.
#pragma once

#include <iosfwd>
#include <string>

#include "job/job.h"

namespace dagsched {

struct TraceImportOptions {
  /// Approximate node size for the synthesized DAGs; each job uses
  /// node size span/ceil(span/granularity) so the span is met exactly.
  double granularity = 1.0;
};

/// Parses the CSV; throws ParseError (util/parse_error.h, a
/// std::runtime_error) with "source:line:column" positioning on malformed
/// input (bad header, non-numeric or non-finite fields, span > work,
/// non-positive values).  CRLF line endings and trailing blank lines are
/// tolerated.  `source` names the input in diagnostics.
JobSet import_trace_csv(std::istream& is,
                        const TraceImportOptions& options = {},
                        const std::string& source = "<stream>");

JobSet load_trace_csv(const std::string& path,
                      const TraceImportOptions& options = {});

/// Exports a JobSet as a parameterized trace (the inverse direction: DAG
/// structure is dropped, only release/W/L/deadline/profit survive -- for
/// handing instances to tools that only understand flat traces).  Jobs
/// with non-step profits export their plateau end as the deadline and
/// their peak as the profit.
void export_trace_csv(std::ostream& os, const JobSet& jobs);
void save_trace_csv(const std::string& path, const JobSet& jobs);

}  // namespace dagsched
