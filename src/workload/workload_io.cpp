#include "workload/workload_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "dag/builder.h"

namespace dagsched {

namespace {

constexpr const char* kMagic = "dagsched-workload";
constexpr int kVersion = 1;

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("workload parse error at line " +
                           std::to_string(line) + ": " + what);
}

/// Reads the next non-empty, non-comment line; returns false at EOF.
bool next_line(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

void write_profit(std::ostream& os, const ProfitFn& fn) {
  os << "profit ";
  if (fn.is_step()) {
    os << "step " << fn.peak() << ' ' << fn.deadline() << '\n';
  } else if (fn.support_end() == kTimeInfinity) {
    // Recover the exponential rate from one sample past the plateau.
    const Time probe = fn.plateau_end() + 1.0;
    const double rate = -std::log(fn.at(probe) / fn.peak());
    os << "plateau_exp " << fn.peak() << ' ' << fn.plateau_end() << ' '
       << rate << '\n';
  } else {
    // Distinguish linear from piecewise by sampling the midpoint.
    const Time mid = 0.5 * (fn.plateau_end() + fn.support_end());
    const double linear_value = fn.peak() * (fn.support_end() - mid) /
                                (fn.support_end() - fn.plateau_end());
    if (std::abs(fn.at(mid) - linear_value) < 1e-9 * fn.peak()) {
      os << "plateau_linear " << fn.peak() << ' ' << fn.plateau_end() << ' '
         << fn.support_end() << '\n';
    } else {
      // Piecewise staircase: enumerate the level changes by probing just
      // after each breakpoint is not possible generically -- instead, the
      // writer is only ever given ProfitFn values this library built, and
      // piecewise is the only remaining case; sample densely to recover
      // levels (exact because the staircase is right-continuous at its
      // breakpoints and breakpoints are the stored times).
      os << "piecewise";
      // Binary-search each level end over a dense grid.
      std::vector<std::pair<Time, Profit>> levels;
      Time t = 0.0;
      while (t < fn.support_end() + 1e-9) {
        const Profit value = fn.at(t);
        if (value <= 0.0) break;
        // Find the largest end with the same value.
        Time lo = t, hi = fn.support_end();
        while (hi - lo > 1e-9) {
          const Time mid2 = 0.5 * (lo + hi);
          if (std::abs(fn.at(mid2) - value) < 1e-12) {
            lo = mid2;
          } else {
            hi = mid2;
          }
        }
        levels.emplace_back(hi, value);
        t = hi + 1e-6;
      }
      os << ' ' << levels.size();
      for (const auto& [end, value] : levels) os << ' ' << end << ' ' << value;
      os << '\n';
    }
  }
}

ProfitFn read_profit(const std::string& line, std::size_t lineno) {
  std::istringstream in(line);
  std::string keyword, kind;
  in >> keyword >> kind;
  if (keyword != "profit") fail(lineno, "expected 'profit', got " + keyword);
  if (kind == "step") {
    double p = 0, d = 0;
    if (!(in >> p >> d)) fail(lineno, "bad step profit");
    return ProfitFn::step(p, d);
  }
  if (kind == "plateau_linear") {
    double p = 0, plateau = 0, zero = 0;
    if (!(in >> p >> plateau >> zero)) fail(lineno, "bad plateau_linear");
    return ProfitFn::plateau_linear(p, plateau, zero);
  }
  if (kind == "plateau_exp") {
    double p = 0, plateau = 0, rate = 0;
    if (!(in >> p >> plateau >> rate)) fail(lineno, "bad plateau_exp");
    return ProfitFn::plateau_exponential(p, plateau, rate);
  }
  if (kind == "piecewise") {
    std::size_t count = 0;
    if (!(in >> count) || count == 0) fail(lineno, "bad piecewise count");
    std::vector<std::pair<Time, Profit>> levels(count);
    for (auto& [t, p] : levels) {
      if (!(in >> t >> p)) fail(lineno, "bad piecewise level");
    }
    return ProfitFn::piecewise(std::move(levels));
  }
  fail(lineno, "unknown profit kind " + kind);
}

}  // namespace

void write_workload(std::ostream& os, const JobSet& jobs) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagic << ' ' << kVersion << '\n';
  os << "# " << jobs.size() << " jobs\n";
  for (const Job& job : jobs.jobs()) {
    os << "job " << job.release() << '\n';
    write_profit(os, job.profit());
    const Dag& dag = job.dag();
    os << "nodes " << dag.num_nodes() << '\n';
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      os << (v == 0 ? "" : " ") << dag.node_work(v);
    }
    os << '\n';
    os << "edges " << dag.num_edges() << '\n';
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      for (const NodeId succ : dag.successors(v)) {
        os << v << ' ' << succ << '\n';
      }
    }
    os << "end\n";
  }
}

JobSet read_workload(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  if (!next_line(is, line, lineno)) fail(lineno, "empty input");
  {
    std::istringstream in(line);
    std::string magic;
    int version = 0;
    if (!(in >> magic >> version) || magic != kMagic) {
      fail(lineno, "bad header");
    }
    if (version != kVersion) {
      fail(lineno, "unsupported version " + std::to_string(version));
    }
  }

  JobSet jobs;
  while (next_line(is, line, lineno)) {
    std::istringstream in(line);
    std::string keyword;
    in >> keyword;
    if (keyword != "job") fail(lineno, "expected 'job', got " + keyword);
    Time release = 0;
    if (!(in >> release)) fail(lineno, "bad release");

    if (!next_line(is, line, lineno)) fail(lineno, "missing profit");
    ProfitFn profit = read_profit(line, lineno);

    if (!next_line(is, line, lineno)) fail(lineno, "missing nodes");
    std::size_t num_nodes = 0;
    {
      std::istringstream nodes_in(line);
      std::string nodes_kw;
      if (!(nodes_in >> nodes_kw >> num_nodes) || nodes_kw != "nodes" ||
          num_nodes == 0) {
        fail(lineno, "bad nodes line");
      }
    }
    if (!next_line(is, line, lineno)) fail(lineno, "missing node works");
    DagBuilder builder;
    {
      std::istringstream works_in(line);
      for (std::size_t i = 0; i < num_nodes; ++i) {
        double work = 0;
        if (!(works_in >> work)) fail(lineno, "too few node works");
        builder.add_node(work);
      }
    }

    if (!next_line(is, line, lineno)) fail(lineno, "missing edges");
    std::size_t num_edges = 0;
    {
      std::istringstream edges_in(line);
      std::string edges_kw;
      if (!(edges_in >> edges_kw >> num_edges) || edges_kw != "edges") {
        fail(lineno, "bad edges line");
      }
    }
    for (std::size_t e = 0; e < num_edges; ++e) {
      if (!next_line(is, line, lineno)) fail(lineno, "missing edge");
      std::istringstream edge_in(line);
      NodeId from = 0, to = 0;
      if (!(edge_in >> from >> to)) fail(lineno, "bad edge");
      builder.add_edge(from, to);
    }

    if (!next_line(is, line, lineno) || line.rfind("end", 0) != 0) {
      fail(lineno, "missing 'end'");
    }
    jobs.add(Job(std::make_shared<const Dag>(std::move(builder).build()),
                 release, std::move(profit)));
  }
  jobs.finalize();
  return jobs;
}

void save_workload(const std::string& path, const JobSet& jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_workload(out, jobs);
}

JobSet load_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_workload(in);
}

}  // namespace dagsched
