#include "workload/workload_io.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "dag/builder.h"
#include "util/parse_error.h"

namespace dagsched {

namespace {

constexpr const char* kMagic = "dagsched-workload";
constexpr int kVersion = 1;

/// Whitespace-token cursor over one line, tracking the 1-based column of
/// each token so diagnostics can point at the offending field.
class LineParser {
 public:
  LineParser(const std::string& source, const std::string& line,
             std::size_t lineno)
      : source_(source), line_(line), lineno_(lineno) {}

  [[noreturn]] void fail(std::size_t column, const std::string& what) const {
    throw ParseError(source_, lineno_, column, what);
  }

  bool at_end() {
    skip_ws();
    return pos_ >= line_.size();
  }

  /// Column (1-based) where the next token would start.
  std::size_t next_column() {
    skip_ws();
    return pos_ + 1;
  }

  std::string token(const std::string& what) {
    skip_ws();
    if (pos_ >= line_.size()) fail(pos_ + 1, "missing " + what);
    const std::size_t start = pos_;
    while (pos_ < line_.size() && !is_ws(line_[pos_])) ++pos_;
    return line_.substr(start, pos_ - start);
  }

  /// Parses a finite double; rejects NaN/inf and trailing junk.
  double number(const std::string& what) {
    skip_ws();
    const std::size_t column = pos_ + 1;
    const std::string tok = token(what);
    double value = 0.0;
    std::size_t used = 0;
    try {
      value = std::stod(tok, &used);
    } catch (const std::exception&) {
      fail(column, "bad " + what + " '" + tok + "'");
    }
    if (used != tok.size()) {
      fail(column, "trailing junk in " + what + " '" + tok + "'");
    }
    if (!std::isfinite(value)) {
      fail(column, what + " must be finite, got '" + tok + "'");
    }
    return value;
  }

  /// Parses a non-negative integer (node ids, counts).
  std::size_t index(const std::string& what) {
    skip_ws();
    const std::size_t column = pos_ + 1;
    const std::string tok = token(what);
    if (tok.empty() || tok[0] == '-' || tok[0] == '+') {
      fail(column, "bad " + what + " '" + tok + "' (expected a non-negative "
                   "integer)");
    }
    for (const char c : tok) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
        fail(column, "bad " + what + " '" + tok + "' (expected a non-negative "
                     "integer)");
      }
    }
    std::size_t value = 0;
    try {
      value = std::stoull(tok);
    } catch (const std::exception&) {
      fail(column, what + " '" + tok + "' out of range");
    }
    return value;
  }

  void expect_end() {
    if (!at_end()) fail(pos_ + 1, "trailing junk '" + rest() + "'");
  }

 private:
  static bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  void skip_ws() {
    while (pos_ < line_.size() && is_ws(line_[pos_])) ++pos_;
  }
  std::string rest() const { return line_.substr(pos_); }

  const std::string& source_;
  const std::string& line_;
  std::size_t lineno_;
  std::size_t pos_ = 0;
};

/// Reads the next non-empty, non-comment line; returns false at EOF.
bool next_line(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

void write_profit(std::ostream& os, const ProfitFn& fn) {
  os << "profit ";
  if (fn.is_step()) {
    os << "step " << fn.peak() << ' ' << fn.deadline() << '\n';
  } else if (fn.support_end() == kTimeInfinity) {
    // Recover the exponential rate from one sample past the plateau.
    const Time probe = fn.plateau_end() + 1.0;
    const double rate = -std::log(fn.at(probe) / fn.peak());
    os << "plateau_exp " << fn.peak() << ' ' << fn.plateau_end() << ' '
       << rate << '\n';
  } else {
    // Distinguish linear from piecewise by sampling the midpoint.
    const Time mid = 0.5 * (fn.plateau_end() + fn.support_end());
    const double linear_value = fn.peak() * (fn.support_end() - mid) /
                                (fn.support_end() - fn.plateau_end());
    if (std::abs(fn.at(mid) - linear_value) < 1e-9 * fn.peak()) {
      os << "plateau_linear " << fn.peak() << ' ' << fn.plateau_end() << ' '
         << fn.support_end() << '\n';
    } else {
      // Piecewise staircase: enumerate the level changes by probing just
      // after each breakpoint is not possible generically -- instead, the
      // writer is only ever given ProfitFn values this library built, and
      // piecewise is the only remaining case; sample densely to recover
      // levels (exact because the staircase is right-continuous at its
      // breakpoints and breakpoints are the stored times).
      os << "piecewise";
      // Binary-search each level end over a dense grid.
      std::vector<std::pair<Time, Profit>> levels;
      Time t = 0.0;
      while (t < fn.support_end() + 1e-9) {
        const Profit value = fn.at(t);
        if (value <= 0.0) break;
        // Find the largest end with the same value.
        Time lo = t, hi = fn.support_end();
        while (hi - lo > 1e-9) {
          const Time mid2 = 0.5 * (lo + hi);
          if (std::abs(fn.at(mid2) - value) < 1e-12) {
            lo = mid2;
          } else {
            hi = mid2;
          }
        }
        levels.emplace_back(hi, value);
        t = hi + 1e-6;
      }
      os << ' ' << levels.size();
      for (const auto& [end, value] : levels) os << ' ' << end << ' ' << value;
      os << '\n';
    }
  }
}

ProfitFn read_profit(const std::string& source, const std::string& line,
                     std::size_t lineno) {
  LineParser in(source, line, lineno);
  const std::size_t kw_col = in.next_column();
  const std::string keyword = in.token("profit keyword");
  if (keyword != "profit") {
    in.fail(kw_col, "expected 'profit', got '" + keyword + "'");
  }
  const std::size_t kind_col = in.next_column();
  const std::string kind = in.token("profit kind");
  if (kind == "step") {
    const std::size_t p_col = in.next_column();
    const double p = in.number("peak profit");
    const std::size_t d_col = in.next_column();
    const double d = in.number("deadline");
    if (!(p > 0.0)) in.fail(p_col, "peak profit must be positive");
    if (!(d > 0.0)) in.fail(d_col, "deadline must be positive");
    in.expect_end();
    return ProfitFn::step(p, d);
  }
  if (kind == "plateau_linear") {
    const std::size_t p_col = in.next_column();
    const double p = in.number("peak profit");
    const std::size_t plateau_col = in.next_column();
    const double plateau = in.number("plateau end");
    const std::size_t zero_col = in.next_column();
    const double zero = in.number("zero point");
    if (!(p > 0.0)) in.fail(p_col, "peak profit must be positive");
    if (!(plateau > 0.0)) in.fail(plateau_col, "plateau end must be positive");
    if (!(zero > plateau)) {
      in.fail(zero_col, "zero point must exceed the plateau end");
    }
    in.expect_end();
    return ProfitFn::plateau_linear(p, plateau, zero);
  }
  if (kind == "plateau_exp") {
    const std::size_t p_col = in.next_column();
    const double p = in.number("peak profit");
    const std::size_t plateau_col = in.next_column();
    const double plateau = in.number("plateau end");
    const std::size_t rate_col = in.next_column();
    const double rate = in.number("decay rate");
    if (!(p > 0.0)) in.fail(p_col, "peak profit must be positive");
    if (!(plateau > 0.0)) in.fail(plateau_col, "plateau end must be positive");
    if (!(rate > 0.0)) in.fail(rate_col, "decay rate must be positive");
    in.expect_end();
    return ProfitFn::plateau_exponential(p, plateau, rate);
  }
  if (kind == "piecewise") {
    const std::size_t count_col = in.next_column();
    const std::size_t count = in.index("piecewise level count");
    if (count == 0) in.fail(count_col, "piecewise level count must be >= 1");
    std::vector<std::pair<Time, Profit>> levels(count);
    Time prev_end = 0.0;
    for (auto& [t, p] : levels) {
      const std::size_t t_col = in.next_column();
      t = in.number("piecewise level end");
      const std::size_t p_col = in.next_column();
      p = in.number("piecewise level profit");
      if (!(t > prev_end)) {
        in.fail(t_col, "piecewise level ends must be strictly increasing");
      }
      if (!(p > 0.0)) in.fail(p_col, "piecewise profit must be positive");
      prev_end = t;
    }
    in.expect_end();
    return ProfitFn::piecewise(std::move(levels));
  }
  in.fail(kind_col, "unknown profit kind '" + kind + "'");
}

}  // namespace

void write_workload(std::ostream& os, const JobSet& jobs) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagic << ' ' << kVersion << '\n';
  os << "# " << jobs.size() << " jobs\n";
  for (const Job& job : jobs.jobs()) {
    os << "job " << job.release() << '\n';
    write_profit(os, job.profit());
    const Dag& dag = job.dag();
    os << "nodes " << dag.num_nodes() << '\n';
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      os << (v == 0 ? "" : " ") << dag.node_work(v);
    }
    os << '\n';
    os << "edges " << dag.num_edges() << '\n';
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      for (const NodeId succ : dag.successors(v)) {
        os << v << ' ' << succ << '\n';
      }
    }
    os << "end\n";
  }
}

JobSet read_workload(std::istream& is, const std::string& source) {
  std::string line;
  std::size_t lineno = 0;
  if (!next_line(is, line, lineno)) {
    throw ParseError(source, 1, 1, "empty input");
  }
  {
    LineParser in(source, line, lineno);
    const std::size_t magic_col = in.next_column();
    const std::string magic = in.token("header magic");
    if (magic != kMagic) {
      in.fail(magic_col, "bad header (expected '" + std::string(kMagic) +
                             " " + std::to_string(kVersion) + "')");
    }
    const std::size_t version_col = in.next_column();
    const std::size_t version = in.index("format version");
    if (version != static_cast<std::size_t>(kVersion)) {
      in.fail(version_col,
              "unsupported version " + std::to_string(version) +
                  " (expected " + std::to_string(kVersion) + ")");
    }
    in.expect_end();
  }

  JobSet jobs;
  while (next_line(is, line, lineno)) {
    {
      LineParser in(source, line, lineno);
      const std::size_t kw_col = in.next_column();
      const std::string keyword = in.token("job keyword");
      if (keyword != "job") {
        in.fail(kw_col, "expected 'job', got '" + keyword + "'");
      }
      const std::size_t release_col = in.next_column();
      const Time release = in.number("release time");
      if (release < 0.0) in.fail(release_col, "release time must be >= 0");
      in.expect_end();

      if (!next_line(is, line, lineno)) {
        throw ParseError(source, lineno + 1, 1, "missing profit line");
      }
      ProfitFn profit = read_profit(source, line, lineno);

      if (!next_line(is, line, lineno)) {
        throw ParseError(source, lineno + 1, 1, "missing nodes line");
      }
      std::size_t num_nodes = 0;
      {
        LineParser nodes_in(source, line, lineno);
        const std::size_t nodes_kw_col = nodes_in.next_column();
        const std::string nodes_kw = nodes_in.token("nodes keyword");
        if (nodes_kw != "nodes") {
          nodes_in.fail(nodes_kw_col, "expected 'nodes', got '" + nodes_kw +
                                          "'");
        }
        const std::size_t count_col = nodes_in.next_column();
        num_nodes = nodes_in.index("node count");
        if (num_nodes == 0) nodes_in.fail(count_col, "node count must be >= 1");
        nodes_in.expect_end();
      }
      if (!next_line(is, line, lineno)) {
        throw ParseError(source, lineno + 1, 1, "missing node works line");
      }
      DagBuilder builder;
      {
        LineParser works_in(source, line, lineno);
        for (std::size_t i = 0; i < num_nodes; ++i) {
          const std::size_t work_col = works_in.next_column();
          const Work work = works_in.number("node work");
          if (!(work > 0.0)) {
            works_in.fail(work_col, "node work must be positive");
          }
          builder.add_node(work);
        }
        works_in.expect_end();
      }

      if (!next_line(is, line, lineno)) {
        throw ParseError(source, lineno + 1, 1, "missing edges line");
      }
      std::size_t num_edges = 0;
      {
        LineParser edges_in(source, line, lineno);
        const std::size_t edges_kw_col = edges_in.next_column();
        const std::string edges_kw = edges_in.token("edges keyword");
        if (edges_kw != "edges") {
          edges_in.fail(edges_kw_col, "expected 'edges', got '" + edges_kw +
                                          "'");
        }
        num_edges = edges_in.index("edge count");
        edges_in.expect_end();
      }
      for (std::size_t e = 0; e < num_edges; ++e) {
        if (!next_line(is, line, lineno)) {
          throw ParseError(source, lineno + 1, 1, "missing edge line");
        }
        LineParser edge_in(source, line, lineno);
        const std::size_t from_col = edge_in.next_column();
        const std::size_t from = edge_in.index("edge source");
        const std::size_t to_col = edge_in.next_column();
        const std::size_t to = edge_in.index("edge target");
        if (from >= num_nodes) {
          edge_in.fail(from_col, "edge source " + std::to_string(from) +
                                     " out of range (nodes: " +
                                     std::to_string(num_nodes) + ")");
        }
        if (to >= num_nodes) {
          edge_in.fail(to_col, "edge target " + std::to_string(to) +
                                   " out of range (nodes: " +
                                   std::to_string(num_nodes) + ")");
        }
        if (from == to) edge_in.fail(from_col, "self-edge");
        edge_in.expect_end();
        builder.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to));
      }

      if (!next_line(is, line, lineno)) {
        throw ParseError(source, lineno + 1, 1, "missing 'end'");
      }
      LineParser end_in(source, line, lineno);
      const std::size_t end_col = end_in.next_column();
      const std::string end_kw = end_in.token("end keyword");
      if (end_kw != "end") {
        end_in.fail(end_col, "expected 'end', got '" + end_kw + "'");
      }
      end_in.expect_end();

      // DagBuilder::build() validates acyclicity and duplicate edges; wrap
      // its exception so the caller still gets a positioned diagnostic.
      try {
        jobs.add(Job(std::make_shared<const Dag>(std::move(builder).build()),
                     release, std::move(profit)));
      } catch (const std::invalid_argument& err) {
        throw ParseError(source, lineno, 1,
                         std::string("invalid DAG: ") + err.what());
      }
    }
  }
  jobs.finalize();
  return jobs;
}

void save_workload(const std::string& path, const JobSet& jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_workload(out, jobs);
}

JobSet load_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_workload(in, path);
}

}  // namespace dagsched
