// Deterministic adversarial instances.
//
// Random workloads are benign: almost any density-ordered policy does fine
// on them (bench_ablation_admission's first table shows exactly that).  The
// instances here realize the failure modes the paper's analysis guards
// against, and are used by the ablation benches and tests to show *why* the
// algorithm is built the way it is.
#pragma once

#include "job/job.h"
#include "util/types.h"

namespace dagsched {

/// The "preemption trap" against density-greedy scheduling without
/// admission control (condition (2)).
///
/// `waves` parallel-block jobs arrive every x/2 time units, each requiring
/// n ~ 3m/4 processors (so two cannot run together) with strictly
/// increasing density (profit grows by `density_growth` per wave) and
/// deadline exactly (1+eps)((W-L)/m + L).
///
///  * Without admission control, every wave is preempted halfway by the
///    next (denser) wave and misses its deadline: only the last wave's
///    profit is earned.
///  * With condition (2), wave k+1 is rejected while wave k runs (their
///    shared density window would exceed b*m), so alternating waves run to
///    completion: ~waves/2 jobs complete.
///
/// Profits are chosen within a factor c of each other so all waves share
/// density windows.  Requires m >= 4, waves >= 2.
JobSet make_preemption_trap(ProcCount m, double eps, std::size_t waves,
                            double density_growth = 0.02);

/// A "clogger" DAG: half its work is a single chain, so S must park n_i
/// processors for the whole span with most of them idle -- x_i n_i is a
/// multiple of W_i.  Sized so W = 3m, L = 3m/2.
Dag make_clogger_dag(ProcCount m);

/// A flat DAG with the same total work as make_clogger_dag(m) but span 1:
/// x_i n_i ~ W_i.
Dag make_flat_dag(ProcCount m);

/// Homogeneous overload stream: `count` copies of `dag` with profit
/// `profit_per_work * W`, deadlines at (1+eps) slack, arriving every
/// `interval`.  Used by E9 to show that the paper's density p/(x n)
/// predicts the realized profit rate of a stream while the classic p/W
/// does not (clogger and flat streams have identical p/W but differ by
/// ~x n / W in achievable profit).
JobSet make_overload_stream(std::shared_ptr<const Dag> dag, ProcCount m,
                            double eps, std::size_t count,
                            double profit_per_work, Time interval);

}  // namespace dagsched
