// Canned workload configurations for the experiment suite (DESIGN.md E3-E7).
// Keeping them in the library (rather than in each bench binary) guarantees
// tests, benches and examples exercise identical instances for a given seed.
#pragma once

#include "workload/workload.h"

namespace dagsched {

/// E3 (Theorem 2): every job gets exactly (1+eps) deadline slack.
WorkloadConfig scenario_thm2(double eps, double load, ProcCount m);

/// E4 (Corollary 1): tight deadlines D = max(L, W/m)(1 + margin); only
/// speed augmentation can make S competitive.
WorkloadConfig scenario_tight(double load, ProcCount m);

/// E5 (Corollary 2): "reasonable" jobs D >= (W-L)/m + L with random extra
/// slack.
WorkloadConfig scenario_reasonable(double load, ProcCount m);

/// E6 (Theorem 3): general profit functions with a plateau at
/// x* = (1+eps) * ((W-L)/m + L) and the given decay shape; integral
/// releases for the SlotEngine.
WorkloadConfig scenario_profit(double eps, double load, ProcCount m,
                               ProfitPolicy::Shape shape);

/// E7 (baseline shoot-out): mixed DAGs, per-job slack eps ~ U[lo, hi],
/// heavy-tailed profits so that density-blind policies can be fooled.
WorkloadConfig scenario_shootout(double load, ProcCount m, double slack_lo,
                                 double slack_hi);

}  // namespace dagsched
