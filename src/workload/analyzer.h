// Instance analysis: the structural quantities the paper's guarantees and
// lower bounds depend on, computed for a concrete JobSet.  Used by the CLI
// `inspect` summary and by experiments to characterize what they generated.
#pragma once

#include <iosfwd>

#include "job/job.h"
#include "util/stats.h"
#include "util/types.h"

namespace dagsched {

struct InstanceProfile {
  std::size_t jobs = 0;
  /// Offered load sum W / (m * span of release window + drain time).
  double offered_load = 0.0;
  /// Per-job parallelism W/L ("how parallel are the programs").
  SampleSet parallelism;
  /// Per-job deadline slack D / ((W-L)/m + L) -- Theorem 2's knob; values
  /// below 1+eps violate its assumption.
  SampleSet slack;
  /// Classic density p/W spread: max/min ratio (the delta of the
  /// no-augmentation lower bounds).
  double density_spread = 1.0;
  /// Fraction of jobs that are sequential (W == L), i.e. the subclass with
  /// exactly computable OPT (opt/exact.h).
  double sequential_fraction = 0.0;
  /// Fraction of jobs clairvoyantly feasible (max(L, W/m) <= D).
  double feasible_fraction = 0.0;
};

/// Analyzes `jobs` as an instance for an m-processor machine.
InstanceProfile analyze_instance(const JobSet& jobs, ProcCount m);

/// Human-readable multi-line summary.
void print_profile(std::ostream& os, const InstanceProfile& profile);

}  // namespace dagsched
