#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "dag/generators.h"
#include "util/check.h"

namespace dagsched {

Dag sample_dag(Rng& rng, DagFamily family, double size_scale,
               const WorkDist& node_work) {
  DS_CHECK(size_scale > 0.0);
  if (family == DagFamily::kMixed) {
    constexpr DagFamily kFamilies[] = {
        DagFamily::kChain,   DagFamily::kParallelBlock,
        DagFamily::kForkJoin, DagFamily::kLayered,
        DagFamily::kSeriesParallel, DagFamily::kRandom};
    family = kFamilies[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  }
  auto scaled = [size_scale, &rng](std::int64_t lo, std::int64_t hi) {
    const auto raw = rng.uniform_int(lo, hi);
    return static_cast<std::size_t>(std::max<double>(
        1.0, std::round(static_cast<double>(raw) * size_scale)));
  };
  const WorkDist& work = node_work;
  switch (family) {
    case DagFamily::kChain:
      return make_chain(scaled(4, 24), work.sample(rng));
    case DagFamily::kParallelBlock:
      return make_parallel_block(scaled(8, 64), work.sample(rng));
    case DagFamily::kForkJoin:
      // Sync nodes drawn from the same distribution: keeps the DAG
      // slot-friendly when node_work is constant (SlotEngine experiments).
      return make_fork_join(scaled(2, 5), scaled(4, 12), work.sample(rng),
                            work.sample(rng));
    case DagFamily::kLayered: {
      LayeredParams params;
      params.layers = scaled(3, 6);
      params.min_width = 1;
      params.max_width = std::max<std::size_t>(2, scaled(4, 10));
      params.work = work;
      return make_layered_random(rng, params);
    }
    case DagFamily::kSeriesParallel: {
      SeriesParallelParams params;
      params.max_depth = std::min<std::size_t>(5, std::max<std::size_t>(
                                                      2, scaled(2, 4)));
      params.leaf_work = work;
      params.sync_work = work.sample(rng);
      return make_series_parallel(rng, params);
    }
    case DagFamily::kRandom: {
      RandomDagParams params;
      params.nodes = scaled(12, 48);
      params.edge_prob = rng.uniform(0.05, 0.2);
      params.work = work;
      return make_random_dag(rng, params);
    }
    case DagFamily::kWavefront:
      return make_wavefront(scaled(3, 8), scaled(3, 8), work.sample(rng));
    case DagFamily::kStencil:
      return make_stencil_1d(scaled(3, 6), scaled(4, 10), work.sample(rng));
    case DagFamily::kMapReduce:
      return make_map_reduce(scaled(4, 16), scaled(2, 6), work.sample(rng),
                             work.sample(rng), work.sample(rng));
    case DagFamily::kMixed: break;  // handled above
  }
  DS_CHECK_MSG(false, "unreachable DAG family");
  return make_single_node(1.0);
}

Time assign_deadline(Rng& rng, const DeadlinePolicy& policy, Work work,
                     Work span, ProcCount m) {
  const double md = static_cast<double>(m);
  const Work greedy = (work - span) / md + span;
  const Work ideal = std::max(span, work / md);
  switch (policy.kind) {
    case DeadlinePolicy::Kind::kProportionalSlack:
      return (1.0 + policy.eps) * greedy;
    case DeadlinePolicy::Kind::kTight:
      return (1.0 + policy.tight_margin) * ideal;
    case DeadlinePolicy::Kind::kReasonable:
      return greedy * (1.0 + rng.uniform(0.0, policy.extra));
    case DeadlinePolicy::Kind::kUniformSlack:
      return (1.0 + rng.uniform(policy.eps_lo, policy.eps_hi)) * greedy;
  }
  DS_CHECK_MSG(false, "unreachable deadline policy");
  return greedy;
}

ProfitFn assign_profit(Rng& rng, const ProfitPolicy& policy, Work work,
                       Time deadline) {
  Profit p = 1.0;
  switch (policy.magnitude) {
    case ProfitPolicy::Magnitude::kUniform:
      p = rng.uniform(policy.lo, policy.hi);
      break;
    case ProfitPolicy::Magnitude::kProportionalWork:
      p = work * rng.uniform(policy.lo, policy.hi);
      break;
    case ProfitPolicy::Magnitude::kPareto:
      p = rng.pareto(policy.lo, policy.hi);
      break;
  }
  p = std::max(p, 1e-6);
  switch (policy.shape) {
    case ProfitPolicy::Shape::kStep:
      return ProfitFn::step(p, deadline);
    case ProfitPolicy::Shape::kPlateauLinear:
      return ProfitFn::plateau_linear(p, deadline,
                                      deadline * (1.0 + policy.decay));
    case ProfitPolicy::Shape::kPlateauExp:
      return ProfitFn::plateau_exponential(p, deadline,
                                           policy.decay / deadline);
  }
  DS_CHECK_MSG(false, "unreachable profit shape");
  return ProfitFn::step(p, deadline);
}

namespace {

/// Empirical mean total work of the configured DAG family, from a fixed
/// sample (used to convert target load into an arrival rate).
Work estimate_mean_work(const WorkloadConfig& config, Rng& rng) {
  constexpr int kSamples = 48;
  Work total = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    total += sample_dag(rng, config.family, config.size_scale,
                        config.node_work)
                 .total_work();
  }
  return total / kSamples;
}

}  // namespace

JobSet generate_workload(Rng& rng, const WorkloadConfig& config) {
  DS_CHECK(config.m >= 1);
  DS_CHECK(config.target_load > 0.0);
  DS_CHECK(config.horizon > 0.0);

  Rng estimator = rng.split(0xE57);
  const Work mean_work = estimate_mean_work(config, estimator);
  const double job_rate =
      config.target_load * static_cast<double>(config.m) / mean_work;

  // Arrival times.
  std::vector<Time> arrivals;
  switch (config.arrivals.kind) {
    case ArrivalKind::kPoisson: {
      Time t = 0.0;
      for (;;) {
        t += rng.exponential(job_rate);
        if (t >= config.horizon) break;
        arrivals.push_back(t);
      }
      break;
    }
    case ArrivalKind::kPeriodicBurst: {
      // Scale the per-burst size so offered load matches the target.
      const double bursts = config.horizon / config.arrivals.burst_period;
      const double total_jobs = job_rate * config.horizon;
      const auto per_burst = static_cast<std::size_t>(
          std::max(1.0, std::round(total_jobs / bursts)));
      for (Time t = 0.0; t < config.horizon;
           t += config.arrivals.burst_period) {
        for (std::size_t i = 0; i < per_burst; ++i) arrivals.push_back(t);
      }
      break;
    }
    case ArrivalKind::kUniform: {
      const auto count = static_cast<std::size_t>(
          std::max(1.0, std::round(job_rate * config.horizon)));
      for (std::size_t i = 0; i < count; ++i) {
        arrivals.push_back(rng.uniform(0.0, config.horizon));
      }
      std::sort(arrivals.begin(), arrivals.end());
      break;
    }
  }

  JobSet jobs;
  for (Time arrival : arrivals) {
    if (config.integral_releases) arrival = std::floor(arrival);
    auto dag = std::make_shared<const Dag>(
        sample_dag(rng, config.family, config.size_scale, config.node_work));
    const Work work = dag->total_work();
    const Work span = dag->span();
    const Time deadline =
        assign_deadline(rng, config.deadline, work, span, config.m);
    ProfitFn profit = assign_profit(rng, config.profit, work, deadline);
    jobs.add(Job(std::move(dag), arrival, std::move(profit)));
  }
  jobs.finalize();
  return jobs;
}

}  // namespace dagsched
