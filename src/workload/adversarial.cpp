#include "workload/adversarial.h"

#include <cmath>
#include <memory>

#include "core/allocation.h"
#include "core/params.h"
#include "dag/builder.h"
#include "dag/generators.h"
#include "util/check.h"

namespace dagsched {

JobSet make_preemption_trap(ProcCount m, double eps, std::size_t waves,
                            double density_growth) {
  DS_CHECK_MSG(m >= 4, "trap needs m >= 4");
  DS_CHECK_MSG(waves >= 2, "trap needs >= 2 waves");
  const Params params = Params::from_epsilon(eps);

  // Parallel block of 4m+1 unit nodes: W = 4m+1, L = 1.  At the canonical
  // parameterization this yields n ~ 0.8 m -- large enough that two waves
  // cannot run together and that two waves in one density window exceed
  // b*m.
  const std::size_t block_nodes = 4 * static_cast<std::size_t>(m) + 1;
  auto dag = std::make_shared<const Dag>(make_parallel_block(block_nodes, 1.0));
  const Work work = dag->total_work();
  const Work span = dag->span();
  const Time deadline =
      (1.0 + eps) * ((work - span) / static_cast<double>(m) + span);
  const JobAllocation alloc =
      compute_deadline_allocation(work, span, deadline, 1.0, params, 1.0);
  DS_CHECK_MSG(alloc.n > m / 2,
               "trap sizing broke: n=" << alloc.n << " m=" << m);
  DS_CHECK_MSG(2.0 * static_cast<double>(alloc.n) >
                   params.b * static_cast<double>(m),
               "trap sizing broke: 2n within b*m");

  // Profit scale so that wave 0 has density exactly 1; subsequent waves are
  // strictly denser, so a density-greedy policy always switches to the
  // newest wave.  Keep the total density spread within the window factor c.
  const double base_profit = alloc.x * static_cast<double>(alloc.n);
  const double max_growth = std::pow(1.0 + density_growth,
                                     static_cast<double>(waves - 1));
  DS_CHECK_MSG(max_growth < params.c,
               "density spread " << max_growth << " exceeds window factor c="
                                 << params.c << "; reduce waves or growth");

  const Time interval = alloc.x / 2.0;  // next wave halfway through current
  JobSet jobs;
  for (std::size_t k = 0; k < waves; ++k) {
    const Profit p =
        base_profit * std::pow(1.0 + density_growth, static_cast<double>(k));
    jobs.add(Job::with_deadline(dag, static_cast<double>(k) * interval,
                                deadline, p));
  }
  jobs.finalize();
  return jobs;
}

Dag make_clogger_dag(ProcCount m) {
  DS_CHECK_MSG(m >= 8, "clogger needs m >= 8");
  const std::size_t chain_nodes = 3 * static_cast<std::size_t>(m) / 2;
  DagBuilder b;
  b.add_chain(chain_nodes, 1.0);
  for (std::size_t i = 0; i < chain_nodes; ++i) b.add_node(1.0);
  return std::move(b).build();
}

Dag make_flat_dag(ProcCount m) {
  DS_CHECK_MSG(m >= 8, "flat needs m >= 8");
  return make_parallel_block(3 * static_cast<std::size_t>(m), 1.0);
}

JobSet make_overload_stream(std::shared_ptr<const Dag> dag, ProcCount m,
                            double eps, std::size_t count,
                            double profit_per_work, Time interval) {
  DS_CHECK(dag != nullptr && count >= 1 && interval > 0.0);
  const Work work = dag->total_work();
  const Work span = dag->span();
  const Time deadline =
      (1.0 + eps) * ((work - span) / static_cast<double>(m) + span);
  JobSet jobs;
  for (std::size_t k = 0; k < count; ++k) {
    jobs.add(Job::with_deadline(dag, static_cast<double>(k) * interval,
                                deadline, profit_per_work * work));
  }
  jobs.finalize();
  return jobs;
}

}  // namespace dagsched
