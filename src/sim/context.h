// EngineContext: everything a scheduler may consult when making a decision.
//
// Semi-non-clairvoyant schedulers use view()/active_jobs() only.  The
// clairvoyant accessors (dag_of / unfolding_of) DS_CHECK that the scheduler
// declared itself clairvoyant, so a semi-non-clairvoyant policy cannot
// accidentally peek at DAG structure.
#pragma once

#include <cstddef>
#include <vector>

#include "job/job.h"
#include "sim/kernel/job_state.h"
#include "sim/views.h"
#include "util/check.h"
#include "util/types.h"

namespace dagsched {

struct ObsSink;

/// Read-only view over the kernel's active set.  The kernel removes
/// completed jobs by tombstoning their slot (kInvalidJob) instead of an
/// O(|active|) vector erase; this view skips tombstones during iteration,
/// so schedulers still observe exactly the arrival-ordered live jobs.
class ActiveJobs {
 public:
  class iterator {
   public:
    using value_type = JobId;

    iterator(const JobId* cur, const JobId* end) : cur_(cur), end_(end) {
      skip_tombstones();
    }
    JobId operator*() const { return *cur_; }
    iterator& operator++() {
      ++cur_;
      skip_tombstones();
      return *this;
    }
    bool operator==(const iterator& other) const = default;

   private:
    void skip_tombstones() {
      while (cur_ != end_ && *cur_ == kInvalidJob) ++cur_;
    }
    const JobId* cur_;
    const JobId* end_;
  };

  ActiveJobs(const std::vector<JobId>* slots, std::size_t live)
      : slots_(slots), live_(live) {}

  iterator begin() const {
    return {slots_->data(), slots_->data() + slots_->size()};
  }
  iterator end() const {
    const JobId* e = slots_->data() + slots_->size();
    return {e, e};
  }
  /// Number of live (non-tombstone) jobs.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  /// First live job (earliest still-active arrival); requires !empty().
  JobId front() const { return *begin(); }

 private:
  const std::vector<JobId>* slots_;
  std::size_t live_;
};

class EngineContext {
 public:
  Time now() const { return now_; }
  ProcCount num_procs() const { return m_; }
  double speed() const { return speed_; }
  std::size_t num_jobs() const { return jobs_->size(); }

  /// Observability sink wired by the engine (nullptr when instrumentation
  /// is off -- the default).  Schedulers use it to emit decision events and
  /// policy counters; see obs/sink.h.
  const ObsSink* obs() const { return obs_; }

  /// Staged arrival-precompute bytes for the job currently being delivered
  /// via on_arrival(), or nullptr.  Only non-null inside on_arrival() on
  /// sharded runs (KernelOptions::shards > 1) for schedulers that opted in
  /// via SchedulerBase::arrival_precompute_size(); layout is whatever the
  /// policy's precompute_arrival() wrote.  Policies must treat it as an
  /// optional cache -- the serial path never sets it.
  const void* arrival_prep() const { return arrival_prep_; }

  /// Semi-non-clairvoyant window onto job `id` (any job, arrived or not --
  /// but an online scheduler should only touch jobs it has been told about).
  JobView view(JobId id) const {
    DS_CHECK(id < jobs_->size());
    return JobView(&(*jobs_)[id], state_, id);
  }

  /// Jobs that have arrived and not yet completed (including expired ones;
  /// dropping those is the scheduler's decision, as in the paper), in
  /// arrival order.
  ActiveJobs active_jobs() const {
    return {&state_->active_slots(), state_->active_live()};
  }

  /// Full DAG structure; clairvoyant schedulers only.
  const Dag& dag_of(JobId id) const {
    DS_CHECK_MSG(clairvoyant_allowed_,
                 "semi-non-clairvoyant scheduler peeked at DAG structure");
    return (*jobs_)[id].dag();
  }

  /// Full unfolding state (ready node identities, per-node progress);
  /// clairvoyant schedulers only.
  const UnfoldingState& unfolding_of(JobId id) const {
    DS_CHECK_MSG(clairvoyant_allowed_,
                 "semi-non-clairvoyant scheduler peeked at unfolding state");
    DS_CHECK(state_->unfolding(id).engaged());
    return state_->unfolding(id);
  }

 private:
  friend class EventEngine;
  friend class SimKernel;
  friend class SlotEngine;

  Time now_ = 0.0;
  ProcCount m_ = 1;
  double speed_ = 1.0;
  bool clairvoyant_allowed_ = false;
  const ObsSink* obs_ = nullptr;
  const std::vector<Job>* jobs_ = nullptr;
  const JobStateTable* state_ = nullptr;
  const void* arrival_prep_ = nullptr;
};

}  // namespace dagsched
