// Gantt-chart rendering of execution traces.
//
// ASCII output for terminals/examples and SVG for reports.  Each processor
// is a row; intervals are labelled by job id (ASCII) or colored per job
// (SVG).  Inputs come from SimResult::trace when EngineOptions::record_trace
// is set.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/trace.h"
#include "util/types.h"

namespace dagsched {

struct GanttOptions {
  /// Character columns for the time axis (ASCII).
  std::size_t width = 100;
  /// Restrict to [t0, t1); t1 <= t0 means the trace's full extent.
  Time t0 = 0.0;
  Time t1 = 0.0;
  /// SVG pixel size.
  double svg_width = 960.0;
  double svg_row_height = 22.0;
};

/// Renders an ASCII Gantt chart: one row per processor, '.' for idle, the
/// job id's last digit (or '#') for busy columns.  A legend maps symbols to
/// job ids when at most 10 jobs appear.
void write_ascii_gantt(std::ostream& os, const Trace& trace, ProcCount m,
                       const GanttOptions& options = {});

std::string to_ascii_gantt(const Trace& trace, ProcCount m,
                           const GanttOptions& options = {});

/// Renders an SVG Gantt chart; colors are assigned per job id from a fixed
/// palette.
void write_svg_gantt(std::ostream& os, const Trace& trace, ProcCount m,
                     const GanttOptions& options = {});

std::string to_svg_gantt(const Trace& trace, ProcCount m,
                         const GanttOptions& options = {});

}  // namespace dagsched
