#include "sim/gantt.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace dagsched {

namespace {

/// Trace extent [lo, hi); falls back to [0, 1) for empty traces.
std::pair<Time, Time> extent(const Trace& trace, const GanttOptions& options) {
  if (options.t1 > options.t0) return {options.t0, options.t1};
  Time lo = kTimeInfinity, hi = 0.0;
  for (const TraceInterval& iv : trace.intervals()) {
    lo = std::min(lo, iv.start);
    hi = std::max(hi, iv.end);
  }
  if (!(lo < hi)) return {0.0, 1.0};
  return {lo, hi};
}

const char* kSvgPalette[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
                             "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
                             "#9c755f", "#bab0ac"};

}  // namespace

void write_ascii_gantt(std::ostream& os, const Trace& trace, ProcCount m,
                       const GanttOptions& options) {
  DS_CHECK(m >= 1 && options.width >= 10);
  const auto [lo, hi] = extent(trace, options);
  const double scale = static_cast<double>(options.width) / (hi - lo);

  std::vector<std::string> rows(m, std::string(options.width, '.'));
  std::set<JobId> jobs_seen;
  for (const TraceInterval& iv : trace.intervals()) {
    if (iv.proc >= m || iv.end <= lo || iv.start >= hi) continue;
    jobs_seen.insert(iv.job);
    const auto first = static_cast<std::size_t>(
        std::max(0.0, (iv.start - lo) * scale));
    auto last = static_cast<std::size_t>(
        std::min(static_cast<double>(options.width),
                 (iv.end - lo) * scale + 0.999));
    last = std::max(last, first + 1);
    const char symbol = static_cast<char>('0' + iv.job % 10);
    for (std::size_t c = first; c < std::min(last, options.width); ++c) {
      rows[iv.proc][c] = symbol;
    }
  }

  os << "t = [" << lo << ", " << hi << ")\n";
  for (ProcCount p = 0; p < m; ++p) {
    os << "P" << p << (p < 10 ? " " : "") << " |" << rows[p] << "|\n";
  }
  if (!jobs_seen.empty() && jobs_seen.size() <= 10) {
    os << "legend:";
    for (const JobId job : jobs_seen) {
      os << " J" << job << "='" << static_cast<char>('0' + job % 10) << "'";
    }
    os << "\n";
  }
}

std::string to_ascii_gantt(const Trace& trace, ProcCount m,
                           const GanttOptions& options) {
  std::ostringstream oss;
  write_ascii_gantt(oss, trace, m, options);
  return oss.str();
}

void write_svg_gantt(std::ostream& os, const Trace& trace, ProcCount m,
                     const GanttOptions& options) {
  DS_CHECK(m >= 1);
  const auto [lo, hi] = extent(trace, options);
  const double margin = 40.0;
  const double scale = (options.svg_width - margin) / (hi - lo);
  const double height = options.svg_row_height * static_cast<double>(m) + 30.0;

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << options.svg_width << "\" height=\"" << height << "\">\n";
  for (ProcCount p = 0; p < m; ++p) {
    const double y =
        10.0 + options.svg_row_height * static_cast<double>(p);
    os << "  <text x=\"2\" y=\"" << y + options.svg_row_height * 0.7
       << "\" font-size=\"11\">P" << p << "</text>\n";
    os << "  <line x1=\"" << margin << "\" y1=\""
       << y + options.svg_row_height - 2.0 << "\" x2=\"" << options.svg_width
       << "\" y2=\"" << y + options.svg_row_height - 2.0
       << "\" stroke=\"#ddd\"/>\n";
  }
  for (const TraceInterval& iv : trace.intervals()) {
    if (iv.proc >= m || iv.end <= lo || iv.start >= hi) continue;
    const double x = margin + (std::max(iv.start, lo) - lo) * scale;
    const double w =
        (std::min(iv.end, hi) - std::max(iv.start, lo)) * scale;
    const double y =
        10.0 + options.svg_row_height * static_cast<double>(iv.proc);
    const char* color = kSvgPalette[iv.job % 10];
    os << "  <rect x=\"" << x << "\" y=\"" << y + 2.0 << "\" width=\""
       << std::max(w, 0.5) << "\" height=\"" << options.svg_row_height - 6.0
       << "\" fill=\"" << color << "\"><title>J" << iv.job << " node "
       << iv.node << " [" << iv.start << ", " << iv.end
       << ")</title></rect>\n";
  }
  os << "</svg>\n";
}

std::string to_svg_gantt(const Trace& trace, ProcCount m,
                         const GanttOptions& options) {
  std::ostringstream oss;
  write_svg_gantt(oss, trace, m, options);
  return oss.str();
}

}  // namespace dagsched
