// Per-job mutable simulation state shared by both engines.
#pragma once

#include <optional>

#include "dag/unfolding.h"
#include "util/types.h"

namespace dagsched {

struct JobRuntime {
  /// Engaged when the job arrives; holds ready-set and remaining work.
  std::optional<UnfoldingState> unfolding;
  bool arrived = false;
  bool completed = false;
  /// Absolute completion time (kTimeInfinity if never completed).
  Time completion_time = kTimeInfinity;
  /// Absolute time the job first ran (kTimeInfinity if never ran).
  Time first_start = kTimeInfinity;
  /// Total work units executed on this job so far.
  Work executed = 0.0;
  /// Whether on_deadline has already been delivered (step-profit jobs).
  bool deadline_notified = false;
};

}  // namespace dagsched
