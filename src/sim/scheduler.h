// The scheduler interface both engines drive.
//
// Engines deliver events (arrival / completion / deadline expiry) and then
// call decide() to obtain the processor allocation in force until the next
// event.  decide() is invoked at every decision point, which for the
// EventEngine is every event (including internal node completions) and for
// the SlotEngine is every time slot.  Schedulers whose decisions only change
// at job-level events (like the paper's S) simply return the same allocation
// when nothing changed.
#pragma once

#include <string>

#include "sim/assignment.h"
#include "sim/context.h"
#include "util/types.h"

namespace dagsched {

class CheckpointReader;
class CheckpointWriter;

class SchedulerBase {
 public:
  virtual ~SchedulerBase() = default;

  virtual std::string name() const = 0;

  /// Declares whether this policy may inspect DAG internals.  The paper's
  /// algorithms and all online baselines return false; only the clairvoyant
  /// reference schedulers return true.
  virtual bool clairvoyant() const { return false; }

  /// Called once before a simulation starts; resets internal queues so a
  /// scheduler instance can be reused across runs.
  virtual void reset() {}

  /// Job `job` just arrived (ctx.now() == its release, up to tolerance).
  virtual void on_arrival(const EngineContext& ctx, JobId job) {
    (void)ctx;
    (void)job;
  }

  /// Job `job` just completed all its nodes.
  virtual void on_completion(const EngineContext& ctx, JobId job) {
    (void)ctx;
    (void)job;
  }

  /// A step-profit job's absolute deadline passed without completion.
  virtual void on_deadline(const EngineContext& ctx, JobId job) {
    (void)ctx;
    (void)job;
  }

  /// The machine count changed (fault injection: processors failed or
  /// recovered).  ctx.num_procs() already reflects `new_m`.  Schedulers with
  /// committed capacity (admission sets, reserved clusters, pinned slots)
  /// must shed or re-fit commitments here and should record each displaced
  /// job with a `readmit-fail` decision event carrying a reason slug;
  /// policies that re-read ctx.num_procs() every decide() can keep the
  /// default no-op.  Only called when faults are injected.
  virtual void on_capacity_change(const EngineContext& ctx, ProcCount old_m,
                                  ProcCount new_m) {
    (void)ctx;
    (void)old_m;
    (void)new_m;
  }

  /// Earliest future time at which decide() could return a different answer
  /// absent new external events (kTimeInfinity if never).  The SlotEngine
  /// uses this to skip idle stretches and to detect quiescence when a
  /// scheduler deliberately idles (e.g. the Section-5 profit scheduler
  /// waiting for one of its assigned slots).  Work-conserving policies can
  /// keep the default.
  virtual Time next_wakeup(const EngineContext& ctx) const {
    (void)ctx;
    return kTimeInfinity;
  }

  /// Fill `out` with the allocation for the current instant.  The engine
  /// validates: total procs <= ctx.num_procs(), every job arrived and
  /// incomplete, no duplicate jobs, procs >= 1 per entry.
  virtual void decide(const EngineContext& ctx, Assignment& out) = 0;

  // ---- Sharded arrival precompute (sim/kernel/shard.h) --------------------
  // On sharded runs (KernelOptions::shards > 1) worker threads pre-build
  // per-arrival state ahead of delivery.  A policy whose on_arrival() does
  // job-local math that depends only on the immutable Job and the machine
  // speed can stage that math on the workers: return the POD size from
  // arrival_precompute_size() and fill it in precompute_arrival().  The
  // kernel hands the bytes back through ctx.arrival_prep() inside
  // on_arrival().  Contract: precompute_arrival must be const, thread-safe
  // (called concurrently from several workers, possibly concurrently with
  // on_arrival/decide on the main thread -- touch no mutable members), and
  // bit-identical to the delivery-time computation, since decision-log
  // parity across shard counts depends on it.  It must not consult an
  // EngineContext: anything m- or state-dependent stays in on_arrival.

  /// Bytes of per-arrival precompute this policy wants staged (0 = opt out).
  virtual std::size_t arrival_precompute_size() const { return 0; }

  /// Stages `job`'s precompute into `out` (arrival_precompute_size() bytes,
  /// suitably aligned for std::max_align_t).  See the contract above.
  virtual void precompute_arrival(const Job& job, JobId id, double speed,
                                  void* out) const {
    (void)job;
    (void)id;
    (void)speed;
    (void)out;
  }

  // ---- Checkpoint/restore (sim/checkpoint) --------------------------------
  // Serialization of every queue, index, and per-job record the policy owns,
  // encoded with util/wire.h primitives.  The contract is *behavioral*
  // equivalence, not bit equivalence of internals: after load_state the
  // scheduler must produce the same decision sequence as the instance that
  // saved, so derived structures (lazy heaps, position maps) may be rebuilt
  // from the serialized core state.  load_state is called on a freshly
  // reset() scheduler and may throw CheckpointError (via
  // CheckpointReader::fail) on malformed payloads.  The default no-ops suit
  // stateless policies that re-derive everything from ctx.active().

  virtual void save_state(CheckpointWriter& out) const { (void)out; }
  virtual void load_state(CheckpointReader& in) { (void)in; }

  // ---- Overload degradation (graceful load shedding) ----------------------

  /// Sheds up to `max_jobs` of the least-valuable admitted/queued jobs --
  /// lowest density first where the policy has a density order -- because
  /// decide() exceeded its wall-clock latency budget.  Each shed job must be
  /// dropped from every queue the policy owns (it stays active in the kernel
  /// but will never be granted processors again) and should emit a kDrop
  /// decision event with an `overload.shed.*` reason slug.  Returns the
  /// number of jobs actually shed; the default sheds nothing, which suits
  /// stateless policies with no standing commitments.
  virtual std::size_t shed_load(const EngineContext& ctx,
                                std::size_t max_jobs) {
    (void)ctx;
    (void)max_jobs;
    return 0;
  }

  // ---- Telemetry introspection (obs/telemetry) ----------------------------
  // Read-only gauges sampled by the kernel when a TelemetryRecorder is
  // attached; never called on the byte-identical telemetry-off path.

  /// Jobs currently held in this scheduler's queues/indexes (0 for policies
  /// that keep no queue of their own and re-read ctx.active() per decide).
  virtual std::size_t queue_depth() const { return 0; }

  /// Estimated bytes of scheduler-owned queue/index state (allocated, not
  /// live -- the quantity the million-job memory budget constrains).
  virtual std::size_t memory_bytes() const { return 0; }
};

}  // namespace dagsched
