// A scheduler's decision at one instant: how many processors each job gets.
//
// The engine turns an Assignment into actual node executions: a job granted
// k processors runs min(k, #ready-nodes) nodes, chosen by the engine's
// NodeSelector (the scheduler cannot pick nodes -- semi-non-clairvoyance).
#pragma once

#include <vector>

#include "util/types.h"

namespace dagsched {

struct JobAlloc {
  JobId job = kInvalidJob;
  ProcCount procs = 0;
};

struct Assignment {
  std::vector<JobAlloc> allocs;

  void clear() { allocs.clear(); }

  void add(JobId job, ProcCount procs) { allocs.push_back({job, procs}); }

  ProcCount total_procs() const {
    ProcCount total = 0;
    for (const JobAlloc& a : allocs) total += a.procs;
    return total;
  }
};

}  // namespace dagsched
