// Continuous-time, event-driven simulation of m identical processors.
//
// The engine advances from decision point to decision point.  A decision
// point is any event that can change the scheduler's view: a job arrival, a
// node completion (which may ready successors or complete the job), or a
// step-profit deadline expiry.  Between decision points the processor
// allocation is frozen: each job granted k processors runs min(k, #ready)
// ready nodes, chosen by the NodeSelector, each progressing at `speed` work
// units per time unit ("s-speed" resource augmentation).
//
// This is exact for schedulers -- like the paper's S and all included
// baselines -- whose decisions only depend on job-level state: re-invoking
// decide() at every node completion faithfully emulates the paper's
// per-time-step loop without quantization error.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "fault/injector.h"
#include "job/job.h"
#include "obs/sink.h"
#include "sim/assignment.h"
#include "sim/context.h"
#include "sim/node_selector.h"
#include "sim/outcome.h"
#include "sim/scheduler.h"

namespace dagsched {

class CheckpointSink;
struct CheckpointFile;
class SimKernel;
class TelemetryRecorder;

struct EngineOptions {
  ProcCount num_procs = 1;
  /// Resource augmentation: work units processed per processor-time-unit.
  double speed = 1.0;
  /// Record a full execution trace into SimResult::trace (O(#intervals)).
  bool record_trace = false;
  /// Hard cap on decision points (guards against scheduler livelock bugs).
  std::size_t max_decisions = 100'000'000;
  /// Invoked after each decision has been materialized; used by property
  /// tests to inspect scheduler state mid-run.
  std::function<void(const EngineContext&, const Assignment&)> observer;
  /// Observability sink (counters / decision events / span timers); null =
  /// off, and the run is bit-identical to an uninstrumented one.
  const ObsSink* obs = nullptr;
  /// Fault injector (processor churn / work overruns); null = no faults,
  /// and the run is bit-identical to a fault-free build.  Processor
  /// transitions become decision points: failed processors stop executing,
  /// decide() sees the reduced ctx.num_procs(), and the scheduler's
  /// on_capacity_change() runs its degradation policy.
  const FaultInjector* faults = nullptr;
  /// Runtime-telemetry recorder (obs/telemetry); null = off, the seed code
  /// path.  Forwarded to KernelOptions::telemetry.
  TelemetryRecorder* telemetry = nullptr;
  /// Periodic checkpoint writer (sim/checkpoint); null = off, and the run
  /// is byte-identical to one without checkpointing.  Snapshots are taken
  /// at the top of the stepping loop, before event delivery, so a resumed
  /// run replays the exact continuation.
  CheckpointSink* checkpoint = nullptr;
  /// Parsed checkpoint to resume from (already verified compatible); null =
  /// start from the beginning.
  const CheckpointFile* resume = nullptr;
  /// Crash-recovery test hook: _Exit(9) immediately after decision #N
  /// completes (0 = off).  Forwarded to KernelOptions::die_at_decision.
  std::size_t die_at_decision = 0;
  /// Overload degradation: wall-clock budget per decide() in nanoseconds
  /// (0 = off), max jobs shed per breach, and the test probe overriding the
  /// measured latency.  Forwarded to KernelOptions.
  std::uint64_t decide_budget_ns = 0;
  std::size_t overload_shed_max = 1;
  std::function<std::uint64_t(std::size_t, std::uint64_t)> overload_probe;
  /// Intra-run parallelism (forwarded to KernelOptions::shards): partition
  /// jobs into this many shards, each with a worker thread running ahead of
  /// simulated time.  Decision logs stay byte-identical to serial at any
  /// value; 0/1 = the serial seed path.  See sim/kernel/shard.h.
  std::size_t shards = 1;
};

/// Continuous-time stepping driver over the shared SimKernel
/// (sim/kernel/kernel.h): advances from decision point to decision point
/// (arrival, node completion, deadline expiry, processor transition).  All
/// simulation semantics -- event delivery, validation, callbacks, obs
/// emission, busy/idle accounting -- live in the kernel, shared with
/// SlotEngine.
class EventEngine {
 public:
  /// `jobs` must be finalized (sorted by release).  The scheduler and
  /// selector are borrowed and must outlive run().
  EventEngine(const JobSet& jobs, SchedulerBase& scheduler,
              NodeSelector& selector, EngineOptions options);
  ~EventEngine();

  /// Simulates to quiescence (all jobs completed, or nothing running and no
  /// future events) and returns per-job outcomes.  Re-runnable: the kernel
  /// and all scratch buffers persist across calls, so a second run over the
  /// same instance reuses warm capacity (the zero-allocation contract
  /// tested by tests/test_zero_alloc.cpp).
  SimResult run();

 private:
  const JobSet& jobs_;
  SchedulerBase& scheduler_;
  NodeSelector& selector_;
  EngineOptions options_;

  // Persistent simulation state: created on the first run(), reset by
  // SimKernel::begin() on each subsequent one.
  std::unique_ptr<SimKernel> kernel_;
  Assignment assignment_;
  std::vector<NodeId> picked_;
  // This interval's execution set: (job, node) pairs and the jobs that run
  // a node, handed to account_preemptions()/commit_interval() without the
  // seed's extra copy into separate accounting vectors.
  std::vector<std::pair<JobId, NodeId>> running_;
  std::vector<JobId> running_jobs_;
};

/// One-call convenience wrapper.
SimResult simulate(const JobSet& jobs, SchedulerBase& scheduler,
                   NodeSelector& selector, const EngineOptions& options);

}  // namespace dagsched
